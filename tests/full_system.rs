//! Capstone integration: everything at once. A multi-host pool serves live
//! traffic while VMs come and go, balloon up and down, both power
//! mechanisms run, and a rank is retired mid-flight — over a long
//! deterministic replay with invariants checked throughout and energy
//! strictly below an all-standby baseline.

use dtl_core::{AnalyticBackend, DtlConfig, DtlDevice, DtlError, HostId, VmAllocation};
use dtl_dram::{AccessKind, Picos, PowerState};
use dtl_trace::{TraceGen, WorkloadKind};

struct Tenant {
    host: HostId,
    vm: VmAllocation,
    gen: TraceGen,
}

#[test]
fn everything_at_once() {
    let cfg = DtlConfig::tiny();
    let mut dev = DtlDevice::with_analytic_geometry(cfg, 2, 4, 32);
    for h in 0..3 {
        dev.register_host(HostId(h)).unwrap();
    }
    dev.set_host_quota(HostId(2), Some(3)).unwrap();

    let mut tenants: Vec<Tenant> = Vec::new();
    let mut now = Picos::from_us(1);
    let dt = Picos::from_ns(300);
    let spawn = |dev: &mut DtlDevice<AnalyticBackend>,
                 host: u16,
                 aus: u64,
                 seed: u64,
                 now: Picos|
     -> Result<Tenant, DtlError> {
        let vm = dev.alloc_vm(HostId(host), aus * cfg.au_bytes, now)?;
        let mut spec = WorkloadKind::TRACED[(seed % 8) as usize].spec();
        // The generator's segment granularity is the paper's 2 MiB; give
        // it a valid working set and fold addresses onto the VM's AUs.
        spec.working_set_bytes = vm.bytes.max(16 << 20);
        Ok(Tenant { host: HostId(host), vm, gen: TraceGen::new(spec, seed) })
    };

    // Boot three tenants.
    for (h, aus, seed) in [(0u16, 2u64, 1u64), (1, 2, 2), (2, 1, 3)] {
        tenants.push(spawn(&mut dev, h, aus, seed, now).unwrap());
    }

    let mut checkpoints = 0;
    for round in 0..60_000u64 {
        // Traffic: one access per live tenant per round.
        for t in &mut tenants {
            let r = t.gen.next_record();
            let au_idx = (r.addr / cfg.au_bytes) as usize % t.vm.aus.len();
            let hpa = t.vm.hpa_base(au_idx, cfg.au_bytes).offset_by(r.addr % cfg.au_bytes);
            let kind = if r.is_write { AccessKind::Write } else { AccessKind::Read };
            dev.access(t.host, hpa, kind, now).unwrap();
        }
        now += dt;
        if round % 64 == 0 {
            dev.tick(now).unwrap();
        }
        // Lifecycle events at fixed points.
        match round {
            10_000 => {
                // Tenant 1 balloons up; its generator keeps its region.
                let t = &mut tenants[1];
                dev.grow_vm(t.vm.handle, cfg.au_bytes, now).unwrap();
                let grown = dev.snapshot();
                assert!(grown.hosts.iter().any(|h| h.aus >= 3));
            }
            20_000 => {
                // Tenant 0 leaves; power-down reclaims.
                let t = tenants.remove(0);
                dev.dealloc_vm(t.vm.handle, now).unwrap();
            }
            30_000 => {
                // A rank starts failing: retire whichever rank holds
                // tenant data right now.
                let probe = tenants[0].vm.hpa_base(0, cfg.au_bytes);
                let out = dev.access(tenants[0].host, probe, AccessKind::Read, now).unwrap();
                let loc = dev.geometry().location(out.dsn);
                dev.retire_rank(loc.channel, loc.rank, now).unwrap();
            }
            40_000 => {
                // A new tenant arrives (may need rank wake-ups).
                if let Ok(t) = spawn(&mut dev, 0, 2, 9, now) {
                    tenants.push(t);
                }
            }
            50_000 => {
                // Tenant with the quota shifts its pattern.
                tenants[0].gen.drift_hot_set(0.5);
            }
            _ => {}
        }
        if round % 5_000 == 0 {
            dev.check_invariants().unwrap();
            checkpoints += 1;
        }
    }
    assert!(checkpoints >= 12);

    // Drain all outstanding migrations.
    for _ in 0..300 {
        now += Picos::from_ms(1);
        dev.tick(now).unwrap();
    }
    dev.check_invariants().unwrap();

    // The mechanisms actually did things.
    let pd = dev.powerdown_stats();
    let hs = dev.hotness_stats();
    let ms = dev.migration_stats();
    assert!(pd.ranks_retired >= 1, "{pd:?}");
    assert!(pd.groups_powered_down >= 1, "{pd:?}");
    assert!(hs.sr_entries >= 1, "{hs:?}");
    assert!(ms.completed >= 1, "{ms:?}");

    // Energy sits strictly below the all-standby baseline.
    let report = dev.power_report(now);
    let standby_mw = 1250.0 * 8.0;
    let baseline_mj = standby_mw * now.as_secs_f64();
    assert!(
        report.total.background_mj < baseline_mj * 0.98,
        "background {} vs baseline {}",
        report.total.background_mj,
        baseline_mj
    );

    // Every surviving tenant's memory is intact (translatable end to end).
    for t in &tenants {
        for (i, _) in t.vm.aus.iter().enumerate() {
            let hpa = t.vm.hpa_base(i, cfg.au_bytes);
            dev.access(t.host, hpa, AccessKind::Read, now).unwrap();
        }
    }

    // And at least one rank is off (MPSM) while tenants keep running.
    let snap = dev.snapshot();
    assert!(snap.ranks.iter().any(|r| r.power == PowerState::Mpsm));
    assert!(snap.hosts.iter().map(|h| h.vms).sum::<u32>() >= 2);
}
