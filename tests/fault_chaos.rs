//! Chaos property test: many distinct seeded fault plans replayed against
//! a live DTL device. After every injected fault and at the end of every
//! round the device's structural invariants must hold, and no host write
//! may become unreachable — the model loses data only where it *reports*
//! an uncorrectable error, never silently through the mapping machinery.

use dtl_core::{AnalyticBackend, DtlConfig, DtlDevice, DtlError, HostId, RankHealth};
use dtl_cxl::{RetryEngine, RetryPolicy};
use dtl_dram::{AccessKind, Picos};
use dtl_fault::{FaultKind, FaultPlanConfig, PoolFaultKind, PoolFaultPlanConfig, StormConfig};
use dtl_pool::{DeviceHealth, DeviceId, MemoryPool, PoolConfig, PoolError};

fn device() -> (DtlDevice<AnalyticBackend>, DtlConfig) {
    let cfg = DtlConfig::tiny();
    let mut dev = DtlDevice::with_analytic_geometry(cfg, 2, 4, 32);
    dev.register_host(HostId(0)).unwrap();
    (dev, cfg)
}

/// One chaos round: allocate VMs, write through them, replay a seeded
/// fault plan while the device keeps serving and migrating, and verify
/// that nothing host-visible was lost.
fn chaos_round(seed: u64) -> Result<(), DtlError> {
    let (mut dev, cfg) = device();
    dev.set_hotness_enabled(seed.is_multiple_of(3));
    dev.set_powerdown_enabled(true);

    let duration = Picos::from_ms(50);
    let mut plan_cfg = FaultPlanConfig::quiet(seed, duration, 2, 4);
    plan_cfg.correctable_per_rank_per_sec = 150.0;
    plan_cfg.link_crc_per_sec = 100.0;
    plan_cfg.link_crc_max_burst = 8;
    plan_cfg.migration_interrupts = 30;
    if seed.is_multiple_of(2) {
        plan_cfg.storm = Some(StormConfig {
            channel: (seed % 2) as u32,
            rank: (seed % 4) as u32,
            start: Picos::from_ms(5),
            events: 25,
            spacing: Picos::from_ms(1),
            correctable_ratio: 0.7,
        });
    }
    let mut injector = plan_cfg.generate().injector();
    let mut link = RetryEngine::new(RetryPolicy::default());

    // Three VMs; one is deallocated mid-run so drains are in flight when
    // migration interrupts strike.
    let vm0 = dev.alloc_vm(HostId(0), cfg.au_bytes, Picos::ZERO)?;
    let vm1 = dev.alloc_vm(HostId(0), cfg.au_bytes, Picos::ZERO)?;
    let vm2 = dev.alloc_vm(HostId(0), cfg.au_bytes, Picos::ZERO)?;
    let mut t = Picos::from_us(1);
    let mut written = Vec::new();
    for vm in [&vm0, &vm1, &vm2] {
        let base = vm.hpa_base(0, cfg.au_bytes);
        for k in 0..8u64 {
            let hpa = base.offset_by(k * cfg.segment_bytes / 2);
            dev.access(HostId(0), hpa, AccessKind::Write, t)?;
            written.push(hpa);
            t += Picos::from_ns(100);
        }
    }
    // vm2's writes die with it; only vm0/vm1 addresses must survive.
    let live_writes = 16;

    let step = Picos::from_us(500);
    let mut deallocated = false;
    while t < duration {
        t += step;
        if !deallocated && t >= Picos::from_ms(10) {
            dev.dealloc_vm(vm2.handle, t)?;
            deallocated = true;
        }
        for ev in injector.pop_due(t) {
            match ev.kind {
                FaultKind::CorrectableEcc { channel, rank } => {
                    dev.inject_correctable_error(channel, rank, t)?;
                }
                FaultKind::UncorrectableEcc { channel, rank } => {
                    dev.inject_uncorrectable_error(channel, rank, t)?;
                }
                FaultKind::LinkCrc { burst } => {
                    link.inject_crc_burst(burst);
                    link.on_submit_at(t);
                }
                FaultKind::MigrationInterrupt { channel } => {
                    dev.inject_migration_interrupt(channel, t)?;
                }
            }
            dev.check_invariants()?;
        }
        dev.tick(t)?;
        // Keep foreground traffic flowing through the chaos.
        let probe = written[(t.as_ps() / step.as_ps()) as usize % live_writes];
        dev.access(HostId(0), probe, AccessKind::Read, t)?;
    }
    // Settle any outstanding migrations.
    for _ in 0..300 {
        t += Picos::from_ms(1);
        dev.tick(t)?;
        if dev.migrations_pending() == 0 {
            break;
        }
    }
    dev.check_invariants()?;

    // No lost writes: every address written through a live VM still
    // translates and serves. Data loss beyond this is exactly what the
    // device *reported* as uncorrectable errors.
    for hpa in &written[..live_writes] {
        dev.access(HostId(0), *hpa, AccessKind::Read, t)?;
    }
    assert_eq!(
        dev.health_stats().uncorrectable_errors,
        plan_cfg.generate().count_where(|k| matches!(k, FaultKind::UncorrectableEcc { .. })) as u64,
        "every uncorrectable error is reported"
    );
    Ok(())
}

#[test]
fn a_hundred_fault_plans_never_break_invariants() {
    // Each seed is an independent round, so the exec engine can shard the
    // campaign across cores; results come back in seed order regardless.
    let seeds: Vec<u64> = (0..120).collect();
    let jobs = dtl_sim::exec::available_jobs();
    for (seed, outcome) in
        dtl_sim::exec::run_units(jobs, seeds, |_, seed| (seed, chaos_round(seed)))
    {
        outcome.unwrap_or_else(|e| panic!("seed {seed} failed: {e}"));
    }
}

/// One pool chaos round: a four-device pool serving three hosts while a
/// seeded pool-level fault plan fires device faults, link CRC bursts, and
/// whole-device retirements into the run. Invariants must hold after
/// every fault, failover must lose nothing, and after the dust settles
/// the pool must complete a full admission round trip.
fn pool_chaos_round(seed: u64) -> Result<(), PoolError> {
    let mut cfg = PoolConfig::tiny(4);
    cfg.coordinator.enabled = seed.is_multiple_of(2);
    let au = cfg.dtl.au_bytes;
    let mut pool = MemoryPool::analytic(cfg)?;
    for h in 0..3 {
        pool.register_host(HostId(h))?;
    }

    let duration = Picos::from_ms(50);
    let retirements = 1 + (seed % 2) as u16;
    let mut plan_cfg =
        PoolFaultPlanConfig::quiet(seed, 4, FaultPlanConfig::quiet(seed, duration, 2, 4));
    plan_cfg.per_device.correctable_per_rank_per_sec = 100.0;
    plan_cfg.per_device.link_crc_per_sec = 80.0;
    plan_cfg.per_device.link_crc_max_burst = 4;
    plan_cfg.per_device.migration_interrupts = 10;
    plan_cfg.device_retirements = retirements;
    let mut injector = plan_cfg.generate().injector();

    // Six AUs across three hosts: the survivors can absorb up to two
    // whole-device losses.
    let vms: Vec<_> = (0..3u16)
        .map(|h| pool.alloc_vm(HostId(h), 2 * au, Picos::ZERO))
        .collect::<Result<_, _>>()?;
    let mut t = Picos::from_us(1);
    for vm in &vms {
        pool.access(*vm, 0, AccessKind::Write, t)?;
        pool.access(*vm, au, AccessKind::Write, t)?;
        t += Picos::from_ns(100);
    }

    let step = Picos::from_us(500);
    let mut probe = 0u64;
    let mut retired_loaded_device = false;
    while t < duration {
        t += step;
        for ev in injector.pop_due(t) {
            match ev.kind {
                PoolFaultKind::Device { device, kind } => {
                    let id = DeviceId(device);
                    match kind {
                        FaultKind::CorrectableEcc { channel, rank } => {
                            pool.device_mut(id)
                                .expect("planned device exists")
                                .inject_correctable_error(channel, rank, t)
                                .map_err(|e| PoolError::Device { device: id, source: e })?;
                        }
                        FaultKind::UncorrectableEcc { channel, rank } => {
                            pool.device_mut(id)
                                .expect("planned device exists")
                                .inject_uncorrectable_error(channel, rank, t)
                                .map_err(|e| PoolError::Device { device: id, source: e })?;
                        }
                        FaultKind::LinkCrc { burst } => pool.inject_crc_burst(id, burst)?,
                        FaultKind::MigrationInterrupt { channel } => {
                            pool.device_mut(id)
                                .expect("planned device exists")
                                .inject_migration_interrupt(channel, t)
                                .map_err(|e| PoolError::Device { device: id, source: e })?;
                        }
                    }
                }
                PoolFaultKind::RetireDevice { device } => {
                    retired_loaded_device |= vms.iter().any(|vm| {
                        pool.vm_devices(*vm).is_some_and(|d| d.contains(&DeviceId(device)))
                    });
                    pool.retire_device(DeviceId(device), t)?;
                    // Failover must be lossless *while* evacuations are
                    // still in flight, not only after they settle.
                    pool.assert_all_reachable(t)?;
                }
            }
            pool.check_invariants()?;
        }
        pool.tick(t)?;
        // Keep foreground traffic flowing through the chaos.
        let vm = vms[(probe % 3) as usize];
        pool.access(vm, (probe % 2) * au, AccessKind::Read, t)?;
        probe += 1;
    }
    // Settle outstanding evacuations, then verify the round trip.
    for _ in 0..300 {
        t += Picos::from_ms(1);
        pool.tick(t)?;
        if pool.evacuations_pending() == 0 {
            break;
        }
    }
    pool.check_invariants()?;
    pool.assert_all_reachable(t)?;
    let retired = (0..4u16)
        .filter(|d| pool.device_health(DeviceId(*d)) == Some(DeviceHealth::Retired))
        .count();
    assert_eq!(retired, usize::from(retirements), "every planned retirement fired");
    assert_eq!(pool.stats().devices_retired, u64::from(retirements));
    if retired_loaded_device {
        assert!(pool.stats().evacuations_completed > 0, "retiring a loaded device evacuates");
    }
    for vm in &vms {
        for d in pool.vm_devices(*vm).expect("VM is live") {
            assert_eq!(
                pool.device_health(d),
                Some(DeviceHealth::Healthy),
                "no shard may remain on a retired device"
            );
        }
    }
    // The shrunken pool still completes an admission round trip.
    let extra = pool.alloc_vm(HostId(0), au, t)?;
    pool.access(extra, 0, AccessKind::Read, t)?;
    pool.dealloc_vm(extra, t)?;
    pool.check_invariants()?;
    Ok(())
}

#[test]
fn retirement_failover_round_trips_survive_chaos() {
    let seeds: Vec<u64> = (0..40).collect();
    let jobs = dtl_sim::exec::available_jobs();
    for (seed, outcome) in
        dtl_sim::exec::run_units(jobs, seeds, |_, seed| (seed, pool_chaos_round(seed)))
    {
        outcome.unwrap_or_else(|e| panic!("seed {seed} failed: {e}"));
    }
}

#[test]
fn storm_deterministically_retires_the_victim() {
    let run = |seed: u64| {
        let (mut dev, cfg) = device();
        dev.set_hotness_enabled(false);
        dev.set_powerdown_enabled(false);
        let vm = dev.alloc_vm(HostId(0), cfg.au_bytes, Picos::ZERO).unwrap();
        let base = vm.hpa_base(0, cfg.au_bytes);
        let out = dev.access(HostId(0), base, AccessKind::Read, Picos::from_us(1)).unwrap();
        let loc = dev.geometry().location(out.dsn);

        let mut plan_cfg = FaultPlanConfig::quiet(seed, Picos::from_ms(100), 2, 4);
        plan_cfg.storm = Some(StormConfig {
            channel: loc.channel,
            rank: loc.rank,
            start: Picos::from_ms(1),
            events: 30,
            spacing: Picos::from_us(200),
            correctable_ratio: 0.9,
        });
        let mut injector = plan_cfg.generate().injector();
        let mut seen = Vec::new();
        let mut t = Picos::from_us(2);
        while t < Picos::from_ms(100) {
            t += Picos::from_us(100);
            for ev in injector.pop_due(t) {
                let health = match ev.kind {
                    FaultKind::CorrectableEcc { channel, rank } => {
                        dev.inject_correctable_error(channel, rank, t).unwrap()
                    }
                    FaultKind::UncorrectableEcc { channel, rank } => {
                        dev.inject_uncorrectable_error(channel, rank, t).unwrap().health
                    }
                    _ => unreachable!("storm-only plan"),
                };
                seen.push(health);
                dev.check_invariants().unwrap();
            }
            dev.tick(t).unwrap();
        }
        // The victim walked the whole lifecycle.
        assert!(seen.contains(&RankHealth::Healthy), "{seen:?}");
        assert!(seen.contains(&RankHealth::Degraded), "{seen:?}");
        assert!(
            seen.iter().any(|h| matches!(h, RankHealth::Draining | RankHealth::Retired)),
            "{seen:?}"
        );
        assert_eq!(dev.rank_health(loc.channel, loc.rank), RankHealth::Retired);
        let snap = dev.snapshot();
        let victim =
            snap.ranks.iter().find(|r| r.channel == loc.channel && r.rank == loc.rank).unwrap();
        assert_eq!(victim.allocated_segments, 0, "every live segment migrated out");
        assert_eq!(dev.stats().auto_retirements, 1);
        // The host still reaches its data.
        dev.access(HostId(0), base, AccessKind::Read, t).unwrap();
        dev.check_invariants().unwrap();
        (seen, dev.health_stats(), dev.migration_stats().bytes_moved)
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(a, b, "the storm campaign is deterministic");
}
