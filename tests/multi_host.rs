//! Multi-host pooled-memory integration on top of `dtl-pool`: several
//! compute nodes share a rack-scale pool of DTL devices. Address spaces
//! are isolated per VM, capacity and quotas are enforced pool-wide, and
//! whole-device failover is transparent to every host.

use dtl_core::HostId;
use dtl_dram::{AccessKind, Picos};
use dtl_pool::{
    AnalyticMemoryPool, CoordState, DeviceHealth, DeviceId, MemoryPool, PoolConfig, PoolError,
    PoolVmId,
};

/// A four-device tiny pool (8 AUs per device) with four registered hosts
/// and the coordinator off, so placement alone decides device states.
fn pool() -> AnalyticMemoryPool {
    let mut cfg = PoolConfig::tiny(4);
    cfg.coordinator.enabled = false;
    let mut p = MemoryPool::analytic(cfg).unwrap();
    for h in 0..4 {
        p.register_host(HostId(h)).unwrap();
    }
    p
}

/// Ticks until in-flight evacuations settle.
fn settle(p: &mut AnalyticMemoryPool, mut now: Picos) -> Picos {
    for _ in 0..200 {
        now += Picos::from_ms(1);
        p.tick(now).unwrap();
        if p.evacuations_pending() == 0 {
            break;
        }
    }
    now
}

#[test]
fn vms_have_disjoint_backing_across_hosts() {
    let mut p = pool();
    let au = p.config().dtl.au_bytes;
    let a = p.alloc_vm(HostId(0), au, Picos::ZERO).unwrap();
    let b = p.alloc_vm(HostId(1), au, Picos::ZERO).unwrap();
    // Both hosts see offset 0 of their own VM...
    let da = p.access(a, 0, AccessKind::Read, Picos::from_us(1)).unwrap();
    let db = p.access(b, 0, AccessKind::Read, Picos::from_us(2)).unwrap();
    // ...but the pool backs them with different device segments.
    assert_ne!((da.device, da.outcome.dsn), (db.device, db.outcome.dsn));
    // The CXL link charges every access.
    assert!(da.link_delay > Picos::ZERO);
    p.check_invariants().unwrap();
}

#[test]
fn out_of_range_offsets_and_stale_handles_are_rejected() {
    let mut p = pool();
    let au = p.config().dtl.au_bytes;
    let a = p.alloc_vm(HostId(0), au, Picos::ZERO).unwrap();
    assert!(matches!(
        p.access(a, au, AccessKind::Read, Picos::from_us(1)),
        Err(PoolError::OutOfRange { .. })
    ));
    p.dealloc_vm(a, Picos::from_us(2)).unwrap();
    assert!(matches!(
        p.access(a, 0, AccessKind::Read, Picos::from_us(3)),
        Err(PoolError::UnknownVm(v)) if v == a
    ));
    assert!(matches!(p.alloc_vm(HostId(9), au, Picos::ZERO), Err(PoolError::UnknownHost(_))));
}

#[test]
fn pool_capacity_is_shared_and_reclaimed_across_hosts() {
    let mut p = pool();
    let au = p.config().dtl.au_bytes;
    let total = u64::from(p.config().aus_per_device()) * 4;
    // Fill the whole pool from all four hosts.
    let mut vms: Vec<PoolVmId> = Vec::new();
    for i in 0..total {
        let h = HostId((i % 4) as u16);
        vms.push(p.alloc_vm(h, au, Picos::ZERO).unwrap());
    }
    assert!(matches!(
        p.alloc_vm(HostId(0), au, Picos::ZERO),
        Err(PoolError::NoCapacity { free_aus: 0, .. })
    ));
    // Half the tenants leave; another host reuses the reclaimed capacity.
    let mut t = Picos::from_us(1);
    for vm in vms.drain(..vms.len() / 2) {
        p.dealloc_vm(vm, t).unwrap();
        t += Picos::from_us(1);
    }
    let big = p.alloc_vm(HostId(3), 4 * au, t).unwrap();
    assert_eq!(p.vm_bytes(big), Some(4 * au));
    p.check_invariants().unwrap();
}

#[test]
fn host_quotas_gate_admission_pool_wide() {
    let mut p = pool();
    let au = p.config().dtl.au_bytes;
    p.set_host_quota(HostId(2), Some(2)).unwrap();
    let _a = p.alloc_vm(HostId(2), 2 * au, Picos::ZERO).unwrap();
    assert!(matches!(
        p.alloc_vm(HostId(2), au, Picos::ZERO),
        Err(PoolError::QuotaExceeded { mapped_aus: 2, quota_aus: 2, .. })
    ));
    // Other hosts are unaffected by the neighbor's cap.
    p.alloc_vm(HostId(0), 2 * au, Picos::ZERO).unwrap();
    p.check_invariants().unwrap();
}

#[test]
fn device_retirement_is_transparent_to_all_hosts() {
    let mut p = pool();
    let au = p.config().dtl.au_bytes;
    let vms: Vec<PoolVmId> =
        (0..3u16).map(|h| p.alloc_vm(HostId(h), 2 * au, Picos::ZERO).unwrap()).collect();
    // Pack-for-power concentrated the tenants; retire the loaded device.
    let victim = p.access(vms[0], 0, AccessKind::Read, Picos::from_us(1)).unwrap().device;
    p.retire_device(victim, Picos::from_us(2)).unwrap();
    let now = settle(&mut p, Picos::from_us(3));
    assert_eq!(p.device_health(victim), Some(DeviceHealth::Retired));
    assert_eq!(p.evacuations_pending(), 0);
    // Every host's memory is still reachable at unchanged offsets, and
    // none of it on the retired device.
    p.assert_all_reachable(now).unwrap();
    for vm in &vms {
        assert!(!p.vm_devices(*vm).unwrap().contains(&victim));
    }
    assert_eq!(p.stats().segments_evacuated, 6 * p.config().dtl.segments_per_au());
    p.check_invariants().unwrap();
}

#[test]
fn coordinator_parks_idle_devices_and_admission_wakes_them() {
    let mut cfg = PoolConfig::tiny(2);
    cfg.coordinator.enabled = true;
    let mut p = MemoryPool::analytic(cfg).unwrap();
    p.register_host(HostId(0)).unwrap();
    let au = p.config().dtl.au_bytes;
    let per_device = u64::from(p.config().aus_per_device());
    let _vm = p.alloc_vm(HostId(0), au, Picos::ZERO).unwrap();
    let now = settle(&mut p, Picos::from_us(1));
    assert_eq!(p.coord_state(DeviceId(1)), Some(CoordState::Parked));
    // A request larger than the active device's leftovers wakes the
    // parked one instead of failing.
    let big = p.alloc_vm(HostId(0), per_device * au, now).unwrap();
    assert_eq!(p.coord_state(DeviceId(1)), Some(CoordState::Active));
    assert!(p.vm_devices(big).unwrap().contains(&DeviceId(1)));
    assert!(p.stats().devices_woken > 0);
    p.check_invariants().unwrap();
}
