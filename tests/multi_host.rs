//! Multi-host pooled-memory integration: several compute nodes share one
//! DTL device. Address spaces are isolated by construction (the HSN keys
//! on host id — the paper's security argument), capacity is shared, and
//! power management acts on the pool as a whole.

use dtl_core::{DtlConfig, DtlDevice, DtlError, HostId, HostPhysAddr, MemoryBackend};
use dtl_dram::{AccessKind, Picos, PowerState};

fn device() -> DtlDevice<dtl_core::AnalyticBackend> {
    let cfg = DtlConfig::tiny();
    let mut dev = DtlDevice::with_analytic_geometry(cfg, 2, 4, 32);
    for h in 0..4 {
        dev.register_host(HostId(h)).unwrap();
    }
    dev
}

#[test]
fn hosts_have_disjoint_address_spaces() {
    let mut dev = device();
    let au = dev.config().au_bytes;
    let a = dev.alloc_vm(HostId(0), au, Picos::ZERO).unwrap();
    let b = dev.alloc_vm(HostId(1), au, Picos::ZERO).unwrap();
    // Both hosts see HPA 0 as their own first AU...
    assert_eq!(a.hpa_base(0, au), b.hpa_base(0, au));
    // ...but the device maps them to different segments.
    let da = dev.access(HostId(0), a.hpa_base(0, au), AccessKind::Read, Picos::from_us(1)).unwrap();
    let db = dev.access(HostId(1), b.hpa_base(0, au), AccessKind::Read, Picos::from_us(2)).unwrap();
    assert_ne!(da.dsn, db.dsn, "host address spaces must not alias");
    dev.check_invariants().unwrap();
}

#[test]
fn host_cannot_reach_another_hosts_memory() {
    let mut dev = device();
    let au = dev.config().au_bytes;
    let _a = dev.alloc_vm(HostId(0), au, Picos::ZERO).unwrap();
    // Host 1 has no allocation: every address is unmapped *for host 1*,
    // including the HPA that is valid for host 0.
    let err = dev.access(HostId(1), HostPhysAddr::new(0), AccessKind::Read, Picos::from_us(1));
    assert!(matches!(err, Err(DtlError::UnmappedAddress { host, .. }) if host == HostId(1)));
}

#[test]
fn pool_capacity_is_shared_and_reclaimed_across_hosts() {
    let mut dev = device();
    dev.set_hotness_enabled(false);
    let au = dev.config().au_bytes;
    // Device: 256 segments = 8 AUs of 32 segments; split across 4 hosts.
    let mut vms = Vec::new();
    for h in 0..4u16 {
        for _ in 0..2 {
            vms.push((HostId(h), dev.alloc_vm(HostId(h), au, Picos::ZERO).unwrap()));
        }
    }
    assert!(matches!(
        dev.alloc_vm(HostId(0), au, Picos::ZERO),
        Err(DtlError::OutOfCapacity { .. })
    ));
    // Two hosts leave; their capacity consolidates into powered-down ranks.
    let mut t = Picos::from_us(1);
    for (h, vm) in vms.drain(0..4) {
        dev.dealloc_vm(vm.handle, t).unwrap();
        let _ = h;
        t += Picos::from_us(1);
    }
    for _ in 0..100 {
        t += Picos::from_ms(1);
        dev.tick(t).unwrap();
    }
    assert!(dev.powerdown_stats().groups_powered_down > 0);
    // A third host can use the reclaimed capacity (waking ranks as needed).
    let c = dev.alloc_vm(HostId(3), 2 * au, t).unwrap();
    assert_eq!(c.aus.len(), 2);
    dev.check_invariants().unwrap();
}

#[test]
fn unregistered_host_is_rejected_everywhere() {
    let mut dev = device();
    let ghost = HostId(9);
    assert!(matches!(dev.alloc_vm(ghost, 1, Picos::ZERO), Err(DtlError::UnknownHost(_))));
    assert!(matches!(
        dev.access(ghost, HostPhysAddr::new(0), AccessKind::Read, Picos::ZERO),
        Err(DtlError::UnknownHost(_))
    ));
}

#[test]
fn retirement_is_transparent_to_all_hosts() {
    let mut dev = device();
    dev.set_hotness_enabled(false);
    dev.set_powerdown_enabled(false);
    let au = dev.config().au_bytes;
    let vms: Vec<_> =
        (0..3u16).map(|h| (h, dev.alloc_vm(HostId(h), au, Picos::ZERO).unwrap())).collect();
    // Find a rank holding host 0's data and retire it.
    let out = dev
        .access(HostId(0), vms[0].1.hpa_base(0, au), AccessKind::Read, Picos::from_us(1))
        .unwrap();
    let loc = dev.geometry().location(out.dsn);
    dev.retire_rank(loc.channel, loc.rank, Picos::from_us(2)).unwrap();
    let mut t = Picos::from_us(3);
    for _ in 0..200 {
        t += Picos::from_ms(1);
        dev.tick(t).unwrap();
        if dev.migrations_pending() == 0 {
            break;
        }
    }
    assert_eq!(dev.backend().rank_state(loc.channel, loc.rank), PowerState::Mpsm);
    // Every host's memory is still reachable at unchanged HPAs.
    for (h, vm) in &vms {
        dev.access(HostId(*h), vm.hpa_base(0, au), AccessKind::Read, t).unwrap();
    }
    dev.check_invariants().unwrap();
}
