//! Integration of the DTL device over the **cycle-accurate** DRAM backend:
//! translated accesses become real DDR4 command streams, migration traffic
//! yields to foreground traffic, and self-refresh entry/exit pay their
//! JEDEC latencies.

use dtl_core::{CycleBackend, DtlConfig, DtlDevice, HostId, MemoryBackend};
use dtl_dram::{AccessKind, DramConfig, Picos, PowerState};

fn device() -> (DtlDevice<CycleBackend>, DtlConfig) {
    let mut cfg = DtlConfig::tiny();
    // The tiny DRAM geometry has 64 MiB ranks; 256 KiB segments fit.
    cfg.au_bytes = 8 << 20;
    let backend = CycleBackend::new(DramConfig::tiny(), cfg.segment_bytes).unwrap();
    let mut dev = DtlDevice::new(cfg, backend);
    dev.register_host(HostId(0)).unwrap();
    (dev, cfg)
}

#[test]
fn translated_accesses_complete_through_the_dram_simulator() {
    let (mut dev, cfg) = device();
    dev.set_hotness_enabled(false);
    dev.set_powerdown_enabled(false);
    let vm = dev.alloc_vm(HostId(0), cfg.au_bytes, Picos::ZERO).unwrap();
    let base = vm.hpa_base(0, cfg.au_bytes);
    let mut t = Picos::from_us(1);
    for k in 0..64u64 {
        dev.access(HostId(0), base.offset_by(k * 64), AccessKind::Read, t).unwrap();
        t += Picos::from_ns(100);
    }
    dev.tick(t + Picos::from_us(50)).unwrap();
    let done = dev.backend_mut().dram_mut().drain_completions();
    assert_eq!(done.len(), 64, "every translated access reaches DRAM and completes");
    // Latencies are physical: at least CAS + burst.
    for c in &done {
        assert!(c.latency() >= Picos::from_ns(14), "latency {}", c.latency());
    }
    dev.check_invariants().unwrap();
}

#[test]
fn powerdown_turns_real_ranks_off() {
    let (mut dev, cfg) = device();
    dev.set_hotness_enabled(false);
    let vm = dev.alloc_vm(HostId(0), cfg.au_bytes, Picos::ZERO).unwrap();
    dev.dealloc_vm(vm.handle, Picos::from_us(10)).unwrap();
    let mut t = Picos::from_us(20);
    for _ in 0..200 {
        t += Picos::from_ms(1);
        dev.tick(t).unwrap();
    }
    let geo = dev.geometry();
    let mut mpsm = 0;
    for c in 0..geo.channels {
        for r in 0..geo.ranks_per_channel {
            if dev.backend().rank_state(c, r) == PowerState::Mpsm {
                mpsm += 1;
            }
        }
    }
    assert!(mpsm >= geo.channels, "at least one rank per channel in MPSM, got {mpsm}");
    dev.check_invariants().unwrap();
}

#[test]
fn migration_traffic_yields_to_foreground() {
    let (mut dev, cfg) = device();
    dev.set_hotness_enabled(false);
    // Two VMs; dealloc one to trigger drains while the other keeps reading.
    let vm1 = dev.alloc_vm(HostId(0), cfg.au_bytes, Picos::ZERO).unwrap();
    let vm2 = dev.alloc_vm(HostId(0), cfg.au_bytes, Picos::ZERO).unwrap();
    let base2 = vm2.hpa_base(0, cfg.au_bytes);
    dev.dealloc_vm(vm1.handle, Picos::from_us(1)).unwrap();
    let mut t = Picos::from_us(2);
    for k in 0..200u64 {
        dev.access(HostId(0), base2.offset_by((k % 128) * 64), AccessKind::Read, t).unwrap();
        t += Picos::from_ns(200);
        if k % 32 == 0 {
            dev.tick(t).unwrap();
        }
    }
    for _ in 0..100 {
        t += Picos::from_ms(1);
        dev.tick(t).unwrap();
    }
    let stats = dev.backend().dram().foreground_stats();
    assert_eq!(stats.count, 200, "all foreground requests served");
    // Foreground latency stays physical-scale despite migration churn: the
    // migration queue only uses idle slots.
    assert!(
        stats.mean() < Picos::from_us(2),
        "foreground mean latency {} suggests migration interference",
        stats.mean()
    );
    dev.check_invariants().unwrap();
}

#[test]
fn dealloc_races_an_inflight_retirement_drain() {
    let (mut dev, cfg) = device();
    dev.set_hotness_enabled(false);
    let vm1 = dev.alloc_vm(HostId(0), cfg.au_bytes, Picos::ZERO).unwrap();
    let vm2 = dev.alloc_vm(HostId(0), cfg.au_bytes, Picos::ZERO).unwrap();
    let base2 = vm2.hpa_base(0, cfg.au_bytes);
    // Retire the rank backing vm2's data: its live segments (both VMs')
    // start draining out.
    let out = dev.access(HostId(0), base2, AccessKind::Read, Picos::from_us(1)).unwrap();
    let loc = dev.geometry().location(out.dsn);
    dev.retire_rank(loc.channel, loc.rank, Picos::from_us(2)).unwrap();
    assert!(dev.migrations_pending() > 0, "retirement drains must be pending for the race");
    // Race: vm1 deallocates while its segments are mid-drain — the device
    // must cancel/unwind its share of the jobs without corrupting the
    // retirement in progress.
    dev.dealloc_vm(vm1.handle, Picos::from_us(3)).unwrap();
    dev.check_invariants().unwrap();
    let mut t = Picos::from_us(4);
    for _ in 0..300 {
        t += Picos::from_ms(1);
        dev.tick(t).unwrap();
        if dev.migrations_pending() == 0 {
            break;
        }
    }
    assert_eq!(dev.migrations_pending(), 0, "retirement completes despite the race");
    assert_eq!(dev.powerdown_stats().ranks_retired, 1);
    let snap = dev.snapshot();
    let victim =
        snap.ranks.iter().find(|r| r.channel == loc.channel && r.rank == loc.rank).unwrap();
    assert_eq!(victim.lifecycle, dtl_core::RankPdState::Retired);
    assert_eq!(victim.allocated_segments, 0);
    // vm2's data moved out of the retired rank but stayed reachable.
    let out2 = dev.access(HostId(0), base2, AccessKind::Read, t).unwrap();
    let loc2 = dev.geometry().location(out2.dsn);
    assert_ne!((loc2.channel, loc2.rank), (loc.channel, loc.rank));
    dev.check_invariants().unwrap();
}

#[test]
fn retire_rank_reaims_migrations_racing_into_it() {
    let (mut dev, cfg) = device();
    dev.set_hotness_enabled(false);
    let vm1 = dev.alloc_vm(HostId(0), cfg.au_bytes, Picos::ZERO).unwrap();
    let vm2 = dev.alloc_vm(HostId(0), cfg.au_bytes, Picos::ZERO).unwrap();
    let base2 = vm2.hpa_base(0, cfg.au_bytes);
    let out = dev.access(HostId(0), base2, AccessKind::Read, Picos::from_us(1)).unwrap();
    let src = dev.geometry().location(out.dsn);
    // First retirement: drains start copying the rank's live segments into
    // a destination rank in the same channel (visible as freshly allocated
    // segments there).
    dev.retire_rank(src.channel, src.rank, Picos::from_us(2)).unwrap();
    assert!(dev.migrations_pending() > 0);
    let snap = dev.snapshot();
    let dst = snap
        .ranks
        .iter()
        .find(|r| r.channel == src.channel && r.rank != src.rank && r.allocated_segments > 0)
        .expect("retirement drains reserve segments in a destination rank");
    // Race: retire the *destination* rank while copies into it are still
    // in flight. Those jobs must be re-aimed at a fresh destination; both
    // ranks must end up Retired with nothing live.
    dev.retire_rank(dst.channel, dst.rank, Picos::from_us(3)).unwrap();
    dev.check_invariants().unwrap();
    let mut t = Picos::from_us(4);
    for _ in 0..300 {
        t += Picos::from_ms(1);
        dev.tick(t).unwrap();
        if dev.migrations_pending() == 0 {
            break;
        }
    }
    assert_eq!(dev.migrations_pending(), 0, "both retirements complete");
    assert_eq!(dev.powerdown_stats().ranks_retired, 2);
    let snap = dev.snapshot();
    for loc in [(src.channel, src.rank), (dst.channel, dst.rank)] {
        let r = snap.ranks.iter().find(|r| (r.channel, r.rank) == loc).unwrap();
        assert_eq!(r.lifecycle, dtl_core::RankPdState::Retired, "{loc:?}");
        assert_eq!(r.allocated_segments, 0, "{loc:?}");
    }
    // Both VMs' data survived the double race, outside the retired ranks.
    for vm in [&vm1, &vm2] {
        let o = dev.access(HostId(0), vm.hpa_base(0, cfg.au_bytes), AccessKind::Read, t).unwrap();
        let l = dev.geometry().location(o.dsn);
        assert_ne!((l.channel, l.rank), (src.channel, src.rank));
        assert_ne!((l.channel, l.rank), (dst.channel, dst.rank));
    }
    dev.check_invariants().unwrap();
}

#[test]
fn invariants_hold_over_cycle_backend_lifecycle() {
    let (mut dev, cfg) = device();
    let mut t = Picos::from_us(1);
    let mut vms = Vec::new();
    for _ in 0..3 {
        vms.push(dev.alloc_vm(HostId(0), cfg.au_bytes, t).unwrap());
        t += Picos::from_us(5);
    }
    for vm in &vms {
        let base = vm.hpa_base(0, cfg.au_bytes);
        for k in 0..16u64 {
            dev.access(HostId(0), base.offset_by(k * cfg.segment_bytes / 2), AccessKind::Write, t)
                .unwrap();
            t += Picos::from_ns(150);
        }
    }
    for vm in vms {
        dev.dealloc_vm(vm.handle, t).unwrap();
        t += Picos::from_ms(2);
        dev.tick(t).unwrap();
        dev.check_invariants().unwrap();
    }
}
