//! End-to-end integration: synthetic VM schedule (dtl-trace) → DTL device
//! (dtl-core over dtl-dram power model) → rank-level power-down savings,
//! exercised through the dtl-sim harness exactly as the paper's Figure 12
//! experiment runs.

use dtl_sim::{run_schedule, PowerDownRunConfig};

#[test]
fn schedule_replay_saves_energy_and_respects_structure() {
    let cfg = PowerDownRunConfig::tiny(21, true);
    let base = run_schedule(&PowerDownRunConfig { powerdown: false, ..cfg }).unwrap();
    let dtl = run_schedule(&cfg).unwrap();

    // Same workload either way.
    assert_eq!(base.vms_allocated, dtl.vms_allocated);
    assert!(base.vms_allocated > 10, "schedule must be busy");

    // Baseline holds every rank active; DTL powers groups down and saves.
    let max_ranks = cfg.channels * cfg.ranks_per_channel;
    assert!(base.intervals.iter().all(|i| i.active_ranks == max_ranks));
    assert!(dtl.intervals.iter().any(|i| i.active_ranks < max_ranks));
    assert!(dtl.groups_powered_down > 0);
    let saving = 1.0 - dtl.total_energy_mj / base.total_energy_mj;
    assert!(saving > 0.08, "saving {saving}");

    // Active (traffic) energy is essentially unchanged: the savings are
    // background power, like the paper's Figure 13 breakdown.
    let active_ratio = dtl.active_mj / base.active_mj;
    assert!((active_ratio - 1.0).abs() < 0.25, "active ratio {active_ratio}");
    assert!(dtl.background_mj < base.background_mj);
}

#[test]
fn capacity_pressure_wakes_groups_back_up() {
    // A tighter node forces wakes: committed memory swings above what the
    // packed ranks hold.
    let cfg = PowerDownRunConfig {
        node: dtl_trace::NodeConfig { vcpus: 24, mem_bytes: 96 << 30 },
        ..PowerDownRunConfig::tiny(3, true)
    };
    let r = run_schedule(&cfg).unwrap();
    assert!(r.groups_powered_down > 0);
    // Power-down happened and the device kept serving every allocation:
    // wakes may or may not occur depending on the schedule, but committed
    // capacity must always fit.
    for i in &r.intervals {
        assert!(i.committed_bytes <= cfg.node.mem_bytes);
    }
}

#[test]
fn different_seeds_give_different_but_valid_runs() {
    let a = run_schedule(&PowerDownRunConfig::tiny(1, true)).unwrap();
    let b = run_schedule(&PowerDownRunConfig::tiny(2, true)).unwrap();
    assert_ne!(a.total_energy_mj, b.total_energy_mj);
    for r in [&a, &b] {
        assert!(r.total_energy_mj > 0.0);
        assert_eq!(r.intervals.len(), 12);
    }
}
