//! Acceptance integration test for the telemetry subsystem: a schedule-
//! class replay streamed into a ring sink must produce a **valid** Chrome
//! trace whose per-rank power-state span durations reproduce the power
//! report's integrated residency exactly — picosecond for picosecond —
//! and a JSONL export that round-trips.

use std::collections::BTreeMap;
use std::sync::Arc;

use dtl_core::{AnalyticBackend, DtlConfig, DtlDevice, HostId, VmAllocation};
use dtl_dram::{AccessKind, Picos, PowerReport};
use dtl_telemetry::{
    chrome_trace, jsonl, parse_jsonl, Event, MetricsRegistry, PowerStateId, PowerTimeline,
    RingSink, Telemetry, TelemetrySink,
};
use serde::Value;

const CHANNELS: u32 = 2;
const RANKS: u32 = 4;

/// Drives a busy little device — VM churn, foreground traffic, rank
/// power-down — with telemetry attached, and returns the drained event
/// stream, the final power report, and the device for stats checks.
fn traced_run(
    telemetry: &Telemetry,
    sink: &Arc<RingSink>,
) -> (Vec<Event>, PowerReport, DtlDevice<AnalyticBackend>) {
    let cfg = DtlConfig::tiny();
    let mut dev = DtlDevice::with_analytic_geometry(cfg, CHANNELS, RANKS, 32);
    dev.set_telemetry(telemetry.clone());
    dev.register_host(HostId(0)).unwrap();

    let mut now = Picos::from_us(1);
    let dt = Picos::from_ns(300);
    let vm_a = dev.alloc_vm(HostId(0), 2 * cfg.au_bytes, now).unwrap();
    let vm_b = dev.alloc_vm(HostId(0), 2 * cfg.au_bytes, now).unwrap();
    let touch = |dev: &mut DtlDevice<AnalyticBackend>, vm: &VmAllocation, i: u64, now: Picos| {
        let hpa = vm.hpa_base((i % vm.aus.len() as u64) as usize, cfg.au_bytes);
        let kind = if i.is_multiple_of(3) { AccessKind::Write } else { AccessKind::Read };
        dev.access(HostId(0), hpa, kind, now).unwrap();
    };
    let mut departed = None;
    for round in 0..20_000u64 {
        touch(&mut dev, &vm_a, round, now);
        if departed.is_none() {
            touch(&mut dev, &vm_b, round, now);
        }
        now += dt;
        if round % 64 == 0 {
            dev.tick(now).unwrap();
        }
        if round == 8_000 {
            // Half the tenancy leaves; power-down repacks and parks ranks.
            dev.dealloc_vm(vm_b.handle, now).unwrap();
            departed = Some(round);
        }
    }
    // Let drains finish and idle timers expire, then flush the backend's
    // power-event queue (events drain at the *next* tick after they occur).
    for _ in 0..200 {
        now += Picos::from_ms(1);
        dev.tick(now).unwrap();
    }
    dev.tick(now).unwrap();
    dev.check_invariants().unwrap();
    let report = dev.power_report(now);
    let events = sink.drain();
    assert_eq!(sink.dropped(), 0, "ring sink must not overflow in this run");
    (events, report, dev)
}

fn state_index(label: &str) -> usize {
    PowerStateId::ALL
        .iter()
        .find(|s| s.label() == label)
        .unwrap_or_else(|| panic!("unknown power-state label {label:?}"))
        .index()
}

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    serde::field(v.as_map().expect("object"), key)
        .unwrap_or_else(|_| panic!("missing field {key:?}"))
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::Uint(u) => *u as u64,
        other => panic!("expected unsigned integer, got {other:?}"),
    }
}

#[test]
fn chrome_trace_spans_reproduce_power_report_residency() {
    let sink = Arc::new(RingSink::with_capacity(1 << 20));
    let registry = Arc::new(MetricsRegistry::new());
    let telemetry =
        Telemetry::new(sink.clone() as Arc<dyn TelemetrySink>).with_metrics(registry.clone());
    let (events, report, dev) = traced_run(&telemetry, &sink);

    assert!(!events.is_empty(), "the run must emit events");
    assert!(dev.powerdown_stats().groups_powered_down > 0, "power-down must trigger");

    // Timeline reconstruction matches the backend's integrated residency
    // counters exactly, for every rank including quiet ones.
    let end_ps = report.at.as_ps();
    let mut timeline = PowerTimeline::new();
    for c in 0..CHANNELS {
        for r in 0..RANKS {
            timeline.ensure_rank(c, r);
        }
    }
    for ev in &events {
        timeline.push_event(ev);
    }
    timeline.finish(end_ps);
    for c in 0..CHANNELS {
        for r in 0..RANKS {
            let expect: Vec<u64> =
                report.residency[c as usize][r as usize].iter().map(|p| p.as_ps()).collect();
            assert_eq!(
                timeline.residency_ps(c, r).to_vec(),
                expect,
                "residency mismatch on ch{c}/rk{r}"
            );
        }
    }
    // Something actually left Standby, or the comparison is vacuous.
    let parked: u64 = (0..CHANNELS)
        .flat_map(|c| (0..RANKS).map(move |r| (c, r)))
        .map(|(c, r)| timeline.residency_ps(c, r)[1..].iter().sum::<u64>())
        .sum();
    assert!(parked > 0, "at least one rank must spend time outside Standby");

    // The Chrome trace is valid JSON; its per-rank `ph:"X"` span sums carry
    // the same exact picosecond residency in their args.
    let trace = chrome_trace(&timeline, &events);
    let root: Value = serde_json::from_str(&trace).expect("trace must be valid JSON");
    let seq = field(&root, "traceEvents").as_seq().expect("traceEvents array").to_vec();
    let mut sums: BTreeMap<(u64, u64), [u64; 5]> = BTreeMap::new();
    let mut named_tracks: Vec<(u64, u64)> = Vec::new();
    for item in &seq {
        let ph = field(item, "ph").as_str().expect("ph string");
        let pid = as_u64(field(item, "pid"));
        let tid = as_u64(field(item, "tid"));
        match ph {
            "X" => {
                let args = field(item, "args");
                let idx = state_index(field(args, "state").as_str().expect("state label"));
                sums.entry((pid, tid)).or_insert([0; 5])[idx] += as_u64(field(args, "dur_ps"));
            }
            "M" if field(item, "name").as_str() == Some("thread_name") => {
                named_tracks.push((pid, tid));
            }
            _ => {}
        }
    }
    for c in 0..CHANNELS {
        for r in 0..RANKS {
            assert!(
                named_tracks.contains(&(u64::from(c), u64::from(r))),
                "ch{c}/rk{r} must have a named track"
            );
            let got = sums.get(&(u64::from(c), u64::from(r))).copied().unwrap_or([0; 5]);
            let expect: Vec<u64> =
                report.residency[c as usize][r as usize].iter().map(|p| p.as_ps()).collect();
            assert_eq!(got.to_vec(), expect, "trace span sums mismatch on ch{c}/rk{r}");
            assert_eq!(got.iter().sum::<u64>(), end_ps, "spans must partition the horizon");
        }
    }

    // The JSONL export round-trips losslessly.
    let back = parse_jsonl(&jsonl(&events)).expect("JSONL must parse back");
    assert_eq!(back, events);

    // The metrics registry carries the device statistics after export.
    dev.export_metrics(&registry);
    assert_eq!(registry.counter("device.accesses").get(), dev.stats().accesses);
    assert!(dev.stats().accesses > 0);
    let text = registry.render_text();
    assert!(text.contains("device.accesses"), "metrics dump must list device counters");
    assert!(
        text.contains("dtl.translation.latency_ps"),
        "translation latency histogram must be populated"
    );
}
