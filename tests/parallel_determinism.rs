//! The exec engine's contract, end to end: for every experiment that
//! shards work across workers, `--jobs N` output is **bit-identical** to
//! the sequential run — same JSON bytes, same telemetry event stream.
//! Determinism is what lets CI and the goldens ignore the worker count
//! entirely.
//!
//! Also pins the registry to `src/bin/`: every experiment binary must be a
//! registry entry and vice versa, so the `all` sweep can never silently
//! drop an experiment again.

use std::sync::Arc;

use dtl_sim::experiments::{
    diff_fuzz, fault_campaign, fig12, fig14, find, pool_failover, pool_scale, registry, RunContext,
};
use dtl_sim::{
    to_json, CheckRunConfig, FaultRunConfig, HotnessRunConfig, PoolRunConfig, PowerDownRunConfig,
};
use dtl_telemetry::{BufferSink, Telemetry, TIMESERIES_CSV_HEADER};

/// A telemetry handle recording into a fresh unbounded buffer.
fn traced() -> (Telemetry, Arc<BufferSink>) {
    let sink = Arc::new(BufferSink::new());
    let telemetry = Telemetry::new(sink.clone() as Arc<dyn dtl_telemetry::TelemetrySink>);
    (telemetry, sink)
}

#[test]
fn fig12_jobs4_is_bit_identical_to_jobs1_including_the_trace() {
    let cfg = PowerDownRunConfig::tiny(7, true);
    let (t1, s1) = traced();
    let (t4, s4) = traced();
    let r1 = fig12::run_jobs_traced(&cfg, (0.014, 0.0018), &t1, 1).unwrap();
    let r4 = fig12::run_jobs_traced(&cfg, (0.014, 0.0018), &t4, 4).unwrap();
    assert_eq!(to_json(&r1), to_json(&r4), "fig12 JSON must not depend on --jobs");
    let (e1, e4) = (s1.take(), s4.take());
    assert!(!e1.is_empty(), "the treatment replay must emit events");
    assert_eq!(e1, e4, "fig12 telemetry must not depend on --jobs");
}

#[test]
fn fig14_jobs4_is_bit_identical_to_jobs1() {
    // The golden config: a scaled-down sweep over two allocation points.
    let base = HotnessRunConfig {
        accesses: 900_000,
        n_apps: 3,
        channels: 2,
        ..HotnessRunConfig::tiny(5, true)
    };
    let points = [("loose", 4u32, 0.55f64), ("tight", 4, 0.95)];
    let r1 = fig14::run_jobs(&base, &points, 1).unwrap();
    let r4 = fig14::run_jobs(&base, &points, 4).unwrap();
    assert_eq!(to_json(&r1), to_json(&r4), "fig14 JSON must not depend on --jobs");
}

#[test]
fn fault_campaign_jobs4_is_bit_identical_to_jobs1_including_the_trace() {
    let cfg = FaultRunConfig::tiny_storm(3);
    let (t1, s1) = traced();
    let (t4, s4) = traced();
    let r1 = fault_campaign::run_jobs_traced(&cfg, &t1, 1).unwrap();
    let r4 = fault_campaign::run_jobs_traced(&cfg, &t4, 4).unwrap();
    assert_eq!(to_json(&r1), to_json(&r4), "fault_campaign JSON must not depend on --jobs");
    assert_eq!(s1.take(), s4.take(), "fault_campaign telemetry must not depend on --jobs");
}

#[test]
fn pool_scale_jobs4_is_bit_identical_to_jobs1_including_the_trace() {
    let cfg = PoolRunConfig::tiny(7);
    let (t1, s1) = traced();
    let (t4, s4) = traced();
    let r1 = pool_scale::run_jobs_traced(&cfg, &t1, 1).unwrap();
    let r4 = pool_scale::run_jobs_traced(&cfg, &t4, 4).unwrap();
    assert_eq!(to_json(&r1), to_json(&r4), "pool_scale JSON must not depend on --jobs");
    let (e1, e4) = (s1.take(), s4.take());
    assert!(!e1.is_empty(), "the headline pool replay must emit events");
    assert_eq!(e1, e4, "pool_scale telemetry must not depend on --jobs");
}

#[test]
fn pool_failover_jobs4_is_bit_identical_to_jobs1() {
    let base = PoolRunConfig::tiny(3);
    let r1 = pool_failover::run_jobs(&base, 3, 1).unwrap();
    let r4 = pool_failover::run_jobs(&base, 3, 4).unwrap();
    assert_eq!(to_json(&r1), to_json(&r4), "pool_failover JSON must not depend on --jobs");
}

#[test]
fn diff_fuzz_jobs4_is_bit_identical_to_jobs1() {
    let cfg = CheckRunConfig::smoke();
    let r1 = diff_fuzz::run_jobs(&cfg, 1);
    let r4 = diff_fuzz::run_jobs(&cfg, 4);
    assert_eq!(to_json(&r1), to_json(&r4), "diff_fuzz JSON must not depend on --jobs");
}

#[test]
fn jobs_beyond_unit_count_still_match() {
    let cfg = CheckRunConfig::smoke();
    assert_eq!(to_json(&diff_fuzz::run_jobs(&cfg, 1)), to_json(&diff_fuzz::run_jobs(&cfg, 64)));
}

/// A tiny registry context with 1-hour time-series windows.
fn series_ctx(jobs: usize, args: &[&str]) -> RunContext {
    let mut ctx = RunContext::plain(true);
    ctx.jobs = jobs;
    ctx.series_width = Some(3_600_000_000_000_000);
    ctx.args = args.iter().map(|s| (*s).to_string()).collect();
    ctx
}

#[test]
fn vm_campaign_timeseries_csv_jobs4_is_byte_identical_to_jobs1() {
    let exp = find("vm_campaign").unwrap();
    let args = ["--hosts", "4"];
    let o1 = exp.run(&series_ctx(1, &args)).unwrap();
    let o4 = exp.run(&series_ctx(4, &args)).unwrap();
    assert_eq!(o1.json, o4.json, "vm_campaign JSON must not depend on --jobs");
    let csv1 = o1.timeseries.expect("a width was requested").to_csv();
    let csv4 = o4.timeseries.expect("a width was requested").to_csv();
    assert!(csv1.starts_with(TIMESERIES_CSV_HEADER));
    assert_eq!(csv1, csv4, "vm_campaign time-series CSV must not depend on --jobs");
    assert!(o1.slo.is_some_and(|s| !s.is_empty()), "the campaign reports an SLO");
}

#[test]
fn policy_ablation_timeseries_csv_jobs4_is_byte_identical_to_jobs1() {
    let exp = find("policy_ablation").unwrap();
    let o1 = exp.run(&series_ctx(1, &[])).unwrap();
    let o4 = exp.run(&series_ctx(4, &[])).unwrap();
    assert_eq!(o1.json, o4.json, "policy_ablation JSON must not depend on --jobs");
    assert!(o1.failure.is_none(), "a ladder policy must win a cell: {:?}", o1.failure);
    let s1 = o1.timeseries.expect("a width was requested");
    let s4 = o4.timeseries.expect("a width was requested");
    assert_eq!(
        s1.to_csv(),
        s4.to_csv(),
        "policy_ablation time-series CSV must not depend on --jobs"
    );
    assert!(o1.slo.is_some_and(|s| !s.is_empty()), "the matrix reports an SLO");
}

#[test]
fn pool_scale_timeseries_csv_jobs4_is_byte_identical_to_jobs1() {
    let exp = find("pool_scale").unwrap();
    let o1 = exp.run(&series_ctx(1, &[])).unwrap();
    let o4 = exp.run(&series_ctx(4, &[])).unwrap();
    assert_eq!(o1.json, o4.json, "pool_scale JSON must not depend on --jobs");
    let s1 = o1.timeseries.expect("a width was requested");
    let s4 = o4.timeseries.expect("a width was requested");
    assert_eq!(s1.to_csv(), s4.to_csv(), "pool_scale time-series CSV must not depend on --jobs");
    // Every pool rank accounts the full horizon (quiet ranks included);
    // events landing on unregistered channels would inflate this, so it
    // also pins the per-device channel-offset registration.
    let cfg = PoolRunConfig::tiny(7);
    let ranks = u64::from(cfg.devices) * u64::from(cfg.channels) * u64::from(cfg.ranks_per_channel);
    let horizon = u64::from(cfg.duration_min) * 60 * 1_000_000_000_000;
    let total: u64 = s1.residency_totals_ps().iter().sum();
    let floor = horizon * ranks;
    assert!(
        total >= floor && total - floor <= ranks * 200_000,
        "pool ranks account the horizon: {total} vs {floor}"
    );
}

#[test]
fn fabric_load_timeseries_csv_jobs4_is_byte_identical_to_jobs1() {
    let exp = find("fabric_load").unwrap();
    let o1 = exp.run(&series_ctx(1, &[])).unwrap();
    let o4 = exp.run(&series_ctx(4, &[])).unwrap();
    assert_eq!(o1.json, o4.json, "fabric_load JSON must not depend on --jobs");
    assert!(o1.failure.is_none(), "the sweep meets its acceptance: {:?}", o1.failure);
    let csv1 = o1.timeseries.expect("a width was requested").to_csv();
    let csv4 = o4.timeseries.expect("a width was requested").to_csv();
    assert!(csv1.starts_with(TIMESERIES_CSV_HEADER));
    assert_eq!(csv1, csv4, "fabric_load time-series CSV must not depend on --jobs");
    // The switched interconnect reports the port-queue population.
    assert!(o1.slo.is_some_and(|s| s.fabric_queue.is_some()), "fabric SLO carries queue waits");
}

#[test]
fn every_binary_is_registered_and_vice_versa() {
    let bin_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src/bin");
    let mut bins: Vec<String> = std::fs::read_dir(&bin_dir)
        .expect("list src/bin")
        .map(|e| e.unwrap().path().file_stem().unwrap().to_string_lossy().into_owned())
        .filter(|n| n != "all")
        .collect();
    bins.sort();
    let mut names: Vec<String> = registry().iter().map(|e| e.name().to_string()).collect();
    names.sort();
    assert_eq!(bins, names, "src/bin/ and the experiment registry drifted apart");
}
