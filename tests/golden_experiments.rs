//! Golden-file regression tests: the tiny fig12 (power-down), fig14
//! (hotness self-refresh), pool_scale, and pool_failover runs are fully
//! deterministic, so their JSON outputs are pinned under `results/golden/`
//! and compared field by field with an explicit numeric tolerance.
//!
//! To regenerate after an intentional model change:
//!
//! ```sh
//! GOLDEN_REGEN=1 cargo test -p dtl-bench --test golden_experiments
//! ```
//!
//! and commit the diff under `results/golden/` together with the change
//! that caused it.

use std::path::{Path, PathBuf};

use dtl_sim::experiments::{fabric_load, fig12, fig14, policy_ablation, pool_failover, pool_scale};
use dtl_sim::{to_json, FabricRunConfig, HotnessRunConfig, PoolRunConfig, PowerDownRunConfig};
use serde::Value;

/// Relative tolerance for float comparisons. The runs are deterministic;
/// the slack only absorbs JSON round-trip formatting and libm differences
/// across platforms, so it is deliberately tight.
const REL_TOL: f64 = 1e-9;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/golden")
}

/// Numeric view of a [`Value`], if it is one of the number variants.
fn as_number(v: &Value) -> Option<f64> {
    match v {
        Value::Uint(u) => Some(*u as f64),
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Key lookup in a [`Value::Map`] body (entry order is not significant).
fn get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Compares two JSON trees numerically, returning the path of the first
/// mismatch.
fn diff(path: &str, a: &Value, b: &Value) -> Result<(), String> {
    if let (Some(x), Some(y)) = (as_number(a), as_number(b)) {
        let scale = x.abs().max(y.abs()).max(1.0);
        if (x - y).abs() > REL_TOL * scale {
            return Err(format!("{path}: {x} vs {y} (rel tol {REL_TOL})"));
        }
        return Ok(());
    }
    match (a, b) {
        (Value::Seq(xs), Value::Seq(ys)) => {
            if xs.len() != ys.len() {
                return Err(format!("{path}: array length {} vs {}", xs.len(), ys.len()));
            }
            for (i, (x, y)) in xs.iter().zip(ys).enumerate() {
                diff(&format!("{path}[{i}]"), x, y)?;
            }
            Ok(())
        }
        (Value::Map(xs), Value::Map(ys)) => {
            let mut keys: Vec<&String> = xs.iter().chain(ys).map(|(k, _)| k).collect();
            keys.sort();
            keys.dedup();
            for k in keys {
                match (get(xs, k), get(ys, k)) {
                    (Some(x), Some(y)) => diff(&format!("{path}.{k}"), x, y)?,
                    (got, _) => {
                        return Err(format!(
                            "{path}.{k}: only present in {}",
                            if got.is_some() { "actual" } else { "golden" }
                        ))
                    }
                }
            }
            Ok(())
        }
        _ => {
            if a == b {
                Ok(())
            } else {
                Err(format!("{path}: {a:?} vs {b:?}"))
            }
        }
    }
}

/// Compares `json` to the golden file, or rewrites it under
/// `GOLDEN_REGEN=1`.
fn check_golden(name: &str, json: &str) {
    let dir = golden_dir();
    let path = dir.join(format!("{name}.json"));
    let actual: Value = serde_json::from_str(json).expect("result serializes");
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(&dir).expect("create golden dir");
        std::fs::write(&path, serde_json::to_string_pretty(&actual).expect("pretty"))
            .expect("write golden");
        eprintln!("[regenerated {}]", path.display());
        return;
    }
    let stored = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {} ({e}); run with GOLDEN_REGEN=1 to create it", path.display())
    });
    let expected: Value = serde_json::from_str(&stored).expect("golden parses");
    if let Err(msg) = diff(name, &actual, &expected) {
        panic!(
            "{name} diverged from {}:\n  {msg}\nIf the change is intentional, regenerate with \
             GOLDEN_REGEN=1 and commit the new golden.",
            path.display()
        );
    }
}

#[test]
fn fig12_tiny_matches_golden() {
    let r = fig12::run(&PowerDownRunConfig::tiny(7, true), (0.014, 0.0018)).expect("fig12 tiny");
    check_golden("fig12_tiny", &to_json(&r));
}

#[test]
fn pool_scale_tiny_matches_golden() {
    let r = pool_scale::run(&PoolRunConfig::tiny(7)).expect("pool_scale tiny");
    check_golden("pool_scale_tiny", &to_json(&r));
}

#[test]
fn policy_ablation_tiny_matches_golden() {
    let r = policy_ablation::run(&PoolRunConfig::tiny(7)).expect("policy_ablation tiny");
    check_golden("policy_ablation_tiny", &to_json(&r));
}

#[test]
fn pool_failover_tiny_matches_golden() {
    // Two retirement campaigns: enough to pin the exact-time fault lane
    // (device retirements, evacuations, CRC bursts) without making the
    // golden run the slowest in the suite.
    let r = pool_failover::run(&PoolRunConfig::tiny(7), 2).expect("pool_failover tiny");
    check_golden("pool_failover_tiny", &to_json(&r));
}

#[test]
fn fabric_load_tiny_matches_golden() {
    let r = fabric_load::run(&FabricRunConfig::tiny(7)).expect("fabric_load tiny");
    assert!(r.p99_monotone(), "access p99 must rise with offered load");
    assert!(r.pack_energy_edge_mj() > 0.0, "pack must beat spread on switch-port energy");
    check_golden("fabric_load_tiny", &to_json(&r));
}

#[test]
fn fig14_tiny_matches_golden() {
    let base = HotnessRunConfig {
        accesses: 900_000,
        n_apps: 3,
        channels: 2,
        ..HotnessRunConfig::tiny(5, true)
    };
    let r = fig14::run(&base, &[("loose", 4, 0.55), ("tight", 4, 0.95)]).expect("fig14 tiny");
    check_golden("fig14_tiny", &to_json(&r));
}
