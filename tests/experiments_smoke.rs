//! Smoke-level integration of every experiment module: each runs at
//! reduced scale and must satisfy its paper-shape constraint. The
//! full-scale numbers live in EXPERIMENTS.md and regenerate via the
//! `dtl-bench` binaries.

use dtl_sim::experiments::{
    fault_campaign, fig01, fig02, fig05, fig09, fig10, fig11, fig14, fig15, sec6_1, tab04, tab05,
    tab06,
};
use dtl_sim::{FaultRunConfig, HotnessRunConfig};
use dtl_trace::WorkloadKind;

#[test]
fn fig01_average_usage_below_half() {
    let r = fig01::run(1);
    assert!(r.average_fraction < 0.5);
    assert!(r.average_fraction > 0.2, "schedule should be realistic, not empty");
}

#[test]
fn fig02_rank_reduction_costs_single_digits() {
    let r = fig02::run(5_000, &[WorkloadKind::DataServing, WorkloadKind::MediaStreaming]);
    assert!(r.mean_slowdown_at_min_ranks >= 1.0);
    assert!(r.mean_slowdown_at_min_ranks < 1.06, "{}", r.mean_slowdown_at_min_ranks);
}

#[test]
fn fig05_interleaving_cost_small_and_diluted_by_cxl() {
    let r = fig05::run(5_000, &[WorkloadKind::DataServing, WorkloadKind::WebSearch]);
    assert!(r.local_mean() < 1.08);
    assert!(r.cxl_mean() <= r.local_mean() + 1e-9);
}

#[test]
fn fig09_mixes_dominated_by_large_strides() {
    let r = fig09::run(1, 20_000, 64);
    let mix8 = r.rows.last().unwrap();
    assert!(mix8.at_least_4m > 0.75, "{}", mix8.at_least_4m);
}

#[test]
fn fig10_two_mb_colder_than_four_mb() {
    let r = fig10::run(11, 150_000, 64);
    assert!(r.rows[1].cold_fraction > r.rows[2].cold_fraction);
}

#[test]
fn fig11_power_model_shapes() {
    let r = fig11::run();
    assert!((r.background[0].normalized_power - 0.301).abs() < 0.01);
    let ratio0 = r.active[0].mw_per_gbps;
    assert!(r.active.iter().all(|p| (p.mw_per_gbps - ratio0).abs() < 1e-6));
}

#[test]
fn fig14_and_fig15_shapes() {
    let base = HotnessRunConfig {
        accesses: 900_000,
        n_apps: 3,
        channels: 2,
        ..HotnessRunConfig::tiny(5, true)
    };
    let points = [("loose", 4u32, 0.6)];
    let f14 = fig14::run(&base, &points).unwrap();
    assert!(f14.rows[0].additional_saving > 0.0, "{:?}", f14.rows[0]);
    let f15 = fig15::run(&base, 8, &[("6rk", 6, 0.72)]).unwrap();
    let row = &f15.rows[0];
    // Two of eight ranks in MPSM: (1 - 0.068) * 2/8 = 23.3%.
    assert!((row.powerdown_saving - 0.233).abs() < 0.01);
    assert!(row.total_saving >= row.powerdown_saving - 1e-9);
}

#[test]
fn fault_campaign_reports_capacity_energy_and_latency_cost() {
    let r = fault_campaign::run(&FaultRunConfig::tiny_storm(7)).unwrap();
    // The error storm retires its victim rank; the pool loses exactly one
    // rank of capacity and reports the loss.
    assert_eq!(r.faulted.ranks_retired, 1);
    assert!(r.capacity_lost_fraction > 0.0 && r.capacity_lost_fraction < 0.5);
    // The fault-free baseline is genuinely fault-free.
    assert_eq!(r.baseline.faults_injected, 0);
    assert_eq!(r.baseline.ranks_retired, 0);
    // Link CRC faults surface as a (small) foreground latency penalty.
    assert!(r.faulted.link.crc_errors > 0);
    assert!(r.latency_penalty_ns >= 0.0);
    // The JSON report round-trips (the dtl-bench binary emits this).
    let json = dtl_sim::to_json(&r);
    assert!(json.contains("capacity_lost_bytes"));
    assert!(json.contains("latency_penalty_ns"));
}

#[test]
fn tables_and_amat() {
    let t4 = tab04::run(1, 20_000);
    assert!(t4.max_relative_error < 0.1);
    let t5 = tab05::run();
    assert!(t5.columns[1].metadata_fraction < 1e-5);
    let t6 = tab06::run();
    assert!(t6.columns[0].total_mw < t6.columns[1].total_mw);
    let s = sec6_1::run(3, 60_000, 64).unwrap();
    assert!((s.evals[0].amat_ns - 214.2).abs() < 1.0);
}
