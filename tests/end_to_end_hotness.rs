//! End-to-end integration: mixed CloudSuite-analog traces (dtl-trace) →
//! DTL device with hotness-aware self-refresh → stable-phase savings,
//! exercised through the dtl-sim harness exactly as the paper's Figure 14
//! experiment runs.

use dtl_sim::{hotness_savings, run_hotness, HotnessRunConfig};

#[test]
fn hotness_parks_a_victim_rank_per_channel() {
    let cfg = HotnessRunConfig::tiny(5, true);
    let r = run_hotness(&cfg).unwrap();
    assert!(r.sr_entries >= u64::from(cfg.channels), "one victim per channel: {r:?}");
    // Residency approaches one rank per channel (1/ranks).
    let per_channel_cap = 1.0 / f64::from(cfg.active_ranks);
    assert!(r.sr_residency > per_channel_cap * 0.5, "residency {}", r.sr_residency);
    assert!(r.sr_residency <= per_channel_cap + 0.05);
    assert!(r.first_sr_entry.is_some());
}

#[test]
fn stable_phase_power_drops_with_hotness() {
    let (off, on, saving) = hotness_savings(&HotnessRunConfig::tiny(5, true)).unwrap();
    assert!(on.stable_power_mw < off.stable_power_mw);
    assert!(saving > 0.03, "stable saving {saving}");
    // Baseline never self-refreshes.
    assert_eq!(off.sr_entries, 0);
    assert_eq!(off.sr_residency, 0.0);
}

#[test]
fn eight_rank_configuration_still_saves() {
    // The paper's 304GB/8rk point: no power-down possible, hotness alone
    // must save (paper: 14.9%).
    let cfg = HotnessRunConfig {
        active_ranks: 8,
        allocated_fraction: 304.0 / 384.0,
        channels: 2,
        accesses: 1_000_000,
        ..HotnessRunConfig::tiny(5, true)
    };
    let (_, on, saving) = hotness_savings(&cfg).unwrap();
    assert!(on.sr_entries > 0);
    assert!(saving > 0.0, "saving {saving}");
}

#[test]
fn mechanism_is_deterministic() {
    let a = run_hotness(&HotnessRunConfig::tiny(9, true)).unwrap();
    let b = run_hotness(&HotnessRunConfig::tiny(9, true)).unwrap();
    assert_eq!(a.total_energy_mj, b.total_energy_mj);
    assert_eq!(a.sr_entries, b.sr_entries);
    assert_eq!(a.swaps_executed, b.swaps_executed);
}
