//! Property tests for the event queue's determinism contract: any random
//! interleaving of inserts, cancels, and pops must preserve global time
//! order and FIFO order among events sharing a timestamp.

use dtl_event::{EventId, EventQueue, Picos};
use proptest::prelude::*;

/// One scripted operation against the queue. Cancels and pops address the
/// history by index so the script stays valid for any interleaving.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Insert at `t` picoseconds (small range to force timestamp ties).
    Insert(u64),
    /// Cancel the `i % inserted`-th posted id (possibly already popped).
    Cancel(usize),
    /// Pop one event.
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![(0u64..16).prop_map(Op::Insert), (0usize..64).prop_map(Op::Cancel), Just(Op::Pop),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Replays the script, then drains the queue; every event that was
    /// neither popped early nor cancelled must come out, in (time, post
    /// order) order, and nothing else.
    fn random_ops_preserve_time_and_fifo_order(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let mut q: EventQueue<usize> = EventQueue::new();
        // Ground truth: (time, insert index, id, state).
        let mut posted: Vec<(u64, EventId)> = Vec::new();
        let mut cancelled: Vec<bool> = Vec::new();
        let mut popped = Vec::new();

        for op in &ops {
            match *op {
                Op::Insert(t) => {
                    let idx = posted.len();
                    let id = q.push(Picos::from_ps(t), idx);
                    posted.push((t, id));
                    cancelled.push(false);
                }
                Op::Cancel(i) => {
                    if posted.is_empty() {
                        continue;
                    }
                    let i = i % posted.len();
                    let was_live = !cancelled[i] && !popped.contains(&i);
                    prop_assert_eq!(q.cancel(posted[i].1), was_live, "cancel liveness report");
                    cancelled[i] = true;
                }
                Op::Pop => {
                    if let Some((at, _, idx)) = q.pop() {
                        prop_assert_eq!(at.as_ps(), posted[idx].0, "popped time matches insert");
                        popped.push(idx);
                    }
                }
            }
        }
        // Drain the rest.
        while let Some((at, _, idx)) = q.pop() {
            prop_assert_eq!(at.as_ps(), posted[idx].0);
            popped.push(idx);
        }
        prop_assert!(q.is_empty());

        // Exactly the never-cancelled-before-pop events came out. A cancel
        // after pop is stale, so an index may be both popped and flagged
        // cancelled; it still counts as delivered.
        let mut expect: Vec<usize> = (0..posted.len())
            .filter(|i| popped.contains(i) || !cancelled[*i])
            .collect();
        let mut got = popped.clone();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect, "delivered set = posted minus live-cancelled");

        // Order law over the pop sequence: every pop takes the global
        // minimum (time, post order) of what is pending, so if an
        // earlier-posted event b comes out after a later-posted event a,
        // both were pending when a was popped — legal only when b is
        // strictly later in time. Same-time inversions are FIFO
        // violations; earlier-time inversions are time-order violations.
        for (pi, &a) in popped.iter().enumerate() {
            for &b in &popped[pi + 1..] {
                if b < a {
                    prop_assert!(
                        posted[b].0 > posted[a].0,
                        "order violation: insert #{} (t={}) popped after insert #{} (t={})",
                        b, posted[b].0, a, posted[a].0
                    );
                }
            }
        }
    }

    /// Pure insert/pop scripts (no cancels, drain at the end) come out in
    /// exactly stable-sorted order — the strongest form of the contract.
    fn drain_equals_stable_sort(times in prop::collection::vec(0u64..8, 1..64)) {
        let mut q: EventQueue<usize> = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Picos::from_ps(t), i);
        }
        let mut expect: Vec<(u64, usize)> = times.iter().copied().zip(0..).collect();
        expect.sort_by_key(|&(t, i)| (t, i)); // stable by construction
        let mut got = Vec::new();
        while let Some((at, _, idx)) = q.pop() {
            got.push((at.as_ps(), idx));
        }
        prop_assert_eq!(got, expect);
    }
}
