//! # dtl-event — deterministic discrete-event simulation spine
//!
//! The device and pool engines historically advanced on a fixed tick grid:
//! every simulated 10 s cost a `tick()` even when nothing was pending, so a
//! quiescent month — exactly where the paper's self-refresh savings accrue —
//! cost wall-clock time proportional to the horizon. This crate provides the
//! event-driven alternative: a picosecond-keyed [`EventQueue`] with stable
//! FIFO tie-breaking, an [`EventHandler`] trait, and a [`Simulation`] driver
//! with a `step_until_no_events`-style loop. Power-state residency and
//! energy are *not* accumulated here per event — the analytic backend in
//! `dtl-core` already integrates them in closed form at state-transition
//! boundaries, so skipping idle time is exact, not approximate.
//!
//! ## Determinism contract
//!
//! * Events are ordered by `(time, sequence)`: among events posted for the
//!   same picosecond, **post order is pop order** (FIFO). No hash-map or
//!   pointer order ever influences scheduling.
//! * [`Simulation::post`] clamps times below `now` up to `now`; time never
//!   moves backwards. A handler posting "immediately" therefore runs after
//!   every event already queued for the current instant, in post order.
//! * Cancellation is by tombstone: [`EventQueue::cancel`] marks the entry
//!   and [`EventQueue::pop`] skips it, so cancelling never perturbs the
//!   relative order of surviving events.
//!
//! Two identical runs — same seeds, same post sequence — produce identical
//! event orders and therefore bit-identical results.
//!
//! ## Example
//!
//! ```
//! use dtl_event::{Picos, Simulation};
//!
//! let mut sim = Simulation::new(Picos::ZERO);
//! sim.post(Picos::from_us(5), "beta");
//! sim.post(Picos::from_us(1), "alpha");
//! let mut seen = Vec::new();
//! while let Some((at, ev)) = sim.pop_next() {
//!     seen.push((at, ev));
//! }
//! assert_eq!(seen, vec![(Picos::from_us(1), "alpha"), (Picos::from_us(5), "beta")]);
//! assert_eq!(sim.now(), Picos::from_us(5));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

pub use dtl_dram::Picos;

/// Handle to a posted event, usable for [`EventQueue::cancel`] /
/// [`Simulation::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// Scheduler instrumentation counters, maintained by [`EventQueue`] and
/// surfaced through [`Simulation::queue_stats`]. Counts are exact and
/// deterministic (they follow the post/cancel/pop sequence, which the
/// determinism contract already fixes), so exporting them can never
/// perturb a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events ever pushed.
    pub posted: u64,
    /// Events cancelled while still pending (tombstoned).
    pub cancelled: u64,
    /// Live events popped (tombstone discards are not counted).
    pub popped: u64,
    /// Deepest the live queue ever got.
    pub depth_high_water: u64,
    /// Most tombstones (cancelled entries still in the heap) ever pending
    /// at once — the heap-bloat cost of the cancellation strategy.
    pub tombstones_high_water: u64,
}

impl QueueStats {
    /// Fraction of posted events that were cancelled (0 when nothing was
    /// posted) — how much of the schedule was speculative re-arming.
    pub fn tombstone_ratio(&self) -> f64 {
        if self.posted == 0 {
            0.0
        } else {
            self.cancelled as f64 / self.posted as f64
        }
    }

    /// Folds another queue's stats into this one: counts sum, high-water
    /// marks take the max. Used when aggregating per-host simulations into
    /// fleet totals; commutative, so shard merge order does not matter.
    pub fn merge_from(&mut self, other: &QueueStats) {
        self.posted += other.posted;
        self.cancelled += other.cancelled;
        self.popped += other.popped;
        self.depth_high_water = self.depth_high_water.max(other.depth_high_water);
        self.tombstones_high_water = self.tombstones_high_water.max(other.tombstones_high_water);
    }
}

/// One queued event. Ordered for a **max**-heap, so comparisons are
/// reversed: the smallest `(at, seq)` is the heap maximum.
struct Entry<E> {
    at: Picos,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Picosecond-keyed priority queue with stable FIFO tie-breaking and
/// tombstone cancellation.
///
/// The queue itself has no notion of "now" — it is a pure ordering
/// structure. [`Simulation`] layers the clock on top.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Sequence numbers of live (posted, not popped, not cancelled)
    /// entries. Only membership is queried, never iteration order, so a
    /// `HashSet` cannot leak nondeterminism into scheduling.
    live: HashSet<u64>,
    next_seq: u64,
    stats: QueueStats,
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            next_seq: 0,
            stats: QueueStats::default(),
        }
    }

    /// Posts `payload` at time `at`; later posts for the same `at` pop
    /// later (FIFO).
    pub fn push(&mut self, at: Picos, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
        self.live.insert(seq);
        self.stats.posted += 1;
        self.stats.depth_high_water = self.stats.depth_high_water.max(self.live.len() as u64);
        EventId(seq)
    }

    /// Cancels a pending event. Returns `true` if the event was still
    /// pending (not yet popped or cancelled); stale ids are a no-op. The
    /// entry stays in the heap as a tombstone and is discarded when it
    /// reaches the top.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let cancelled = self.live.remove(&id.0);
        if cancelled {
            self.stats.cancelled += 1;
            let tombstones = (self.heap.len() - self.live.len()) as u64;
            self.stats.tombstones_high_water = self.stats.tombstones_high_water.max(tombstones);
        }
        cancelled
    }

    /// Instrumentation counters accumulated so far.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Pending (non-cancelled) event count.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Time of the earliest live event.
    pub fn peek_at(&mut self) -> Option<Picos> {
        while let Some(top) = self.heap.peek() {
            if self.live.contains(&top.seq) {
                return Some(top.at);
            }
            self.heap.pop();
        }
        None
    }

    /// Pops the earliest live event.
    pub fn pop(&mut self) -> Option<(Picos, EventId, E)> {
        while let Some(e) = self.heap.pop() {
            if self.live.remove(&e.seq) {
                self.stats.popped += 1;
                return Some((e.at, EventId(e.seq), e.payload));
            }
        }
        None
    }
}

/// Scheduling surface handed to an [`EventHandler`] while an event is being
/// processed: post and cancel are allowed, popping is not (the driver owns
/// the pop loop).
pub struct Sched<'a, E> {
    now: Picos,
    queue: &'a mut EventQueue<E>,
}

impl<E> fmt::Debug for Sched<'_, E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sched").field("now", &self.now).field("queue", &self.queue).finish()
    }
}

impl<E> Sched<'_, E> {
    /// Current simulation time (the time of the event being handled).
    pub fn now(&self) -> Picos {
        self.now
    }

    /// Posts an event; times before `now` are clamped to `now` so time
    /// never runs backwards.
    pub fn post(&mut self, at: Picos, payload: E) -> EventId {
        self.queue.push(at.max(self.now), payload)
    }

    /// Cancels a pending event (see [`EventQueue::cancel`]).
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }
}

/// A reactor for [`Simulation::step_until_no_events`]: called once per
/// popped event, in deterministic order.
pub trait EventHandler<E> {
    /// Error type surfaced out of the driver loop.
    type Error;

    /// Handles one event at its scheduled time. More events may be posted
    /// (or cancelled) through `sched`.
    ///
    /// # Errors
    ///
    /// An error aborts the driver loop and is returned to the caller.
    fn on_event(
        &mut self,
        now: Picos,
        event: E,
        sched: &mut Sched<'_, E>,
    ) -> Result<(), Self::Error>;
}

/// Discrete-event simulation driver: a clock plus an [`EventQueue`].
///
/// Two interchangeable driving styles:
///
/// * **Pop loop** — `while let Some((at, ev)) = sim.pop_next() { ... }`,
///   posting follow-ups via [`Simulation::post`]. Preferred in harnesses
///   that need `?` error propagation and full borrow freedom.
/// * **Handler loop** — [`Simulation::step_until_no_events`] with an
///   [`EventHandler`], mirroring dslab's `Simulation::step_until_no_events`.
pub struct Simulation<E> {
    now: Picos,
    queue: EventQueue<E>,
    processed: u64,
}

impl<E> fmt::Debug for Simulation<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("processed", &self.processed)
            .field("queue", &self.queue)
            .finish()
    }
}

impl<E> Simulation<E> {
    /// A simulation starting at `start` with an empty queue.
    pub fn new(start: Picos) -> Self {
        Simulation { now: start, queue: EventQueue::new(), processed: 0 }
    }

    /// Current simulation time.
    pub fn now(&self) -> Picos {
        self.now
    }

    /// Total events popped so far (the throughput denominator for
    /// events/sec reporting).
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// The queue's instrumentation counters (posts, cancels, pops,
    /// depth/tombstone high-water marks).
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Live events still queued.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Time of the next live event, if any.
    pub fn next_at(&mut self) -> Option<Picos> {
        self.queue.peek_at()
    }

    /// Posts an event; times before [`Simulation::now`] are clamped to
    /// `now`.
    pub fn post(&mut self, at: Picos, payload: E) -> EventId {
        self.queue.push(at.max(self.now), payload)
    }

    /// Cancels a pending event (see [`EventQueue::cancel`]).
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Pops the next event and advances the clock to it.
    pub fn pop_next(&mut self) -> Option<(Picos, E)> {
        let (at, _, payload) = self.queue.pop()?;
        debug_assert!(at >= self.now, "event queue produced a time in the past");
        self.now = at;
        self.processed += 1;
        Some((at, payload))
    }

    /// Processes one event through `handler`. Returns `Ok(false)` when the
    /// queue is empty.
    ///
    /// # Errors
    ///
    /// Propagates the handler's error.
    pub fn step<H: EventHandler<E>>(&mut self, handler: &mut H) -> Result<bool, H::Error> {
        let Some((at, _, payload)) = self.queue.pop() else {
            return Ok(false);
        };
        self.now = at;
        self.processed += 1;
        let mut sched = Sched { now: at, queue: &mut self.queue };
        handler.on_event(at, payload, &mut sched)?;
        Ok(true)
    }

    /// Runs until the queue drains (dslab's `step_until_no_events`).
    ///
    /// # Errors
    ///
    /// Propagates the handler's error; remaining events stay queued.
    pub fn step_until_no_events<H: EventHandler<E>>(
        &mut self,
        handler: &mut H,
    ) -> Result<(), H::Error> {
        while self.step(handler)? {}
        Ok(())
    }

    /// Processes every event scheduled at or before `t`, then advances the
    /// clock to exactly `t` (even if no event lands there).
    ///
    /// # Errors
    ///
    /// Propagates the handler's error.
    pub fn step_until<H: EventHandler<E>>(
        &mut self,
        t: Picos,
        handler: &mut H,
    ) -> Result<(), H::Error> {
        while self.queue.peek_at().is_some_and(|at| at <= t) {
            self.step(handler)?;
        }
        self.now = self.now.max(t);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(n: u64) -> Picos {
        Picos::from_ps(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(ps(30), "c");
        q.push(ps(10), "a");
        q.push(ps(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, p)| p).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(ps(42), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, p)| p).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_only_target() {
        let mut q = EventQueue::new();
        let _a = q.push(ps(1), "a");
        let b = q.push(ps(1), "b");
        let _c = q.push(ps(1), "c");
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double cancel reports stale");
        assert_eq!(q.len(), 2);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, p)| p).collect();
        assert_eq!(order, ["a", "c"]);
    }

    #[test]
    fn cancel_after_pop_is_stale() {
        let mut q = EventQueue::new();
        let a = q.push(ps(1), "a");
        assert!(q.pop().is_some());
        assert!(!q.cancel(a) || q.is_empty(), "cancelling a popped id must not corrupt len");
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.push(ps(1), "a");
        q.push(ps(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_at(), Some(ps(2)));
    }

    #[test]
    fn simulation_clock_advances_monotonically() {
        let mut sim = Simulation::new(ps(100));
        sim.post(ps(50), "past"); // clamped to now
        sim.post(ps(200), "future");
        let (at1, p1) = sim.pop_next().unwrap();
        assert_eq!((at1, p1), (ps(100), "past"));
        let (at2, p2) = sim.pop_next().unwrap();
        assert_eq!((at2, p2), (ps(200), "future"));
        assert_eq!(sim.events_processed(), 2);
        assert_eq!(sim.now(), ps(200));
    }

    /// Handler-driven cascade: each event posts its successor until a
    /// horizon, exercising `Sched::post` re-entrancy.
    #[test]
    fn handler_cascade_runs_to_completion() {
        struct Cascade {
            fired: Vec<Picos>,
        }
        impl EventHandler<u64> for Cascade {
            type Error = std::convert::Infallible;
            fn on_event(
                &mut self,
                now: Picos,
                step: u64,
                sched: &mut Sched<'_, u64>,
            ) -> Result<(), Self::Error> {
                self.fired.push(now);
                if step < 5 {
                    sched.post(now + ps(10), step + 1);
                }
                Ok(())
            }
        }
        let mut sim = Simulation::new(Picos::ZERO);
        sim.post(ps(10), 1u64);
        let mut h = Cascade { fired: Vec::new() };
        sim.step_until_no_events(&mut h).unwrap();
        assert_eq!(h.fired, (1..=5).map(|i| ps(10 * i)).collect::<Vec<_>>());
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn step_until_stops_at_barrier_and_lands_on_it() {
        struct Count(u32);
        impl EventHandler<()> for Count {
            type Error = std::convert::Infallible;
            fn on_event(
                &mut self,
                _: Picos,
                (): (),
                _: &mut Sched<'_, ()>,
            ) -> Result<(), Self::Error> {
                self.0 += 1;
                Ok(())
            }
        }
        let mut sim = Simulation::new(Picos::ZERO);
        for t in [10u64, 20, 30, 40] {
            sim.post(ps(t), ());
        }
        let mut h = Count(0);
        sim.step_until(ps(25), &mut h).unwrap();
        assert_eq!(h.0, 2);
        assert_eq!(sim.now(), ps(25), "clock lands exactly on the barrier");
        sim.step_until_no_events(&mut h).unwrap();
        assert_eq!(h.0, 4);
    }

    #[test]
    fn queue_stats_track_posts_cancels_pops_and_high_water() {
        let mut q = EventQueue::new();
        let a = q.push(ps(1), "a");
        let _b = q.push(ps(2), "b");
        let c = q.push(ps(3), "c");
        // Depth peaked at 3 live events.
        assert_eq!(q.stats().depth_high_water, 3);
        q.cancel(a);
        q.cancel(c);
        q.cancel(c); // stale: not double-counted
        assert_eq!(q.stats().cancelled, 2);
        assert_eq!(q.stats().tombstones_high_water, 2);
        assert!(q.pop().is_some(), "b survives");
        assert!(q.pop().is_none(), "tombstone discards are not pops");
        let s = q.stats();
        assert_eq!(s.posted, 3);
        assert_eq!(s.popped, 1);
        assert!((s.tombstone_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(QueueStats::default().tombstone_ratio(), 0.0);
    }

    #[test]
    fn queue_stats_merge_sums_counts_and_maxes_high_water() {
        let mut a = QueueStats {
            posted: 10,
            cancelled: 2,
            popped: 8,
            depth_high_water: 5,
            tombstones_high_water: 1,
        };
        let b = QueueStats {
            posted: 4,
            cancelled: 1,
            popped: 3,
            depth_high_water: 9,
            tombstones_high_water: 0,
        };
        let mut ba = b;
        ba.merge_from(&a);
        a.merge_from(&b);
        assert_eq!(a, ba, "merge must be commutative");
        assert_eq!(a.posted, 14);
        assert_eq!(a.depth_high_water, 9);
        assert_eq!(a.tombstones_high_water, 1);
    }

    #[test]
    fn simulation_surfaces_queue_stats() {
        let mut sim = Simulation::new(Picos::ZERO);
        let id = sim.post(ps(10), "x");
        sim.post(ps(20), "y");
        sim.cancel(id);
        assert!(sim.pop_next().is_some());
        let s = sim.queue_stats();
        assert_eq!((s.posted, s.cancelled, s.popped), (2, 1, 1));
    }

    #[test]
    fn handler_error_aborts_and_preserves_queue() {
        struct Fail;
        impl EventHandler<u32> for Fail {
            type Error = String;
            fn on_event(
                &mut self,
                _: Picos,
                ev: u32,
                _: &mut Sched<'_, u32>,
            ) -> Result<(), Self::Error> {
                if ev == 2 {
                    return Err("boom".into());
                }
                Ok(())
            }
        }
        let mut sim = Simulation::new(Picos::ZERO);
        for (t, ev) in [(10u64, 1u32), (20, 2), (30, 3)] {
            sim.post(ps(t), ev);
        }
        let err = sim.step_until_no_events(&mut Fail).unwrap_err();
        assert_eq!(err, "boom");
        assert_eq!(sim.pending(), 1, "events after the failure stay queued");
    }
}
