//! One DDR channel: ranks, the shared data bus, two request queues
//! (foreground + migration), and an FR-FCFS command scheduler.
//!
//! The scheduler follows the paper's device-side policy (§4.2): the
//! migration queue issues a request only when the foreground queue of the
//! same channel has no pending (arrived) request, so segment migration
//! steals only otherwise-unused bandwidth.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::addr::DecodedAddr;
use crate::command::{CommandKind, CommandSink, IssuedCommand};
use crate::config::{Geometry, PagePolicy, TimingParams, LINE_BYTES};
use crate::power::{PowerParams, PowerState};
use crate::rank::Rank;
use crate::request::{Completion, LatencyStats, MemRequest, Priority};
use crate::time::Picos;

/// Why a rank changed power state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PowerEventCause {
    /// The controller exited a low-power state automatically because a
    /// request targeted the rank.
    AutoExit,
    /// An explicit transition requested through the device API (the DTL).
    Explicit,
}

/// A rank power-state change notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PowerEvent {
    /// Completion time of the transition.
    pub at: Picos,
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// State before.
    pub from: PowerState,
    /// State after.
    pub to: PowerState,
    /// What triggered it.
    pub cause: PowerEventCause,
}

#[derive(Debug, Clone)]
struct Pending {
    req: MemRequest,
    dec: DecodedAddr,
    /// Whether the scheduler issued an ACT on this request's behalf (used
    /// to classify its CAS as a row hit or miss).
    had_act: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NextCommand {
    Cas,
    Act,
    Pre,
    PowerExit,
}

impl NextCommand {
    /// FR-FCFS preference: column hits first, then row misses, conflicts last.
    fn class_rank(self) -> u8 {
        match self {
            NextCommand::Cas => 0,
            NextCommand::Act => 1,
            NextCommand::Pre => 2,
            NextCommand::PowerExit => 3,
        }
    }
}

/// Age beyond which the oldest request preempts FR-FCFS reordering.
const STARVATION_CAP: Picos = Picos::from_us(5);
/// How many queued requests the scheduler scans per decision.
const SCAN_WINDOW: usize = 24;

/// One DDR channel with its ranks and scheduler state.
#[derive(Debug, Clone)]
pub struct Channel {
    index: u32,
    timing: TimingParams,
    page_policy: PagePolicy,
    ranks: Vec<Rank>,
    fg: VecDeque<Pending>,
    mig: VecDeque<Pending>,
    clock: Picos,
    bus_free: Picos,
    last_bus_rank: Option<u32>,
    last_bus_was_write: bool,
    completions: Vec<Completion>,
    events: Vec<PowerEvent>,
    fg_stats: LatencyStats,
    mig_stats: LatencyStats,
    bytes_transferred: u64,
}

impl Channel {
    /// A fresh channel at time zero with all ranks in standby.
    pub fn new(index: u32, geometry: &Geometry, timing: TimingParams, power: PowerParams) -> Self {
        Channel::with_policy(index, geometry, timing, power, PagePolicy::OpenPage)
    }

    /// A fresh channel with an explicit row-buffer policy.
    pub fn with_policy(
        index: u32,
        geometry: &Geometry,
        timing: TimingParams,
        power: PowerParams,
        page_policy: PagePolicy,
    ) -> Self {
        let ranks =
            (0..geometry.ranks_per_channel).map(|_| Rank::new(geometry, &timing, power)).collect();
        Channel {
            index,
            timing,
            page_policy,
            ranks,
            fg: VecDeque::new(),
            mig: VecDeque::new(),
            clock: Picos::ZERO,
            bus_free: Picos::ZERO,
            last_bus_rank: None,
            last_bus_was_write: false,
            completions: Vec::new(),
            events: Vec::new(),
            fg_stats: LatencyStats::new(),
            mig_stats: LatencyStats::new(),
            bytes_transferred: 0,
        }
    }

    /// Channel index within the device.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Current channel clock.
    pub fn clock(&self) -> Picos {
        self.clock
    }

    /// Immutable access to a rank.
    pub fn rank(&self, rank: u32) -> &Rank {
        &self.ranks[rank as usize]
    }

    /// Mutable access to a rank (for explicit power transitions and energy
    /// integration by the owning device).
    pub fn rank_mut(&mut self, rank: u32) -> &mut Rank {
        &mut self.ranks[rank as usize]
    }

    /// Number of ranks.
    pub fn rank_count(&self) -> u32 {
        self.ranks.len() as u32
    }

    /// Queued-but-unfinished request count (both classes).
    pub fn pending(&self) -> usize {
        self.fg.len() + self.mig.len()
    }

    /// Queued migration requests.
    pub fn pending_migration(&self) -> usize {
        self.mig.len()
    }

    /// Total bytes moved over the data bus so far.
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes_transferred
    }

    /// Foreground latency statistics.
    pub fn foreground_stats(&self) -> &LatencyStats {
        &self.fg_stats
    }

    /// Migration latency statistics.
    pub fn migration_stats(&self) -> &LatencyStats {
        &self.mig_stats
    }

    /// Adds a request to the appropriate queue.
    ///
    /// # Panics
    ///
    /// Panics if the decoded channel does not match this channel.
    pub fn enqueue(&mut self, req: MemRequest, dec: DecodedAddr) {
        assert_eq!(dec.channel, self.index, "request routed to the wrong channel");
        let p = Pending { req, dec, had_act: false };
        match req.priority {
            Priority::Foreground => self.fg.push_back(p),
            Priority::Migration => self.mig.push_back(p),
        }
    }

    /// Drains completion records accumulated since the last call.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Drains power events accumulated since the last call.
    pub fn drain_events(&mut self) -> Vec<PowerEvent> {
        std::mem::take(&mut self.events)
    }

    /// Records an externally requested power event (called by the device
    /// wrapper after an explicit transition).
    pub fn push_event(&mut self, ev: PowerEvent) {
        self.events.push(ev);
    }

    /// Runs the scheduler until `until`, issuing commands and completing
    /// requests. The channel clock never exceeds `until`.
    pub fn advance_to<S: CommandSink>(&mut self, until: Picos, sink: &mut S) {
        while self.clock < until {
            self.service_due_refreshes(sink);
            let Some((qi, cmd, t_issue)) = self.pick_command(until) else {
                // Nothing issuable before `until`: fast-forward, batching
                // refreshes that fall in the idle gap.
                self.fast_forward_refreshes(until);
                self.clock = until;
                break;
            };
            if t_issue >= until {
                self.fast_forward_refreshes(until);
                self.clock = until;
                break;
            }
            self.issue(qi, cmd, t_issue, sink);
        }
    }

    /// True when both queues are empty.
    pub fn is_idle(&self) -> bool {
        self.fg.is_empty() && self.mig.is_empty()
    }

    /// The earliest arrival time among queued requests, if any.
    pub fn earliest_arrival(&self) -> Option<Picos> {
        self.fg.iter().chain(self.mig.iter()).map(|p| p.req.arrival).min()
    }

    // ---- internals ----------------------------------------------------

    /// Performs any mandatory refreshes whose deadline has passed.
    fn service_due_refreshes<S: CommandSink>(&mut self, sink: &mut S) {
        let t = self.timing;
        for (ri, rank) in self.ranks.iter_mut().enumerate() {
            if rank.state() != PowerState::Standby {
                continue;
            }
            while rank.refresh_due() <= self.clock {
                let base = self.clock.max(rank.busy_until());
                let start = rank.all_banks_closed_by(base, &t);
                // Close any open banks (the PREs are implied).
                for b in 0..rank.bank_count() {
                    rank.bank_mut(b).force_close(start);
                }
                rank.do_refresh(start, &t);
                sink.on_command(IssuedCommand {
                    at: start,
                    kind: CommandKind::Refresh,
                    channel: self.index,
                    rank: ri as u32,
                    target: DecodedAddr {
                        channel: self.index,
                        rank: ri as u32,
                        ..Default::default()
                    },
                });
            }
        }
    }

    /// Batch-processes refreshes for ranks whose deadlines fall in an idle
    /// window ending at `until`.
    fn fast_forward_refreshes(&mut self, until: Picos) {
        let t = self.timing;
        for rank in self.ranks.iter_mut() {
            if rank.state() != PowerState::Standby {
                continue;
            }
            if rank.refresh_due() < until {
                let gap = until - rank.refresh_due();
                let n = gap.as_ps() / t.cycles(t.trefi).as_ps() + 1;
                rank.do_idle_refreshes(n, &t);
            }
        }
    }

    /// Chooses the next command: `(queue_slot, command, issue_time)`.
    ///
    /// `queue_slot` is an index into the currently active queue (foreground
    /// if it has an arrived request, else migration).
    fn pick_command(&self, until: Picos) -> Option<(QueueSlot, NextCommand, Picos)> {
        let fg_has_arrived = self.fg.iter().any(|p| p.req.arrival <= self.clock);
        let fg_candidates = !self.fg.is_empty();
        let mig_candidates = !self.mig.is_empty();
        if !fg_candidates && !mig_candidates {
            return None;
        }
        // Foreground priority: migration only when no *arrived* foreground
        // request exists.
        let mut best: Option<(QueueSlot, NextCommand, Picos, Picos)> = None;
        let scan_fg = fg_candidates;
        let scan_mig = mig_candidates && !fg_has_arrived;
        let mut consider = |slot: QueueSlot, p: &Pending, this: &Channel| {
            let (cmd, t) = this.next_command_for(p);
            if t >= Picos::MAX {
                return;
            }
            let better = match &best {
                None => true,
                Some((_, bcmd, bt, barr)) => {
                    // Candidates within one clock of the earliest are peers;
                    // prefer FR-FCFS class, then age.
                    let window = this.timing.tck;
                    if t.checked_add(window).is_some_and(|tw| tw < *bt) {
                        true
                    } else if bt.checked_add(window).is_none_or(|bw| bw < t) {
                        false
                    } else {
                        match cmd.class_rank().cmp(&bcmd.class_rank()) {
                            std::cmp::Ordering::Less => true,
                            std::cmp::Ordering::Greater => false,
                            std::cmp::Ordering::Equal => p.req.arrival < *barr,
                        }
                    }
                }
            };
            if better {
                best = Some((slot, cmd, t, p.req.arrival));
            }
        };
        if scan_fg {
            // Starvation guard: if the oldest foreground request has waited
            // past the cap, schedule only it.
            if let Some(oldest) = self.fg.front() {
                if self.clock.saturating_sub(oldest.req.arrival) > STARVATION_CAP {
                    let (cmd, t) = self.next_command_for(oldest);
                    let _ = until;
                    return Some((QueueSlot::Fg(0), cmd, t.max(self.clock)));
                }
            }
            for (i, p) in self.fg.iter().take(SCAN_WINDOW).enumerate() {
                consider(QueueSlot::Fg(i), p, self);
            }
        }
        if scan_mig {
            for (i, p) in self.mig.iter().take(SCAN_WINDOW).enumerate() {
                consider(QueueSlot::Mig(i), p, self);
            }
        }
        best.map(|(slot, cmd, t, _)| (slot, cmd, t.max(self.clock)))
    }

    /// The next command a pending request needs, and its earliest issue time
    /// (including the request's own arrival time).
    fn next_command_for(&self, p: &Pending) -> (NextCommand, Picos) {
        let t = &self.timing;
        let rank = &self.ranks[p.dec.rank as usize];
        let arrival = p.req.arrival;
        if rank.state() != PowerState::Standby {
            // Needs a power-state exit first; it can start once the request
            // has arrived and the rank is free.
            return (NextCommand::PowerExit, arrival.max(rank.busy_until()).max(self.clock));
        }
        let flat = rank.flat_bank(p.dec.bank_group, p.dec.bank);
        let bank = rank.bank(flat);
        match bank.open_row() {
            Some(row) if row == p.dec.row => {
                let is_read = !p.req.kind.is_write();
                let mut ti = arrival
                    .max(self.clock)
                    .max(if is_read { bank.rd_ready() } else { bank.wr_ready() })
                    .max(rank.cas_constraint(p.dec.bank_group, is_read, t));
                // Data-bus availability: the burst must start after the bus
                // frees (plus a turnaround bubble on rank/direction change).
                let cas_lat = if is_read { t.cycles(t.cl) } else { t.cycles(t.cwl) };
                let mut bus_avail = self.bus_free;
                let switching = self.last_bus_rank.is_some()
                    && (self.last_bus_rank != Some(p.dec.rank)
                        || self.last_bus_was_write != p.req.kind.is_write());
                if switching {
                    bus_avail += t.cycles(t.rank_to_rank);
                }
                if ti + cas_lat < bus_avail {
                    ti = bus_avail - cas_lat;
                }
                (NextCommand::Cas, ti)
            }
            Some(_) => {
                let ti = arrival.max(self.clock).max(bank.pre_ready()).max(rank.busy_until());
                (NextCommand::Pre, ti)
            }
            None => {
                let ti = arrival
                    .max(self.clock)
                    .max(bank.act_ready())
                    .max(rank.act_constraint(p.dec.bank_group, t));
                (NextCommand::Act, ti)
            }
        }
    }

    /// Issues `cmd` at `at` for the request in `slot`, updating all state.
    fn issue<S: CommandSink>(
        &mut self,
        slot: QueueSlot,
        cmd: NextCommand,
        at: Picos,
        sink: &mut S,
    ) {
        let t = self.timing;
        let p = match slot {
            QueueSlot::Fg(i) => self.fg[i].clone(),
            QueueSlot::Mig(i) => self.mig[i].clone(),
        };
        let rank_idx = p.dec.rank;
        let rank = &mut self.ranks[rank_idx as usize];
        let flat = rank.flat_bank(p.dec.bank_group, p.dec.bank);
        match cmd {
            NextCommand::PowerExit => {
                let from = rank.state();
                let done = rank
                    .transition(at, PowerState::Standby, &t)
                    .expect("exit to standby is always legal");
                self.events.push(PowerEvent {
                    at: done,
                    channel: self.index,
                    rank: rank_idx,
                    from,
                    to: PowerState::Standby,
                    cause: PowerEventCause::AutoExit,
                });
                let kind = match from {
                    PowerState::SelfRefresh => CommandKind::SelfRefreshExit,
                    PowerState::Mpsm => CommandKind::MpsmExit,
                    _ => CommandKind::PowerDownExit,
                };
                sink.on_command(IssuedCommand {
                    at,
                    kind,
                    channel: self.index,
                    rank: rank_idx,
                    target: p.dec,
                });
                self.clock = self.clock.max(at);
            }
            NextCommand::Pre => {
                rank.bank_mut(flat).do_precharge(at, &t);
                sink.on_command(IssuedCommand {
                    at,
                    kind: CommandKind::Precharge,
                    channel: self.index,
                    rank: rank_idx,
                    target: p.dec,
                });
                self.clock = at + t.tck;
            }
            NextCommand::Act => {
                rank.bank_mut(flat).do_activate(at, p.dec.row, &t);
                rank.note_activate(at, p.dec.bank_group);
                match slot {
                    QueueSlot::Fg(i) => self.fg[i].had_act = true,
                    QueueSlot::Mig(i) => self.mig[i].had_act = true,
                }
                sink.on_command(IssuedCommand {
                    at,
                    kind: CommandKind::Activate,
                    channel: self.index,
                    rank: rank_idx,
                    target: p.dec,
                });
                self.clock = at + t.tck;
            }
            NextCommand::Cas => {
                let is_write = p.req.kind.is_write();
                let row_hit_was_open = !p.had_act;
                let data_end = if is_write {
                    rank.bank_mut(flat).do_write(at, &t)
                } else {
                    rank.bank_mut(flat).do_read(at, &t)
                };
                rank.note_cas(at, p.dec.bank_group, !is_write, data_end, row_hit_was_open, &t);
                sink.on_command(IssuedCommand {
                    at,
                    kind: if is_write { CommandKind::Write } else { CommandKind::Read },
                    channel: self.index,
                    rank: rank_idx,
                    target: p.dec,
                });
                if self.page_policy == PagePolicy::ClosedPage {
                    // Auto-precharge (RDA/WRA): the row closes once its
                    // restore window (tRTP / write recovery) elapses.
                    let bank = rank.bank_mut(flat);
                    let pre_at = bank.pre_ready();
                    bank.do_precharge(pre_at, &t);
                    sink.on_command(IssuedCommand {
                        at: pre_at,
                        kind: CommandKind::Precharge,
                        channel: self.index,
                        rank: rank_idx,
                        target: p.dec,
                    });
                }
                self.bus_free = data_end;
                self.last_bus_rank = Some(rank_idx);
                self.last_bus_was_write = is_write;
                self.bytes_transferred += LINE_BYTES;
                let completion = Completion {
                    id: p.req.id,
                    finished: data_end,
                    arrival: p.req.arrival,
                    priority: p.req.priority,
                };
                match p.req.priority {
                    Priority::Foreground => self.fg_stats.record(completion.latency()),
                    Priority::Migration => self.mig_stats.record(completion.latency()),
                }
                self.completions.push(completion);
                match slot {
                    QueueSlot::Fg(i) => {
                        self.fg.remove(i);
                    }
                    QueueSlot::Mig(i) => {
                        self.mig.remove(i);
                    }
                }
                self.clock = at + t.tck;
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueueSlot {
    Fg(usize),
    Mig(usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysAddr;
    use crate::command::{NullSink, RecordingSink};
    use crate::config::DramConfig;
    use crate::mapping::{AddressMapper, AddressMapping};
    use crate::request::AccessKind;

    fn channel() -> (Channel, AddressMapper) {
        let cfg = DramConfig::tiny();
        let mapper = AddressMapper::new(cfg.geometry, AddressMapping::RankInterleaved).unwrap();
        (Channel::new(0, &cfg.geometry, cfg.timing, cfg.power), mapper)
    }

    fn req_at(
        ch: &Channel,
        mapper: &AddressMapper,
        id: u64,
        addr: u64,
        kind: AccessKind,
        arrival: Picos,
        priority: Priority,
    ) -> (MemRequest, DecodedAddr) {
        let _ = ch;
        let r = MemRequest { id, addr: PhysAddr::new(addr), kind, arrival, priority };
        let dec = mapper.decode(r.addr).unwrap();
        (r, dec)
    }

    /// Finds an address that decodes to channel 0 with the given row, for
    /// deterministic row-conflict construction.
    fn addr_for(mapper: &AddressMapper, rank: u32, bg: u32, bank: u32, row: u64, col: u64) -> u64 {
        mapper
            .encode(&DecodedAddr { channel: 0, rank, bank_group: bg, bank, row, column: col })
            .unwrap()
            .as_u64()
    }

    #[test]
    fn single_read_latency_is_act_plus_cas() {
        let (mut ch, mapper) = channel();
        let a = addr_for(&mapper, 0, 0, 0, 5, 3);
        let (r, d) =
            req_at(&ch, &mapper, 1, a, AccessKind::Read, Picos::ZERO, Priority::Foreground);
        ch.enqueue(r, d);
        ch.advance_to(Picos::from_us(1), &mut NullSink);
        let done = ch.drain_completions();
        assert_eq!(done.len(), 1);
        let t = TimingParams::ddr4_2933();
        let expect = t.cycles(t.trcd) + t.cycles(t.cl) + t.burst_time() + t.tck;
        // ACT at tCK-aligned zero; one extra tCK of command-bus serialization
        // tolerance.
        assert!(
            done[0].latency() <= expect && done[0].latency() >= expect - t.tck * 2,
            "latency {} expect about {}",
            done[0].latency(),
            expect
        );
    }

    #[test]
    fn row_hit_is_faster_than_row_conflict() {
        let (mut ch, mapper) = channel();
        // Two reads to the same row: second is a hit.
        let a1 = addr_for(&mapper, 0, 0, 0, 5, 0);
        let a2 = addr_for(&mapper, 0, 0, 0, 5, 1);
        // Then one to a different row in the same bank: conflict.
        let a3 = addr_for(&mapper, 0, 0, 0, 9, 0);
        for (id, a) in [(1, a1), (2, a2), (3, a3)] {
            let (r, d) =
                req_at(&ch, &mapper, id, a, AccessKind::Read, Picos::ZERO, Priority::Foreground);
            ch.enqueue(r, d);
        }
        ch.advance_to(Picos::from_us(2), &mut NullSink);
        let done = ch.drain_completions();
        assert_eq!(done.len(), 3);
        let lat = |id: u64| done.iter().find(|c| c.id == id).unwrap().latency();
        assert!(lat(2) < lat(3), "hit {} must beat conflict {}", lat(2), lat(3));
    }

    #[test]
    fn fr_fcfs_prefers_row_hits() {
        let (mut ch, mapper) = channel();
        // Open row 5 with request 1; request 2 conflicts (row 9), request 3
        // hits row 5 and should be served before 2 despite arriving later.
        let a1 = addr_for(&mapper, 0, 0, 0, 5, 0);
        let a2 = addr_for(&mapper, 0, 0, 0, 9, 0);
        let a3 = addr_for(&mapper, 0, 0, 0, 5, 7);
        for (id, a, ns) in [(1, a1, 0), (2, a2, 1), (3, a3, 2)] {
            let (r, d) = req_at(
                &ch,
                &mapper,
                id,
                a,
                AccessKind::Read,
                Picos::from_ns(ns),
                Priority::Foreground,
            );
            ch.enqueue(r, d);
        }
        ch.advance_to(Picos::from_us(2), &mut NullSink);
        let done = ch.drain_completions();
        let pos = |id: u64| done.iter().position(|c| c.id == id).unwrap();
        assert!(pos(3) < pos(2), "row hit must be reordered ahead of the conflict");
    }

    #[test]
    fn migration_yields_to_foreground() {
        let (mut ch, mapper) = channel();
        // Saturate with interleaved fg+mig requests to the same bank; all
        // fg must complete before any mig given equal arrival.
        for i in 0..8u64 {
            let af = addr_for(&mapper, 0, 0, 0, 1, i);
            let (r, d) =
                req_at(&ch, &mapper, i, af, AccessKind::Read, Picos::ZERO, Priority::Foreground);
            ch.enqueue(r, d);
            let am = addr_for(&mapper, 1, 0, 0, 1, i);
            let (r, d) = req_at(
                &ch,
                &mapper,
                100 + i,
                am,
                AccessKind::Read,
                Picos::ZERO,
                Priority::Migration,
            );
            ch.enqueue(r, d);
        }
        ch.advance_to(Picos::from_us(5), &mut NullSink);
        let done = ch.drain_completions();
        assert_eq!(done.len(), 16);
        let last_fg = done
            .iter()
            .filter(|c| c.priority == Priority::Foreground)
            .map(|c| c.finished)
            .max()
            .unwrap();
        let first_mig = done
            .iter()
            .filter(|c| c.priority == Priority::Migration)
            .map(|c| c.finished)
            .min()
            .unwrap();
        assert!(last_fg < first_mig, "all foreground must finish before migration starts");
    }

    #[test]
    fn refresh_happens_roughly_every_trefi() {
        let (mut ch, _mapper) = channel();
        let t = TimingParams::ddr4_2933();
        let horizon = Picos::from_us(100);
        ch.advance_to(horizon, &mut NullSink);
        let expected = horizon.as_ps() / t.cycles(t.trefi).as_ps();
        for r in 0..ch.rank_count() {
            let refs = ch.rank(r).counters().refreshes;
            assert!(
                refs >= expected && refs <= expected + 1,
                "rank {r}: {refs} refreshes, expected about {expected}"
            );
        }
    }

    #[test]
    fn self_refresh_rank_auto_exits_on_access() {
        let (mut ch, mapper) = channel();
        let t = TimingParams::ddr4_2933();
        ch.rank_mut(2).transition(Picos::ZERO, PowerState::SelfRefresh, &t).unwrap();
        let a = addr_for(&mapper, 2, 0, 0, 5, 0);
        let (r, d) =
            req_at(&ch, &mapper, 9, a, AccessKind::Read, Picos::from_us(10), Priority::Foreground);
        ch.enqueue(r, d);
        let mut sink = RecordingSink::default();
        ch.advance_to(Picos::from_us(20), &mut sink);
        let done = ch.drain_completions();
        assert_eq!(done.len(), 1);
        // The exit penalty (tXS ~ 560 ns) dominates the latency.
        assert!(done[0].latency() >= t.cycles(t.txs), "latency {}", done[0].latency());
        assert!(sink.commands.iter().any(|c| c.kind == CommandKind::SelfRefreshExit));
        let evs = ch.drain_events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].cause, PowerEventCause::AutoExit);
        assert_eq!(evs[0].from, PowerState::SelfRefresh);
    }

    #[test]
    fn idle_fast_forward_counts_refreshes() {
        let (mut ch, _mapper) = channel();
        let t = TimingParams::ddr4_2933();
        ch.advance_to(Picos::from_ms(1), &mut NullSink);
        let refs = ch.rank(0).counters().refreshes;
        let expected = Picos::from_ms(1).as_ps() / t.cycles(t.trefi).as_ps();
        assert!(refs >= expected && refs <= expected + 1);
        assert_eq!(ch.clock(), Picos::from_ms(1));
    }

    #[test]
    fn bytes_transferred_counts_lines() {
        let (mut ch, mapper) = channel();
        for i in 0..4u64 {
            let a = addr_for(&mapper, 0, 0, 0, 1, i);
            let (r, d) =
                req_at(&ch, &mapper, i, a, AccessKind::Write, Picos::ZERO, Priority::Foreground);
            ch.enqueue(r, d);
        }
        ch.advance_to(Picos::from_us(2), &mut NullSink);
        assert_eq!(ch.bytes_transferred(), 4 * 64);
    }

    #[test]
    fn wrong_channel_request_panics() {
        let (mut ch, mapper) = channel();
        // Find an address on channel 1.
        let mut addr = 0u64;
        loop {
            if mapper.decode(PhysAddr::new(addr)).unwrap().channel == 1 {
                break;
            }
            addr += 64;
        }
        let r = MemRequest {
            id: 0,
            addr: PhysAddr::new(addr),
            kind: AccessKind::Read,
            arrival: Picos::ZERO,
            priority: Priority::Foreground,
        };
        let dec = mapper.decode(r.addr).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ch.enqueue(r, dec);
        }));
        assert!(result.is_err());
    }
}
