//! Device geometry, DDR4 timing parameters, and configuration presets.
//!
//! The default preset models the paper's evaluation platform: a CXL memory
//! device populated with DDR4-2933 DRAM, 4 channels × 8 ranks (two 4-rank
//! 128 GB DIMMs per channel), 1 TB total (Table 1 of the paper, reorganized
//! to the 4-channel CXL device of Figure 6).

use serde::{Deserialize, Serialize};

use crate::error::DramError;
use crate::power::PowerParams;
use crate::time::Picos;

/// Cache-line (and DRAM burst) size in bytes: BL8 on a 64-bit channel.
pub const LINE_BYTES: u64 = 64;

/// Physical organization of the DRAM behind one device.
///
/// # Examples
///
/// ```
/// use dtl_dram::Geometry;
///
/// let g = Geometry::cxl_1tb();
/// assert_eq!(g.channels, 4);
/// assert_eq!(g.ranks_per_channel, 8);
/// assert_eq!(g.capacity_bytes(), 1 << 40);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Geometry {
    /// Number of independent DDR channels.
    pub channels: u32,
    /// Ranks per channel (power-state granularity is the rank).
    pub ranks_per_channel: u32,
    /// Bank groups per rank (DDR4: 4 for x4/x8 devices).
    pub bank_groups: u32,
    /// Banks per bank group (DDR4: 4).
    pub banks_per_group: u32,
    /// Rows per bank.
    pub rows: u64,
    /// Column *cache lines* per row (row size / 64 B).
    pub columns: u64,
}

impl Geometry {
    /// The paper's 1 TB CXL device: 4 channels, 8 ranks/channel (Figure 6).
    ///
    /// Each rank is 32 GiB (one rank of a 128 GB 4-rank DIMM). Row size is
    /// 8 KiB (x4 devices, 16 devices/rank).
    pub fn cxl_1tb() -> Self {
        Geometry {
            channels: 4,
            ranks_per_channel: 8,
            bank_groups: 4,
            banks_per_group: 4,
            // 32 GiB / (16 banks * 8 KiB row) = 256 Ki rows.
            rows: 256 * 1024,
            columns: 8 * 1024 / LINE_BYTES, // 8 KiB row = 128 lines
        }
    }

    /// The hypothetical 4 TB device of Section 6.6: 8 channels with two
    /// 8-rank 256 GB DIMMs per channel (16 ranks/channel).
    pub fn cxl_4tb() -> Self {
        Geometry {
            channels: 8,
            ranks_per_channel: 16,
            bank_groups: 4,
            banks_per_group: 4,
            rows: 256 * 1024,
            columns: 8 * 1024 / LINE_BYTES,
        }
    }

    /// A small geometry for fast tests: 2 channels × 4 ranks, 64 MiB/rank.
    pub fn tiny() -> Self {
        Geometry {
            channels: 2,
            ranks_per_channel: 4,
            bank_groups: 4,
            banks_per_group: 4,
            rows: 512,
            columns: 8 * 1024 / LINE_BYTES,
        }
    }

    /// Banks per rank.
    #[inline]
    pub fn banks_per_rank(&self) -> u32 {
        self.bank_groups * self.banks_per_group
    }

    /// Bytes per row (columns × 64 B).
    #[inline]
    pub fn row_bytes(&self) -> u64 {
        self.columns * LINE_BYTES
    }

    /// Bytes per rank.
    #[inline]
    pub fn rank_bytes(&self) -> u64 {
        self.rows * self.row_bytes() * u64::from(self.banks_per_rank())
    }

    /// Bytes per channel.
    #[inline]
    pub fn channel_bytes(&self) -> u64 {
        self.rank_bytes() * u64::from(self.ranks_per_channel)
    }

    /// Total device capacity in bytes.
    #[inline]
    pub fn capacity_bytes(&self) -> u64 {
        self.channel_bytes() * u64::from(self.channels)
    }

    /// Total number of ranks in the device.
    #[inline]
    pub fn total_ranks(&self) -> u32 {
        self.channels * self.ranks_per_channel
    }

    /// Validates that every field is non-zero and power-of-two where the
    /// address decoder requires it.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] if any dimension is zero or a
    /// required dimension is not a power of two.
    pub fn validate(&self) -> Result<(), DramError> {
        let fields: [(&str, u64); 6] = [
            ("channels", u64::from(self.channels)),
            ("ranks_per_channel", u64::from(self.ranks_per_channel)),
            ("bank_groups", u64::from(self.bank_groups)),
            ("banks_per_group", u64::from(self.banks_per_group)),
            ("rows", self.rows),
            ("columns", self.columns),
        ];
        for (name, v) in fields {
            if v == 0 {
                return Err(DramError::InvalidConfig {
                    reason: format!("{name} must be non-zero"),
                });
            }
            if !v.is_power_of_two() {
                return Err(DramError::InvalidConfig {
                    reason: format!("{name} = {v} must be a power of two"),
                });
            }
        }
        Ok(())
    }
}

/// DDR4 timing parameters, expressed in DRAM clock cycles except where noted.
///
/// Field names follow the JEDEC DDR4 specification. The preset values model
/// the DDR4-2933 speed bin used by the paper's server (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Clock period.
    pub tck: Picos,
    /// CAS (read) latency.
    pub cl: u32,
    /// CAS write latency.
    pub cwl: u32,
    /// ACT to internal read/write delay.
    pub trcd: u32,
    /// PRE to ACT delay (row precharge).
    pub trp: u32,
    /// ACT to PRE minimum (row active time).
    pub tras: u32,
    /// ACT to ACT, different bank group.
    pub trrd_s: u32,
    /// ACT to ACT, same bank group.
    pub trrd_l: u32,
    /// Four-activate window.
    pub tfaw: u32,
    /// CAS to CAS, different bank group.
    pub tccd_s: u32,
    /// CAS to CAS, same bank group.
    pub tccd_l: u32,
    /// Write recovery time (end of write data to PRE).
    pub twr: u32,
    /// Write to read turnaround, different bank group.
    pub twtr_s: u32,
    /// Write to read turnaround, same bank group.
    pub twtr_l: u32,
    /// Read to PRE delay.
    pub trtp: u32,
    /// Refresh cycle time (all-bank REF duration), 16 Gb die.
    pub trfc: u32,
    /// Average refresh interval.
    pub trefi: u32,
    /// Burst length in beats (DDR4: 8).
    pub burst_length: u32,
    /// Rank-to-rank data-bus turnaround penalty (cycles).
    pub rank_to_rank: u32,
    /// Self-refresh exit to first valid command (~ tRFC + 10 ns).
    pub txs: u32,
    /// Power-down exit latency.
    pub txp: u32,
    /// Minimum CKE low pulse (power-down entry).
    pub tcke: u32,
    /// Maximum power saving mode exit latency ("hundreds of ns", §2).
    pub txmpsm: u32,
}

impl TimingParams {
    /// DDR4-2933 (speed bin 2933AA, CL21-21-21) with 16 Gb dies.
    pub fn ddr4_2933() -> Self {
        TimingParams {
            tck: Picos::from_ps(682), // 1466.5 MHz clock
            cl: 21,
            cwl: 16,
            trcd: 21,
            trp: 21,
            tras: 47,  // 32 ns
            trrd_s: 5, // 3.4 ns (x4, 1/2KB page)
            trrd_l: 8, // 4.9 ns
            tfaw: 31,  // 21 ns
            tccd_s: 4,
            tccd_l: 8,    // 5.355 ns
            twr: 22,      // 15 ns
            twtr_s: 4,    // 2.5 ns
            twtr_l: 11,   // 7.5 ns
            trtp: 11,     // 7.5 ns
            trfc: 807,    // 550 ns (16 Gb)
            trefi: 11442, // 7.8 us
            burst_length: 8,
            rank_to_rank: 2,
            txs: 822,    // tRFC + 10 ns
            txp: 10,     // 6.4 ns
            tcke: 8,     // 5 ns
            txmpsm: 733, // 500 ns MPSM exit penalty
        }
    }

    /// Converts a cycle count to picoseconds at this clock.
    #[inline]
    pub fn cycles(&self, n: u32) -> Picos {
        self.tck * u64::from(n)
    }

    /// Data-transfer time of one burst (BL/2 clocks for DDR).
    #[inline]
    pub fn burst_time(&self) -> Picos {
        self.cycles(self.burst_length / 2)
    }

    /// Peak per-channel data bandwidth in bytes/second.
    pub fn peak_channel_bandwidth(&self) -> f64 {
        LINE_BYTES as f64 / self.burst_time().as_secs_f64()
    }

    /// Validates internal consistency of the timing set.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] when a parameter is zero that
    /// must not be, or when ordering relations are violated (e.g.
    /// `tras < trcd`).
    pub fn validate(&self) -> Result<(), DramError> {
        if self.tck == Picos::ZERO {
            return Err(DramError::InvalidConfig { reason: "tck must be non-zero".into() });
        }
        if self.burst_length == 0 || !self.burst_length.is_multiple_of(2) {
            return Err(DramError::InvalidConfig {
                reason: "burst_length must be a non-zero multiple of two".into(),
            });
        }
        if self.tras < self.trcd {
            return Err(DramError::InvalidConfig { reason: "tras must be >= trcd".into() });
        }
        if self.trrd_l < self.trrd_s || self.tccd_l < self.tccd_s || self.twtr_l < self.twtr_s {
            return Err(DramError::InvalidConfig {
                reason: "same-bank-group delays must be >= different-bank-group delays".into(),
            });
        }
        if self.trefi <= self.trfc {
            return Err(DramError::InvalidConfig { reason: "trefi must exceed trfc".into() });
        }
        Ok(())
    }
}

/// Row-buffer management policy of the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PagePolicy {
    /// Leave rows open after a CAS (FR-FCFS exploits row hits; the
    /// default, and what the DTL's row-buffer-friendly segment layout is
    /// designed for).
    OpenPage,
    /// Auto-precharge with every CAS (RDA/WRA): each access pays a fresh
    /// ACT but never a conflict PRE.
    ClosedPage,
}

/// Complete configuration of a simulated DRAM device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Physical organization.
    pub geometry: Geometry,
    /// DDR timing set.
    pub timing: TimingParams,
    /// Power/energy model parameters.
    pub power: PowerParams,
    /// Row-buffer policy.
    pub page_policy: PagePolicy,
}

impl DramConfig {
    /// The paper's 1 TB CXL device with DDR4-2933 timing.
    pub fn cxl_1tb_ddr4_2933() -> Self {
        DramConfig {
            geometry: Geometry::cxl_1tb(),
            timing: TimingParams::ddr4_2933(),
            power: PowerParams::ddr4_128gb_dimm(),
            page_policy: PagePolicy::OpenPage,
        }
    }

    /// A small, fast configuration for unit tests.
    pub fn tiny() -> Self {
        DramConfig {
            geometry: Geometry::tiny(),
            timing: TimingParams::ddr4_2933(),
            power: PowerParams::ddr4_128gb_dimm(),
            page_policy: PagePolicy::OpenPage,
        }
    }

    /// Validates geometry and timing together.
    ///
    /// # Errors
    ///
    /// Propagates [`DramError::InvalidConfig`] from the component validators.
    pub fn validate(&self) -> Result<(), DramError> {
        self.geometry.validate()?;
        self.timing.validate()?;
        self.power.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cxl_1tb_capacity_matches_paper() {
        let g = Geometry::cxl_1tb();
        assert_eq!(g.rank_bytes(), 32 << 30);
        assert_eq!(g.channel_bytes(), 256 << 30);
        assert_eq!(g.capacity_bytes(), 1 << 40);
        assert_eq!(g.total_ranks(), 32);
        g.validate().expect("preset must validate");
    }

    #[test]
    fn cxl_4tb_capacity_matches_section_6_6() {
        let g = Geometry::cxl_4tb();
        assert_eq!(g.capacity_bytes(), 4 << 40);
        assert_eq!(g.channels, 8);
        assert_eq!(g.ranks_per_channel, 16);
        g.validate().expect("preset must validate");
    }

    #[test]
    fn invalid_geometry_rejected() {
        let mut g = Geometry::tiny();
        g.channels = 0;
        assert!(g.validate().is_err());
        let mut g = Geometry::tiny();
        g.rows = 3;
        assert!(g.validate().is_err());
    }

    #[test]
    fn ddr4_2933_timing_sane() {
        let t = TimingParams::ddr4_2933();
        t.validate().expect("preset must validate");
        // Read latency CL = 21 cycles ~ 14.3 ns.
        let cl = t.cycles(t.cl);
        assert!((cl.as_ns_f64() - 14.3).abs() < 0.2, "CL was {cl}");
        // Peak channel bandwidth ~ 23.5 GB/s (2933 MT/s x 8 B).
        let bw = t.peak_channel_bandwidth() / 1e9;
        assert!((bw - 23.5).abs() < 0.3, "bw was {bw}");
    }

    #[test]
    fn timing_ordering_violations_rejected() {
        let mut t = TimingParams::ddr4_2933();
        t.tras = 5;
        assert!(t.validate().is_err());
        let mut t = TimingParams::ddr4_2933();
        t.trefi = t.trfc;
        assert!(t.validate().is_err());
        let mut t = TimingParams::ddr4_2933();
        t.burst_length = 7;
        assert!(t.validate().is_err());
    }

    #[test]
    fn full_config_validates() {
        DramConfig::cxl_1tb_ddr4_2933().validate().unwrap();
        DramConfig::tiny().validate().unwrap();
    }
}
