//! DRAM power states, the energy model, and per-rank energy accounting.
//!
//! The model follows the paper's methodology (§5.1, Table 2, Figure 11):
//!
//! * **Background power** depends only on the rank's power state and is
//!   integrated over state residency. The standby value *includes*
//!   distributed refresh, exactly as the paper's Figure 11(a) measurement
//!   does. The normalized state powers are Table 2 of the paper:
//!   standby 1.0, self-refresh 0.2, MPSM 0.068.
//! * **Active power** is event energy: each ACT/PRE pair, read burst, and
//!   write burst contributes a fixed energy, which makes active power scale
//!   linearly with bandwidth utilization (the paper's Figure 11(b)
//!   observation).

use serde::{Deserialize, Serialize};

use crate::error::DramError;
use crate::time::Picos;

/// Rank-level DRAM power state.
///
/// Transitions are commanded at rank granularity (the Chip Select group).
/// `Mpsm` (maximum power saving mode) does **not** retain data; all other
/// states do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerState {
    /// Normal operating state (standby/active); full background power.
    Standby,
    /// CKE-low power-down with at least one open bank.
    ActivePowerDown,
    /// CKE-low power-down with all banks precharged.
    PrechargePowerDown,
    /// Self-refresh: data retained by internal refresh, no external clock.
    SelfRefresh,
    /// Maximum power saving mode: lowest power, **no data retention**.
    Mpsm,
}

impl PowerState {
    /// Whether DRAM contents survive in this state.
    #[inline]
    pub fn retains_data(self) -> bool {
        !matches!(self, PowerState::Mpsm)
    }

    /// Whether the rank can accept regular commands without an exit sequence.
    #[inline]
    pub fn is_operational(self) -> bool {
        matches!(self, PowerState::Standby)
    }

    /// All states, for iteration in reports.
    pub const ALL: [PowerState; 5] = [
        PowerState::Standby,
        PowerState::ActivePowerDown,
        PowerState::PrechargePowerDown,
        PowerState::SelfRefresh,
        PowerState::Mpsm,
    ];

    fn index(self) -> usize {
        match self {
            PowerState::Standby => 0,
            PowerState::ActivePowerDown => 1,
            PowerState::PrechargePowerDown => 2,
            PowerState::SelfRefresh => 3,
            PowerState::Mpsm => 4,
        }
    }

    /// The `dtl-telemetry` mirror id of this state (same [`PowerState::ALL`]
    /// index order, so residency arrays line up across the two crates).
    #[inline]
    pub fn telemetry_id(self) -> dtl_telemetry::PowerStateId {
        match self {
            PowerState::Standby => dtl_telemetry::PowerStateId::Standby,
            PowerState::ActivePowerDown => dtl_telemetry::PowerStateId::ActivePowerDown,
            PowerState::PrechargePowerDown => dtl_telemetry::PowerStateId::PrechargePowerDown,
            PowerState::SelfRefresh => dtl_telemetry::PowerStateId::SelfRefresh,
            PowerState::Mpsm => dtl_telemetry::PowerStateId::Mpsm,
        }
    }
}

/// Parameters of the energy model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerParams {
    /// Background power of one rank in standby, in milliwatts
    /// (includes distributed refresh).
    pub standby_mw_per_rank: f64,
    /// Background power factors relative to standby, per state
    /// (Table 2 of the paper for self-refresh and MPSM).
    pub active_powerdown_factor: f64,
    /// See [`PowerParams::active_powerdown_factor`].
    pub precharge_powerdown_factor: f64,
    /// Self-refresh background factor (paper: 0.2).
    pub self_refresh_factor: f64,
    /// MPSM background factor (paper: 0.068).
    pub mpsm_factor: f64,
    /// Energy of one ACT + PRE pair, nanojoules.
    pub act_pre_nj: f64,
    /// Energy of one 64 B read burst, nanojoules.
    pub read_nj: f64,
    /// Energy of one 64 B write burst, nanojoules.
    pub write_nj: f64,
    /// Extra energy per explicit REF command, nanojoules. Zero by default:
    /// distributed refresh is folded into the standby background power, as
    /// in the paper's measurements.
    pub refresh_nj: f64,
}

impl PowerParams {
    /// Calibration for one rank of a 128 GB DDR4-2933 4-rank DIMM
    /// (32 GiB of 16 Gb x4 devices).
    pub fn ddr4_128gb_dimm() -> Self {
        PowerParams {
            standby_mw_per_rank: 1250.0,
            active_powerdown_factor: 0.55,
            precharge_powerdown_factor: 0.35,
            self_refresh_factor: 0.2,
            mpsm_factor: 0.068,
            act_pre_nj: 25.0,
            read_nj: 15.0,
            write_nj: 16.0,
            refresh_nj: 0.0,
        }
    }

    /// Background power (mW) of one rank in `state`.
    #[inline]
    pub fn background_mw(&self, state: PowerState) -> f64 {
        self.standby_mw_per_rank * self.factor(state)
    }

    /// The normalized background factor for `state` (standby = 1.0).
    #[inline]
    pub fn factor(&self, state: PowerState) -> f64 {
        match state {
            PowerState::Standby => 1.0,
            PowerState::ActivePowerDown => self.active_powerdown_factor,
            PowerState::PrechargePowerDown => self.precharge_powerdown_factor,
            PowerState::SelfRefresh => self.self_refresh_factor,
            PowerState::Mpsm => self.mpsm_factor,
        }
    }

    /// Validates that all factors are in `(0, 1]` and energies non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] on out-of-range parameters.
    pub fn validate(&self) -> Result<(), DramError> {
        let factors = [
            ("active_powerdown_factor", self.active_powerdown_factor),
            ("precharge_powerdown_factor", self.precharge_powerdown_factor),
            ("self_refresh_factor", self.self_refresh_factor),
            ("mpsm_factor", self.mpsm_factor),
        ];
        for (name, v) in factors {
            if !(v > 0.0 && v <= 1.0) {
                return Err(DramError::InvalidConfig {
                    reason: format!("{name} = {v} must be in (0, 1]"),
                });
            }
        }
        if self.standby_mw_per_rank <= 0.0 {
            return Err(DramError::InvalidConfig {
                reason: "standby_mw_per_rank must be positive".into(),
            });
        }
        for (name, v) in [
            ("act_pre_nj", self.act_pre_nj),
            ("read_nj", self.read_nj),
            ("write_nj", self.write_nj),
            ("refresh_nj", self.refresh_nj),
        ] {
            if v < 0.0 {
                return Err(DramError::InvalidConfig {
                    reason: format!("{name} must be non-negative"),
                });
            }
        }
        Ok(())
    }
}

/// Accumulated energy of one rank, split by contributor.
///
/// All energies are in millijoules.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankEnergy {
    /// Background energy integrated over power-state residency.
    pub background_mj: f64,
    /// ACT/PRE energy.
    pub activate_mj: f64,
    /// Read burst energy.
    pub read_mj: f64,
    /// Write burst energy.
    pub write_mj: f64,
    /// Explicit REF command energy (zero under the default calibration).
    pub refresh_mj: f64,
}

impl RankEnergy {
    /// Total energy in millijoules.
    #[inline]
    pub fn total_mj(&self) -> f64 {
        self.background_mj + self.active_mj()
    }

    /// Active (event) energy: everything except background.
    #[inline]
    pub fn active_mj(&self) -> f64 {
        self.activate_mj + self.read_mj + self.write_mj + self.refresh_mj
    }

    /// Adds another account onto this one.
    pub fn accumulate(&mut self, other: &RankEnergy) {
        self.background_mj += other.background_mj;
        self.activate_mj += other.activate_mj;
        self.read_mj += other.read_mj;
        self.write_mj += other.write_mj;
        self.refresh_mj += other.refresh_mj;
    }
}

/// Per-rank energy accounting: state residency integration plus event energy.
///
/// # Examples
///
/// ```
/// use dtl_dram::{EnergyAccount, Picos, PowerParams, PowerState};
///
/// let mut acc = EnergyAccount::new(PowerParams::ddr4_128gb_dimm());
/// acc.transition(Picos::from_secs(1), PowerState::SelfRefresh);
/// acc.advance_to(Picos::from_secs(2));
/// // One second standby (1250 mW) + one second self-refresh (250 mW).
/// assert!((acc.energy().background_mj - 1500.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyAccount {
    params: PowerParams,
    state: PowerState,
    state_since: Picos,
    residency_ps: [u64; 5],
    energy: RankEnergy,
}

impl EnergyAccount {
    /// Creates an account for a rank that is in `Standby` at time zero.
    pub fn new(params: PowerParams) -> Self {
        EnergyAccount {
            params,
            state: PowerState::Standby,
            state_since: Picos::ZERO,
            residency_ps: [0; 5],
            energy: RankEnergy::default(),
        }
    }

    /// Current power state.
    #[inline]
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// Integrates background energy up to `now` in the current state.
    ///
    /// Calls with `now` earlier than the last integration point are no-ops:
    /// sampling a power report "in the future" and then continuing to
    /// simulate earlier activity must not double-count.
    pub fn advance_to(&mut self, now: Picos) {
        if now <= self.state_since {
            return;
        }
        let dt = now.saturating_sub(self.state_since);
        self.residency_ps[self.state.index()] += dt.as_ps();
        // mW * ps = 1e-3 W * 1e-12 s = 1e-15 J = 1e-12 mJ.
        self.energy.background_mj +=
            self.params.background_mw(self.state) * dt.as_ps() as f64 * 1e-12;
        self.state_since = now;
    }

    /// Switches power state at `now`, integrating residency first.
    pub fn transition(&mut self, now: Picos, next: PowerState) {
        self.advance_to(now);
        self.state = next;
    }

    /// Records one ACT (+ implied PRE) pair.
    pub fn record_activate(&mut self) {
        self.energy.activate_mj += self.params.act_pre_nj * 1e-6;
    }

    /// Records one 64 B read burst.
    pub fn record_read(&mut self) {
        self.energy.read_mj += self.params.read_nj * 1e-6;
    }

    /// Records one 64 B write burst.
    pub fn record_write(&mut self) {
        self.energy.write_mj += self.params.write_nj * 1e-6;
    }

    /// Records one explicit REF command.
    pub fn record_refresh(&mut self) {
        self.energy.refresh_mj += self.params.refresh_nj * 1e-6;
    }

    /// Records a fractional ACT/PRE pair (analytic models charging an
    /// average row-open rate per access).
    pub fn record_activate_fractional(&mut self, fraction: f64) {
        self.energy.activate_mj += self.params.act_pre_nj * fraction * 1e-6;
    }

    /// Records `n` read bursts at once.
    pub fn record_reads_bulk(&mut self, n: u64) {
        self.energy.read_mj += self.params.read_nj * n as f64 * 1e-6;
    }

    /// Records `n` write bursts at once.
    pub fn record_writes_bulk(&mut self, n: u64) {
        self.energy.write_mj += self.params.write_nj * n as f64 * 1e-6;
    }

    /// Records `n` ACT/PRE pairs at once.
    pub fn record_activates_bulk(&mut self, n: u64) {
        self.energy.activate_mj += self.params.act_pre_nj * n as f64 * 1e-6;
    }

    /// Residency spent in `state`, as integrated so far.
    pub fn residency(&self, state: PowerState) -> Picos {
        Picos::from_ps(self.residency_ps[state.index()])
    }

    /// Time the current state was entered (the last integration point).
    #[inline]
    pub fn state_since(&self) -> Picos {
        self.state_since
    }

    /// Residency per state as if integrated to `now`, *without* mutating the
    /// account, indexed in [`PowerState::ALL`] order. This is the single
    /// source snapshots and reports derive per-rank residency from.
    pub fn residency_to(&self, now: Picos) -> [Picos; 5] {
        let mut out = [Picos::ZERO; 5];
        for (o, ps) in out.iter_mut().zip(self.residency_ps) {
            *o = Picos::from_ps(ps);
        }
        if now > self.state_since {
            let i = self.state.index();
            out[i] += now.saturating_sub(self.state_since);
        }
        out
    }

    /// The energy account integrated so far (call [`EnergyAccount::advance_to`]
    /// first to include time up to "now").
    pub fn energy(&self) -> RankEnergy {
        self.energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_factors_are_the_default() {
        let p = PowerParams::ddr4_128gb_dimm();
        assert_eq!(p.factor(PowerState::Standby), 1.0);
        assert_eq!(p.factor(PowerState::SelfRefresh), 0.2);
        assert_eq!(p.factor(PowerState::Mpsm), 0.068);
        p.validate().unwrap();
    }

    #[test]
    fn mpsm_loses_data_others_do_not() {
        for s in PowerState::ALL {
            assert_eq!(s.retains_data(), s != PowerState::Mpsm);
        }
        assert!(PowerState::Standby.is_operational());
        assert!(!PowerState::SelfRefresh.is_operational());
    }

    #[test]
    fn background_integration_matches_hand_math() {
        let p = PowerParams::ddr4_128gb_dimm();
        let mut acc = EnergyAccount::new(p);
        // One second of standby at 1250 mW = 1250 mJ.
        acc.advance_to(Picos::from_secs(1));
        assert!((acc.energy().background_mj - 1250.0).abs() < 1e-6);
        // Then one second of self-refresh = 250 mJ more.
        acc.transition(Picos::from_secs(1), PowerState::SelfRefresh);
        acc.advance_to(Picos::from_secs(2));
        assert!((acc.energy().background_mj - 1500.0).abs() < 1e-6);
        assert_eq!(acc.residency(PowerState::Standby), Picos::from_secs(1));
        assert_eq!(acc.residency(PowerState::SelfRefresh), Picos::from_secs(1));
    }

    #[test]
    fn event_energy_accumulates() {
        let p = PowerParams::ddr4_128gb_dimm();
        let mut acc = EnergyAccount::new(p);
        for _ in 0..1000 {
            acc.record_activate();
            acc.record_read();
            acc.record_write();
        }
        let e = acc.energy();
        assert!((e.activate_mj - 25.0 * 1e-3).abs() < 1e-9);
        assert!((e.read_mj - 15.0 * 1e-3).abs() < 1e-9);
        assert!((e.write_mj - 16.0 * 1e-3).abs() < 1e-9);
        assert!(e.total_mj() > 0.0);
        assert_eq!(e.total_mj(), e.background_mj + e.active_mj());
    }

    #[test]
    fn residency_to_matches_advance_without_mutating() {
        let p = PowerParams::ddr4_128gb_dimm();
        let mut acc = EnergyAccount::new(p);
        acc.transition(Picos::from_us(3), PowerState::SelfRefresh);
        // Non-mutating projection to t=5us...
        let projected = acc.residency_to(Picos::from_us(5));
        assert_eq!(projected[0], Picos::from_us(3));
        assert_eq!(projected[3], Picos::from_us(2));
        // ...must equal what integration reports, and must not have advanced
        // the account itself.
        assert_eq!(acc.residency(PowerState::SelfRefresh), Picos::ZERO);
        acc.advance_to(Picos::from_us(5));
        assert_eq!(acc.residency(PowerState::SelfRefresh), Picos::from_us(2));
        // Projection earlier than the integration point adds nothing.
        let stale = acc.residency_to(Picos::from_us(4));
        assert_eq!(stale[3], Picos::from_us(2));
    }

    #[test]
    fn telemetry_ids_share_index_order() {
        for (i, s) in PowerState::ALL.iter().enumerate() {
            assert_eq!(s.telemetry_id().index(), i);
            assert_eq!(s.telemetry_id() as usize, i);
        }
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = PowerParams::ddr4_128gb_dimm();
        p.mpsm_factor = 0.0;
        assert!(p.validate().is_err());
        let mut p = PowerParams::ddr4_128gb_dimm();
        p.read_nj = -1.0;
        assert!(p.validate().is_err());
        let mut p = PowerParams::ddr4_128gb_dimm();
        p.standby_mw_per_rank = 0.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn accumulate_sums_componentwise() {
        let mut a = RankEnergy { background_mj: 1.0, activate_mj: 2.0, ..Default::default() };
        let b = RankEnergy { background_mj: 0.5, read_mj: 1.5, ..Default::default() };
        a.accumulate(&b);
        assert!((a.background_mj - 1.5).abs() < 1e-12);
        assert!((a.read_mj - 1.5).abs() < 1e-12);
        assert!((a.activate_mj - 2.0).abs() < 1e-12);
    }
}
