//! DRAM command vocabulary and the command-trace hook used by timing tests.

use serde::{Deserialize, Serialize};

use crate::addr::DecodedAddr;
use crate::time::Picos;

/// A DDR4 command, as issued on a channel's command bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommandKind {
    /// Activate a row (open it into the bank's row buffer).
    Activate,
    /// Precharge (close) one bank.
    Precharge,
    /// Column read burst.
    Read,
    /// Column write burst.
    Write,
    /// All-bank refresh of one rank.
    Refresh,
    /// Self-refresh entry.
    SelfRefreshEnter,
    /// Self-refresh exit.
    SelfRefreshExit,
    /// Maximum power saving mode entry.
    MpsmEnter,
    /// Maximum power saving mode exit.
    MpsmExit,
    /// Power-down entry (CKE low).
    PowerDownEnter,
    /// Power-down exit (CKE high).
    PowerDownExit,
}

/// One issued command with its time and target, for inspection in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IssuedCommand {
    /// Issue time on the command bus.
    pub at: Picos,
    /// What was issued.
    pub kind: CommandKind,
    /// Channel the command was issued on.
    pub channel: u32,
    /// Target rank.
    pub rank: u32,
    /// Target location (rank-level commands carry the rank only; bank/row
    /// fields are zero).
    pub target: DecodedAddr,
}

/// Observer for issued commands. The default no-op observer compiles away.
pub trait CommandSink {
    /// Called for every command the controller issues, in time order per
    /// channel.
    fn on_command(&mut self, cmd: IssuedCommand);
}

/// A sink that discards all commands (the default).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl CommandSink for NullSink {
    #[inline]
    fn on_command(&mut self, _cmd: IssuedCommand) {}
}

/// A sink that records every command, for timing verification in tests.
#[derive(Debug, Default, Clone)]
pub struct RecordingSink {
    /// All commands observed so far, in issue order.
    pub commands: Vec<IssuedCommand>,
}

impl CommandSink for RecordingSink {
    fn on_command(&mut self, cmd: IssuedCommand) {
        self.commands.push(cmd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_sink_records_in_order() {
        let mut sink = RecordingSink::default();
        for i in 0..3 {
            sink.on_command(IssuedCommand {
                at: Picos::from_ns(i),
                kind: CommandKind::Activate,
                channel: 0,
                rank: 0,
                target: DecodedAddr::default(),
            });
        }
        assert_eq!(sink.commands.len(), 3);
        assert!(sink.commands.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn null_sink_is_a_noop() {
        let mut sink = NullSink;
        sink.on_command(IssuedCommand {
            at: Picos::ZERO,
            kind: CommandKind::Refresh,
            channel: 1,
            rank: 2,
            target: DecodedAddr::default(),
        });
    }
}
