//! Simulation time base.
//!
//! The DRAM and CXL simulators measure time in integer **picoseconds**. A
//! DDR4-2933 clock period is 681.8 ps, so picosecond resolution keeps
//! rounding error below 0.03 % while still fitting more than 200 days of
//! simulated time in a `u64`.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in simulated time, or a duration, in picoseconds.
///
/// `Picos` is deliberately a thin newtype: it exists so that cycle counts,
/// nanoseconds, and picoseconds cannot be mixed up across an API boundary.
///
/// # Examples
///
/// ```
/// use dtl_dram::Picos;
///
/// let t = Picos::from_ns(121);
/// assert_eq!(t.as_ps(), 121_000);
/// assert_eq!((t + Picos::from_ns(2)).as_ns_f64(), 123.0);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Picos(u64);

impl Picos {
    /// Time zero / an empty duration.
    pub const ZERO: Picos = Picos(0);
    /// The maximum representable instant; used as "never" by schedulers.
    pub const MAX: Picos = Picos(u64::MAX);

    /// Creates a time value from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Picos(ps)
    }

    /// Creates a time value from integer nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Picos(ns * 1_000)
    }

    /// Creates a time value from integer microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Picos(us * 1_000_000)
    }

    /// Creates a time value from integer milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Picos(ms * 1_000_000_000)
    }

    /// Creates a time value from integer seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Picos(s * 1_000_000_000_000)
    }

    /// Creates a time value from fractional nanoseconds, rounding to the
    /// nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        assert!(ns.is_finite() && ns >= 0.0, "time must be a finite non-negative value");
        Picos((ns * 1_000.0).round() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This time expressed in fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This time expressed in fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This time expressed in fractional milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// This time expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000_000.0
    }

    /// Saturating subtraction; returns [`Picos::ZERO`] instead of wrapping.
    #[inline]
    pub fn saturating_sub(self, rhs: Picos) -> Picos {
        Picos(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow (relevant around [`Picos::MAX`],
    /// which schedulers use as "never").
    #[inline]
    pub fn checked_add(self, rhs: Picos) -> Option<Picos> {
        self.0.checked_add(rhs.0).map(Picos)
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, rhs: Picos) -> Picos {
        Picos(self.0.max(rhs.0))
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, rhs: Picos) -> Picos {
        Picos(self.0.min(rhs.0))
    }
}

impl Add for Picos {
    type Output = Picos;
    #[inline]
    fn add(self, rhs: Picos) -> Picos {
        Picos(self.0 + rhs.0)
    }
}

impl AddAssign for Picos {
    #[inline]
    fn add_assign(&mut self, rhs: Picos) {
        self.0 += rhs.0;
    }
}

impl Sub for Picos {
    type Output = Picos;
    /// # Panics
    ///
    /// Panics in debug builds if the result would be negative.
    #[inline]
    fn sub(self, rhs: Picos) -> Picos {
        Picos(self.0 - rhs.0)
    }
}

impl SubAssign for Picos {
    #[inline]
    fn sub_assign(&mut self, rhs: Picos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Picos {
    type Output = Picos;
    #[inline]
    fn mul(self, rhs: u64) -> Picos {
        Picos(self.0 * rhs)
    }
}

impl Div<u64> for Picos {
    type Output = Picos;
    #[inline]
    fn div(self, rhs: u64) -> Picos {
        Picos(self.0 / rhs)
    }
}

impl Sum for Picos {
    fn sum<I: Iterator<Item = Picos>>(iter: I) -> Picos {
        iter.fold(Picos::ZERO, Add::add)
    }
}

impl fmt::Display for Picos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Picos::from_ns(121).as_ps(), 121_000);
        assert_eq!(Picos::from_us(3).as_ps(), 3_000_000);
        assert_eq!(Picos::from_ms(50).as_ps(), 50_000_000_000);
        assert_eq!(Picos::from_secs(6).as_ps(), 6_000_000_000_000);
        assert_eq!(Picos::from_ns_f64(0.6818).as_ps(), 682);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Picos::from_ns(10);
        let b = Picos::from_ns(4);
        assert_eq!(a + b, Picos::from_ns(14));
        assert_eq!(a - b, Picos::from_ns(6));
        assert_eq!(a * 3, Picos::from_ns(30));
        assert_eq!(a / 2, Picos::from_ns(5));
        assert_eq!(b.saturating_sub(a), Picos::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn sum_of_durations() {
        let total: Picos = (1..=4).map(Picos::from_ns).sum();
        assert_eq!(total, Picos::from_ns(10));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Picos::from_ps(5).to_string(), "5ps");
        assert_eq!(Picos::from_ns(5).to_string(), "5.000ns");
        assert_eq!(Picos::from_us(5).to_string(), "5.000us");
        assert_eq!(Picos::from_ms(5).to_string(), "5.000ms");
        assert_eq!(Picos::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_ns_rejected() {
        let _ = Picos::from_ns_f64(-1.0);
    }
}
