//! DPA bit-mapping policies.
//!
//! Two policies are provided, matching the paper's comparison:
//!
//! * [`AddressMapping::RankInterleaved`] — the conventional server mapping
//!   that interleaves channels at line granularity and ranks at row
//!   granularity to maximize memory-level parallelism. This is the baseline
//!   the paper argues against for power management.
//! * [`AddressMapping::DtlRankMsb`] — the paper's Figure 6 mapping: rank
//!   bits are the **most significant** bits (so a rank fills contiguously
//!   and can be vacated), channels are interleaved at *segment* granularity
//!   (so per-VM channel bandwidth is preserved), and the segment offset maps
//!   row-buffer-friendly within one rank.

use serde::{Deserialize, Serialize};

use crate::addr::{DecodedAddr, PhysAddr};
use crate::config::{Geometry, LINE_BYTES};
use crate::error::DramError;

/// Which bit-mapping policy to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AddressMapping {
    /// Conventional fine-grained interleaving (channel at line granularity,
    /// then column/bank/rank, row on top).
    RankInterleaved,
    /// The paper's mapping (Figure 6): rank bits MSB, channel bits directly
    /// above the segment offset.
    DtlRankMsb {
        /// Segment size in bytes (the paper's default is 2 MiB).
        segment_bytes: u64,
    },
}

impl AddressMapping {
    /// The paper's default: rank-MSB with 2 MiB segments.
    pub fn dtl_default() -> Self {
        AddressMapping::DtlRankMsb { segment_bytes: 2 << 20 }
    }
}

fn log2(v: u64) -> u32 {
    debug_assert!(v.is_power_of_two());
    v.trailing_zeros()
}

/// A bidirectional DPA ⇄ (channel, rank, bank, row, column) translator for
/// a specific geometry and mapping policy.
///
/// # Examples
///
/// ```
/// use dtl_dram::{AddressMapper, AddressMapping, Geometry, PhysAddr};
///
/// let m = AddressMapper::new(Geometry::cxl_1tb(), AddressMapping::dtl_default())?;
/// let d = m.decode(PhysAddr::new(0))?;
/// assert_eq!((d.channel, d.rank), (0, 0));
/// // The very top of the device lands in the last rank: rank bits are MSB.
/// let top = m.decode(PhysAddr::new(m.capacity_bytes() - 64))?;
/// assert_eq!(top.rank, 7);
/// # Ok::<(), dtl_dram::DramError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AddressMapper {
    geometry: Geometry,
    mapping: AddressMapping,
    ch_bits: u32,
    rank_bits: u32,
    bg_bits: u32,
    bank_bits: u32,
    row_bits: u32,
    col_bits: u32,
    /// `DtlRankMsb` only: row bits that live inside the segment offset.
    row_low_bits: u32,
}

impl AddressMapper {
    /// Builds a mapper, validating that the mapping fits the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] if the geometry fails
    /// validation, or if a `DtlRankMsb` segment is smaller than one full
    /// row sweep across all banks of a rank or larger than a rank.
    pub fn new(geometry: Geometry, mapping: AddressMapping) -> Result<Self, DramError> {
        geometry.validate()?;
        let ch_bits = log2(u64::from(geometry.channels));
        let rank_bits = log2(u64::from(geometry.ranks_per_channel));
        let bg_bits = log2(u64::from(geometry.bank_groups));
        let bank_bits = log2(u64::from(geometry.banks_per_group));
        let row_bits = log2(geometry.rows);
        let col_bits = log2(geometry.columns);
        let mut row_low_bits = 0;
        if let AddressMapping::DtlRankMsb { segment_bytes } = mapping {
            if !segment_bytes.is_power_of_two() {
                return Err(DramError::InvalidConfig {
                    reason: format!("segment_bytes = {segment_bytes} must be a power of two"),
                });
            }
            let seg_bits = log2(segment_bytes);
            let below = log2(LINE_BYTES) + col_bits + bg_bits + bank_bits;
            if seg_bits < below {
                return Err(DramError::InvalidConfig {
                    reason: format!(
                        "segment ({segment_bytes} B) smaller than one row sweep across the rank's banks ({} B)",
                        1u64 << below
                    ),
                });
            }
            row_low_bits = seg_bits - below;
            if row_low_bits > row_bits {
                return Err(DramError::InvalidConfig {
                    reason: format!(
                        "segment ({segment_bytes} B) larger than one rank ({} B)",
                        geometry.rank_bytes()
                    ),
                });
            }
        }
        Ok(AddressMapper {
            geometry,
            mapping,
            ch_bits,
            rank_bits,
            bg_bits,
            bank_bits,
            row_bits,
            col_bits,
            row_low_bits,
        })
    }

    /// The geometry this mapper was built for.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The mapping policy in effect.
    pub fn mapping(&self) -> AddressMapping {
        self.mapping
    }

    /// Total capacity covered by the mapping.
    pub fn capacity_bytes(&self) -> u64 {
        self.geometry.capacity_bytes()
    }

    /// Decodes a device physical address to its DRAM coordinates.
    ///
    /// The low 6 bits (offset within the cache line) are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::AddressOutOfRange`] if `addr` exceeds capacity.
    pub fn decode(&self, addr: PhysAddr) -> Result<DecodedAddr, DramError> {
        if addr.as_u64() >= self.capacity_bytes() {
            return Err(DramError::AddressOutOfRange {
                addr: addr.as_u64(),
                capacity: self.capacity_bytes(),
            });
        }
        let mut bits = addr.as_u64() >> log2(LINE_BYTES);
        let mut take = |n: u32| -> u64 {
            let v = bits & ((1u64 << n) - 1);
            bits >>= n;
            v
        };
        let d = match self.mapping {
            AddressMapping::RankInterleaved => {
                // LSB -> MSB: channel | column | bank_group | bank | rank | row
                let channel = take(self.ch_bits) as u32;
                let column = take(self.col_bits);
                let bank_group = take(self.bg_bits) as u32;
                let bank = take(self.bank_bits) as u32;
                let rank = take(self.rank_bits) as u32;
                let row = take(self.row_bits);
                DecodedAddr { channel, rank, bank_group, bank, row, column }
            }
            AddressMapping::DtlRankMsb { .. } => {
                // LSB -> MSB: column | bank_group | bank | row_low | channel
                //             | row_high | rank        (Figure 6)
                let column = take(self.col_bits);
                let bank_group = take(self.bg_bits) as u32;
                let bank = take(self.bank_bits) as u32;
                let row_low = take(self.row_low_bits);
                let channel = take(self.ch_bits) as u32;
                let row_high = take(self.row_bits - self.row_low_bits);
                let rank = take(self.rank_bits) as u32;
                DecodedAddr {
                    channel,
                    rank,
                    bank_group,
                    bank,
                    row: (row_high << self.row_low_bits) | row_low,
                    column,
                }
            }
        };
        debug_assert_eq!(bits, 0, "unconsumed address bits");
        Ok(d)
    }

    /// Encodes DRAM coordinates back to the (line-aligned) device physical
    /// address. Inverse of [`AddressMapper::decode`].
    ///
    /// # Errors
    ///
    /// Returns [`DramError::ComponentOutOfRange`] if any component exceeds
    /// the geometry.
    pub fn encode(&self, d: &DecodedAddr) -> Result<PhysAddr, DramError> {
        let g = &self.geometry;
        if d.channel >= g.channels
            || d.rank >= g.ranks_per_channel
            || d.bank_group >= g.bank_groups
            || d.bank >= g.banks_per_group
            || d.row >= g.rows
            || d.column >= g.columns
        {
            return Err(DramError::ComponentOutOfRange { decoded: *d, geometry: *g });
        }
        let mut bits: u64 = 0;
        let mut shift: u32 = 0;
        let mut put = |v: u64, n: u32| {
            bits |= v << shift;
            shift += n;
        };
        match self.mapping {
            AddressMapping::RankInterleaved => {
                put(u64::from(d.channel), self.ch_bits);
                put(d.column, self.col_bits);
                put(u64::from(d.bank_group), self.bg_bits);
                put(u64::from(d.bank), self.bank_bits);
                put(u64::from(d.rank), self.rank_bits);
                put(d.row, self.row_bits);
            }
            AddressMapping::DtlRankMsb { .. } => {
                let row_low = d.row & ((1u64 << self.row_low_bits) - 1);
                let row_high = d.row >> self.row_low_bits;
                put(d.column, self.col_bits);
                put(u64::from(d.bank_group), self.bg_bits);
                put(u64::from(d.bank), self.bank_bits);
                put(row_low, self.row_low_bits);
                put(u64::from(d.channel), self.ch_bits);
                put(row_high, self.row_bits - self.row_low_bits);
                put(u64::from(d.rank), self.rank_bits);
            }
        }
        Ok(PhysAddr::new(bits << log2(LINE_BYTES)))
    }

    /// For `DtlRankMsb`, the segment index of `addr` within its (channel,
    /// rank); for `RankInterleaved` this is not meaningful and returns the
    /// plain division by segment size.
    pub fn segment_of(&self, addr: PhysAddr, segment_bytes: u64) -> u64 {
        addr.as_u64() / segment_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mappers() -> Vec<AddressMapper> {
        vec![
            AddressMapper::new(Geometry::cxl_1tb(), AddressMapping::RankInterleaved).unwrap(),
            AddressMapper::new(Geometry::cxl_1tb(), AddressMapping::dtl_default()).unwrap(),
            AddressMapper::new(Geometry::tiny(), AddressMapping::RankInterleaved).unwrap(),
            AddressMapper::new(
                Geometry::tiny(),
                AddressMapping::DtlRankMsb { segment_bytes: 256 << 10 },
            )
            .unwrap(),
        ]
    }

    #[test]
    fn decode_rejects_out_of_range() {
        for m in mappers() {
            let cap = m.capacity_bytes();
            assert!(m.decode(PhysAddr::new(cap)).is_err());
            assert!(m.decode(PhysAddr::new(cap - 64)).is_ok());
        }
    }

    #[test]
    fn encode_rejects_bad_components() {
        let m = &mappers()[0];
        let mut d = m.decode(PhysAddr::new(0)).unwrap();
        d.rank = 99;
        assert!(m.encode(&d).is_err());
    }

    #[test]
    fn round_trip_spot_checks() {
        for m in mappers() {
            for addr in [0u64, 64, 4096, 1 << 21, (1 << 21) + 64, m.capacity_bytes() - 64] {
                let a = PhysAddr::new(addr);
                let d = m.decode(a).unwrap();
                assert_eq!(m.encode(&d).unwrap(), a, "mapping {:?} addr {addr:#x}", m.mapping());
            }
        }
    }

    #[test]
    fn rank_interleaved_spreads_channels_at_line_granularity() {
        let m = AddressMapper::new(Geometry::cxl_1tb(), AddressMapping::RankInterleaved).unwrap();
        let d0 = m.decode(PhysAddr::new(0)).unwrap();
        let d1 = m.decode(PhysAddr::new(64)).unwrap();
        assert_ne!(d0.channel, d1.channel);
    }

    #[test]
    fn dtl_mapping_puts_rank_bits_msb() {
        let m = AddressMapper::new(Geometry::cxl_1tb(), AddressMapping::dtl_default()).unwrap();
        // The first 256 GB (8 rank-slots of 32 GB across 4 channels... i.e.
        // the bottom 1/8th of the device) must all be rank 0.
        for addr in (0..(1u64 << 37)).step_by(1 << 33) {
            assert_eq!(m.decode(PhysAddr::new(addr)).unwrap().rank, 0);
        }
        // The top 1/8th must be the last rank.
        let top = m.capacity_bytes() - (1 << 37);
        for off in (0..(1u64 << 37)).step_by(1 << 33) {
            assert_eq!(m.decode(PhysAddr::new(top + off)).unwrap().rank, 7);
        }
    }

    #[test]
    fn dtl_mapping_interleaves_channels_at_segment_granularity() {
        let m = AddressMapper::new(Geometry::cxl_1tb(), AddressMapping::dtl_default()).unwrap();
        let seg = 2u64 << 20;
        let within = m.decode(PhysAddr::new(seg - 64)).unwrap();
        let first = m.decode(PhysAddr::new(0)).unwrap();
        assert_eq!(first.channel, within.channel, "a segment stays in one channel");
        let next = m.decode(PhysAddr::new(seg)).unwrap();
        assert_eq!(next.channel, first.channel + 1, "adjacent segments alternate channels");
        assert_eq!(next.rank, first.rank);
    }

    #[test]
    fn dtl_segment_is_row_buffer_friendly() {
        let m = AddressMapper::new(Geometry::cxl_1tb(), AddressMapping::dtl_default()).unwrap();
        // First 8 KiB of a segment stays within one row of one bank.
        let d0 = m.decode(PhysAddr::new(0)).unwrap();
        let d1 = m.decode(PhysAddr::new(8 * 1024 - 64)).unwrap();
        assert_eq!((d0.row, d0.bank_group, d0.bank), (d1.row, d1.bank_group, d1.bank));
        // The next 8 KiB moves to another bank (bank-level parallelism).
        let d2 = m.decode(PhysAddr::new(8 * 1024)).unwrap();
        assert_ne!((d0.bank_group, d0.bank), (d2.bank_group, d2.bank));
    }

    #[test]
    fn segment_too_small_rejected() {
        // One row sweep across 16 banks of 8 KiB rows = 128 KiB minimum.
        let err = AddressMapper::new(
            Geometry::cxl_1tb(),
            AddressMapping::DtlRankMsb { segment_bytes: 64 << 10 },
        );
        assert!(err.is_err());
    }

    #[test]
    fn segment_larger_than_rank_rejected() {
        let err = AddressMapper::new(
            Geometry::tiny(),
            AddressMapping::DtlRankMsb { segment_bytes: 1 << 40 },
        );
        assert!(err.is_err());
    }

    #[test]
    fn non_power_of_two_segment_rejected() {
        let err = AddressMapper::new(
            Geometry::cxl_1tb(),
            AddressMapping::DtlRankMsb { segment_bytes: 3 << 20 },
        );
        assert!(err.is_err());
    }
}
