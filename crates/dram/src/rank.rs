//! Per-rank state: banks, rank-wide timing windows, power state, refresh
//! bookkeeping, and activity counters.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::bank::Bank;
use crate::config::{Geometry, TimingParams};
use crate::error::DramError;
use crate::power::{EnergyAccount, PowerParams, PowerState};
use crate::time::Picos;

/// Per-rank activity counters, used by the DTL hotness profiler and by the
/// evaluation harness.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankCounters {
    /// ACT commands issued.
    pub activates: u64,
    /// Read bursts served.
    pub reads: u64,
    /// Write bursts served.
    pub writes: u64,
    /// Row-buffer hits among reads+writes.
    pub row_hits: u64,
    /// All-bank REF commands issued.
    pub refreshes: u64,
    /// Self-refresh exits.
    pub self_refresh_exits: u64,
    /// MPSM exits.
    pub mpsm_exits: u64,
}

/// One rank: a set of banks operated in tandem behind a chip select, the
/// power-state granularity of commodity DRAM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Rank {
    banks: Vec<Bank>,
    banks_per_group: u32,
    /// Cached tRRD_S in picoseconds (used on the hot ACT path).
    trrd_s: Picos,
    /// Cached tRRD_L in picoseconds.
    trrd_l: Picos,
    /// Sliding window of the last four ACT issue times (tFAW).
    faw: VecDeque<Picos>,
    /// Earliest next ACT per bank group (set to `last ACT + tRRD_L` for the
    /// activated group).
    act_ready_bg: Vec<Picos>,
    /// Earliest next ACT anywhere in the rank (`last ACT + tRRD_S`).
    act_ready_any: Picos,
    /// Earliest next CAS per bank group (tCCD_L).
    cas_ready_bg: Vec<Picos>,
    /// Earliest next CAS anywhere in the rank (tCCD_S).
    cas_ready_any: Picos,
    /// Earliest read after a write to the same bank group (tWTR_L).
    rd_after_wr_bg: Vec<Picos>,
    /// Earliest read after a write anywhere in the rank (tWTR_S).
    rd_after_wr_any: Picos,
    /// Rank unavailable until this time (REF in progress, power-state
    /// entry/exit sequences).
    busy_until: Picos,
    /// Next refresh deadline.
    refresh_due: Picos,
    state: PowerState,
    energy: EnergyAccount,
    counters: RankCounters,
}

impl Rank {
    /// A standby rank with all banks closed, refresh due one tREFI from zero.
    pub fn new(geometry: &Geometry, timing: &TimingParams, power: PowerParams) -> Self {
        let n_banks = geometry.banks_per_rank() as usize;
        let n_groups = geometry.bank_groups as usize;
        Rank {
            banks: vec![Bank::new(); n_banks],
            banks_per_group: geometry.banks_per_group,
            trrd_s: timing.cycles(timing.trrd_s),
            trrd_l: timing.cycles(timing.trrd_l),
            faw: VecDeque::with_capacity(4),
            act_ready_bg: vec![Picos::ZERO; n_groups],
            act_ready_any: Picos::ZERO,
            cas_ready_bg: vec![Picos::ZERO; n_groups],
            cas_ready_any: Picos::ZERO,
            rd_after_wr_bg: vec![Picos::ZERO; n_groups],
            rd_after_wr_any: Picos::ZERO,
            busy_until: Picos::ZERO,
            refresh_due: timing.cycles(timing.trefi),
            state: PowerState::Standby,
            energy: EnergyAccount::new(power),
            counters: RankCounters::default(),
        }
    }

    /// Access a bank by flat index.
    #[inline]
    pub fn bank(&self, flat: u32) -> &Bank {
        &self.banks[flat as usize]
    }

    /// Mutable access to a bank by flat index.
    #[inline]
    pub fn bank_mut(&mut self, flat: u32) -> &mut Bank {
        &mut self.banks[flat as usize]
    }

    /// Flat bank index from (bank_group, bank).
    #[inline]
    pub fn flat_bank(&self, bank_group: u32, bank: u32) -> u32 {
        bank_group * self.banks_per_group + bank
    }

    /// Total number of banks in the rank.
    #[inline]
    pub fn bank_count(&self) -> u32 {
        self.banks.len() as u32
    }

    /// Current power state.
    #[inline]
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// Time until which the rank cannot accept commands.
    #[inline]
    pub fn busy_until(&self) -> Picos {
        self.busy_until
    }

    /// Next refresh deadline.
    #[inline]
    pub fn refresh_due(&self) -> Picos {
        self.refresh_due
    }

    /// Activity counters.
    #[inline]
    pub fn counters(&self) -> &RankCounters {
        &self.counters
    }

    /// The rank's energy account (integrate with
    /// [`Rank::integrate_energy_to`] before reading).
    #[inline]
    pub fn energy(&self) -> &EnergyAccount {
        &self.energy
    }

    /// Whether any bank holds an open row.
    pub fn any_bank_open(&self) -> bool {
        self.banks.iter().any(|b| b.open_row().is_some())
    }

    /// Latest `pre_ready` over open banks (the time by which all banks could
    /// have been precharged), or `now` if all banks are already closed.
    pub fn all_banks_closed_by(&self, now: Picos, timing: &TimingParams) -> Picos {
        let mut t = now;
        for b in &self.banks {
            if b.open_row().is_some() {
                // PRE can issue at pre_ready; bank closed tRP later.
                t = t.max(b.pre_ready().max(now) + timing.cycles(timing.trp));
            }
        }
        t
    }

    /// Earliest time an ACT targeting `bank_group` may issue, considering
    /// tRRD_S/L, tFAW, and rank availability (not bank-local tRP).
    pub fn act_constraint(&self, bank_group: u32, timing: &TimingParams) -> Picos {
        let mut t = self.busy_until;
        t = t.max(self.act_ready_any);
        t = t.max(self.act_ready_bg[bank_group as usize]);
        if self.faw.len() == 4 {
            t = t.max(self.faw[0] + timing.cycles(timing.tfaw));
        }
        t
    }

    /// Earliest time a CAS (RD/WR) targeting `bank_group` may issue,
    /// considering tCCD_S/L, tWTR (reads only), and rank availability.
    pub fn cas_constraint(&self, bank_group: u32, is_read: bool, timing: &TimingParams) -> Picos {
        let _ = timing;
        let mut t = self.busy_until;
        t = t.max(self.cas_ready_any);
        t = t.max(self.cas_ready_bg[bank_group as usize]);
        if is_read {
            t = t.max(self.rd_after_wr_any);
            t = t.max(self.rd_after_wr_bg[bank_group as usize]);
        }
        t
    }

    /// Records an ACT issued at `at` to `bank_group`.
    pub fn note_activate(&mut self, at: Picos, bank_group: u32) {
        self.act_ready_any = at + self.trrd_s;
        self.act_ready_bg[bank_group as usize] = at + self.trrd_l;
        if self.faw.len() == 4 {
            self.faw.pop_front();
        }
        self.faw.push_back(at);
        self.counters.activates += 1;
        self.energy.record_activate();
    }

    /// Records a CAS issued at `at` to `bank_group`; `data_end` is when the
    /// burst finishes on the bus.
    pub fn note_cas(
        &mut self,
        at: Picos,
        bank_group: u32,
        is_read: bool,
        data_end: Picos,
        row_hit: bool,
        timing: &TimingParams,
    ) {
        self.cas_ready_any = self.cas_ready_any.max(at + timing.cycles(timing.tccd_s));
        let bg = bank_group as usize;
        self.cas_ready_bg[bg] = self.cas_ready_bg[bg].max(at + timing.cycles(timing.tccd_l));
        if is_read {
            self.counters.reads += 1;
            self.energy.record_read();
        } else {
            self.counters.writes += 1;
            self.energy.record_write();
            self.rd_after_wr_any =
                self.rd_after_wr_any.max(data_end + timing.cycles(timing.twtr_s));
            self.rd_after_wr_bg[bg] =
                self.rd_after_wr_bg[bg].max(data_end + timing.cycles(timing.twtr_l));
        }
        if row_hit {
            self.counters.row_hits += 1;
        }
    }

    /// Performs one all-bank REF starting at `start` (caller guarantees all
    /// banks closed and `start >= busy_until`).
    pub fn do_refresh(&mut self, start: Picos, timing: &TimingParams) {
        debug_assert!(!self.any_bank_open(), "REF with open banks");
        debug_assert!(start >= self.busy_until);
        self.busy_until = start + timing.cycles(timing.trfc);
        self.refresh_due += timing.cycles(timing.trefi);
        self.counters.refreshes += 1;
        self.energy.record_refresh();
    }

    /// Batch-processes `n` refreshes that happened while the channel was
    /// idle, without simulating each (the deadline bookkeeping and energy
    /// are identical; timing cannot matter because nothing was queued).
    pub fn do_idle_refreshes(&mut self, n: u64, timing: &TimingParams) {
        self.refresh_due += timing.cycles(timing.trefi) * n;
        self.counters.refreshes += n;
        for _ in 0..n.min(1_000_000) {
            self.energy.record_refresh();
        }
    }

    /// Requests a power-state transition at `now`.
    ///
    /// Legal transitions (the [`crate::transition_is_legal`] graph):
    /// * `Standby` → any low-power state (banks must be closed for
    ///   `SelfRefresh` / `Mpsm` / `PrechargePowerDown`);
    /// * any low-power state → `Standby` (pays the exit latency by making
    ///   the rank busy until the exit completes);
    /// * one rung down the data-retaining ladder (`ActivePowerDown` →
    ///   `PrechargePowerDown` → `SelfRefresh`), paying the shallower
    ///   state's exit (tXP) plus the deeper entry, precharging on the way.
    ///
    /// Returns the time at which the rank reaches the new state.
    ///
    /// # Errors
    ///
    /// [`DramError::IllegalPowerTransition`] for transitions off the graph
    /// (rung-skipping, promotions that bypass `Standby`, and anything into
    /// or out of `Mpsm` except via `Standby`).
    pub fn transition(
        &mut self,
        now: Picos,
        next: PowerState,
        timing: &TimingParams,
    ) -> Result<Picos, DramError> {
        if self.state == next {
            return Ok(now);
        }
        let start = now.max(self.busy_until);
        match (self.state, next) {
            (PowerState::Standby, PowerState::SelfRefresh)
            | (PowerState::Standby, PowerState::Mpsm)
            | (PowerState::Standby, PowerState::PrechargePowerDown) => {
                // Deep states need all banks precharged: the controller
                // issues the implied PREA first and waits it out.
                let start = if self.any_bank_open() {
                    let closed = self.all_banks_closed_by(start, timing);
                    for b in &mut self.banks {
                        b.force_close(closed);
                    }
                    closed
                } else {
                    start
                };
                let at = start + timing.cycles(timing.tcke);
                self.energy.transition(at, next);
                self.state = next;
                self.busy_until = at;
                Ok(at)
            }
            (PowerState::Standby, PowerState::ActivePowerDown) => {
                let at = start + timing.cycles(timing.tcke);
                self.energy.transition(at, next);
                self.state = next;
                self.busy_until = at;
                Ok(at)
            }
            (PowerState::ActivePowerDown, PowerState::PrechargePowerDown)
            | (PowerState::PrechargePowerDown, PowerState::SelfRefresh) => {
                // One rung down the ladder: implicit exit of the shallower
                // state (tXP), an implied PREA for any banks left open, then
                // the deeper entry (tCKE).
                let start = start + timing.cycles(timing.txp);
                let start = if self.any_bank_open() {
                    let closed = self.all_banks_closed_by(start, timing);
                    for b in &mut self.banks {
                        b.force_close(closed);
                    }
                    closed
                } else {
                    start
                };
                let at = start + timing.cycles(timing.tcke);
                self.energy.transition(at, next);
                self.state = next;
                self.busy_until = at;
                Ok(at)
            }
            (from, PowerState::Standby) => {
                let exit_cycles = match from {
                    PowerState::SelfRefresh => timing.txs,
                    PowerState::Mpsm => timing.txmpsm,
                    PowerState::ActivePowerDown | PowerState::PrechargePowerDown => timing.txp,
                    PowerState::Standby => unreachable!("handled above"),
                };
                let at = start + timing.cycles(exit_cycles);
                self.energy.transition(at, PowerState::Standby);
                self.state = PowerState::Standby;
                self.busy_until = at;
                match from {
                    PowerState::SelfRefresh => {
                        self.counters.self_refresh_exits += 1;
                        // Internal refresh kept the array alive; restart the
                        // external refresh clock.
                        self.refresh_due = at + timing.cycles(timing.trefi);
                    }
                    PowerState::Mpsm => {
                        self.counters.mpsm_exits += 1;
                        for b in &mut self.banks {
                            b.force_close(at);
                        }
                        self.refresh_due = at + timing.cycles(timing.trefi);
                    }
                    _ => {}
                }
                Ok(at)
            }
            (from, to) => {
                debug_assert!(
                    !crate::policy::transition_is_legal(from, to),
                    "state machine drifted from the transition graph: {from:?} -> {to:?}"
                );
                Err(DramError::IllegalPowerTransition {
                    reason: format!("cannot move {from:?} -> {to:?} without passing Standby"),
                })
            }
        }
    }

    /// Integrates background energy up to `now`.
    pub fn integrate_energy_to(&mut self, now: Picos) {
        self.energy.advance_to(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Geometry;
    use crate::power::PowerParams;

    fn rank() -> (Rank, TimingParams) {
        let t = TimingParams::ddr4_2933();
        (Rank::new(&Geometry::tiny(), &t, PowerParams::ddr4_128gb_dimm()), t)
    }

    #[test]
    fn faw_limits_fifth_activate() {
        let (mut r, t) = rank();
        let gap = t.cycles(t.trrd_l); // generous per-ACT spacing
        let mut at = Picos::ZERO;
        for i in 0..4 {
            // alternate bank groups so tRRD_S is the binding constraint
            let bg = i % 4;
            at = r.act_constraint(bg, &t).max(at);
            r.note_activate(at, bg);
            at += gap;
        }
        let fifth = r.act_constraint(0, &t);
        let first = Picos::ZERO;
        assert!(fifth >= first + t.cycles(t.tfaw), "tFAW must gate the 5th ACT");
    }

    #[test]
    fn trrd_separates_activates() {
        let (mut r, t) = rank();
        r.note_activate(Picos::ZERO, 0);
        assert_eq!(r.act_constraint(1, &t), t.cycles(t.trrd_s));
        assert_eq!(r.act_constraint(0, &t), t.cycles(t.trrd_l));
    }

    #[test]
    fn write_to_read_turnaround() {
        let (mut r, t) = rank();
        let data_end = Picos::from_ns(50);
        r.note_cas(Picos::ZERO, 0, false, data_end, false, &t);
        let rd0 = r.cas_constraint(0, true, &t);
        let rd1 = r.cas_constraint(1, true, &t);
        assert_eq!(rd0, data_end + t.cycles(t.twtr_l));
        assert_eq!(rd1, data_end + t.cycles(t.twtr_s));
        // Writes are not gated by tWTR.
        let wr = r.cas_constraint(1, false, &t);
        assert_eq!(wr, t.cycles(t.tccd_s));
    }

    #[test]
    fn refresh_advances_deadline_and_blocks_rank() {
        let (mut r, t) = rank();
        let due = r.refresh_due();
        r.do_refresh(due, &t);
        assert_eq!(r.busy_until(), due + t.cycles(t.trfc));
        assert_eq!(r.refresh_due(), due + t.cycles(t.trefi));
        assert_eq!(r.counters().refreshes, 1);
    }

    #[test]
    fn idle_refresh_batches() {
        let (mut r, t) = rank();
        let due = r.refresh_due();
        r.do_idle_refreshes(10, &t);
        assert_eq!(r.refresh_due(), due + t.cycles(t.trefi) * 10);
        assert_eq!(r.counters().refreshes, 10);
    }

    #[test]
    fn self_refresh_round_trip() {
        let (mut r, t) = rank();
        let entered = r.transition(Picos::from_us(1), PowerState::SelfRefresh, &t).unwrap();
        assert_eq!(r.state(), PowerState::SelfRefresh);
        let exited = r.transition(entered + Picos::from_ms(5), PowerState::Standby, &t).unwrap();
        assert_eq!(r.state(), PowerState::Standby);
        assert_eq!(exited, entered + Picos::from_ms(5) + t.cycles(t.txs));
        assert_eq!(r.counters().self_refresh_exits, 1);
        // Refresh clock restarted relative to the exit.
        assert_eq!(r.refresh_due(), exited + t.cycles(t.trefi));
    }

    #[test]
    fn mpsm_exit_pays_long_latency_and_closes_banks() {
        let (mut r, t) = rank();
        r.transition(Picos::ZERO, PowerState::Mpsm, &t).unwrap();
        let at = r.transition(Picos::from_ms(1), PowerState::Standby, &t).unwrap();
        assert!(at >= Picos::from_ms(1) + t.cycles(t.txmpsm));
        assert_eq!(r.counters().mpsm_exits, 1);
        assert!(!r.any_bank_open());
    }

    #[test]
    fn deep_entry_with_open_bank_precharges_first() {
        let (mut r, t) = rank();
        r.bank_mut(0).do_activate(Picos::ZERO, 3, &t);
        let now = Picos::from_us(1);
        let at = r.transition(now, PowerState::SelfRefresh, &t).unwrap();
        // The implied PREA costs at least tRP beyond a clean entry.
        assert!(at >= now + t.cycles(t.trp) + t.cycles(t.tcke), "entry at {at}");
        assert!(!r.any_bank_open());
        assert_eq!(r.state(), PowerState::SelfRefresh);
    }

    #[test]
    fn low_to_low_transition_rejected() {
        let (mut r, t) = rank();
        r.transition(Picos::ZERO, PowerState::SelfRefresh, &t).unwrap();
        assert!(r.transition(Picos::from_us(1), PowerState::Mpsm, &t).is_err());
    }

    #[test]
    fn ladder_demotion_walks_apd_ppd_sr() {
        let (mut r, t) = rank();
        let entered = r.transition(Picos::ZERO, PowerState::ActivePowerDown, &t).unwrap();
        assert_eq!(entered, t.cycles(t.tcke));
        // APD -> PPD pays the tXP exit plus the tCKE entry.
        let ppd = r.transition(Picos::from_us(1), PowerState::PrechargePowerDown, &t).unwrap();
        assert_eq!(ppd, Picos::from_us(1) + t.cycles(t.txp) + t.cycles(t.tcke));
        assert_eq!(r.state(), PowerState::PrechargePowerDown);
        // PPD -> SR, same shape.
        let sr = r.transition(Picos::from_us(2), PowerState::SelfRefresh, &t).unwrap();
        assert_eq!(sr, Picos::from_us(2) + t.cycles(t.txp) + t.cycles(t.tcke));
        assert_eq!(r.state(), PowerState::SelfRefresh);
        // Promotion down at the bottom only exits to Standby.
        assert!(r.transition(Picos::from_us(3), PowerState::PrechargePowerDown, &t).is_err());
    }

    #[test]
    fn apd_to_ppd_precharges_open_banks_on_the_way() {
        let (mut r, t) = rank();
        r.bank_mut(1).do_activate(Picos::ZERO, 5, &t);
        r.transition(Picos::from_ns(20), PowerState::ActivePowerDown, &t).unwrap();
        assert!(r.any_bank_open(), "APD keeps banks open");
        let at = r.transition(Picos::from_us(1), PowerState::PrechargePowerDown, &t).unwrap();
        assert!(!r.any_bank_open(), "PPD requires all banks precharged");
        assert!(at >= Picos::from_us(1) + t.cycles(t.txp) + t.cycles(t.trp) + t.cycles(t.tcke));
    }

    #[test]
    fn rung_skipping_rejected() {
        let (mut r, t) = rank();
        r.transition(Picos::ZERO, PowerState::ActivePowerDown, &t).unwrap();
        assert!(r.transition(Picos::from_us(1), PowerState::SelfRefresh, &t).is_err());
        assert!(r.transition(Picos::from_us(1), PowerState::Mpsm, &t).is_err());
    }

    #[test]
    fn transition_to_same_state_is_noop() {
        let (mut r, t) = rank();
        let at = r.transition(Picos::from_us(3), PowerState::Standby, &t).unwrap();
        assert_eq!(at, Picos::from_us(3));
    }

    #[test]
    fn all_banks_closed_by_accounts_for_open_banks() {
        let (mut r, t) = rank();
        let now = Picos::from_ns(10);
        assert_eq!(r.all_banks_closed_by(now, &t), now);
        r.bank_mut(2).do_activate(Picos::ZERO, 1, &t);
        let closed = r.all_banks_closed_by(now, &t);
        assert_eq!(closed, t.cycles(t.tras) + t.cycles(t.trp));
    }
}
