//! Memory requests submitted to the device and their completions.

use serde::{Deserialize, Serialize};

use crate::addr::PhysAddr;
use crate::time::Picos;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// 64 B read burst.
    Read,
    /// 64 B write burst.
    Write,
}

impl AccessKind {
    /// `true` for [`AccessKind::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// Scheduling class of a request (§4.2 of the paper: migration traffic must
/// never delay foreground traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Priority {
    /// Host-issued traffic; always scheduled first.
    Foreground,
    /// DTL-internal segment migration traffic; issues only when the
    /// foreground queue of the same channel is empty.
    Migration,
}

/// A 64 B memory request addressed by device physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRequest {
    /// Caller-chosen identifier, echoed in the completion.
    pub id: u64,
    /// Device physical address (line-aligned internally).
    pub addr: PhysAddr,
    /// Read or write.
    pub kind: AccessKind,
    /// Arrival time at the device controller.
    pub arrival: Picos,
    /// Scheduling class.
    pub priority: Priority,
}

/// Completion record for a finished request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Completion {
    /// The identifier from the originating [`MemRequest`].
    pub id: u64,
    /// Time the data burst finished on the channel.
    pub finished: Picos,
    /// The request's arrival time (for latency computation).
    pub arrival: Picos,
    /// Scheduling class of the originating request.
    pub priority: Priority,
}

impl Completion {
    /// Queueing + service latency of the request.
    #[inline]
    pub fn latency(&self) -> Picos {
        self.finished - self.arrival
    }
}

/// Aggregated latency statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Completed request count.
    pub count: u64,
    /// Sum of latencies (ps).
    pub sum_ps: u128,
    /// Maximum observed latency.
    pub max: Picos,
    /// Minimum observed latency ([`Picos::MAX`] until the first sample).
    pub min: Picos,
}

impl LatencyStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        LatencyStats { count: 0, sum_ps: 0, max: Picos::ZERO, min: Picos::MAX }
    }

    /// Adds one latency sample.
    pub fn record(&mut self, latency: Picos) {
        self.count += 1;
        self.sum_ps += u128::from(latency.as_ps());
        self.max = self.max.max(latency);
        self.min = self.min.min(latency);
    }

    /// Mean latency, or zero if empty.
    pub fn mean(&self) -> Picos {
        if self.count == 0 {
            Picos::ZERO
        } else {
            Picos::from_ps((self.sum_ps / u128::from(self.count)) as u64)
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum_ps += other.sum_ps;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_latency() {
        let c = Completion {
            id: 1,
            finished: Picos::from_ns(150),
            arrival: Picos::from_ns(100),
            priority: Priority::Foreground,
        };
        assert_eq!(c.latency(), Picos::from_ns(50));
    }

    #[test]
    fn latency_stats_mean_max_min() {
        let mut s = LatencyStats::new();
        assert_eq!(s.mean(), Picos::ZERO);
        for ns in [10, 20, 30] {
            s.record(Picos::from_ns(ns));
        }
        assert_eq!(s.count, 3);
        assert_eq!(s.mean(), Picos::from_ns(20));
        assert_eq!(s.max, Picos::from_ns(30));
        assert_eq!(s.min, Picos::from_ns(10));
    }

    #[test]
    fn latency_stats_merge() {
        let mut a = LatencyStats::new();
        a.record(Picos::from_ns(10));
        let mut b = LatencyStats::new();
        b.record(Picos::from_ns(30));
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert_eq!(a.mean(), Picos::from_ns(20));
        let empty = LatencyStats::new();
        a.merge(&empty);
        assert_eq!(a.count, 2);
    }

    #[test]
    fn access_kind_predicate() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
    }
}
