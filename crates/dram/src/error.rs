//! Error type for the DRAM simulator.

use core::fmt;

use crate::addr::DecodedAddr;
use crate::config::Geometry;

/// Errors reported by the DRAM simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DramError {
    /// A physical address decodes outside the configured geometry.
    AddressOutOfRange {
        /// The offending device physical address.
        addr: u64,
        /// Total capacity in bytes of the configured device.
        capacity: u64,
    },
    /// A decoded address component exceeds the geometry (indicates a broken
    /// custom mapping).
    ComponentOutOfRange {
        /// The decoded address that failed validation.
        decoded: DecodedAddr,
        /// The geometry it was validated against.
        geometry: Geometry,
    },
    /// A rank power-state transition was requested that is not legal from
    /// the current state (e.g. entering self-refresh with open banks).
    IllegalPowerTransition {
        /// Human-readable reason.
        reason: String,
    },
    /// The configuration failed validation.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::AddressOutOfRange { addr, capacity } => {
                write!(f, "address {addr:#x} outside device capacity {capacity:#x}")
            }
            DramError::ComponentOutOfRange { decoded, geometry } => {
                write!(f, "decoded address {decoded:?} outside geometry {geometry:?}")
            }
            DramError::IllegalPowerTransition { reason } => {
                write!(f, "illegal power transition: {reason}")
            }
            DramError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl std::error::Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DramError::AddressOutOfRange { addr: 0x1000, capacity: 0x100 };
        assert!(e.to_string().contains("0x1000"));
        let e = DramError::InvalidConfig { reason: "zero channels".into() };
        assert!(e.to_string().contains("zero channels"));
    }
}
