//! Device physical addresses and their decoded form.

use core::fmt;

use serde::{Deserialize, Serialize};

/// A DRAM **device physical address** (DPA) in bytes.
///
/// This is the address space *behind* the DTL indirection: what the device's
/// internal memory controllers see. Host physical addresses live in
/// `dtl-core` as a separate newtype so the two can never be mixed up.
///
/// # Examples
///
/// ```
/// use dtl_dram::PhysAddr;
///
/// let a = PhysAddr::new(0x4000_0040);
/// assert_eq!(a.line_index(), 0x4000_0040 / 64);
/// assert_eq!(a.align_down_to_line(), PhysAddr::new(0x4000_0040));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates an address from a raw byte offset.
    #[inline]
    pub const fn new(addr: u64) -> Self {
        PhysAddr(addr)
    }

    /// Raw byte offset.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The 64 B cache-line index containing this address.
    #[inline]
    pub const fn line_index(self) -> u64 {
        self.0 >> 6
    }

    /// This address rounded down to its cache line.
    #[inline]
    pub const fn align_down_to_line(self) -> PhysAddr {
        PhysAddr(self.0 & !63)
    }

    /// Byte offset plus `bytes`.
    #[inline]
    pub const fn offset(self, bytes: u64) -> PhysAddr {
        PhysAddr(self.0 + bytes)
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        PhysAddr(v)
    }
}

impl From<PhysAddr> for u64 {
    fn from(v: PhysAddr) -> Self {
        v.0
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#012x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

/// A fully decoded DRAM location.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DecodedAddr {
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// Bank group within the rank.
    pub bank_group: u32,
    /// Bank within the bank group.
    pub bank: u32,
    /// Row within the bank.
    pub row: u64,
    /// Column, in cache-line units within the row.
    pub column: u64,
}

impl DecodedAddr {
    /// Flat bank index within the rank (`bank_group * banks_per_group + bank`).
    #[inline]
    pub fn flat_bank(&self, banks_per_group: u32) -> u32 {
        self.bank_group * banks_per_group + self.bank
    }
}

impl fmt::Display for DecodedAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{}/rk{}/bg{}/bk{}/row{:#x}/col{}",
            self.channel, self.rank, self.bank_group, self.bank, self.row, self.column
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_arithmetic() {
        let a = PhysAddr::new(130);
        assert_eq!(a.line_index(), 2);
        assert_eq!(a.align_down_to_line(), PhysAddr::new(128));
        assert_eq!(a.offset(62).as_u64(), 192);
    }

    #[test]
    fn conversions() {
        let a: PhysAddr = 0xdead_beef_u64.into();
        let v: u64 = a.into();
        assert_eq!(v, 0xdead_beef);
    }

    #[test]
    fn display_formats() {
        let a = PhysAddr::new(0xabc);
        assert_eq!(a.to_string(), "0x0000000abc");
        assert_eq!(format!("{a:x}"), "abc");
        assert_eq!(format!("{a:X}"), "ABC");
        let d = DecodedAddr { channel: 1, rank: 2, bank_group: 3, bank: 0, row: 16, column: 5 };
        assert_eq!(d.to_string(), "ch1/rk2/bg3/bk0/row0x10/col5");
    }

    #[test]
    fn flat_bank_combines_group_and_bank() {
        let d = DecodedAddr { bank_group: 2, bank: 3, ..Default::default() };
        assert_eq!(d.flat_bank(4), 11);
    }
}
