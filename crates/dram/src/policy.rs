//! The power-policy zoo: a legal-transition graph over the rank low-power
//! ladder and the [`PowerPolicy`] trait with three built-in policies.
//!
//! The paper's engine is a fixed binary scheme — MPSM at deallocation and
//! self-refresh behind a hard-coded 50 ms idle threshold. This module
//! generalizes it into a policy space:
//!
//! * [`FixedThreshold`] — the paper's scheme. The ladder pump is inert; the
//!   deallocation-time MPSM parking engine and the hotness-driven
//!   self-refresh engine (both outside this trait) implement the policy,
//!   bit-compatible with the pre-trait behavior.
//! * [`AdaptiveDemotion`] — multi-state demotion down the data-retaining
//!   ladder (standby → active power-down → precharge power-down →
//!   self-refresh) with per-rank idle-history thresholds (an EWMA of
//!   observed idle gaps scales the rungs).
//! * [`RefreshAware`] — treats refresh as schedulable maintenance: fast
//!   demotion to precharge power-down while postponing refreshes within the
//!   DDR4 budget of eight tREFI intervals, committing to self-refresh
//!   (internal refresh) once the budget is exhausted during an idle spell.
//!
//! The **legal-transition graph** ([`transition_is_legal`]) is the single
//! source of truth shared by the rank state machine, the analytic backend,
//! and the dtl-check oracle:
//!
//! ```text
//!            ┌────────────────────────────────────────────┐
//!            ▼                                            │
//!        Standby ──► ActivePowerDown ──► PrechargePowerDown ──► SelfRefresh
//!          │ ▲ ▲          │                     │                  │
//!          │ │ └──────────┘                     │                  │
//!          │ └──────────────────────────────────┴──────────────────┘
//!          └──► Mpsm ──► Standby          (every state exits to Standby)
//! ```
//!
//! Demotions step one rung at a time; `Mpsm` (no data retention) is off the
//! ladder and reachable only from `Standby` — the parking engine's domain.

use serde::{Deserialize, Serialize};

use crate::power::PowerState;
use crate::time::Picos;

/// DDR4 average refresh interval (tREFI, 7.8 µs), the unit of the
/// refresh-postpone budget tracked by [`RefreshAware`].
pub const TREFI: Picos = Picos::from_ns(7800);

/// Refreshes DDR4 allows to be postponed before a catch-up burst is due.
pub const REFRESH_POSTPONE_BUDGET: u8 = 8;

/// Whether `from -> to` is a legal rank power transition.
///
/// The graph: `Standby` enters any low-power state; every state exits to
/// `Standby`; demotions walk the data-retaining ladder one rung at a time
/// (`ActivePowerDown -> PrechargePowerDown -> SelfRefresh`, precharging on
/// the way down). `Mpsm` has no demotion edges in either direction — it
/// loses data, so only the parking engine enters it, from `Standby`.
/// Same-state "transitions" are legal no-ops.
#[inline]
pub fn transition_is_legal(from: PowerState, to: PowerState) -> bool {
    use PowerState::{ActivePowerDown, PrechargePowerDown, SelfRefresh, Standby};
    from == to
        || matches!(
            (from, to),
            (Standby, _)
                | (_, Standby)
                | (ActivePowerDown, PrechargePowerDown)
                | (PrechargePowerDown, SelfRefresh)
        )
}

/// The next rung down the data-retaining low-power ladder, or `None` at the
/// bottom. `Mpsm` is excluded: it loses data and is only ever entered by
/// the deallocation-time parking engine, from `Standby`.
#[inline]
pub fn ladder_next_down(state: PowerState) -> Option<PowerState> {
    match state {
        PowerState::Standby => Some(PowerState::ActivePowerDown),
        PowerState::ActivePowerDown => Some(PowerState::PrechargePowerDown),
        PowerState::PrechargePowerDown => Some(PowerState::SelfRefresh),
        PowerState::SelfRefresh | PowerState::Mpsm => None,
    }
}

/// Depth of a state on the retention ladder (0 = standby), or `None` for
/// `Mpsm`, which is off the ladder.
#[inline]
pub fn ladder_depth(state: PowerState) -> Option<usize> {
    match state {
        PowerState::Standby => Some(0),
        PowerState::ActivePowerDown => Some(1),
        PowerState::PrechargePowerDown => Some(2),
        PowerState::SelfRefresh => Some(3),
        PowerState::Mpsm => None,
    }
}

/// Selects one of the built-in [`PowerPolicy`] implementations.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerPolicyKind {
    /// The paper's fixed 50 ms scheme (bit-compatible with the pre-trait
    /// engine; the ladder pump is inert).
    #[default]
    FixedThreshold,
    /// Multi-state ladder demotion with per-rank idle-history thresholds.
    AdaptiveDemotion,
    /// Refresh postponement with commitment to self-refresh on budget
    /// exhaustion.
    RefreshAware,
}

impl PowerPolicyKind {
    /// Every built-in policy, in ablation-matrix order.
    pub const ALL: [PowerPolicyKind; 3] = [
        PowerPolicyKind::FixedThreshold,
        PowerPolicyKind::AdaptiveDemotion,
        PowerPolicyKind::RefreshAware,
    ];

    /// Stable display name (used in ablation tables and CI drift gates).
    pub fn name(self) -> &'static str {
        match self {
            PowerPolicyKind::FixedThreshold => "FixedThreshold",
            PowerPolicyKind::AdaptiveDemotion => "AdaptiveDemotion",
            PowerPolicyKind::RefreshAware => "RefreshAware",
        }
    }

    /// Maps an arbitrary byte onto a policy (for fuzz-op generation).
    pub fn from_index(i: u8) -> Self {
        Self::ALL[usize::from(i) % Self::ALL.len()]
    }
}

/// A rank power-management policy.
///
/// The host (a DTL device) owns the rank state machine and calls the policy
/// as an advisor: it reports accesses, asks for demotions of idle ranks,
/// and schedules the policy's next deadline on its event spine. The policy
/// never touches rank state itself, so a buggy policy can at worst propose
/// an illegal transition — which the state machine rejects and the
/// dtl-check oracle flags.
///
/// Contract:
/// * Every state returned by [`PowerPolicy::demote`] must be one legal step
///   from the rank's current state per [`transition_is_legal`], and must
///   retain data ([`PowerState::retains_data`]).
/// * Decisions must be deterministic functions of the observed access
///   history (replay and `--jobs` determinism depend on it).
/// * [`PowerPolicy::deadline`] must not be later than the first instant at
///   which [`PowerPolicy::demote`] would return `Some` — the host may sleep
///   until the deadline.
pub trait PowerPolicy {
    /// Which built-in policy this is (reports, registry matrix).
    fn kind(&self) -> PowerPolicyKind;

    /// Records an access arriving at `(channel, rank)` at `now`. Called for
    /// every foreground access and for epoch-granular bulk traffic.
    fn note_access(&mut self, channel: u32, rank: u32, now: Picos);

    /// The next state to demote an idle rank to, or `None` to hold.
    /// `idle` is the time since the rank's last observed access.
    fn demote(
        &mut self,
        channel: u32,
        rank: u32,
        state: PowerState,
        idle: Picos,
    ) -> Option<PowerState>;

    /// Earliest future instant at which [`PowerPolicy::demote`] could start
    /// returning `Some` for this rank, or `None` when the policy will never
    /// act on it (used to schedule the host's next wakeup event).
    fn deadline(
        &self,
        channel: u32,
        rank: u32,
        state: PowerState,
        last_access: Picos,
    ) -> Option<Picos>;

    /// Attempts to postpone the next refresh of `(channel, rank)` at `now`.
    /// Returns whether the postponement was granted (budget available).
    /// Policies that do not schedule refresh decline by default.
    fn postpone_refresh(&mut self, _channel: u32, _rank: u32, _now: Picos) -> bool {
        false
    }
}

/// The paper's fixed 50 ms scheme, expressed as the identity policy: ladder
/// demotions disabled, so the deallocation-time MPSM parking engine and the
/// hotness-driven self-refresh engine behave exactly as they did before the
/// trait existed. Holding the threshold here keeps the configuration
/// self-describing even though the engines read it from their own config.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedThreshold {
    threshold: Picos,
}

impl FixedThreshold {
    /// A fixed-threshold policy documenting `threshold` (paper: 50 ms).
    pub fn new(threshold: Picos) -> Self {
        FixedThreshold { threshold }
    }

    /// The documented idle threshold.
    pub fn threshold(&self) -> Picos {
        self.threshold
    }
}

impl PowerPolicy for FixedThreshold {
    fn kind(&self) -> PowerPolicyKind {
        PowerPolicyKind::FixedThreshold
    }

    fn note_access(&mut self, _channel: u32, _rank: u32, _now: Picos) {}

    fn demote(&mut self, _c: u32, _r: u32, _state: PowerState, _idle: Picos) -> Option<PowerState> {
        None
    }

    fn deadline(&self, _c: u32, _r: u32, _state: PowerState, _last: Picos) -> Option<Picos> {
        None
    }
}

/// Per-rank idle history of the adaptive policy.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct RankHistory {
    last_access: Picos,
    /// EWMA of observed idle gaps in picoseconds (integer arithmetic for
    /// deterministic replay), zero until the first gap is observed.
    ewma_gap_ps: u64,
}

/// Multi-state adaptive demotion: walks the retention ladder one rung at a
/// time, with per-rank thresholds scaled by an EWMA of the rank's observed
/// idle gaps — ranks with long gaps demote aggressively, busy ranks hold
/// back ("Rank-Aware Dynamic Migrations and Adaptive Demotions", PAPERS.md).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptiveDemotion {
    base: Picos,
    ranks_per_channel: u32,
    history: Vec<RankHistory>,
}

impl AdaptiveDemotion {
    /// EWMA weight: `ewma' = (3*ewma + gap) / 4`.
    const EWMA_SHIFT: u64 = 2;

    /// An adaptive policy over `channels * ranks_per_channel` ranks with
    /// base threshold `base` (typically the engine's profile threshold).
    pub fn new(channels: u32, ranks_per_channel: u32, base: Picos) -> Self {
        let n = (channels * ranks_per_channel) as usize;
        AdaptiveDemotion { base, ranks_per_channel, history: vec![RankHistory::default(); n] }
    }

    fn idx(&self, channel: u32, rank: u32) -> usize {
        (channel * self.ranks_per_channel + rank) as usize
    }

    /// The idle threshold for demoting *out of* `state`, for this rank's
    /// history: the first rung opens at an eighth of the smoothed gap
    /// (clamped to `[base/64, base]`), each deeper rung at 4x the previous.
    fn threshold(&self, channel: u32, rank: u32, state: PowerState) -> Option<Picos> {
        let depth = ladder_depth(state)?;
        ladder_next_down(state)?;
        let ewma = Picos::from_ps(self.history[self.idx(channel, rank)].ewma_gap_ps);
        let floor = Picos::from_ps((self.base.as_ps() / 64).max(1));
        let first = (ewma / 8).clamp(floor, self.base);
        Some(first * 4u64.pow(depth as u32))
    }
}

impl PowerPolicy for AdaptiveDemotion {
    fn kind(&self) -> PowerPolicyKind {
        PowerPolicyKind::AdaptiveDemotion
    }

    fn note_access(&mut self, channel: u32, rank: u32, now: Picos) {
        let i = self.idx(channel, rank);
        let h = &mut self.history[i];
        let gap = now.saturating_sub(h.last_access).as_ps();
        h.ewma_gap_ps = if h.ewma_gap_ps == 0 {
            gap
        } else {
            h.ewma_gap_ps - (h.ewma_gap_ps >> Self::EWMA_SHIFT) + (gap >> Self::EWMA_SHIFT)
        };
        h.last_access = h.last_access.max(now);
    }

    fn demote(&mut self, c: u32, r: u32, state: PowerState, idle: Picos) -> Option<PowerState> {
        let threshold = self.threshold(c, r, state)?;
        (idle >= threshold).then(|| ladder_next_down(state)).flatten()
    }

    fn deadline(&self, c: u32, r: u32, state: PowerState, last: Picos) -> Option<Picos> {
        Some(last + self.threshold(c, r, state)?)
    }
}

/// Per-rank refresh-postpone ledger.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct RefreshLedger {
    last_access: Picos,
    postponed: u8,
}

/// Refresh-aware policy ("Self-Managing DRAM", PAPERS.md): demote quickly
/// to precharge power-down — where the external refresh clock still runs
/// and refreshes can be postponed — and spend the DDR4 postpone budget of
/// [`REFRESH_POSTPONE_BUDGET`] tREFI before committing the rank to
/// self-refresh, whose internal refresh clears the debt. An access resets
/// the budget (the catch-up burst is issued at wake).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefreshAware {
    base: Picos,
    ranks_per_channel: u32,
    ledger: Vec<RefreshLedger>,
    /// Refresh postponements granted (observability counter).
    pub postponements: u64,
}

impl RefreshAware {
    /// A refresh-aware policy over `channels * ranks_per_channel` ranks;
    /// `base` scales the power-down rungs (typically the profile threshold).
    pub fn new(channels: u32, ranks_per_channel: u32, base: Picos) -> Self {
        let n = (channels * ranks_per_channel) as usize;
        RefreshAware {
            base,
            ranks_per_channel,
            ledger: vec![RefreshLedger::default(); n],
            postponements: 0,
        }
    }

    fn idx(&self, channel: u32, rank: u32) -> usize {
        (channel * self.ranks_per_channel + rank) as usize
    }

    /// Idle threshold for leaving `state`: power-down rungs open fast
    /// (base/16, then base/4); the self-refresh commitment waits out the
    /// postpone budget (eight tREFI) so postponed refreshes stay legal.
    fn threshold(&self, state: PowerState) -> Option<Picos> {
        match state {
            PowerState::Standby => Some(self.base / 16),
            PowerState::ActivePowerDown => Some(self.base / 4),
            PowerState::PrechargePowerDown => Some(TREFI * u64::from(REFRESH_POSTPONE_BUDGET)),
            PowerState::SelfRefresh | PowerState::Mpsm => None,
        }
    }
}

impl PowerPolicy for RefreshAware {
    fn kind(&self) -> PowerPolicyKind {
        PowerPolicyKind::RefreshAware
    }

    fn note_access(&mut self, channel: u32, rank: u32, now: Picos) {
        let i = self.idx(channel, rank);
        // Wake pays the catch-up burst; the budget refills.
        self.ledger[i].postponed = 0;
        self.ledger[i].last_access = self.ledger[i].last_access.max(now);
    }

    fn demote(&mut self, c: u32, r: u32, state: PowerState, idle: Picos) -> Option<PowerState> {
        let threshold = self.threshold(state)?;
        if idle < threshold {
            return None;
        }
        let next = ladder_next_down(state)?;
        if next == PowerState::SelfRefresh {
            // Entering self-refresh clears the postpone debt: the internal
            // refresh engine catches up.
            let i = self.idx(c, r);
            self.ledger[i].postponed = 0;
        }
        Some(next)
    }

    fn deadline(&self, _c: u32, _r: u32, state: PowerState, last: Picos) -> Option<Picos> {
        Some(last + self.threshold(state)?)
    }

    fn postpone_refresh(&mut self, channel: u32, rank: u32, _now: Picos) -> bool {
        let i = self.idx(channel, rank);
        if self.ledger[i].postponed < REFRESH_POSTPONE_BUDGET {
            self.ledger[i].postponed += 1;
            self.postponements += 1;
            true
        } else {
            false
        }
    }
}

/// Enum dispatch over the built-in policies, so hosts store a policy
/// without boxing and keep `Clone`/`Serialize` (deterministic replay of
/// fuzz counterexamples serializes the whole device setup).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicyEngine {
    /// See [`FixedThreshold`].
    Fixed(FixedThreshold),
    /// See [`AdaptiveDemotion`].
    Adaptive(AdaptiveDemotion),
    /// See [`RefreshAware`].
    RefreshAware(RefreshAware),
}

impl PolicyEngine {
    /// Builds the policy selected by `kind` over the given rank geometry,
    /// scaling thresholds from `base` (the engine's profile threshold).
    pub fn new(kind: PowerPolicyKind, channels: u32, ranks_per_channel: u32, base: Picos) -> Self {
        match kind {
            PowerPolicyKind::FixedThreshold => PolicyEngine::Fixed(FixedThreshold::new(base)),
            PowerPolicyKind::AdaptiveDemotion => {
                PolicyEngine::Adaptive(AdaptiveDemotion::new(channels, ranks_per_channel, base))
            }
            PowerPolicyKind::RefreshAware => {
                PolicyEngine::RefreshAware(RefreshAware::new(channels, ranks_per_channel, base))
            }
        }
    }

    /// Whether the ladder pump can skip this policy entirely (the
    /// fixed-threshold fast path that keeps legacy runs bit-compatible).
    #[inline]
    pub fn is_inert(&self) -> bool {
        matches!(self, PolicyEngine::Fixed(_))
    }
}

impl PowerPolicy for PolicyEngine {
    fn kind(&self) -> PowerPolicyKind {
        match self {
            PolicyEngine::Fixed(p) => p.kind(),
            PolicyEngine::Adaptive(p) => p.kind(),
            PolicyEngine::RefreshAware(p) => p.kind(),
        }
    }

    fn note_access(&mut self, channel: u32, rank: u32, now: Picos) {
        match self {
            PolicyEngine::Fixed(p) => p.note_access(channel, rank, now),
            PolicyEngine::Adaptive(p) => p.note_access(channel, rank, now),
            PolicyEngine::RefreshAware(p) => p.note_access(channel, rank, now),
        }
    }

    fn demote(&mut self, c: u32, r: u32, state: PowerState, idle: Picos) -> Option<PowerState> {
        match self {
            PolicyEngine::Fixed(p) => p.demote(c, r, state, idle),
            PolicyEngine::Adaptive(p) => p.demote(c, r, state, idle),
            PolicyEngine::RefreshAware(p) => p.demote(c, r, state, idle),
        }
    }

    fn deadline(&self, c: u32, r: u32, state: PowerState, last: Picos) -> Option<Picos> {
        match self {
            PolicyEngine::Fixed(p) => p.deadline(c, r, state, last),
            PolicyEngine::Adaptive(p) => p.deadline(c, r, state, last),
            PolicyEngine::RefreshAware(p) => p.deadline(c, r, state, last),
        }
    }

    fn postpone_refresh(&mut self, channel: u32, rank: u32, now: Picos) -> bool {
        match self {
            PolicyEngine::Fixed(p) => p.postpone_refresh(channel, rank, now),
            PolicyEngine::Adaptive(p) => p.postpone_refresh(channel, rank, now),
            PolicyEngine::RefreshAware(p) => p.postpone_refresh(channel, rank, now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_matches_the_documented_edges() {
        use PowerState::*;
        // Hub edges.
        for s in PowerState::ALL {
            assert!(transition_is_legal(Standby, s), "Standby -> {s:?}");
            assert!(transition_is_legal(s, Standby), "{s:?} -> Standby");
            assert!(transition_is_legal(s, s), "{s:?} self-loop");
        }
        // Ladder demotions.
        assert!(transition_is_legal(ActivePowerDown, PrechargePowerDown));
        assert!(transition_is_legal(PrechargePowerDown, SelfRefresh));
        // Everything else is illegal — notably into and out of Mpsm.
        for s in [ActivePowerDown, PrechargePowerDown, SelfRefresh] {
            assert!(!transition_is_legal(s, Mpsm), "{s:?} -> Mpsm");
            assert!(!transition_is_legal(Mpsm, s), "Mpsm -> {s:?}");
        }
        assert!(!transition_is_legal(SelfRefresh, PrechargePowerDown));
        assert!(!transition_is_legal(SelfRefresh, ActivePowerDown));
        assert!(!transition_is_legal(PrechargePowerDown, ActivePowerDown));
        assert!(!transition_is_legal(ActivePowerDown, SelfRefresh), "no rung skipping");
    }

    #[test]
    fn ladder_walks_to_self_refresh_and_stops() {
        let mut s = PowerState::Standby;
        let mut seen = vec![s];
        while let Some(next) = ladder_next_down(s) {
            assert!(transition_is_legal(s, next) || s == PowerState::Standby);
            s = next;
            seen.push(s);
        }
        assert_eq!(
            seen,
            vec![
                PowerState::Standby,
                PowerState::ActivePowerDown,
                PowerState::PrechargePowerDown,
                PowerState::SelfRefresh
            ]
        );
        assert_eq!(ladder_next_down(PowerState::Mpsm), None);
        assert_eq!(ladder_depth(PowerState::Mpsm), None);
        // Every rung retains data.
        assert!(seen.iter().all(|s| s.retains_data()));
    }

    #[test]
    fn fixed_threshold_is_inert() {
        let mut p = PolicyEngine::new(PowerPolicyKind::FixedThreshold, 2, 4, Picos::from_ms(50));
        assert!(p.is_inert());
        p.note_access(0, 0, Picos::from_us(1));
        assert_eq!(p.demote(0, 0, PowerState::Standby, Picos::from_secs(10)), None);
        assert_eq!(p.deadline(0, 0, PowerState::Standby, Picos::ZERO), None);
        assert!(!p.postpone_refresh(0, 0, Picos::ZERO));
    }

    #[test]
    fn adaptive_demotes_down_the_ladder_and_adapts_thresholds() {
        let base = Picos::from_us(500);
        let mut p = AdaptiveDemotion::new(1, 2, base);
        // No history: the first rung opens at the clamped floor.
        let floor = Picos::from_ps(base.as_ps() / 64);
        assert_eq!(p.demote(0, 0, PowerState::Standby, floor), Some(PowerState::ActivePowerDown));
        assert_eq!(p.demote(0, 0, PowerState::Standby, floor - Picos::from_ps(1)), None);
        // Deeper rungs need geometrically more idleness.
        assert_eq!(
            p.demote(0, 0, PowerState::ActivePowerDown, floor * 4),
            Some(PowerState::PrechargePowerDown)
        );
        assert_eq!(
            p.demote(0, 0, PowerState::PrechargePowerDown, floor * 16),
            Some(PowerState::SelfRefresh)
        );
        assert_eq!(p.demote(0, 0, PowerState::SelfRefresh, Picos::from_secs(100)), None);
        // A busy rank (short gaps) keeps the floor; a long observed gap
        // raises the rank's own threshold but nobody else's.
        for us in 1..50u64 {
            p.note_access(0, 1, Picos::from_us(us * 10_000));
        }
        let busy = p.threshold(0, 0, PowerState::Standby).unwrap();
        let idle_rank = p.threshold(0, 1, PowerState::Standby).unwrap();
        assert!(idle_rank > busy, "history must raise the idle rank's threshold");
        assert!(idle_rank <= base, "thresholds clamp at the base");
    }

    #[test]
    fn adaptive_deadline_is_not_later_than_the_first_demotion() {
        let p = AdaptiveDemotion::new(1, 1, Picos::from_us(500));
        let last = Picos::from_us(7);
        let deadline = p.deadline(0, 0, PowerState::Standby, last).unwrap();
        let mut probe = p.clone();
        let idle = deadline.saturating_sub(last);
        assert!(probe.demote(0, 0, PowerState::Standby, idle).is_some());
        assert!(probe.demote(0, 0, PowerState::Standby, idle - Picos::from_ps(1)).is_none());
    }

    #[test]
    fn refresh_aware_budget_gates_the_self_refresh_commitment() {
        let mut p = RefreshAware::new(1, 1, Picos::from_us(500));
        // The postpone budget grants exactly eight before declining.
        for i in 0..REFRESH_POSTPONE_BUDGET {
            assert!(p.postpone_refresh(0, 0, TREFI * u64::from(i)), "grant {i}");
        }
        assert!(!p.postpone_refresh(0, 0, TREFI * 9));
        assert_eq!(p.postponements, u64::from(REFRESH_POSTPONE_BUDGET));
        // An access refills the budget.
        p.note_access(0, 0, TREFI * 10);
        assert!(p.postpone_refresh(0, 0, TREFI * 11));
        // The SR commitment waits out the full budget window.
        let commit = TREFI * u64::from(REFRESH_POSTPONE_BUDGET);
        assert_eq!(
            p.demote(0, 0, PowerState::PrechargePowerDown, commit - Picos::from_ps(1)),
            None
        );
        assert_eq!(
            p.demote(0, 0, PowerState::PrechargePowerDown, commit),
            Some(PowerState::SelfRefresh)
        );
    }

    #[test]
    fn every_kind_builds_its_engine_with_a_unique_name() {
        let mut names = Vec::new();
        for kind in PowerPolicyKind::ALL {
            let engine = PolicyEngine::new(kind, 2, 4, Picos::from_ms(50));
            assert_eq!(engine.kind(), kind);
            names.push(kind.name());
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PowerPolicyKind::ALL.len(), "display names must be unique");
        assert_eq!(PowerPolicyKind::from_index(0), PowerPolicyKind::FixedThreshold);
        assert_eq!(PowerPolicyKind::from_index(4), PowerPolicyKind::AdaptiveDemotion);
        assert_eq!(PowerPolicyKind::default(), PowerPolicyKind::FixedThreshold);
    }
}
