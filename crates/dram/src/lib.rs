//! # dtl-dram — cycle-level DDR4 DRAM timing and power simulator
//!
//! This crate is the DRAM substrate of the DTL (DRAM Translation Layer)
//! reproduction. It models a CXL memory device's DRAM back end at command
//! granularity:
//!
//! * **Geometry & timing** — channels, ranks, bank groups, banks, rows and
//!   columns with a DDR4-2933 timing set ([`DramConfig`]).
//! * **Address mapping** — the conventional rank-interleaved layout and the
//!   paper's rank-MSB / channel-per-segment layout ([`AddressMapping`]).
//! * **Scheduling** — per-channel FR-FCFS with a strict-priority foreground
//!   queue and a migration queue that only steals idle bandwidth.
//! * **Power** — rank-level power states (standby, power-down, self-refresh,
//!   MPSM) with the paper's Table 2 normalized background powers, plus
//!   bandwidth-proportional event energy ([`PowerParams`]).
//!
//! ## Quick start
//!
//! ```
//! use dtl_dram::{
//!     AccessKind, AddressMapping, DramConfig, DramSystem, PhysAddr, Picos, PowerState,
//!     Priority, RankId,
//! };
//!
//! let mut dram = DramSystem::new(DramConfig::tiny(), AddressMapping::dtl_default())?;
//! // Issue a read, let the controller run, observe the completion.
//! dram.submit(PhysAddr::new(4096), AccessKind::Read, Priority::Foreground, Picos::ZERO)?;
//! dram.advance_to(Picos::from_us(1));
//! assert_eq!(dram.drain_completions().len(), 1);
//! // Put a rank into self-refresh and measure the energy difference.
//! dram.set_rank_state(RankId { channel: 0, rank: 3 }, PowerState::SelfRefresh, dram.now())?;
//! dram.advance_to(Picos::from_ms(1));
//! let report = dram.power_report(Picos::from_ms(1));
//! assert!(report.total.background_mj > 0.0);
//! # Ok::<(), dtl_dram::DramError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod bank;
mod channel;
mod command;
mod config;
mod error;
mod mapping;
mod policy;
mod power;
mod rank;
mod request;
mod system;
mod time;

pub use addr::{DecodedAddr, PhysAddr};
pub use bank::Bank;
pub use channel::{Channel, PowerEvent, PowerEventCause};
pub use command::{CommandKind, CommandSink, IssuedCommand, NullSink, RecordingSink};
pub use config::{DramConfig, Geometry, PagePolicy, TimingParams, LINE_BYTES};
pub use error::DramError;
pub use mapping::{AddressMapper, AddressMapping};
pub use policy::{
    ladder_depth, ladder_next_down, transition_is_legal, AdaptiveDemotion, FixedThreshold,
    PolicyEngine, PowerPolicy, PowerPolicyKind, RefreshAware, REFRESH_POSTPONE_BUDGET, TREFI,
};
pub use power::{EnergyAccount, PowerParams, PowerState, RankEnergy};
pub use rank::{Rank, RankCounters};
pub use request::{AccessKind, Completion, LatencyStats, MemRequest, Priority};
pub use system::{DramSystem, PowerReport, RankId};
pub use time::Picos;
