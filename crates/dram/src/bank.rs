//! Per-bank state machine: open row plus earliest-issue timestamps.

use serde::{Deserialize, Serialize};

use crate::config::TimingParams;
use crate::time::Picos;

/// One DRAM bank: its row buffer and the timing constraints that gate each
/// command class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bank {
    /// Currently open row, if any.
    open_row: Option<u64>,
    /// Earliest time an ACT may issue (tRP after the last PRE).
    act_ready: Picos,
    /// Earliest time a RD may issue (tRCD after ACT).
    rd_ready: Picos,
    /// Earliest time a WR may issue (tRCD after ACT).
    wr_ready: Picos,
    /// Earliest time a PRE may issue (tRAS after ACT, tRTP after RD,
    /// write-recovery after WR).
    pre_ready: Picos,
}

impl Default for Bank {
    fn default() -> Self {
        Bank::new()
    }
}

impl Bank {
    /// A closed, immediately usable bank.
    pub fn new() -> Self {
        Bank {
            open_row: None,
            act_ready: Picos::ZERO,
            rd_ready: Picos::ZERO,
            wr_ready: Picos::ZERO,
            pre_ready: Picos::ZERO,
        }
    }

    /// The open row, if the bank is active.
    #[inline]
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Whether `row` currently sits in the row buffer.
    #[inline]
    pub fn is_row_hit(&self, row: u64) -> bool {
        self.open_row == Some(row)
    }

    /// Earliest ACT issue time (bank-local constraints only).
    #[inline]
    pub fn act_ready(&self) -> Picos {
        self.act_ready
    }

    /// Earliest RD issue time (bank-local constraints only).
    #[inline]
    pub fn rd_ready(&self) -> Picos {
        self.rd_ready
    }

    /// Earliest WR issue time (bank-local constraints only).
    #[inline]
    pub fn wr_ready(&self) -> Picos {
        self.wr_ready
    }

    /// Earliest PRE issue time.
    #[inline]
    pub fn pre_ready(&self) -> Picos {
        self.pre_ready
    }

    /// Applies an ACT issued at `at` opening `row`.
    pub fn do_activate(&mut self, at: Picos, row: u64, t: &TimingParams) {
        debug_assert!(self.open_row.is_none(), "ACT to an open bank");
        debug_assert!(at >= self.act_ready, "ACT violates tRP");
        self.open_row = Some(row);
        self.rd_ready = at + t.cycles(t.trcd);
        self.wr_ready = at + t.cycles(t.trcd);
        self.pre_ready = at + t.cycles(t.tras);
    }

    /// Applies a PRE issued at `at`.
    pub fn do_precharge(&mut self, at: Picos, t: &TimingParams) {
        debug_assert!(self.open_row.is_some(), "PRE to a closed bank");
        debug_assert!(at >= self.pre_ready, "PRE violates tRAS/tRTP/tWR");
        self.open_row = None;
        self.act_ready = at + t.cycles(t.trp);
    }

    /// Applies a RD issued at `at`; returns the data-burst end time.
    pub fn do_read(&mut self, at: Picos, t: &TimingParams) -> Picos {
        debug_assert!(self.open_row.is_some(), "RD to a closed bank");
        debug_assert!(at >= self.rd_ready, "RD violates tRCD/tCCD");
        let data_end = at + t.cycles(t.cl) + t.burst_time();
        self.pre_ready = self.pre_ready.max(at + t.cycles(t.trtp));
        data_end
    }

    /// Applies a WR issued at `at`; returns the data-burst end time.
    pub fn do_write(&mut self, at: Picos, t: &TimingParams) -> Picos {
        debug_assert!(self.open_row.is_some(), "WR to a closed bank");
        debug_assert!(at >= self.wr_ready, "WR violates tRCD/tCCD");
        let data_end = at + t.cycles(t.cwl) + t.burst_time();
        self.pre_ready = self.pre_ready.max(data_end + t.cycles(t.twr));
        data_end
    }

    /// Forces the bank closed without timing effects (used when a rank exits
    /// a deep power state, which implies all banks precharged).
    pub fn force_close(&mut self, ready_at: Picos) {
        self.open_row = None;
        self.act_ready = self.act_ready.max(ready_at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr4_2933()
    }

    #[test]
    fn activate_then_read_obeys_trcd() {
        let t = t();
        let mut b = Bank::new();
        b.do_activate(Picos::ZERO, 7, &t);
        assert!(b.is_row_hit(7));
        assert_eq!(b.rd_ready(), t.cycles(t.trcd));
        let data_end = b.do_read(b.rd_ready(), &t);
        assert_eq!(data_end, t.cycles(t.trcd) + t.cycles(t.cl) + t.burst_time());
    }

    #[test]
    fn precharge_respects_tras_and_sets_trp() {
        let t = t();
        let mut b = Bank::new();
        b.do_activate(Picos::ZERO, 1, &t);
        assert_eq!(b.pre_ready(), t.cycles(t.tras));
        b.do_precharge(b.pre_ready(), &t);
        assert_eq!(b.open_row(), None);
        assert_eq!(b.act_ready(), t.cycles(t.tras) + t.cycles(t.trp));
    }

    #[test]
    fn write_extends_precharge_by_write_recovery() {
        let t = t();
        let mut b = Bank::new();
        b.do_activate(Picos::ZERO, 1, &t);
        let wr_at = b.wr_ready();
        let data_end = b.do_write(wr_at, &t);
        assert_eq!(data_end, wr_at + t.cycles(t.cwl) + t.burst_time());
        assert_eq!(b.pre_ready(), data_end + t.cycles(t.twr));
    }

    #[test]
    fn force_close_discards_row() {
        let t = t();
        let mut b = Bank::new();
        b.do_activate(Picos::ZERO, 1, &t);
        b.force_close(Picos::from_ns(1000));
        assert_eq!(b.open_row(), None);
        assert_eq!(b.act_ready(), Picos::from_ns(1000));
    }

    #[test]
    #[should_panic(expected = "ACT to an open bank")]
    fn double_activate_panics_in_debug() {
        let t = t();
        let mut b = Bank::new();
        b.do_activate(Picos::ZERO, 1, &t);
        b.do_activate(Picos::from_secs(1), 2, &t);
    }
}
