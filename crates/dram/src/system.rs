//! The whole DRAM device: all channels behind one mapper, with routing,
//! power reporting, and rank power-state control.

use dtl_telemetry::{EventKind, Telemetry};
use serde::{Deserialize, Serialize};

use crate::addr::PhysAddr;
use crate::channel::{Channel, PowerEvent, PowerEventCause};
use crate::command::{CommandSink, NullSink};
use crate::config::DramConfig;
use crate::error::DramError;
use crate::mapping::{AddressMapper, AddressMapping};
use crate::power::{PowerState, RankEnergy};
use crate::rank::RankCounters;
use crate::request::{AccessKind, Completion, LatencyStats, MemRequest, Priority};
use crate::time::Picos;

/// Identifies one rank within the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RankId {
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
}

/// Energy and residency report for the whole device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerReport {
    /// Report timestamp (energy integrated up to here).
    pub at: Picos,
    /// Energy per rank, indexed `[channel][rank]`.
    pub per_rank: Vec<Vec<RankEnergy>>,
    /// Sum over all ranks.
    pub total: RankEnergy,
    /// Residency per rank and state, picoseconds, indexed
    /// `[channel][rank]` then by [`PowerState::ALL`] order.
    pub residency: Vec<Vec<[Picos; 5]>>,
}

impl PowerReport {
    /// Average total power in milliwatts over `[0, at]`.
    pub fn average_power_mw(&self) -> f64 {
        if self.at == Picos::ZERO {
            return 0.0;
        }
        self.total.total_mj() / (self.at.as_secs_f64() * 1_000.0) * 1_000.0
    }
}

/// A full simulated DRAM device: channels, ranks, scheduler, and power
/// accounting, addressed by device physical address.
///
/// # Examples
///
/// ```
/// use dtl_dram::{AccessKind, AddressMapping, DramConfig, DramSystem, PhysAddr, Picos, Priority};
///
/// let mut sys = DramSystem::new(DramConfig::tiny(), AddressMapping::RankInterleaved)?;
/// sys.submit(PhysAddr::new(0), AccessKind::Read, Priority::Foreground, Picos::ZERO)?;
/// sys.advance_to(Picos::from_us(1));
/// let done = sys.drain_completions();
/// assert_eq!(done.len(), 1);
/// # Ok::<(), dtl_dram::DramError>(())
/// ```
#[derive(Debug)]
pub struct DramSystem {
    config: DramConfig,
    mapper: AddressMapper,
    channels: Vec<Channel>,
    next_id: u64,
    now: Picos,
    telemetry: Telemetry,
}

impl DramSystem {
    /// Builds a device from a validated configuration and mapping policy.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] if the configuration or mapping
    /// is inconsistent.
    pub fn new(config: DramConfig, mapping: AddressMapping) -> Result<Self, DramError> {
        config.validate()?;
        let mapper = AddressMapper::new(config.geometry, mapping)?;
        let channels = (0..config.geometry.channels)
            .map(|i| {
                Channel::with_policy(
                    i,
                    &config.geometry,
                    config.timing,
                    config.power,
                    config.page_policy,
                )
            })
            .collect();
        Ok(DramSystem {
            config,
            mapper,
            channels,
            next_id: 0,
            now: Picos::ZERO,
            telemetry: Telemetry::disabled(),
        })
    }

    /// Installs a telemetry handle. Rank power transitions are emitted when
    /// the power-event queue is drained (so the cycle backend and standalone
    /// use agree on a single emission point), preserving event timestamps.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The device configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// The address mapper in effect.
    pub fn mapper(&self) -> &AddressMapper {
        &self.mapper
    }

    /// Current simulation time (the furthest `advance_to` target so far).
    pub fn now(&self) -> Picos {
        self.now
    }

    /// Submits a 64 B request; returns its id for matching the completion.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::AddressOutOfRange`] for addresses beyond the
    /// device capacity.
    pub fn submit(
        &mut self,
        addr: PhysAddr,
        kind: AccessKind,
        priority: Priority,
        arrival: Picos,
    ) -> Result<u64, DramError> {
        let dec = self.mapper.decode(addr)?;
        let id = self.next_id;
        self.next_id += 1;
        let req = MemRequest { id, addr, kind, arrival, priority };
        self.channels[dec.channel as usize].enqueue(req, dec);
        Ok(id)
    }

    /// Advances all channels to `t` with the default (no-op) command sink.
    pub fn advance_to(&mut self, t: Picos) {
        self.advance_to_with_sink(t, &mut NullSink);
    }

    /// Advances all channels to `t`, reporting every issued command to
    /// `sink`.
    pub fn advance_to_with_sink<S: CommandSink>(&mut self, t: Picos, sink: &mut S) {
        for ch in &mut self.channels {
            ch.advance_to(t, sink);
        }
        self.now = self.now.max(t);
    }

    /// Runs until every queue drains; returns the time the last channel
    /// went idle. Steps in `chunk`-sized increments.
    pub fn run_until_idle(&mut self, chunk: Picos) -> Picos {
        let chunk = if chunk == Picos::ZERO { Picos::from_us(10) } else { chunk };
        let mut t = self.now;
        while self.pending() > 0 {
            t += chunk;
            self.advance_to(t);
        }
        t
    }

    /// Outstanding request count over all channels.
    pub fn pending(&self) -> usize {
        self.channels.iter().map(Channel::pending).sum()
    }

    /// Outstanding migration-class request count.
    pub fn pending_migration(&self) -> usize {
        self.channels.iter().map(Channel::pending_migration).sum()
    }

    /// Drains completions from all channels (unordered across channels).
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        let mut v = Vec::new();
        for ch in &mut self.channels {
            v.append(&mut ch.drain_completions());
        }
        v
    }

    /// Drains rank power events (auto-exits and explicit transitions).
    pub fn drain_power_events(&mut self) -> Vec<PowerEvent> {
        let mut v = Vec::new();
        for ch in &mut self.channels {
            v.append(&mut ch.drain_events());
        }
        if self.telemetry.enabled() {
            for ev in &v {
                self.telemetry.emit(
                    ev.at.as_ps(),
                    EventKind::RankPowerTransition {
                        channel: ev.channel,
                        rank: ev.rank,
                        from: ev.from.telemetry_id(),
                        to: ev.to.telemetry_id(),
                        auto_exit: ev.cause == PowerEventCause::AutoExit,
                    },
                );
            }
        }
        v
    }

    /// Commands a rank power-state transition at `now` (clamped to the
    /// channel clock). Returns the completion time of the transition.
    ///
    /// # Errors
    ///
    /// Propagates [`DramError::IllegalPowerTransition`] from the rank (e.g.
    /// entering self-refresh with open banks, or low-power to low-power).
    pub fn set_rank_state(
        &mut self,
        id: RankId,
        state: PowerState,
        now: Picos,
    ) -> Result<Picos, DramError> {
        let ch = &mut self.channels[id.channel as usize];
        let t = now.max(ch.clock());
        let timing = self.config.timing;
        let from = ch.rank(id.rank).state();
        let at = ch.rank_mut(id.rank).transition(t, state, &timing)?;
        if from != state {
            ch.push_event(PowerEvent {
                at,
                channel: id.channel,
                rank: id.rank,
                from,
                to: state,
                cause: PowerEventCause::Explicit,
            });
        }
        Ok(at)
    }

    /// Current power state of a rank.
    pub fn rank_state(&self, id: RankId) -> PowerState {
        self.channels[id.channel as usize].rank(id.rank).state()
    }

    /// Activity counters of a rank.
    pub fn rank_counters(&self, id: RankId) -> RankCounters {
        *self.channels[id.channel as usize].rank(id.rank).counters()
    }

    /// Cumulative per-state residency of one rank projected to the current
    /// simulation time, in [`PowerState::ALL`] order, without mutating the
    /// energy account. Derived from the same [`EnergyAccount`] the power
    /// report integrates, so the two can never disagree.
    ///
    /// [`EnergyAccount`]: crate::EnergyAccount
    pub fn rank_residency(&self, id: RankId) -> [Picos; 5] {
        self.channels[id.channel as usize].rank(id.rank).energy().residency_to(self.now)
    }

    /// Every rank's current power state in `(channel, rank)` order — the
    /// bulk query external checkers snapshot to cross-validate a power
    /// ledger replayed from [`PowerEvent`]s.
    ///
    /// [`PowerEvent`]: crate::PowerEvent
    pub fn power_states(&self) -> Vec<(RankId, PowerState)> {
        self.rank_ids().map(|id| (id, self.rank_state(id))).collect()
    }

    /// All rank ids in `(channel, rank)` order.
    pub fn rank_ids(&self) -> impl Iterator<Item = RankId> + '_ {
        let ranks = self.config.geometry.ranks_per_channel;
        (0..self.config.geometry.channels)
            .flat_map(move |c| (0..ranks).map(move |r| RankId { channel: c, rank: r }))
    }

    /// Aggregated foreground latency statistics over all channels.
    pub fn foreground_stats(&self) -> LatencyStats {
        let mut s = LatencyStats::new();
        for ch in &self.channels {
            s.merge(ch.foreground_stats());
        }
        s
    }

    /// Aggregated migration latency statistics over all channels.
    pub fn migration_stats(&self) -> LatencyStats {
        let mut s = LatencyStats::new();
        for ch in &self.channels {
            s.merge(ch.migration_stats());
        }
        s
    }

    /// Total bytes transferred on all data buses.
    pub fn bytes_transferred(&self) -> u64 {
        self.channels.iter().map(Channel::bytes_transferred).sum()
    }

    /// Integrates energy up to `now` and returns the device power report.
    pub fn power_report(&mut self, now: Picos) -> PowerReport {
        let mut per_rank = Vec::with_capacity(self.channels.len());
        let mut residency = Vec::with_capacity(self.channels.len());
        let mut total = RankEnergy::default();
        for ch in &mut self.channels {
            let mut col = Vec::with_capacity(ch.rank_count() as usize);
            let mut res_col = Vec::with_capacity(ch.rank_count() as usize);
            for r in 0..ch.rank_count() {
                let rank = ch.rank_mut(r);
                rank.integrate_energy_to(now);
                let e = rank.energy().energy();
                total.accumulate(&e);
                col.push(e);
                let mut res = [Picos::ZERO; 5];
                for (i, s) in PowerState::ALL.iter().enumerate() {
                    res[i] = rank.energy().residency(*s);
                }
                res_col.push(res);
            }
            per_rank.push(col);
            residency.push(res_col);
        }
        self.now = self.now.max(now);
        PowerReport { at: now, per_rank, total, residency }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> DramSystem {
        DramSystem::new(DramConfig::tiny(), AddressMapping::RankInterleaved).unwrap()
    }

    #[test]
    fn submit_and_complete_round_trip() {
        let mut s = sys();
        let id0 = s
            .submit(PhysAddr::new(0), AccessKind::Read, Priority::Foreground, Picos::ZERO)
            .unwrap();
        let id1 = s
            .submit(PhysAddr::new(64), AccessKind::Write, Priority::Foreground, Picos::ZERO)
            .unwrap();
        assert_ne!(id0, id1);
        s.advance_to(Picos::from_us(1));
        let mut done = s.drain_completions();
        done.sort_by_key(|c| c.id);
        assert_eq!(done.iter().map(|c| c.id).collect::<Vec<_>>(), vec![id0, id1]);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut s = sys();
        let cap = s.config().geometry.capacity_bytes();
        assert!(s
            .submit(PhysAddr::new(cap), AccessKind::Read, Priority::Foreground, Picos::ZERO)
            .is_err());
    }

    #[test]
    fn run_until_idle_drains_everything() {
        let mut s = sys();
        for i in 0..100 {
            s.submit(PhysAddr::new(i * 64), AccessKind::Read, Priority::Foreground, Picos::ZERO)
                .unwrap();
        }
        s.run_until_idle(Picos::from_us(1));
        assert_eq!(s.pending(), 0);
        assert_eq!(s.drain_completions().len(), 100);
        assert_eq!(s.bytes_transferred(), 6400);
    }

    #[test]
    fn power_report_background_scales_with_low_power_states() {
        let horizon = Picos::from_ms(10);
        // All ranks standby.
        let mut s1 = sys();
        s1.advance_to(horizon);
        let r1 = s1.power_report(horizon);
        // Half the ranks in MPSM from t=0.
        let mut s2 = sys();
        let ids: Vec<RankId> = s2.rank_ids().filter(|r| r.rank >= 2).collect();
        for id in ids {
            s2.set_rank_state(id, PowerState::Mpsm, Picos::ZERO).unwrap();
        }
        s2.advance_to(horizon);
        let r2 = s2.power_report(horizon);
        let ratio = r2.total.background_mj / r1.total.background_mj;
        // Expected: (0.5 + 0.5 * 0.068) = 0.534.
        assert!((ratio - 0.534).abs() < 0.01, "ratio {ratio}");
        assert!(r2.average_power_mw() < r1.average_power_mw());
    }

    #[test]
    fn explicit_transition_emits_event() {
        let mut s = sys();
        let id = RankId { channel: 0, rank: 1 };
        s.set_rank_state(id, PowerState::SelfRefresh, Picos::from_us(5)).unwrap();
        let evs = s.drain_power_events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].cause, PowerEventCause::Explicit);
        assert_eq!(evs[0].to, PowerState::SelfRefresh);
        assert_eq!(s.rank_state(id), PowerState::SelfRefresh);
    }

    #[test]
    fn rank_ids_enumerates_geometry() {
        let s = sys();
        let ids: Vec<RankId> = s.rank_ids().collect();
        assert_eq!(ids.len(), 8); // tiny: 2 channels x 4 ranks
        assert_eq!(ids[0], RankId { channel: 0, rank: 0 });
        assert_eq!(ids[7], RankId { channel: 1, rank: 3 });
    }

    #[test]
    fn residency_sums_to_elapsed_time() {
        let mut s = sys();
        let horizon = Picos::from_ms(1);
        s.set_rank_state(RankId { channel: 0, rank: 0 }, PowerState::SelfRefresh, Picos::ZERO)
            .unwrap();
        s.advance_to(horizon);
        let rep = s.power_report(horizon);
        for ch in &rep.residency {
            for rank_res in ch {
                let total: Picos = rank_res.iter().copied().sum();
                assert_eq!(total, horizon);
            }
        }
    }

    #[test]
    fn telemetry_timeline_matches_power_report_residency() {
        use dtl_telemetry::{PowerTimeline, RingSink};
        use std::sync::Arc;

        let mut s = sys();
        let ring = Arc::new(RingSink::with_capacity(1024));
        s.set_telemetry(Telemetry::new(ring.clone()));
        let horizon = Picos::from_ms(1);
        s.set_rank_state(
            RankId { channel: 0, rank: 0 },
            PowerState::SelfRefresh,
            Picos::from_us(100),
        )
        .unwrap();
        s.set_rank_state(RankId { channel: 1, rank: 2 }, PowerState::Mpsm, Picos::from_us(300))
            .unwrap();
        s.advance_to(horizon);
        let raw = s.drain_power_events();
        assert_eq!(raw.len(), 2);
        let ids: Vec<RankId> = s.rank_ids().collect();
        let rep = s.power_report(horizon);

        let events = ring.drain();
        assert_eq!(events.len(), 2, "telemetry mirrors each drained power event");
        let mut tl = PowerTimeline::new();
        for ev in &events {
            tl.push_event(ev);
        }
        for id in &ids {
            tl.ensure_rank(id.channel, id.rank);
        }
        tl.finish(horizon.as_ps());

        for id in ids {
            let (c, r) = (id.channel, id.rank);
            let reported = rep.residency[c as usize][r as usize];
            let from_events = tl.residency_ps(c, r);
            let direct = s.rank_residency(id);
            for i in 0..5 {
                assert_eq!(from_events[i], reported[i].as_ps(), "rank {c}/{r} state {i}");
                assert_eq!(direct[i], reported[i], "rank {c}/{r} state {i}");
            }
        }
    }

    #[test]
    fn migration_traffic_counted_separately() {
        let mut s = sys();
        s.submit(PhysAddr::new(0), AccessKind::Read, Priority::Migration, Picos::ZERO).unwrap();
        s.submit(PhysAddr::new(64), AccessKind::Read, Priority::Foreground, Picos::ZERO).unwrap();
        s.run_until_idle(Picos::from_us(1));
        assert_eq!(s.foreground_stats().count, 1);
        assert_eq!(s.migration_stats().count, 1);
    }
}
