//! Property tests for the low-power ladder state machine (ISSUE 8):
//!
//! * the rank state machine accepts **exactly** the legal-transition graph
//!   — no illegal transition ever commits, no legal one is refused;
//! * policies never propose an illegal or data-losing transition under
//!   arbitrary access/idle sequences;
//! * exit latency is monotonically non-decreasing down the retention
//!   ladder;
//! * the per-rank residency clock conserves time: every picosecond of a
//!   run lands in exactly one power state.

use dtl_dram::{
    ladder_next_down, transition_is_legal, Geometry, Picos, PolicyEngine, PowerParams, PowerPolicy,
    PowerPolicyKind, PowerState, Rank, TimingParams,
};
use proptest::prelude::*;

fn rank() -> (Rank, TimingParams) {
    let t = TimingParams::ddr4_2933();
    (Rank::new(&Geometry::tiny(), &t, PowerParams::ddr4_128gb_dimm()), t)
}

fn arb_state() -> impl Strategy<Value = PowerState> {
    (0usize..PowerState::ALL.len()).prop_map(|i| PowerState::ALL[i])
}

proptest! {
    /// Arbitrary target-state walks: `Rank::transition` must succeed iff
    /// the legal-transition graph has the edge, and a rejected request
    /// must leave the state untouched.
    #[test]
    fn rank_accepts_exactly_the_graph(
        targets in prop::collection::vec(arb_state(), 1..64),
        gaps in prop::collection::vec(1u64..10_000, 64),
    ) {
        let (mut r, t) = rank();
        let mut now = Picos::ZERO;
        for (target, gap) in targets.iter().zip(gaps) {
            now = now.max(r.busy_until()) + Picos::from_ns(gap);
            let before = r.state();
            match r.transition(now, *target, &t) {
                Ok(at) => {
                    prop_assert!(
                        transition_is_legal(before, *target),
                        "machine accepted an edge the graph forbids: {before:?} -> {target:?}"
                    );
                    prop_assert!(at >= now);
                    prop_assert_eq!(r.state(), *target);
                }
                Err(_) => {
                    prop_assert!(
                        !transition_is_legal(before, *target),
                        "machine refused a graph edge: {before:?} -> {target:?}"
                    );
                    prop_assert_eq!(r.state(), before, "a rejected request must not commit");
                }
            }
        }
    }

    /// Under arbitrary access/idle interleavings, every demotion a policy
    /// proposes is one legal step that retains data, and the state machine
    /// accepts it.
    #[test]
    fn policies_never_propose_illegal_transitions(
        kind_i in 0u8..3,
        events in prop::collection::vec((any::<bool>(), 1u64..100_000u64), 1..200),
    ) {
        let kind = PowerPolicyKind::from_index(kind_i);
        let mut policy = PolicyEngine::new(kind, 1, 1, Picos::from_us(500));
        let (mut r, t) = rank();
        let mut now = Picos::ZERO;
        let mut last_access = Picos::ZERO;
        for (is_access, gap_ns) in events {
            now = now.max(r.busy_until()) + Picos::from_ns(gap_ns);
            if is_access {
                if r.state() != PowerState::Standby {
                    now = r.transition(now, PowerState::Standby, &t).unwrap();
                }
                policy.note_access(0, 0, now);
                last_access = now;
            } else {
                let idle = now.saturating_sub(last_access);
                if let Some(next) = policy.demote(0, 0, r.state(), idle) {
                    prop_assert!(
                        transition_is_legal(r.state(), next),
                        "{kind:?} proposed {:?} -> {next:?}", r.state()
                    );
                    prop_assert!(next.retains_data(), "{kind:?} proposed a data-losing state");
                    r.transition(now, next, &t).unwrap();
                }
            }
        }
    }

    /// Walking the ladder from any starting instant: waking from a deeper
    /// rung never costs less than waking from a shallower one.
    #[test]
    fn exit_latency_non_decreasing_down_the_ladder(start_ns in 0u64..1_000_000) {
        let ladder = [
            PowerState::ActivePowerDown,
            PowerState::PrechargePowerDown,
            PowerState::SelfRefresh,
        ];
        let mut prev_exit = Picos::ZERO;
        for target in ladder {
            let (mut r, t) = rank();
            let mut now = Picos::from_ns(start_ns);
            let mut s = PowerState::Standby;
            while s != target {
                let next = ladder_next_down(s).unwrap();
                now = r.transition(now, next, &t).unwrap();
                s = next;
            }
            let wake = now + Picos::from_us(1);
            let at = r.transition(wake, PowerState::Standby, &t).unwrap();
            let exit = at - wake;
            prop_assert!(
                exit >= prev_exit,
                "exit latency shrank down the ladder at {target:?}: {exit} < {prev_exit}"
            );
            prev_exit = exit;
        }
    }

    /// Residency conservation: after an arbitrary legal/illegal request
    /// mix, integrating to any instant past the last transition accounts
    /// every picosecond since time zero in exactly one state.
    #[test]
    fn residency_clock_conserved(
        targets in prop::collection::vec(arb_state(), 1..64),
        gaps in prop::collection::vec(1u64..10_000, 64),
    ) {
        let (mut r, t) = rank();
        let mut now = Picos::ZERO;
        for (target, gap) in targets.iter().zip(gaps) {
            now = now.max(r.busy_until()) + Picos::from_ns(gap);
            let _ = r.transition(now, *target, &t);
        }
        let end = now.max(r.busy_until()) + Picos::from_us(1);
        r.integrate_energy_to(end);
        let total: Picos = PowerState::ALL.iter().map(|s| r.energy().residency(*s)).sum();
        prop_assert_eq!(total, end, "residency must sum to the elapsed horizon");
    }
}
