//! Edge-case integration tests of the DRAM simulator: starvation control,
//! MPSM auto-exit, queue bookkeeping, and long-idle correctness.

use dtl_dram::{
    AccessKind, AddressMapping, CommandKind, DramConfig, DramSystem, PhysAddr, Picos, PowerState,
    Priority, RankId, RecordingSink,
};

fn sys() -> DramSystem {
    DramSystem::new(DramConfig::tiny(), AddressMapping::RankInterleaved).unwrap()
}

#[test]
fn starvation_cap_bounds_worst_case_latency() {
    let mut s = sys();
    // A stream of row hits to one bank, plus one conflicting request that
    // FR-FCFS would starve without the age cap.
    let mapper = s.mapper().clone();
    let hit_addr = |col: u64| {
        mapper
            .encode(&dtl_dram::DecodedAddr {
                channel: 0,
                rank: 0,
                bank_group: 0,
                bank: 0,
                row: 1,
                column: col % 128,
            })
            .unwrap()
    };
    let conflict = mapper
        .encode(&dtl_dram::DecodedAddr {
            channel: 0,
            rank: 0,
            bank_group: 0,
            bank: 0,
            row: 2,
            column: 0,
        })
        .unwrap();
    let victim =
        s.submit(conflict, AccessKind::Read, Priority::Foreground, Picos::from_ns(10)).unwrap();
    // Saturating hit stream arriving continuously for 20 us.
    let mut t = Picos::from_ns(11);
    for i in 0..2_000u64 {
        s.submit(hit_addr(i), AccessKind::Read, Priority::Foreground, t).unwrap();
        t += Picos::from_ns(10);
    }
    s.run_until_idle(Picos::from_us(10));
    let done = s.drain_completions();
    let v = done.iter().find(|c| c.id == victim).unwrap();
    // Must complete within the starvation cap plus service, not after the
    // whole 20 us hit stream.
    assert!(v.latency() < Picos::from_us(8), "victim starved: {}", v.latency());
}

#[test]
fn mpsm_rank_auto_exits_with_long_penalty() {
    let mut s = sys();
    s.set_rank_state(RankId { channel: 0, rank: 1 }, PowerState::Mpsm, Picos::ZERO).unwrap();
    let mapper = s.mapper().clone();
    let addr = mapper
        .encode(&dtl_dram::DecodedAddr {
            channel: 0,
            rank: 1,
            bank_group: 0,
            bank: 0,
            row: 0,
            column: 0,
        })
        .unwrap();
    s.submit(addr, AccessKind::Read, Priority::Foreground, Picos::from_us(1)).unwrap();
    let mut sink = RecordingSink::default();
    s.advance_to_with_sink(Picos::from_us(20), &mut sink);
    let done = s.drain_completions();
    assert_eq!(done.len(), 1);
    let t = s.config().timing;
    assert!(done[0].latency() >= t.cycles(t.txmpsm), "latency {}", done[0].latency());
    assert!(sink.commands.iter().any(|c| c.kind == CommandKind::MpsmExit));
    assert_eq!(s.rank_state(RankId { channel: 0, rank: 1 }), PowerState::Standby);
    assert_eq!(s.rank_counters(RankId { channel: 0, rank: 1 }).mpsm_exits, 1);
}

#[test]
fn long_idle_period_accumulates_only_refresh_and_background() {
    let mut s = sys();
    s.advance_to(Picos::from_secs(1));
    let t = s.config().timing;
    let expected = Picos::from_secs(1).as_ps() / t.cycles(t.trefi).as_ps();
    for id in s.rank_ids() {
        let c = s.rank_counters(id);
        assert_eq!(c.reads + c.writes + c.activates, 0);
        assert!(c.refreshes >= expected && c.refreshes <= expected + 1);
    }
    let rep = s.power_report(Picos::from_secs(1));
    assert_eq!(rep.total.read_mj + rep.total.write_mj, 0.0);
    assert!(rep.total.background_mj > 0.0);
}

#[test]
fn self_refresh_rank_skips_external_refreshes() {
    let mut s = sys();
    let id = RankId { channel: 1, rank: 0 };
    s.set_rank_state(id, PowerState::SelfRefresh, Picos::ZERO).unwrap();
    s.advance_to(Picos::from_ms(10));
    assert_eq!(s.rank_counters(id).refreshes, 0, "SR refreshes internally");
    // Its standby siblings refreshed normally.
    let sibling = RankId { channel: 1, rank: 1 };
    assert!(s.rank_counters(sibling).refreshes > 1000);
}

#[test]
fn migration_and_foreground_stats_are_separate() {
    let mut s = sys();
    for i in 0..32u64 {
        let p = if i % 2 == 0 { Priority::Foreground } else { Priority::Migration };
        s.submit(PhysAddr::new(i * 64), AccessKind::Read, p, Picos::ZERO).unwrap();
    }
    s.run_until_idle(Picos::from_us(5));
    assert_eq!(s.foreground_stats().count, 16);
    assert_eq!(s.migration_stats().count, 16);
    assert!(s.foreground_stats().min <= s.foreground_stats().mean());
    assert!(s.foreground_stats().mean() <= s.foreground_stats().max);
}

#[test]
fn run_until_idle_with_zero_chunk_uses_default() {
    let mut s = sys();
    s.submit(PhysAddr::new(0), AccessKind::Read, Priority::Foreground, Picos::ZERO).unwrap();
    let end = s.run_until_idle(Picos::ZERO);
    assert!(end > Picos::ZERO);
    assert_eq!(s.pending(), 0);
}

#[test]
fn requests_arriving_far_in_the_future_wait() {
    let mut s = sys();
    s.submit(PhysAddr::new(0), AccessKind::Read, Priority::Foreground, Picos::from_ms(5)).unwrap();
    s.advance_to(Picos::from_ms(1));
    assert_eq!(s.drain_completions().len(), 0, "not arrived yet");
    s.advance_to(Picos::from_ms(6));
    let done = s.drain_completions();
    assert_eq!(done.len(), 1);
    assert!(done[0].finished >= Picos::from_ms(5));
}

#[test]
fn power_transitions_while_queued_requests_elsewhere() {
    let mut s = sys();
    // Rank 0 busy; rank 3 goes to self-refresh concurrently.
    for i in 0..64u64 {
        s.submit(PhysAddr::new(i * 64), AccessKind::Write, Priority::Foreground, Picos::ZERO)
            .unwrap();
    }
    s.set_rank_state(RankId { channel: 0, rank: 3 }, PowerState::SelfRefresh, Picos::ZERO).unwrap();
    s.run_until_idle(Picos::from_us(5));
    assert_eq!(s.rank_state(RankId { channel: 0, rank: 3 }), PowerState::SelfRefresh);
    assert_eq!(s.drain_completions().len(), 64);
}

mod page_policy {
    use dtl_dram::{
        AccessKind, AddressMapping, DramConfig, DramSystem, PagePolicy, PhysAddr, Picos, Priority,
    };

    fn run(policy: PagePolicy, addrs: &[u64]) -> (Picos, u64, u64) {
        let cfg = DramConfig { page_policy: policy, ..DramConfig::tiny() };
        let mut s = DramSystem::new(cfg, AddressMapping::RankInterleaved).unwrap();
        let mut t = Picos::ZERO;
        for a in addrs {
            t += Picos::from_ns(200);
            s.submit(PhysAddr::new(*a), AccessKind::Read, Priority::Foreground, t).unwrap();
        }
        s.run_until_idle(Picos::from_us(5));
        let mean = s.foreground_stats().mean();
        let mut hits = 0;
        let mut acts = 0;
        for id in s.rank_ids() {
            hits += s.rank_counters(id).row_hits;
            acts += s.rank_counters(id).activates;
        }
        (mean, hits, acts)
    }

    #[test]
    fn closed_page_kills_row_hits_for_streams() {
        // A sequential stream within one row: open page hits, closed page
        // re-activates every access.
        let addrs: Vec<u64> = (0..64u64).map(|i| i * 128).collect();
        let (open_mean, open_hits, open_acts) = run(PagePolicy::OpenPage, &addrs);
        let (closed_mean, closed_hits, closed_acts) = run(PagePolicy::ClosedPage, &addrs);
        assert!(open_hits > closed_hits, "open {open_hits} vs closed {closed_hits}");
        assert!(closed_acts > open_acts, "closed must re-activate: {closed_acts} vs {open_acts}");
        assert!(closed_mean >= open_mean, "closed {closed_mean} vs open {open_mean}");
        assert_eq!(closed_hits, 0, "auto-precharge leaves nothing open");
    }

    #[test]
    fn closed_page_never_pays_conflict_precharge() {
        // Ping-pong between two rows of the same bank: open page pays a
        // conflict PRE on every switch; closed page pre-emptively closed.
        let cfg = DramConfig::tiny();
        let mapper =
            dtl_dram::AddressMapper::new(cfg.geometry, AddressMapping::RankInterleaved).unwrap();
        let addr = |row: u64| {
            mapper
                .encode(&dtl_dram::DecodedAddr {
                    channel: 0,
                    rank: 0,
                    bank_group: 0,
                    bank: 0,
                    row,
                    column: 0,
                })
                .unwrap()
                .as_u64()
        };
        let addrs: Vec<u64> = (0..32u64).map(|i| addr(i % 2 + 1)).collect();
        let (open_mean, _, _) = run(PagePolicy::OpenPage, &addrs);
        let (closed_mean, _, _) = run(PagePolicy::ClosedPage, &addrs);
        // For pure row ping-pong, closed page is at least as good.
        assert!(
            closed_mean <= open_mean + Picos::from_ns(2),
            "closed {closed_mean} vs open {open_mean}"
        );
    }
}
