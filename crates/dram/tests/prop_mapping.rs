//! Property tests: address-mapping bijectivity and decode validity for
//! every mapping policy over every geometry.

use dtl_dram::{AddressMapper, AddressMapping, Geometry, PhysAddr};
use proptest::prelude::*;

fn geometries() -> Vec<Geometry> {
    vec![Geometry::tiny(), Geometry::cxl_1tb(), Geometry::cxl_4tb()]
}

fn mappings(g: &Geometry) -> Vec<AddressMapping> {
    let min_seg = 64 * g.columns * u64::from(g.banks_per_rank());
    vec![
        AddressMapping::RankInterleaved,
        AddressMapping::DtlRankMsb { segment_bytes: min_seg },
        AddressMapping::DtlRankMsb { segment_bytes: (2 << 20).max(min_seg) },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// decode → encode is the identity on line-aligned addresses.
    #[test]
    fn decode_encode_round_trip(line in 0u64..u64::MAX) {
        for g in geometries() {
            for m in mappings(&g) {
                let mapper = AddressMapper::new(g, m).unwrap();
                let addr = PhysAddr::new((line % (mapper.capacity_bytes() / 64)) * 64);
                let d = mapper.decode(addr).unwrap();
                prop_assert_eq!(mapper.encode(&d).unwrap(), addr);
            }
        }
    }

    /// Decoded components always respect the geometry bounds.
    #[test]
    fn decode_within_bounds(line in 0u64..u64::MAX) {
        for g in geometries() {
            for m in mappings(&g) {
                let mapper = AddressMapper::new(g, m).unwrap();
                let addr = PhysAddr::new((line % (mapper.capacity_bytes() / 64)) * 64);
                let d = mapper.decode(addr).unwrap();
                prop_assert!(d.channel < g.channels);
                prop_assert!(d.rank < g.ranks_per_channel);
                prop_assert!(d.bank_group < g.bank_groups);
                prop_assert!(d.bank < g.banks_per_group);
                prop_assert!(d.row < g.rows);
                prop_assert!(d.column < g.columns);
            }
        }
    }

    /// Distinct lines decode to distinct locations (injectivity).
    #[test]
    fn mapping_is_injective(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        prop_assume!(a != b);
        let g = Geometry::tiny();
        for m in mappings(&g) {
            let mapper = AddressMapper::new(g, m).unwrap();
            let cap_lines = mapper.capacity_bytes() / 64;
            let (x, y) = (a % cap_lines, b % cap_lines);
            prop_assume!(x != y);
            let da = mapper.decode(PhysAddr::new(x * 64)).unwrap();
            let db = mapper.decode(PhysAddr::new(y * 64)).unwrap();
            prop_assert_ne!(da, db, "lines {} and {} collide", x, y);
        }
    }

    /// Under the DTL mapping, all lines of one segment share (channel, rank)
    /// and consecutive segments rotate channels.
    #[test]
    fn dtl_segment_locality(seg in 0u64..10_000) {
        let g = Geometry::cxl_1tb();
        let seg_bytes = 2u64 << 20;
        let mapper =
            AddressMapper::new(g, AddressMapping::DtlRankMsb { segment_bytes: seg_bytes }).unwrap();
        let n_segs = mapper.capacity_bytes() / seg_bytes;
        let s = seg % n_segs;
        let base = s * seg_bytes;
        let d0 = mapper.decode(PhysAddr::new(base)).unwrap();
        for off in [64u64, 4096, seg_bytes / 2, seg_bytes - 64] {
            let d = mapper.decode(PhysAddr::new(base + off)).unwrap();
            prop_assert_eq!(d.channel, d0.channel);
            prop_assert_eq!(d.rank, d0.rank);
        }
        if s + 1 < n_segs {
            let dn = mapper.decode(PhysAddr::new(base + seg_bytes)).unwrap();
            prop_assert_eq!(dn.channel, (d0.channel + 1) % g.channels);
        }
    }
}
