//! Property tests: the FR-FCFS scheduler serves arbitrary request streams
//! completely, with monotone per-channel command order and JEDEC-legal
//! spacing for the core constraints.

use dtl_dram::{
    AccessKind, AddressMapping, CommandKind, DramConfig, DramSystem, PhysAddr, Picos, Priority,
    RecordingSink, TimingParams,
};
use proptest::prelude::*;

fn any_request() -> impl Strategy<Value = (u64, bool, u64)> {
    // (line index, is_write, arrival gap in ns)
    (0u64..4096, any::<bool>(), 0u64..500)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every submitted request eventually completes, exactly once.
    #[test]
    fn all_requests_complete(reqs in prop::collection::vec(any_request(), 1..200)) {
        let mut sys = DramSystem::new(DramConfig::tiny(), AddressMapping::RankInterleaved).unwrap();
        let cap_lines = sys.config().geometry.capacity_bytes() / 64;
        let mut t = Picos::ZERO;
        let mut ids = Vec::new();
        for (line, w, gap) in &reqs {
            t += Picos::from_ns(*gap);
            let kind = if *w { AccessKind::Write } else { AccessKind::Read };
            let addr = PhysAddr::new((line % cap_lines) * 64);
            ids.push(sys.submit(addr, kind, Priority::Foreground, t).unwrap());
        }
        sys.run_until_idle(Picos::from_us(10));
        let mut done: Vec<u64> = sys.drain_completions().iter().map(|c| c.id).collect();
        done.sort_unstable();
        ids.sort_unstable();
        prop_assert_eq!(done, ids);
    }

    /// Per (channel, bank): ACT/PRE alternate and CAS commands only appear
    /// while a row is open; tRCD/tRP hold between them.
    #[test]
    fn command_stream_is_legal(reqs in prop::collection::vec(any_request(), 1..120)) {
        let cfg = DramConfig::tiny();
        let t: TimingParams = cfg.timing;
        let mut sys = DramSystem::new(cfg, AddressMapping::RankInterleaved).unwrap();
        let cap_lines = sys.config().geometry.capacity_bytes() / 64;
        let mut now = Picos::ZERO;
        for (line, w, gap) in &reqs {
            now += Picos::from_ns(*gap);
            let kind = if *w { AccessKind::Write } else { AccessKind::Read };
            sys.submit(PhysAddr::new((line % cap_lines) * 64), kind, Priority::Foreground, now)
                .unwrap();
        }
        let mut sink = RecordingSink::default();
        let mut horizon = now + Picos::from_us(10);
        while sys.pending() > 0 {
            sys.advance_to_with_sink(horizon, &mut sink);
            horizon += Picos::from_us(10);
        }
        // Group by (channel, rank); track per-bank state within the rank
        // because an all-bank REF implies a PREA.
        use std::collections::HashMap;
        let mut per_rank: HashMap<(u32, u32), Vec<_>> = HashMap::new();
        for c in &sink.commands {
            match c.kind {
                CommandKind::Activate | CommandKind::Precharge | CommandKind::Read
                | CommandKind::Write | CommandKind::Refresh => {
                    per_rank.entry((c.channel, c.rank)).or_default().push(*c);
                }
                _ => {}
            }
        }
        for (rank, cmds) in per_rank {
            let mut open: HashMap<(u32, u32), Picos> = HashMap::new(); // bank -> ACT time
            let mut last_pre: HashMap<(u32, u32), Picos> = HashMap::new();
            for c in cmds {
                let bank = (c.target.bank_group, c.target.bank);
                match c.kind {
                    CommandKind::Activate => {
                        prop_assert!(!open.contains_key(&bank), "double ACT on {rank:?}/{bank:?}");
                        if let Some(p) = last_pre.get(&bank) {
                            prop_assert!(
                                c.at >= *p + t.cycles(t.trp),
                                "tRP violation on {rank:?}/{bank:?}"
                            );
                        }
                        open.insert(bank, c.at);
                    }
                    CommandKind::Precharge => {
                        let act = open.remove(&bank);
                        prop_assert!(act.is_some(), "PRE on closed {rank:?}/{bank:?}");
                        prop_assert!(
                            c.at >= act.unwrap() + t.cycles(t.tras),
                            "tRAS violation on {rank:?}/{bank:?}"
                        );
                        last_pre.insert(bank, c.at);
                    }
                    CommandKind::Read | CommandKind::Write => {
                        let act = open.get(&bank);
                        prop_assert!(act.is_some(), "CAS on closed {rank:?}/{bank:?}");
                        prop_assert!(
                            c.at >= *act.unwrap() + t.cycles(t.trcd),
                            "tRCD violation on {rank:?}/{bank:?}"
                        );
                    }
                    CommandKind::Refresh => {
                        // All-bank refresh implies a precharge-all.
                        open.clear();
                        last_pre.clear();
                    }
                    _ => unreachable!("filtered above"),
                }
            }
        }
    }

    /// Completion times are never before arrival plus the minimum service
    /// latency (CAS + burst).
    #[test]
    fn latency_lower_bound(reqs in prop::collection::vec(any_request(), 1..100)) {
        let cfg = DramConfig::tiny();
        let t = cfg.timing;
        let min_rd = t.cycles(t.cl) + t.burst_time();
        let min_wr = t.cycles(t.cwl) + t.burst_time();
        let mut sys = DramSystem::new(cfg, AddressMapping::RankInterleaved).unwrap();
        let cap_lines = sys.config().geometry.capacity_bytes() / 64;
        let mut now = Picos::ZERO;
        let mut writes = std::collections::HashSet::new();
        for (line, w, gap) in &reqs {
            now += Picos::from_ns(*gap);
            let kind = if *w { AccessKind::Write } else { AccessKind::Read };
            let id = sys
                .submit(PhysAddr::new((line % cap_lines) * 64), kind, Priority::Foreground, now)
                .unwrap();
            if *w {
                writes.insert(id);
            }
        }
        sys.run_until_idle(Picos::from_us(10));
        for c in sys.drain_completions() {
            let min = if writes.contains(&c.id) { min_wr } else { min_rd };
            prop_assert!(c.latency() >= min, "latency {} below floor {}", c.latency(), min);
        }
    }
}
