//! Exporters: JSONL event logs and Chrome `trace_event` / Perfetto JSON.
//!
//! The Chrome trace uses the JSON object format (`{"traceEvents": [...]}`)
//! with one *process* per DRAM channel and one *thread* (track) per rank.
//! Power-state residency appears as complete `ph: "X"` duration spans whose
//! `args` carry the exact picosecond start/duration (the `ts`/`dur` fields
//! are microseconds, as the format requires). Discrete happenings —
//! migrations, TSP advances, faults, health moves — appear as `ph: "i"`
//! instant events; device-wide happenings (VM allocation, CXL retries) live
//! in a synthetic "device" process.

use serde::Value;

use crate::event::{Event, EventKind};
use crate::timeline::PowerTimeline;

/// Synthetic pid for device-scoped (non-rank) instant events.
pub const DEVICE_PID: u64 = 1_000_000;

/// Synthetic tid grouping per-channel instant events that are not tied to a
/// single rank track.
pub const EVENTS_TID: u64 = 9_999;

/// Renders events as JSON Lines: one JSON object per event, one per line.
pub fn jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&serde_json::to_string(ev).expect("event serialization is infallible"));
        out.push('\n');
    }
    out
}

/// Parses a JSONL export back into events (used by tests and tooling).
///
/// # Errors
///
/// Returns the underlying parse error for the first malformed line.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, serde_json::Error> {
    text.lines().filter(|l| !l.trim().is_empty()).map(serde_json::from_str).collect()
}

fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn str_v(s: impl Into<String>) -> Value {
    Value::Str(s.into())
}

fn uint(u: u64) -> Value {
    Value::Uint(u as u128)
}

/// Microseconds for the `ts`/`dur` fields (Chrome's native trace unit).
fn ps_to_us(ps: u64) -> Value {
    Value::Float(ps as f64 / 1e6)
}

fn metadata(name: &str, pid: u64, tid: u64, value: &str) -> Value {
    map(vec![
        ("name", str_v(name)),
        ("ph", str_v("M")),
        ("pid", uint(pid)),
        ("tid", uint(tid)),
        ("args", map(vec![("name", str_v(value))])),
    ])
}

fn instant(
    name: String,
    at_ps: u64,
    pid: u64,
    tid: u64,
    scope: &str,
    args: Vec<(&str, Value)>,
) -> Value {
    map(vec![
        ("name", str_v(name)),
        ("ph", str_v("i")),
        ("s", str_v(scope)),
        ("ts", ps_to_us(at_ps)),
        ("pid", uint(pid)),
        ("tid", uint(tid)),
        ("args", map(args)),
    ])
}

/// Builds the full Chrome `trace_event` JSON for a run: rank power-state
/// span tracks from `timeline` plus instant markers for the discrete events
/// in `events`. The result loads in Perfetto and `chrome://tracing`.
pub fn chrome_trace(timeline: &PowerTimeline, events: &[Event]) -> String {
    let mut trace_events: Vec<Value> = Vec::new();

    // Track naming metadata: one process per channel, one thread per rank.
    let rank_ids = timeline.rank_ids();
    let mut channels: Vec<u32> = rank_ids.iter().map(|&(c, _)| c).collect();
    channels.dedup();
    for &channel in &channels {
        trace_events.push(metadata(
            "process_name",
            channel as u64,
            0,
            &format!("channel {channel}"),
        ));
    }
    for &(channel, rank) in &rank_ids {
        trace_events.push(metadata(
            "thread_name",
            channel as u64,
            rank as u64,
            &format!("rank {rank}"),
        ));
    }

    // Power-state residency spans, one complete event per span.
    for &(channel, rank) in &rank_ids {
        for span in timeline.spans(channel, rank) {
            trace_events.push(map(vec![
                ("name", str_v(span.state.label())),
                ("cat", str_v("power")),
                ("ph", str_v("X")),
                ("ts", ps_to_us(span.start_ps)),
                ("dur", ps_to_us(span.duration_ps())),
                ("pid", uint(channel as u64)),
                ("tid", uint(rank as u64)),
                (
                    "args",
                    map(vec![
                        ("start_ps", uint(span.start_ps)),
                        ("dur_ps", uint(span.duration_ps())),
                        ("state", str_v(span.state.label())),
                    ]),
                ),
            ]));
        }
    }

    // Instant markers. Channel-scoped kinds ride in their channel's process
    // (on the rank track when one rank is implicated, otherwise on a shared
    // per-channel "events" track); device-scoped kinds go to DEVICE_PID.
    let mut channel_event_tracks: Vec<u32> = Vec::new();
    let mut device_track = false;
    for ev in events {
        let item = match ev.kind {
            EventKind::RankPowerTransition { .. } => None, // covered by spans
            EventKind::SegmentMigrated { channel, src, dst, swap, bytes } => Some((
                (channel as u64, EVENTS_TID),
                instant(
                    (if swap { "segment swap" } else { "segment copy" }).to_string(),
                    ev.at_ps,
                    channel as u64,
                    EVENTS_TID,
                    "t",
                    vec![("src", uint(src)), ("dst", uint(dst)), ("bytes", uint(bytes))],
                ),
            )),
            EventKind::TspAdvance { channel, victim, timeout } => Some((
                (channel as u64, EVENTS_TID),
                instant(
                    "tsp advance".to_string(),
                    ev.at_ps,
                    channel as u64,
                    EVENTS_TID,
                    "t",
                    vec![("victim", uint(victim as u64)), ("timeout", Value::Bool(timeout))],
                ),
            )),
            EventKind::SelfRefreshSwap { channel, victim, swaps } => Some((
                (channel as u64, victim as u64),
                instant(
                    "self-refresh park".to_string(),
                    ev.at_ps,
                    channel as u64,
                    victim as u64,
                    "t",
                    vec![("swaps", uint(swaps as u64))],
                ),
            )),
            EventKind::FaultInjected { kind, channel, rank } => {
                let (pid, tid) = match (channel, rank) {
                    (Some(c), Some(r)) => (c as u64, r as u64),
                    (Some(c), None) => (c as u64, EVENTS_TID),
                    _ => (DEVICE_PID, 0),
                };
                Some((
                    (pid, tid),
                    instant(format!("fault: {}", kind.label()), ev.at_ps, pid, tid, "t", vec![]),
                ))
            }
            EventKind::HealthTransition { channel, rank, from, to } => Some((
                (channel as u64, rank as u64),
                instant(
                    format!("health: {} -> {}", from.label(), to.label()),
                    ev.at_ps,
                    channel as u64,
                    rank as u64,
                    "t",
                    vec![],
                ),
            )),
            EventKind::CxlRetry { burst, replays, gave_up, delay_ps } => Some((
                (DEVICE_PID, 0),
                instant(
                    "cxl retry".to_string(),
                    ev.at_ps,
                    DEVICE_PID,
                    0,
                    "t",
                    vec![
                        ("burst", uint(burst as u64)),
                        ("replays", uint(replays as u64)),
                        ("gave_up", Value::Bool(gave_up)),
                        ("delay_ps", uint(delay_ps)),
                    ],
                ),
            )),
            EventKind::VmAlloc { vm, segments } => Some((
                (DEVICE_PID, 0),
                instant(
                    "vm alloc".to_string(),
                    ev.at_ps,
                    DEVICE_PID,
                    0,
                    "t",
                    vec![("vm", uint(vm)), ("segments", uint(segments))],
                ),
            )),
            EventKind::VmDealloc { vm, segments } => Some((
                (DEVICE_PID, 0),
                instant(
                    "vm dealloc".to_string(),
                    ev.at_ps,
                    DEVICE_PID,
                    0,
                    "t",
                    vec![("vm", uint(vm)), ("segments", uint(segments))],
                ),
            )),
            EventKind::FabricTransfer { port, bytes, queue_ps } => Some((
                (DEVICE_PID, 0),
                instant(
                    format!("fabric port {port}"),
                    ev.at_ps,
                    DEVICE_PID,
                    0,
                    "t",
                    vec![("bytes", uint(bytes)), ("queue_ps", uint(queue_ps))],
                ),
            )),
        };
        if let Some(((pid, tid), value)) = item {
            if pid == DEVICE_PID {
                device_track = true;
            } else if tid == EVENTS_TID && !channel_event_tracks.contains(&(pid as u32)) {
                channel_event_tracks.push(pid as u32);
            }
            trace_events.push(value);
        }
    }
    for channel in channel_event_tracks {
        trace_events.push(metadata("thread_name", channel as u64, EVENTS_TID, "events"));
    }
    if device_track {
        trace_events.push(metadata("process_name", DEVICE_PID, 0, "device"));
        trace_events.push(metadata("thread_name", DEVICE_PID, 0, "events"));
    }

    let root =
        map(vec![("traceEvents", Value::Seq(trace_events)), ("displayTimeUnit", str_v("ns"))]);
    serde_json::to_string(&root).expect("value serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PowerStateId;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                at_ps: 100,
                kind: EventKind::RankPowerTransition {
                    channel: 0,
                    rank: 1,
                    from: PowerStateId::Standby,
                    to: PowerStateId::SelfRefresh,
                    auto_exit: false,
                },
            },
            Event {
                at_ps: 250,
                kind: EventKind::SegmentMigrated {
                    channel: 0,
                    src: 3,
                    dst: 9,
                    swap: true,
                    bytes: 4096,
                },
            },
            Event { at_ps: 300, kind: EventKind::VmAlloc { vm: 5, segments: 16 } },
        ]
    }

    #[test]
    fn jsonl_round_trips() {
        let events = sample_events();
        let text = jsonl(&events);
        assert_eq!(text.lines().count(), 3);
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_span_and_instant_events() {
        let events = sample_events();
        let timeline = PowerTimeline::from_events(events.iter(), 1_000);
        let text = chrome_trace(&timeline, &events);
        let root: Value = serde_json::from_str(&text).unwrap();
        let seq =
            serde::field(root.as_map().unwrap(), "traceEvents").unwrap().as_seq().unwrap().to_vec();
        let phase = |v: &Value| {
            v.as_map()
                .and_then(|m| serde::field(m, "ph").ok())
                .and_then(Value::as_str)
                .unwrap()
                .to_string()
        };
        assert!(seq.iter().any(|v| phase(v) == "X"), "must contain duration spans");
        assert!(seq.iter().any(|v| phase(v) == "i"), "must contain instants");
        assert!(seq.iter().any(|v| phase(v) == "M"), "must contain track metadata");
        // Exact ps durations: the rank 0/1 spans must sum to the horizon.
        let mut sum = 0u64;
        for v in &seq {
            let m = v.as_map().unwrap();
            if phase(v) == "X" {
                let args = serde::field(m, "args").unwrap().as_map().unwrap();
                let dur: u64 = match serde::field(args, "dur_ps").unwrap() {
                    Value::Uint(u) => *u as u64,
                    other => panic!("dur_ps not an integer: {other:?}"),
                };
                sum += dur;
            }
        }
        assert_eq!(sum, 1_000);
    }
}
