//! A registry of named counters, gauges, and log-scaled histograms.
//!
//! Hot paths resolve their handles (`Arc<Counter>` etc.) once, when a
//! telemetry handle is installed, and afterwards touch only the atomic —
//! the registry lock is never on a per-access path. Names are dotted
//! lower-case paths, e.g. `dtl.migrate.bytes_moved`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing `u64`.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the value (used when mirroring an externally accumulated
    /// stats struct into the registry at export time).
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Folds `other` into this counter (sums the totals). Used when merging
    /// per-worker registries after a sharded run.
    pub fn merge_from(&self, other: &Counter) {
        self.add(other.get());
    }
}

/// A signed instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Folds `other` into this gauge by summation. Worker gauges track
    /// per-shard levels (e.g. live VM counts of disjoint unit replays), so
    /// the merged gauge is the sum of the shard levels.
    pub fn merge_from(&self, other: &Gauge) {
        self.add(other.get());
    }
}

/// Number of histogram buckets: one for zero plus one per power of two.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples (e.g. latencies in
/// picoseconds). Bucket 0 holds exact zeros; bucket `i ≥ 1` holds samples in
/// `[2^(i-1), 2^i)`. Quantiles report the inclusive upper bound of the
/// containing bucket, so they overestimate by at most 2×.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `i`.
    fn bucket_upper(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of samples (wraps on overflow — fine for ps-scale latencies).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample, or 0.0 with no samples.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Folds `other` into this histogram bucket-by-bucket. The result is
    /// identical to having observed both sample streams into one histogram,
    /// in any interleaving — log₂ bucketing is order-free.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The bucket upper bound below which at least `q` (0..=1) of samples
    /// fall, or 0 with no samples.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * n as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Self::bucket_upper(i);
            }
        }
        u64::MAX
    }

    /// [`Histogram::quantile`] on the percent scale: `percentile(99.9)` is
    /// `quantile(0.999)`. The convenience accessor SLO reports use for
    /// p50/p95/p99/p99.9; out-of-range inputs clamp to `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        self.quantile(p / 100.0)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Named metrics, get-or-create by name.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Folds every metric of `other` into this registry: counters and
    /// histograms sum, gauges sum shard levels. Metrics missing here are
    /// created. The merge is **deterministic and order-free**: merging any
    /// permutation of disjointly-accumulated worker registries yields the
    /// same final state, because every fold is a commutative sum and names
    /// are matched exactly.
    ///
    /// # Panics
    ///
    /// Panics if a name is registered here with a different metric kind
    /// than in `other` — the same schema bug [`MetricsRegistry::counter`]
    /// and friends reject.
    pub fn merge_from(&self, other: &MetricsRegistry) {
        if std::ptr::eq(self, other) {
            return; // self-merge would deadlock on the inner lock
        }
        let theirs: Vec<(String, Metric)> =
            other.inner.lock().unwrap().iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        for (name, metric) in theirs {
            match metric {
                Metric::Counter(c) => self.counter(&name).merge_from(&c),
                Metric::Gauge(g) => self.gauge(&name).merge_from(&g),
                Metric::Histogram(h) => self.histogram(&name).merge_from(&h),
            }
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders every metric as one plaintext line, sorted by name:
    ///
    /// ```text
    /// dtl.device.segments_migrated counter 42
    /// dtl.link.util gauge -3
    /// dtl.translation.latency_ps histogram count=9 sum=1100 mean=122.2 p50=127 p99=255
    /// ```
    pub fn render_text(&self) -> String {
        let map = self.inner.lock().unwrap();
        let mut out = String::new();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("{name} counter {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("{name} gauge {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!(
                        "{name} histogram count={} sum={} mean={:.1} p50={} p99={}\n",
                        h.count(),
                        h.sum(),
                        h.mean(),
                        h.quantile(0.50),
                        h.quantile(0.99),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a.count");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("a.count").get(), 5, "same name, same counter");
        let g = reg.gauge("a.gauge");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = Histogram::default();
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for v in [0u64, 1, 2, 3, 100, 1_000_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1_000_106);
        // p50 of {0,1,2,3,100,1M}: 3rd sample sits in bucket [2,4).
        assert_eq!(h.quantile(0.5), 3);
        assert!(h.quantile(1.0) >= 1_000_000);
    }

    #[test]
    fn render_is_sorted_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").add(1);
        reg.counter("a.first").add(2);
        reg.histogram("m.hist").observe(8);
        let text = reg.render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a.first counter 2"));
        assert!(lines[1].starts_with("m.hist histogram count=1"));
        assert!(lines[2].starts_with("z.last counter 1"));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn percentile_matches_quantile_on_the_percent_scale() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.percentile(50.0), h.quantile(0.50));
        assert_eq!(h.percentile(95.0), h.quantile(0.95));
        assert_eq!(h.percentile(99.0), h.quantile(0.99));
        assert_eq!(h.percentile(99.9), h.quantile(0.999));
    }

    #[test]
    fn percentile_boundary_conditions() {
        let h = Histogram::default();
        assert_eq!(h.percentile(50.0), 0, "empty histogram reports 0");
        assert_eq!(h.percentile(100.0), 0, "empty histogram reports 0 at p100");

        // A single sample dominates every percentile with a positive target;
        // p0 is the degenerate "at least zero samples" bound (bucket 0).
        h.observe(7);
        for p in [0.1, 50.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), 7, "p{p} of one sample in [4,8)");
        }
        assert_eq!(h.percentile(0.0), 0);

        // Out-of-range inputs clamp rather than panic or wrap.
        assert_eq!(h.percentile(-5.0), h.percentile(0.0));
        assert_eq!(h.percentile(250.0), h.percentile(100.0));
    }

    #[test]
    fn percentile_reports_bucket_upper_bounds() {
        let h = Histogram::default();
        // 99 samples of 1 and one of 2^20: p99 stays in the low bucket and
        // p99.9 must climb into the outlier's bucket.
        for _ in 0..99 {
            h.observe(1);
        }
        h.observe(1 << 20);
        assert_eq!(h.percentile(99.0), 1);
        assert_eq!(h.percentile(99.9), (1 << 21) - 1, "outlier bucket upper bound");
        // Zero samples land in the dedicated zero bucket.
        let z = Histogram::default();
        z.observe(0);
        z.observe(0);
        assert_eq!(z.percentile(99.9), 0);
        // Saturating top bucket: u64::MAX reports u64::MAX.
        let top = Histogram::default();
        top.observe(u64::MAX);
        assert_eq!(top.percentile(100.0), u64::MAX);
    }
}
