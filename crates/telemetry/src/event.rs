//! Typed telemetry events and the telemetry-local id enums.
//!
//! `dtl-telemetry` sits *below* every other crate in the workspace, so it
//! cannot name `dtl_dram::PowerState` or `dtl_core::RankHealth`. Instead it
//! defines small mirror enums ([`PowerStateId`], [`HealthStateId`],
//! [`FaultKindId`]) whose variant order matches the originals; the emitting
//! crates convert at the instrumentation site.

use serde::{Deserialize, Serialize};

/// Mirror of `dtl_dram::PowerState`, in the same variant order (and therefore
/// the same residency-array index order as `PowerState::ALL`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PowerStateId {
    /// Fully operational (CKE high).
    Standby,
    /// Shallow power-down with a bank row open.
    ActivePowerDown,
    /// Shallow power-down with all banks precharged.
    PrechargePowerDown,
    /// Clock stopped, DRAM refreshes itself; data retained.
    SelfRefresh,
    /// Maximum power saving mode; data lost.
    Mpsm,
}

impl PowerStateId {
    /// All states, in residency-array index order.
    pub const ALL: [PowerStateId; 5] = [
        PowerStateId::Standby,
        PowerStateId::ActivePowerDown,
        PowerStateId::PrechargePowerDown,
        PowerStateId::SelfRefresh,
        PowerStateId::Mpsm,
    ];

    /// Index into a residency array (matches `PowerState::ALL` order).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short human-readable label (used for trace track span names).
    pub fn label(self) -> &'static str {
        match self {
            PowerStateId::Standby => "standby",
            PowerStateId::ActivePowerDown => "active-powerdown",
            PowerStateId::PrechargePowerDown => "precharge-powerdown",
            PowerStateId::SelfRefresh => "self-refresh",
            PowerStateId::Mpsm => "mpsm",
        }
    }
}

/// Mirror of `dtl_core::RankHealth`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HealthStateId {
    /// Error rate within the noise floor.
    Healthy,
    /// Correctable-error budget exceeded; under observation.
    Degraded,
    /// Health tripped; segments are being drained off the rank.
    Draining,
    /// Rank permanently removed from service.
    Retired,
}

impl HealthStateId {
    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            HealthStateId::Healthy => "healthy",
            HealthStateId::Degraded => "degraded",
            HealthStateId::Draining => "draining",
            HealthStateId::Retired => "retired",
        }
    }
}

/// Mirror of `dtl_fault::FaultKind`, payload-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKindId {
    /// Correctable (ECC-fixed) DRAM error.
    CorrectableEcc,
    /// Uncorrectable (multi-bit) DRAM error.
    UncorrectableEcc,
    /// CRC corruption on the CXL link.
    LinkCrc,
    /// In-flight migration cut off mid-transfer.
    MigrationInterrupt,
}

impl FaultKindId {
    /// Short human-readable label (also used as a metrics-name suffix).
    pub fn label(self) -> &'static str {
        match self {
            FaultKindId::CorrectableEcc => "correctable_ecc",
            FaultKindId::UncorrectableEcc => "uncorrectable_ecc",
            FaultKindId::LinkCrc => "link_crc",
            FaultKindId::MigrationInterrupt => "migration_interrupt",
        }
    }
}

/// What happened. Every variant is `Copy` so events move through the ring
/// buffer without allocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// One segment migration (copy or swap) completed.
    SegmentMigrated {
        /// Channel the migration engine slot belongs to.
        channel: u32,
        /// Source device segment number (for swaps: side A).
        src: u64,
        /// Destination device segment number (for swaps: side B).
        dst: u64,
        /// `true` for an atomic swap, `false` for a drain copy.
        swap: bool,
        /// Bytes transferred.
        bytes: u64,
    },
    /// A rank changed power state (single source of truth: the backend's
    /// drained `PowerEvent` stream, so cycle and analytic backends agree).
    RankPowerTransition {
        /// Channel of the rank.
        channel: u32,
        /// Rank within the channel.
        rank: u32,
        /// State left.
        from: PowerStateId,
        /// State entered.
        to: PowerStateId,
        /// `true` when the exit was forced by an access (auto wake).
        auto_exit: bool,
    },
    /// The hotness engine's two-pointer swap planner advanced.
    TspAdvance {
        /// Channel being planned.
        channel: u32,
        /// Victim rank the plan empties.
        victim: u32,
        /// `true` when the advance was forced by the TSP timeout (Fig 8(c)),
        /// `false` when a victim touch triggered it (Fig 8(b)).
        timeout: bool,
    },
    /// A hotness plan finished migrating and parked its victim rank in
    /// self-refresh.
    SelfRefreshSwap {
        /// Channel of the parked rank.
        channel: u32,
        /// Rank entering self-refresh.
        victim: u32,
        /// Number of segment swaps the plan executed.
        swaps: u32,
    },
    /// The CXL link-layer retry engine replayed a corrupted transfer.
    CxlRetry {
        /// Consecutive corrupted attempts observed on this transaction.
        burst: u32,
        /// Replays actually issued (capped by the retry policy).
        replays: u32,
        /// `true` when the policy gave up before a clean transfer.
        gave_up: bool,
        /// Total backoff delay charged, picoseconds.
        delay_ps: u64,
    },
    /// A fault from the injection plan (or a direct injection hook) struck.
    FaultInjected {
        /// Kind of fault.
        kind: FaultKindId,
        /// Channel, when the fault targets a rank.
        channel: Option<u32>,
        /// Rank, when the fault targets a rank.
        rank: Option<u32>,
    },
    /// A rank's health state machine moved.
    HealthTransition {
        /// Channel of the rank.
        channel: u32,
        /// Rank within the channel.
        rank: u32,
        /// State left.
        from: HealthStateId,
        /// State entered.
        to: HealthStateId,
    },
    /// A VM was allocated segments on the device.
    VmAlloc {
        /// VM identifier.
        vm: u64,
        /// Segments granted.
        segments: u64,
    },
    /// A VM released its segments.
    VmDealloc {
        /// VM identifier.
        vm: u64,
        /// Segments released.
        segments: u64,
    },
    /// A transfer serialized through one fabric port (up or down side of a
    /// switch crossing; a switched access emits one per port it crossed).
    FabricTransfer {
        /// Global fabric port index.
        port: u32,
        /// Bytes serialized.
        bytes: u64,
        /// Time the transfer queued behind earlier arrivals, picoseconds.
        queue_ps: u64,
    },
}

impl EventKind {
    /// The same event with every channel field shifted by `offset`.
    ///
    /// A pool orchestrator that owns several devices gives device *i* the
    /// channel range `[i * channels, (i + 1) * channels)` in the shared
    /// trace; since the Chrome exporter keys one Perfetto process per
    /// channel, the offset is what turns one event stream into one group of
    /// tracks per device. Device-scoped kinds (VM lifecycle, CXL retries)
    /// carry no channel and pass through unchanged.
    #[must_use]
    pub fn with_channel_offset(self, offset: u32) -> EventKind {
        match self {
            EventKind::SegmentMigrated { channel, src, dst, swap, bytes } => {
                EventKind::SegmentMigrated { channel: channel + offset, src, dst, swap, bytes }
            }
            EventKind::RankPowerTransition { channel, rank, from, to, auto_exit } => {
                EventKind::RankPowerTransition {
                    channel: channel + offset,
                    rank,
                    from,
                    to,
                    auto_exit,
                }
            }
            EventKind::TspAdvance { channel, victim, timeout } => {
                EventKind::TspAdvance { channel: channel + offset, victim, timeout }
            }
            EventKind::SelfRefreshSwap { channel, victim, swaps } => {
                EventKind::SelfRefreshSwap { channel: channel + offset, victim, swaps }
            }
            EventKind::FaultInjected { kind, channel, rank } => {
                EventKind::FaultInjected { kind, channel: channel.map(|c| c + offset), rank }
            }
            EventKind::HealthTransition { channel, rank, from, to } => {
                EventKind::HealthTransition { channel: channel + offset, rank, from, to }
            }
            other @ (EventKind::CxlRetry { .. }
            | EventKind::VmAlloc { .. }
            | EventKind::VmDealloc { .. }
            | EventKind::FabricTransfer { .. }) => other,
        }
    }
}

/// One timestamped telemetry event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Simulation time, picoseconds (the workspace `Picos` unit).
    pub at_ps: u64,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_state_ids_index_in_declaration_order() {
        for (i, s) in PowerStateId::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn events_round_trip_through_json() {
        let events = [
            Event {
                at_ps: 17,
                kind: EventKind::RankPowerTransition {
                    channel: 1,
                    rank: 3,
                    from: PowerStateId::Standby,
                    to: PowerStateId::SelfRefresh,
                    auto_exit: false,
                },
            },
            Event {
                at_ps: 44,
                kind: EventKind::FaultInjected {
                    kind: FaultKindId::LinkCrc,
                    channel: None,
                    rank: None,
                },
            },
            Event { at_ps: 99, kind: EventKind::VmAlloc { vm: 7, segments: 512 } },
            Event {
                at_ps: 120,
                kind: EventKind::FabricTransfer { port: 5, bytes: 64, queue_ps: 2000 },
            },
        ];
        for ev in events {
            let text = serde_json::to_string(&ev).unwrap();
            let back: Event = serde_json::from_str(&text).unwrap();
            assert_eq!(ev, back, "round trip failed for {text}");
        }
    }
}
