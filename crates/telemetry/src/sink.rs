//! The sink trait, the no-op and unbounded-buffer sinks, and the cheap
//! cloneable [`Telemetry`] handle that instrumented code holds.

use std::fmt;
use std::sync::{Arc, Mutex};

use crate::event::{Event, EventKind};
use crate::metrics::MetricsRegistry;

/// Receives telemetry events. Implementations must tolerate concurrent
/// `record` calls (`&self`, `Send + Sync`): the cycle backend and future
/// sharded runners emit from multiple contexts.
pub trait TelemetrySink: fmt::Debug + Send + Sync {
    /// Accepts one event. May drop it (e.g. a full ring buffer); sinks that
    /// drop should count what they dropped.
    fn record(&self, event: Event);

    /// Whether this sink wants events at all. [`Telemetry`] snapshots this
    /// once at construction so the per-event fast path is a single branch on
    /// a plain `bool`.
    fn enabled(&self) -> bool {
        true
    }
}

/// A sink that discards everything. [`Telemetry::disabled`] wraps it; the
/// emit path short-circuits on the cached `enabled() == false` before any
/// dynamic dispatch, so disabled telemetry costs one never-taken branch.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    #[inline]
    fn record(&self, _event: Event) {}

    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

/// An unbounded in-memory sink: every event is kept, in record order.
///
/// This is the per-worker sink of sharded runs (`dtl-sim`'s exec engine):
/// each work unit records into its own `BufferSink`, and at join the
/// per-unit streams are concatenated in **unit-index order** with
/// [`merge_event_streams`] — reproducing exactly the stream a sequential
/// run would have produced, independent of worker scheduling. Unlike
/// [`RingSink`](crate::RingSink) it never drops, so a parallel run cannot
/// lose different events than a sequential one.
#[derive(Debug, Default)]
pub struct BufferSink(Mutex<Vec<Event>>);

impl BufferSink {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes every buffered event, oldest first, leaving the buffer empty.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.0.lock().unwrap())
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.0.lock().unwrap().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TelemetrySink for BufferSink {
    fn record(&self, event: Event) {
        self.0.lock().unwrap().push(event);
    }
}

/// A pass-through sink that shifts every channel field by a fixed offset
/// before forwarding (see [`EventKind::with_channel_offset`]).
///
/// A pool orchestrator wraps one of these around its shared sink per member
/// device, with `offset = device_index * channels_per_device`; the Chrome
/// exporter then renders one process-track group per device with no changes
/// to either the devices or the exporter.
#[derive(Debug)]
pub struct ChannelOffsetSink {
    inner: Arc<dyn TelemetrySink>,
    offset: u32,
}

impl ChannelOffsetSink {
    /// Wraps `inner`, shifting channels by `offset`.
    pub fn new(inner: Arc<dyn TelemetrySink>, offset: u32) -> Self {
        ChannelOffsetSink { inner, offset }
    }

    /// The channel offset applied to forwarded events.
    pub fn offset(&self) -> u32 {
        self.offset
    }
}

impl TelemetrySink for ChannelOffsetSink {
    fn record(&self, event: Event) {
        self.inner.record(Event {
            at_ps: event.at_ps,
            kind: event.kind.with_channel_offset(self.offset),
        });
    }

    fn enabled(&self) -> bool {
        self.inner.enabled()
    }
}

/// A fan-out sink forwarding every event to two downstream sinks, in a
/// fixed order.
///
/// The bench driver uses this when both `--trace-out` (ring buffer) and
/// `--timeseries-out` ([`crate::TimeSeriesSink`]) are requested: the
/// instrumented code still holds a single [`Telemetry`] handle, and the tee
/// duplicates the stream. `enabled` is true when either branch wants
/// events.
#[derive(Debug)]
pub struct TeeSink {
    first: Arc<dyn TelemetrySink>,
    second: Arc<dyn TelemetrySink>,
}

impl TeeSink {
    /// Forwards to `first`, then `second`.
    pub fn new(first: Arc<dyn TelemetrySink>, second: Arc<dyn TelemetrySink>) -> Self {
        TeeSink { first, second }
    }
}

impl TelemetrySink for TeeSink {
    fn record(&self, event: Event) {
        self.first.record(event);
        self.second.record(event);
    }

    fn enabled(&self) -> bool {
        self.first.enabled() || self.second.enabled()
    }
}

/// Merges per-unit event streams into one, concatenating in stream order.
///
/// The contract that makes parallel runs bit-identical to sequential ones:
/// stream `i` holds everything unit `i` recorded, so concatenating in unit
/// index order reproduces the exact event sequence of a `--jobs 1` run —
/// each unit replays its own simulated clock, so sorting across units by
/// timestamp would interleave unrelated time axes, while per-unit order is
/// already chronological.
pub fn merge_event_streams<I>(streams: I) -> Vec<Event>
where
    I: IntoIterator<Item = Vec<Event>>,
{
    let mut out = Vec::new();
    for mut s in streams {
        out.append(&mut s);
    }
    out
}

/// The handle instrumented code stores: a shared sink plus a cached on/off
/// bit and an optional metrics registry. Cloning is two `Arc` bumps, so
/// every engine (device, backend, migration, hotness, health, retry) keeps
/// its own copy.
#[derive(Debug, Clone)]
pub struct Telemetry {
    sink: Arc<dyn TelemetrySink>,
    on: bool,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl Telemetry {
    /// Telemetry that records to `sink`.
    pub fn new(sink: Arc<dyn TelemetrySink>) -> Self {
        let on = sink.enabled();
        Telemetry { sink, on, metrics: None }
    }

    /// Telemetry that discards everything at one-branch cost.
    pub fn disabled() -> Self {
        Telemetry { sink: Arc::new(NoopSink), on: false, metrics: None }
    }

    /// Attaches a metrics registry; instrumented modules resolve their
    /// counter/histogram handles from it when the telemetry handle is
    /// installed (never on the per-access path).
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.on
    }

    /// The attached metrics registry, if any.
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// The underlying sink. Sharded runners use this to replay merged
    /// per-worker streams into the parent sink at join.
    pub fn sink(&self) -> &Arc<dyn TelemetrySink> {
        &self.sink
    }

    /// Records `kind` at simulation time `at_ps`. The disabled path is a
    /// single predictable branch — cheap enough for per-access call sites.
    #[inline]
    pub fn emit(&self, at_ps: u64, kind: EventKind) {
        if self.on {
            self.sink.record(Event { at_ps, kind });
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Debug, Default)]
    struct VecSink(Mutex<Vec<Event>>);

    impl TelemetrySink for VecSink {
        fn record(&self, event: Event) {
            self.0.lock().unwrap().push(event);
        }
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        t.emit(5, EventKind::VmAlloc { vm: 1, segments: 2 });
    }

    #[test]
    fn enabled_telemetry_reaches_the_sink() {
        let sink = Arc::new(VecSink::default());
        let t = Telemetry::new(sink.clone());
        assert!(t.enabled());
        t.emit(5, EventKind::VmAlloc { vm: 1, segments: 2 });
        t.emit(9, EventKind::VmDealloc { vm: 1, segments: 2 });
        let got = sink.0.lock().unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].at_ps, 5);
        assert_eq!(got[1].at_ps, 9);
    }
}
