//! A bounded multi-producer multi-consumer ring buffer sink.
//!
//! The design is the classic Vyukov bounded MPMC queue: each slot carries a
//! sequence number; producers and consumers claim positions with a CAS and
//! publish with a release store, so `record` never takes a lock and never
//! blocks. When the ring is full new events are *dropped* (and counted) —
//! tracing must not distort the simulation it observes.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::event::Event;
use crate::sink::TelemetrySink;

struct Slot {
    /// Slot generation: `pos` when empty and claimable by the producer of
    /// `pos`; `pos + 1` when full and claimable by the consumer of `pos`.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<Event>>,
}

/// Lock-free bounded event buffer implementing [`TelemetrySink`].
pub struct RingSink {
    slots: Box<[Slot]>,
    mask: usize,
    enqueue_pos: AtomicUsize,
    dequeue_pos: AtomicUsize,
    dropped: AtomicU64,
}

// Safety: slots are only written by the producer that won the enqueue CAS
// and only read by the consumer that won the dequeue CAS; the seq
// acquire/release pair orders the value access between them.
unsafe impl Send for RingSink {}
unsafe impl Sync for RingSink {}

impl RingSink {
    /// A ring holding at least `capacity` events (rounded up to the next
    /// power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        RingSink {
            slots,
            mask: cap - 1,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events rejected because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events currently buffered (approximate under concurrency).
    pub fn len(&self) -> usize {
        let head = self.dequeue_pos.load(Ordering::Relaxed);
        let tail = self.enqueue_pos.load(Ordering::Relaxed);
        tail.saturating_sub(head)
    }

    /// Whether the ring is currently empty (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tries to enqueue; returns `false` (and counts a drop) when full.
    pub fn push(&self, event: Event) -> bool {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // Safety: winning the CAS grants exclusive write
                        // access to this slot until the release store below.
                        unsafe { (*slot.value.get()).write(event) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return true;
                    }
                    Err(current) => pos = current,
                }
            } else if dif < 0 {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest event, if any.
    pub fn pop(&self) -> Option<Event> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos.wrapping_add(1) as isize;
            if dif == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // Safety: winning the CAS grants exclusive read
                        // access; the value was initialized by the producer
                        // that published seq = pos + 1. Event is Copy, so a
                        // plain read is a move-out.
                        let event = unsafe { std::ptr::read((*slot.value.get()).as_ptr()) };
                        slot.seq
                            .store(pos.wrapping_add(self.mask).wrapping_add(1), Ordering::Release);
                        return Some(event);
                    }
                    Err(current) => pos = current,
                }
            } else if dif < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Drains everything currently buffered, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(ev) = self.pop() {
            out.push(ev);
        }
        out
    }
}

impl TelemetrySink for RingSink {
    #[inline]
    fn record(&self, event: Event) {
        let _ = self.push(event);
    }
}

impl std::fmt::Debug for RingSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingSink")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use std::sync::Arc;

    fn ev(at: u64) -> Event {
        Event { at_ps: at, kind: EventKind::VmAlloc { vm: at, segments: 1 } }
    }

    #[test]
    fn fifo_order_and_capacity_rounding() {
        let ring = RingSink::with_capacity(3);
        assert_eq!(ring.capacity(), 4);
        for i in 0..4 {
            assert!(ring.push(ev(i)));
        }
        assert!(!ring.push(ev(99)), "5th push into a 4-slot ring must drop");
        assert_eq!(ring.dropped(), 1);
        let drained = ring.drain();
        assert_eq!(drained.iter().map(|e| e.at_ps).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert!(ring.is_empty());
    }

    #[test]
    fn wraps_around_many_generations() {
        let ring = RingSink::with_capacity(8);
        for round in 0..100u64 {
            for i in 0..5 {
                assert!(ring.push(ev(round * 10 + i)));
            }
            let got = ring.drain();
            assert_eq!(got.len(), 5);
            assert_eq!(got[0].at_ps, round * 10);
            assert_eq!(got[4].at_ps, round * 10 + 4);
        }
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn concurrent_producers_lose_nothing_until_full() {
        let ring = Arc::new(RingSink::with_capacity(4096));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let r = ring.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..512u64 {
                    assert!(r.push(ev(t * 1_000_000 + i)));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut got = ring.drain();
        assert_eq!(got.len(), 4 * 512);
        got.sort_by_key(|e| e.at_ps);
        for t in 0..4u64 {
            for i in 0..512u64 {
                assert_eq!(got[(t * 512 + i) as usize].at_ps, t * 1_000_000 + i);
            }
        }
    }
}
