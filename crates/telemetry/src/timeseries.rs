//! Streaming time-series aggregation: fold the event stream into fixed
//! sim-time windows of per-window aggregates.
//!
//! Full event traces are impractical at campaign scale (the fleet campaign
//! pops ~15M events at paper scale), so [`TimeSeriesSink`] keeps only one
//! [`WindowAggregate`] per window — memory is bounded by
//! `horizon / window width` regardless of event volume. Residency folding
//! mirrors [`PowerTimeline`](crate::PowerTimeline) exactly (every rank
//! starts `Standby` at t = 0, spans close at transition instants, the open
//! span closes at the horizon), so summing a window column across the run
//! reproduces the backends' integrated residency counters bit-for-bit.
//!
//! Every aggregate field is a `u64` and [`TimeSeries::merge_from`] is an
//! element-wise sum, so merging per-shard series is commutative and
//! associative: a `--jobs N` run that merges worker series in **any** order
//! emits the same bytes as `--jobs 1` — the same determinism contract the
//! exec engine pins for results and event traces.

use std::collections::BTreeMap;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::event::{Event, EventKind, PowerStateId};
use crate::sink::TelemetrySink;

/// Aggregates of one fixed-width sim-time window. All fields are `u64` so
/// window merges are exact commutative sums.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowAggregate {
    /// Per-state residency accumulated inside this window, summed over
    /// every rank, indexed like [`PowerStateId::ALL`].
    pub residency_ps: [u64; 5],
    /// Rank power-state transitions that landed in this window.
    pub power_transitions: u64,
    /// Segment migrations (copies and swaps) completed in this window.
    pub migrations: u64,
    /// Bytes moved by those migrations.
    pub migration_bytes: u64,
    /// CXL link retry episodes in this window.
    pub cxl_retries: u64,
    /// Total backoff delay those retries charged, picoseconds.
    pub cxl_retry_delay_ps: u64,
    /// VM admissions in this window.
    pub vm_allocs: u64,
    /// VM deallocations in this window.
    pub vm_deallocs: u64,
    /// Faults injected in this window.
    pub faults: u64,
    /// Rank health-state transitions in this window.
    pub health_transitions: u64,
    /// Telemetry events folded into this window (every kind).
    pub events: u64,
    /// Fabric port transfers serialized in this window.
    pub fabric_transfers: u64,
    /// Bytes those transfers pushed through fabric ports.
    pub fabric_bytes: u64,
    /// Queue wait those transfers paid at fabric ports, picoseconds.
    pub fabric_queue_ps: u64,
}

impl WindowAggregate {
    fn merge_from(&mut self, other: &WindowAggregate) {
        for (mine, theirs) in self.residency_ps.iter_mut().zip(other.residency_ps.iter()) {
            *mine += theirs;
        }
        self.power_transitions += other.power_transitions;
        self.migrations += other.migrations;
        self.migration_bytes += other.migration_bytes;
        self.cxl_retries += other.cxl_retries;
        self.cxl_retry_delay_ps += other.cxl_retry_delay_ps;
        self.vm_allocs += other.vm_allocs;
        self.vm_deallocs += other.vm_deallocs;
        self.faults += other.faults;
        self.health_transitions += other.health_transitions;
        self.events += other.events;
        self.fabric_transfers += other.fabric_transfers;
        self.fabric_bytes += other.fabric_bytes;
        self.fabric_queue_ps += other.fabric_queue_ps;
    }
}

/// The CSV header [`TimeSeries::to_csv`] emits (and CI validates).
pub const TIMESERIES_CSV_HEADER: &str = "window,start_ps,end_ps,standby_ps,active_powerdown_ps,\
     precharge_powerdown_ps,self_refresh_ps,mpsm_ps,power_transitions,migrations,migration_bytes,\
     cxl_retries,cxl_retry_delay_ps,vm_allocs,vm_deallocs,faults,health_transitions,events,\
     fabric_transfers,fabric_bytes,fabric_queue_ps";

/// A finished windowed time series: one [`WindowAggregate`] per
/// `width_ps`-wide window, dense from t = 0.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeSeries {
    width_ps: u64,
    windows: Vec<WindowAggregate>,
}

impl TimeSeries {
    /// An empty series with the given window width.
    ///
    /// # Panics
    ///
    /// Panics on a zero width.
    pub fn new(width_ps: u64) -> Self {
        assert!(width_ps > 0, "time-series window width must be positive");
        TimeSeries { width_ps, windows: Vec::new() }
    }

    /// Window width, picoseconds.
    pub fn width_ps(&self) -> u64 {
        self.width_ps
    }

    /// The windows, in time order from t = 0.
    pub fn windows(&self) -> &[WindowAggregate] {
        &self.windows
    }

    fn window_mut(&mut self, idx: usize) -> &mut WindowAggregate {
        if idx >= self.windows.len() {
            self.windows.resize(idx + 1, WindowAggregate::default());
        }
        &mut self.windows[idx]
    }

    /// Splits the closed residency span `[start_ps, end_ps)` in `state`
    /// across window boundaries with exact integer arithmetic.
    fn add_span(&mut self, state: PowerStateId, start_ps: u64, end_ps: u64) {
        if end_ps <= start_ps {
            return;
        }
        let width = self.width_ps;
        let mut at = start_ps;
        while at < end_ps {
            let idx = at / width;
            let window_end = (idx + 1) * width;
            let stop = window_end.min(end_ps);
            self.window_mut(idx as usize).residency_ps[state.index()] += stop - at;
            at = stop;
        }
    }

    /// Guarantees windows exist through `end_ps` (so a quiet tail still
    /// renders as rows of zeros up to the horizon).
    fn cover(&mut self, end_ps: u64) {
        if end_ps > 0 {
            self.window_mut(((end_ps - 1) / self.width_ps) as usize);
        }
    }

    /// Element-wise sum of `other` into `self`. Commutative and
    /// associative, so merging shard series in any order is deterministic.
    ///
    /// # Panics
    ///
    /// Panics when the window widths differ — shards of one run must
    /// aggregate on the same grid.
    pub fn merge_from(&mut self, other: &TimeSeries) {
        assert_eq!(
            self.width_ps, other.width_ps,
            "cannot merge time series with different window widths"
        );
        if other.windows.len() > self.windows.len() {
            self.windows.resize(other.windows.len(), WindowAggregate::default());
        }
        for (mine, theirs) in self.windows.iter_mut().zip(other.windows.iter()) {
            mine.merge_from(theirs);
        }
    }

    /// Total per-state residency summed over every window, indexed like
    /// [`PowerStateId::ALL`] — the reconciliation hook against the
    /// end-of-run power report.
    pub fn residency_totals_ps(&self) -> [u64; 5] {
        let mut out = [0u64; 5];
        for w in &self.windows {
            for (total, r) in out.iter_mut().zip(w.residency_ps.iter()) {
                *total += r;
            }
        }
        out
    }

    /// Total events folded across every window.
    pub fn total_events(&self) -> u64 {
        self.windows.iter().map(|w| w.events).sum()
    }

    /// Renders the series as CSV with the [`TIMESERIES_CSV_HEADER`] schema,
    /// one row per window.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(TIMESERIES_CSV_HEADER);
        out.push('\n');
        for (i, w) in self.windows.iter().enumerate() {
            let start = i as u64 * self.width_ps;
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                i,
                start,
                start + self.width_ps,
                w.residency_ps[0],
                w.residency_ps[1],
                w.residency_ps[2],
                w.residency_ps[3],
                w.residency_ps[4],
                w.power_transitions,
                w.migrations,
                w.migration_bytes,
                w.cxl_retries,
                w.cxl_retry_delay_ps,
                w.vm_allocs,
                w.vm_deallocs,
                w.faults,
                w.health_transitions,
                w.events,
                w.fabric_transfers,
                w.fabric_bytes,
                w.fabric_queue_ps,
            ));
        }
        out
    }

    /// Renders the series as JSON Lines: one window object per line, with
    /// explicit window index and bounds.
    pub fn to_jsonl(&self) -> String {
        #[derive(Serialize)]
        struct Row {
            window: u64,
            start_ps: u64,
            end_ps: u64,
            aggregate: WindowAggregate,
        }
        let mut out = String::new();
        for (i, w) in self.windows.iter().enumerate() {
            let start = i as u64 * self.width_ps;
            let row = Row {
                window: i as u64,
                start_ps: start,
                end_ps: start + self.width_ps,
                aggregate: *w,
            };
            out.push_str(&serde_json::to_string(&row).expect("window serialization is infallible"));
            out.push('\n');
        }
        out
    }
}

/// Per-rank open-span state, mirroring `PowerTimeline`'s `RankTrack`.
#[derive(Debug, Clone, Copy)]
struct RankCursor {
    state: PowerStateId,
    since: u64,
}

impl Default for RankCursor {
    fn default() -> Self {
        RankCursor { state: PowerStateId::Standby, since: 0 }
    }
}

#[derive(Debug)]
struct SinkState {
    series: TimeSeries,
    ranks: BTreeMap<(u32, u32), RankCursor>,
}

/// A [`TelemetrySink`] that folds the event stream into a [`TimeSeries`]
/// as events arrive — bounded memory regardless of campaign length.
///
/// Residency semantics are identical to [`PowerTimeline`](crate::PowerTimeline):
/// every rank starts `Standby` at t = 0, a transition closes the current
/// span at the event instant (ignoring events that do not advance the rank
/// clock), and [`TimeSeriesSink::finish`] closes open spans at
/// `max(horizon, last transition)` — a late transition past the horizon
/// contributes zero time in its new state.
///
/// One sink observes one monotonic event stream (one device, one host, or
/// one merged-unit replay); per-shard series merge afterwards with
/// [`TimeSeries::merge_from`].
#[derive(Debug)]
pub struct TimeSeriesSink {
    state: Mutex<SinkState>,
}

impl TimeSeriesSink {
    /// A sink aggregating into windows of `width_ps`.
    ///
    /// # Panics
    ///
    /// Panics on a zero width.
    pub fn new(width_ps: u64) -> Self {
        TimeSeriesSink {
            state: Mutex::new(SinkState {
                series: TimeSeries::new(width_ps),
                ranks: BTreeMap::new(),
            }),
        }
    }

    /// Registers a rank even if it never transitions, so a quiet rank still
    /// contributes its all-`Standby` residency to every window.
    pub fn ensure_rank(&self, channel: u32, rank: u32) {
        self.state.lock().unwrap().ranks.entry((channel, rank)).or_default();
    }

    /// Folds one event into the series (the non-trait entry point; the
    /// [`TelemetrySink`] impl forwards here).
    pub fn fold(&self, event: &Event) {
        let state = &mut *self.state.lock().unwrap();
        let idx = (event.at_ps / state.series.width_ps) as usize;
        let w = state.series.window_mut(idx);
        w.events += 1;
        match event.kind {
            EventKind::RankPowerTransition { channel, rank, to, .. } => {
                w.power_transitions += 1;
                let cursor = state.ranks.entry((channel, rank)).or_default();
                let (span_state, span_start) = (cursor.state, cursor.since);
                cursor.state = to;
                cursor.since = cursor.since.max(event.at_ps);
                state.series.add_span(span_state, span_start, event.at_ps);
            }
            EventKind::SegmentMigrated { bytes, .. } => {
                w.migrations += 1;
                w.migration_bytes += bytes;
            }
            EventKind::CxlRetry { delay_ps, .. } => {
                w.cxl_retries += 1;
                w.cxl_retry_delay_ps += delay_ps;
            }
            EventKind::VmAlloc { .. } => w.vm_allocs += 1,
            EventKind::VmDealloc { .. } => w.vm_deallocs += 1,
            EventKind::FaultInjected { .. } => w.faults += 1,
            EventKind::HealthTransition { .. } => w.health_transitions += 1,
            EventKind::FabricTransfer { bytes, queue_ps, .. } => {
                w.fabric_transfers += 1;
                w.fabric_bytes += bytes;
                w.fabric_queue_ps += queue_ps;
            }
            EventKind::TspAdvance { .. } | EventKind::SelfRefreshSwap { .. } => {}
        }
    }

    /// Closes every open residency span at `max(end_ps, last transition)`,
    /// pads windows through the horizon, and returns the finished series.
    /// Non-destructive: the sink keeps aggregating if more events arrive,
    /// and calling `finish` again at the same horizon returns the same
    /// series.
    pub fn finish(&self, end_ps: u64) -> TimeSeries {
        let state = self.state.lock().unwrap();
        let mut series = state.series.clone();
        for (_, cursor) in state.ranks.iter() {
            let end = end_ps.max(cursor.since);
            series.add_span(cursor.state, cursor.since, end);
        }
        series.cover(end_ps);
        series
    }
}

impl TelemetrySink for TimeSeriesSink {
    #[inline]
    fn record(&self, event: Event) {
        self.fold(&event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::PowerTimeline;

    fn transition(at: u64, channel: u32, rank: u32, to: PowerStateId) -> Event {
        Event {
            at_ps: at,
            kind: EventKind::RankPowerTransition {
                channel,
                rank,
                from: PowerStateId::Standby,
                to,
                auto_exit: false,
            },
        }
    }

    #[test]
    fn residency_splits_exactly_across_window_boundaries() {
        let sink = TimeSeriesSink::new(100);
        sink.fold(&transition(250, 0, 0, PowerStateId::SelfRefresh));
        let series = sink.finish(400);
        let w = series.windows();
        assert_eq!(w.len(), 4);
        assert_eq!(w[0].residency_ps[PowerStateId::Standby.index()], 100);
        assert_eq!(w[1].residency_ps[PowerStateId::Standby.index()], 100);
        assert_eq!(w[2].residency_ps[PowerStateId::Standby.index()], 50);
        assert_eq!(w[2].residency_ps[PowerStateId::SelfRefresh.index()], 50);
        assert_eq!(w[3].residency_ps[PowerStateId::SelfRefresh.index()], 100);
        assert_eq!(w[2].power_transitions, 1);
        assert_eq!(series.residency_totals_ps().iter().sum::<u64>(), 400);
    }

    #[test]
    fn residency_totals_match_power_timeline_bit_for_bit() {
        // A busy synthetic stream over two ranks with back-to-back and
        // past-horizon transitions — the same edge cases PowerTimeline pins.
        let events = vec![
            transition(130, 0, 0, PowerStateId::SelfRefresh),
            transition(130, 0, 1, PowerStateId::PrechargePowerDown),
            transition(470, 0, 0, PowerStateId::Standby),
            transition(470, 0, 0, PowerStateId::Mpsm),
            transition(950, 0, 1, PowerStateId::Standby),
            transition(1200, 0, 0, PowerStateId::Standby), // past the horizon
        ];
        let horizon = 1000u64;
        let timeline = PowerTimeline::from_events(events.iter(), horizon);
        let sink = TimeSeriesSink::new(64); // width not dividing the horizon
        for ev in &events {
            sink.fold(ev);
        }
        let series = sink.finish(horizon);
        let mut expected = [0u64; 5];
        for (c, r) in timeline.rank_ids() {
            for (total, res) in expected.iter_mut().zip(timeline.residency_ps(c, r).iter()) {
                *total += res;
            }
        }
        assert_eq!(series.residency_totals_ps(), expected);
    }

    #[test]
    fn quiet_ranks_contribute_standby_to_every_window() {
        let sink = TimeSeriesSink::new(100);
        sink.ensure_rank(0, 0);
        sink.ensure_rank(1, 3);
        let series = sink.finish(250);
        assert_eq!(series.windows().len(), 3);
        assert_eq!(series.windows()[0].residency_ps[0], 200, "two ranks x 100 ps");
        assert_eq!(series.windows()[2].residency_ps[0], 100, "partial tail window");
        assert_eq!(series.residency_totals_ps()[0], 500);
    }

    #[test]
    fn merge_is_commutative_and_width_checked() {
        let a_sink = TimeSeriesSink::new(100);
        a_sink.fold(&transition(50, 0, 0, PowerStateId::SelfRefresh));
        a_sink.fold(&Event { at_ps: 120, kind: EventKind::VmAlloc { vm: 1, segments: 8 } });
        let a = a_sink.finish(300);
        let b_sink = TimeSeriesSink::new(100);
        b_sink.fold(&Event {
            at_ps: 10,
            kind: EventKind::CxlRetry { burst: 2, replays: 2, gave_up: false, delay_ps: 77 },
        });
        let b = b_sink.finish(500);

        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab, ba, "merge order must not matter");
        assert_eq!(ab.windows().len(), 5);
        assert_eq!(ab.total_events(), 3);
        assert_eq!(ab.windows()[0].cxl_retry_delay_ps, 77);
        assert_eq!(ab.windows()[1].vm_allocs, 1);
    }

    #[test]
    #[should_panic(expected = "different window widths")]
    fn merging_mismatched_widths_panics() {
        let mut a = TimeSeries::new(100);
        a.merge_from(&TimeSeries::new(200));
    }

    #[test]
    fn csv_has_the_pinned_header_and_one_row_per_window() {
        let sink = TimeSeriesSink::new(1_000_000);
        sink.fold(&Event { at_ps: 42, kind: EventKind::VmAlloc { vm: 1, segments: 1 } });
        let series = sink.finish(3_000_000);
        let csv = series.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), TIMESERIES_CSV_HEADER);
        assert_eq!(lines.count(), 3);
        assert!(csv.lines().nth(1).unwrap().starts_with("0,0,1000000,"));
    }

    #[test]
    fn jsonl_rows_carry_window_bounds() {
        let sink = TimeSeriesSink::new(500);
        sink.fold(&Event { at_ps: 600, kind: EventKind::VmDealloc { vm: 3, segments: 2 } });
        let series = sink.finish(1000);
        let jsonl = series.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.lines().nth(1).unwrap().contains("\"start_ps\":500"));
        assert!(jsonl.lines().nth(1).unwrap().contains("\"vm_deallocs\":1"));
    }

    #[test]
    fn fabric_transfers_fold_into_their_own_columns() {
        let sink = TimeSeriesSink::new(1000);
        sink.fold(&Event {
            at_ps: 100,
            kind: EventKind::FabricTransfer { port: 2, bytes: 64, queue_ps: 0 },
        });
        sink.fold(&Event {
            at_ps: 1100,
            kind: EventKind::FabricTransfer { port: 3, bytes: 128, queue_ps: 2000 },
        });
        let series = sink.finish(2000);
        let w = series.windows();
        assert_eq!(w[0].fabric_transfers, 1);
        assert_eq!(w[0].fabric_bytes, 64);
        assert_eq!(w[1].fabric_queue_ps, 2000);
        let csv = series.to_csv();
        assert!(csv
            .lines()
            .next()
            .unwrap()
            .ends_with("fabric_transfers,fabric_bytes,fabric_queue_ps"));
        assert!(csv.lines().nth(2).unwrap().ends_with(",1,128,2000"));
    }

    #[test]
    fn finish_is_repeatable_and_nondestructive() {
        let sink = TimeSeriesSink::new(100);
        sink.fold(&transition(30, 0, 0, PowerStateId::SelfRefresh));
        let first = sink.finish(200);
        let second = sink.finish(200);
        assert_eq!(first, second);
    }
}
