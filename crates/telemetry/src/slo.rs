//! SLO reporting: tail-latency and backlog summaries computed from the
//! log₂ histograms and backlog counters the engines maintain.
//!
//! The paper's headline is energy, but the reproduction's north star is
//! energy *at* SLO — a campaign that saves power by parking ranks is only
//! credible next to the latency it cost. [`SloReport`] is the typed bundle
//! every campaign experiment carries beside its energy number: access
//! latency (including CXL retry penalty), admission latency, and
//! evacuation/drain backlog age. Percentiles come straight from
//! [`Histogram::percentile`], so a report built from merged shard
//! histograms is identical to one built from a sequential run.

use serde::{Deserialize, Serialize};

use crate::metrics::Histogram;

/// Percentile summary of one latency population, picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Samples observed.
    pub count: u64,
    /// Mean latency, picoseconds.
    pub mean_ps: f64,
    /// Median (bucket upper bound), picoseconds.
    pub p50_ps: u64,
    /// 95th percentile, picoseconds.
    pub p95_ps: u64,
    /// 99th percentile, picoseconds.
    pub p99_ps: u64,
    /// 99.9th percentile, picoseconds.
    pub p999_ps: u64,
}

impl LatencySummary {
    /// Summarizes a histogram, or `None` when it holds no samples (so an
    /// experiment without that instrumentation point renders "-" instead
    /// of a misleading zero).
    pub fn from_histogram(hist: &Histogram) -> Option<Self> {
        let count = hist.count();
        if count == 0 {
            return None;
        }
        Some(LatencySummary {
            count,
            mean_ps: hist.mean(),
            p50_ps: hist.percentile(50.0),
            p95_ps: hist.percentile(95.0),
            p99_ps: hist.percentile(99.0),
            p999_ps: hist.percentile(99.9),
        })
    }
}

/// Summary of a work backlog (evacuations, migration drains): how deep it
/// got and how stale its oldest completed item was.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BacklogSummary {
    /// Items completed over the run.
    pub completed: u64,
    /// Deepest the backlog ever got (queued + in flight).
    pub peak_depth: u64,
    /// Oldest completed item's age (completion minus enqueue), picoseconds.
    pub max_age_ps: u64,
    /// Mean completed-item age, picoseconds.
    pub mean_age_ps: f64,
}

impl BacklogSummary {
    /// Summarizes an age histogram plus an externally tracked peak depth,
    /// or `None` when nothing completed and the backlog never formed.
    pub fn from_parts(age_hist: &Histogram, peak_depth: u64) -> Option<Self> {
        let completed = age_hist.count();
        if completed == 0 && peak_depth == 0 {
            return None;
        }
        Some(BacklogSummary {
            completed,
            peak_depth,
            max_age_ps: age_hist.percentile(100.0),
            mean_age_ps: age_hist.mean(),
        })
    }
}

/// The SLO report a campaign carries beside its energy headline. Every
/// section is optional: an experiment reports the populations its harness
/// actually instruments and renders "-" for the rest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// End-to-end access latency (translation + link round trip + CXL
    /// retry penalty where a link is modeled).
    pub access: Option<LatencySummary>,
    /// VM admission latency (table carving plus any capacity wakes).
    pub admission: Option<LatencySummary>,
    /// Evacuation / migration-drain backlog.
    pub evac_backlog: Option<BacklogSummary>,
    /// Queue wait at fabric ports, where a switched interconnect is
    /// modeled (`None` under point-to-point links).
    pub fabric_queue: Option<LatencySummary>,
}

impl SloReport {
    /// Whether no section carries data.
    pub fn is_empty(&self) -> bool {
        self.access.is_none()
            && self.admission.is_none()
            && self.evac_backlog.is_none()
            && self.fabric_queue.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_yields_no_summary() {
        assert_eq!(LatencySummary::from_histogram(&Histogram::default()), None);
        assert_eq!(BacklogSummary::from_parts(&Histogram::default(), 0), None);
        assert!(SloReport::default().is_empty());
    }

    #[test]
    fn summary_reflects_the_histogram() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let s = LatencySummary::from_histogram(&h).unwrap();
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50_ps, h.percentile(50.0));
        assert_eq!(s.p999_ps, h.percentile(99.9));
        assert!(s.p50_ps <= s.p95_ps && s.p95_ps <= s.p99_ps && s.p99_ps <= s.p999_ps);
        assert!((s.mean_ps - 500.5).abs() < 1e-9);
    }

    #[test]
    fn backlog_summary_tracks_age_and_depth() {
        let h = Histogram::default();
        h.observe(100);
        h.observe(300);
        let b = BacklogSummary::from_parts(&h, 7).unwrap();
        assert_eq!(b.completed, 2);
        assert_eq!(b.peak_depth, 7);
        assert!(b.max_age_ps >= 300);
        assert!((b.mean_age_ps - 200.0).abs() < 1e-9);
        // Depth without completions still reports (work piled up but never
        // finished inside the horizon).
        let empty = Histogram::default();
        let only_depth = BacklogSummary::from_parts(&empty, 3).unwrap();
        assert_eq!(only_depth.completed, 0);
        assert_eq!(only_depth.peak_depth, 3);
    }

    #[test]
    fn report_round_trips_through_json() {
        let h = Histogram::default();
        h.observe(42);
        let report = SloReport {
            access: LatencySummary::from_histogram(&h),
            admission: None,
            evac_backlog: BacklogSummary::from_parts(&h, 1),
            fabric_queue: LatencySummary::from_histogram(&h),
        };
        let text = serde_json::to_string(&report).unwrap();
        let back: SloReport = serde_json::from_str(&text).unwrap();
        assert_eq!(report, back);
    }
}
