//! # dtl-telemetry — unified event tracing, metrics, and timeline export
//!
//! The observability substrate for the DTL reproduction. Every other crate
//! in the workspace depends on this one (never the reverse), holds a cheap
//! cloneable [`Telemetry`] handle, and emits typed [`Event`]s on its hot
//! paths. The contract:
//!
//! * **Disabled is free.** [`Telemetry::disabled`] costs one never-taken
//!   branch per call site — guarded by the `overhead_guard` release test,
//!   which asserts the no-op sink adds under 1 % to a fixed access loop.
//! * **Tracing never blocks.** The default recording sink is [`RingSink`],
//!   a Vyukov bounded MPMC ring that drops (and counts) events when full.
//! * **Residency is exact.** [`PowerTimeline`] rebuilds per-rank power-state
//!   spans from `RankPowerTransition` events such that summed span durations
//!   equal the backends' integrated residency counters bit-for-bit.
//!
//! ```
//! use std::sync::Arc;
//! use dtl_telemetry::{chrome_trace, EventKind, PowerStateId, PowerTimeline, RingSink, Telemetry};
//!
//! let ring = Arc::new(RingSink::with_capacity(1024));
//! let telemetry = Telemetry::new(ring.clone());
//! telemetry.emit(
//!     1_000,
//!     EventKind::RankPowerTransition {
//!         channel: 0,
//!         rank: 0,
//!         from: PowerStateId::Standby,
//!         to: PowerStateId::SelfRefresh,
//!         auto_exit: false,
//!     },
//! );
//! let events = ring.drain();
//! let timeline = PowerTimeline::from_events(events.iter(), 5_000);
//! assert_eq!(timeline.residency_ps(0, 0)[PowerStateId::SelfRefresh.index()], 4_000);
//! let json = chrome_trace(&timeline, &events);
//! assert!(json.contains("traceEvents"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
mod export;
mod metrics;
mod ring;
mod sink;
mod slo;
mod timeline;
mod timeseries;

pub use event::{Event, EventKind, FaultKindId, HealthStateId, PowerStateId};
pub use export::{chrome_trace, jsonl, parse_jsonl, DEVICE_PID, EVENTS_TID};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};
pub use ring::RingSink;
pub use sink::{
    merge_event_streams, BufferSink, ChannelOffsetSink, NoopSink, TeeSink, Telemetry, TelemetrySink,
};
pub use slo::{BacklogSummary, LatencySummary, SloReport};
pub use timeline::{PowerTimeline, Span};
pub use timeseries::{TimeSeries, TimeSeriesSink, WindowAggregate, TIMESERIES_CSV_HEADER};
