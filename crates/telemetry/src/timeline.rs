//! Reconstructs per-rank power-state residency timelines from the
//! [`RankPowerTransition`](crate::EventKind::RankPowerTransition) event
//! stream.
//!
//! The reconstruction is exact by construction: every rank starts in
//! `Standby` at t = 0 (the backends' initial state), each transition event
//! closes the current span at the event timestamp, and [`PowerTimeline::finish`]
//! closes the open span at the report horizon. Summing span durations per
//! state therefore reproduces the backend's integrated residency counters
//! bit-for-bit — the invariant the `telemetry_trace` integration test pins.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::event::{Event, EventKind, PowerStateId};

/// One contiguous stay in a power state: `[start_ps, end_ps)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// The state occupied.
    pub state: PowerStateId,
    /// Span start, picoseconds.
    pub start_ps: u64,
    /// Span end (exclusive), picoseconds.
    pub end_ps: u64,
}

impl Span {
    /// Span duration, picoseconds.
    pub fn duration_ps(&self) -> u64 {
        self.end_ps - self.start_ps
    }
}

#[derive(Debug, Clone)]
struct RankTrack {
    spans: Vec<Span>,
    state: PowerStateId,
    since: u64,
}

impl Default for RankTrack {
    fn default() -> Self {
        RankTrack { spans: Vec::new(), state: PowerStateId::Standby, since: 0 }
    }
}

/// Per-rank power-state span timelines, keyed by `(channel, rank)`.
#[derive(Debug, Clone, Default)]
pub struct PowerTimeline {
    ranks: BTreeMap<(u32, u32), RankTrack>,
}

impl PowerTimeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience: feed every event and close at `end_ps`.
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a Event>, end_ps: u64) -> Self {
        let mut t = PowerTimeline::new();
        for ev in events {
            t.push_event(ev);
        }
        t.finish(end_ps);
        t
    }

    /// Registers a rank even if it never transitions, so it still gets a
    /// (single-span, all-`Standby`) track.
    pub fn ensure_rank(&mut self, channel: u32, rank: u32) {
        self.ranks.entry((channel, rank)).or_default();
    }

    /// Feeds one event; everything except `RankPowerTransition` is ignored.
    pub fn push_event(&mut self, event: &Event) {
        if let EventKind::RankPowerTransition { channel, rank, to, .. } = event.kind {
            let track = self.ranks.entry((channel, rank)).or_default();
            if event.at_ps > track.since {
                track.spans.push(Span {
                    state: track.state,
                    start_ps: track.since,
                    end_ps: event.at_ps,
                });
            }
            track.state = to;
            track.since = track.since.max(event.at_ps);
        }
    }

    /// Closes every open span at `max(end_ps, last transition)`. Call once,
    /// after the final event, with the same horizon the power report used.
    pub fn finish(&mut self, end_ps: u64) {
        for track in self.ranks.values_mut() {
            let end = end_ps.max(track.since);
            if end > track.since {
                track.spans.push(Span { state: track.state, start_ps: track.since, end_ps: end });
                track.since = end;
            }
        }
    }

    /// All ranks with a track, sorted by `(channel, rank)`.
    pub fn rank_ids(&self) -> Vec<(u32, u32)> {
        self.ranks.keys().copied().collect()
    }

    /// The spans of one rank (empty slice for unknown ranks).
    pub fn spans(&self, channel: u32, rank: u32) -> &[Span] {
        self.ranks.get(&(channel, rank)).map(|t| t.spans.as_slice()).unwrap_or(&[])
    }

    /// Summed span durations per power state for one rank, indexed like
    /// `PowerStateId::ALL`.
    pub fn residency_ps(&self, channel: u32, rank: u32) -> [u64; 5] {
        let mut out = [0u64; 5];
        for span in self.spans(channel, rank) {
            out[span.state.index()] += span.duration_ps();
        }
        out
    }

    /// A plaintext per-rank residency summary (milliseconds per state),
    /// matching the order of `PowerStateId::ALL`.
    pub fn residency_table(&self) -> String {
        let mut out = String::from(
            "rank        standby    act-pd     pre-pd     self-ref   mpsm       (ms)\n",
        );
        for (channel, rank) in self.rank_ids() {
            let res = self.residency_ps(channel, rank);
            out.push_str(&format!("ch{channel}/rk{rank}  "));
            for r in res {
                out.push_str(&format!("{:>10.3} ", r as f64 / 1e9));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transition(at: u64, rank: u32, from: PowerStateId, to: PowerStateId) -> Event {
        Event {
            at_ps: at,
            kind: EventKind::RankPowerTransition { channel: 0, rank, from, to, auto_exit: false },
        }
    }

    #[test]
    fn spans_partition_the_horizon() {
        let events = [
            transition(100, 0, PowerStateId::Standby, PowerStateId::SelfRefresh),
            transition(400, 0, PowerStateId::SelfRefresh, PowerStateId::Standby),
            transition(600, 0, PowerStateId::Standby, PowerStateId::Mpsm),
        ];
        let t = PowerTimeline::from_events(events.iter(), 1000);
        let res = t.residency_ps(0, 0);
        assert_eq!(res[PowerStateId::Standby.index()], 100 + 200);
        assert_eq!(res[PowerStateId::SelfRefresh.index()], 300);
        assert_eq!(res[PowerStateId::Mpsm.index()], 400);
        assert_eq!(res.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn quiet_rank_is_all_standby() {
        let mut t = PowerTimeline::new();
        t.ensure_rank(1, 2);
        t.finish(500);
        assert_eq!(t.residency_ps(1, 2)[0], 500);
        assert_eq!(t.spans(1, 2).len(), 1);
    }

    #[test]
    fn late_transition_extends_the_horizon() {
        // A transition completing *after* the report horizon (in-flight exit
        // latency) must not shrink earlier spans, and contributes zero time
        // in its new state — matching EnergyAccount::transition semantics.
        let events = [transition(1200, 0, PowerStateId::Standby, PowerStateId::SelfRefresh)];
        let t = PowerTimeline::from_events(events.iter(), 1000);
        let res = t.residency_ps(0, 0);
        assert_eq!(res[PowerStateId::Standby.index()], 1200);
        assert_eq!(res[PowerStateId::SelfRefresh.index()], 0);
    }

    #[test]
    fn finish_is_idempotent_at_the_same_horizon() {
        let mut t = PowerTimeline::new();
        t.ensure_rank(0, 0);
        t.finish(100);
        t.finish(100);
        assert_eq!(t.residency_ps(0, 0)[0], 100);
    }
}
