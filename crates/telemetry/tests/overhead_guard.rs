//! The telemetry overhead contract: disabled telemetry must add less than
//! 1 % to a fixed access loop.
//!
//! Timing assertions are meaningless in unoptimized tier-1 test runs, so the
//! guard is `#[ignore]`d there and invoked explicitly by `ci.sh`:
//!
//! ```text
//! cargo test -p dtl-telemetry --release --test overhead_guard -- --ignored
//! ```
//!
//! Methodology: the baseline loop and the instrumented loop (one
//! `Telemetry::emit` per iteration against the no-op sink) run interleaved
//! for several trials, and the *minimum* trial time of each is compared —
//! minima are robust to scheduler noise in a way means are not.

use std::hint::black_box;
use std::time::Instant;

use dtl_telemetry::{EventKind, Telemetry};

/// Enough iterations for ~tens of milliseconds per trial in release mode,
/// far above timer granularity.
const ITERS: u64 = 40_000_000;
const TRIALS: usize = 7;

fn base_loop() -> u64 {
    let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut sum = 0u64;
    for _ in 0..ITERS {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        sum = sum.wrapping_add(x);
    }
    black_box(sum)
}

fn instrumented_loop(tel: &Telemetry) -> u64 {
    let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut sum = 0u64;
    for i in 0..ITERS {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        sum = sum.wrapping_add(x);
        tel.emit(i, EventKind::VmAlloc { vm: x, segments: 1 });
    }
    black_box(sum)
}

#[test]
#[ignore = "timing assertion; run in release via ci.sh"]
fn noop_sink_overhead_under_one_percent() {
    let tel = Telemetry::disabled();
    // Warm up both paths once.
    black_box(base_loop());
    black_box(instrumented_loop(&tel));

    let mut base_min = f64::INFINITY;
    let mut inst_min = f64::INFINITY;
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        black_box(base_loop());
        base_min = base_min.min(t0.elapsed().as_secs_f64());

        let t1 = Instant::now();
        black_box(instrumented_loop(&tel));
        inst_min = inst_min.min(t1.elapsed().as_secs_f64());
    }

    let overhead = inst_min / base_min - 1.0;
    eprintln!(
        "overhead_guard: base {:.3} ms, instrumented {:.3} ms, overhead {:.3} %",
        base_min * 1e3,
        inst_min * 1e3,
        overhead * 1e2
    );
    assert!(
        overhead < 0.01,
        "no-op telemetry added {:.3} % (>= 1 %) to the access loop \
         (base {base_min:.6} s, instrumented {inst_min:.6} s)",
        overhead * 1e2
    );
}
