//! Property tests for the sharded-run merge APIs: merging per-worker
//! metrics registries must be order-free (any permutation of worker
//! registries folds to the same state), equivalent to having accumulated
//! everything in one registry, and event-stream merging must reproduce the
//! sequential record order exactly.

use std::sync::Arc;

use dtl_telemetry::{
    merge_event_streams, BufferSink, Event, EventKind, MetricsRegistry, Telemetry,
};
use proptest::prelude::*;

/// One worker's worth of metric activity, replayable into any registry.
#[derive(Debug, Clone)]
struct Shard {
    counter_adds: Vec<u64>,
    gauge_adds: Vec<i64>,
    histogram_samples: Vec<u64>,
}

fn shard_strategy() -> impl Strategy<Value = Shard> {
    (
        proptest::collection::vec(0u64..1_000, 0..8),
        proptest::collection::vec(-500i64..500, 0..8),
        proptest::collection::vec(0u64..1_000_000, 0..8),
    )
        .prop_map(|(counter_adds, gauge_adds, histogram_samples)| Shard {
            counter_adds,
            gauge_adds,
            histogram_samples,
        })
}

/// Replays a shard's activity into `reg` under shared metric names.
fn apply(reg: &MetricsRegistry, shard: &Shard) {
    let c = reg.counter("merge.count");
    for n in &shard.counter_adds {
        c.add(*n);
    }
    let g = reg.gauge("merge.level");
    for d in &shard.gauge_adds {
        g.add(*d);
    }
    let h = reg.histogram("merge.latency_ps");
    for s in &shard.histogram_samples {
        h.observe(*s);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging worker registries in any order equals accumulating every
    /// shard directly into one registry.
    #[test]
    fn registry_merge_is_order_free(
        shards in proptest::collection::vec(shard_strategy(), 1..6),
        rotate in 0usize..6,
    ) {
        // Ground truth: one registry that saw everything.
        let direct = MetricsRegistry::new();
        for s in &shards {
            apply(&direct, s);
        }

        // Per-worker registries merged in unit order...
        let workers: Vec<MetricsRegistry> = shards
            .iter()
            .map(|s| {
                let r = MetricsRegistry::new();
                apply(&r, s);
                r
            })
            .collect();
        let in_order = MetricsRegistry::new();
        for w in &workers {
            in_order.merge_from(w);
        }

        // ...and in a rotated (different) order.
        let rotated = MetricsRegistry::new();
        let k = rotate % workers.len();
        for w in workers.iter().skip(k).chain(workers.iter().take(k)) {
            rotated.merge_from(w);
        }

        prop_assert_eq!(in_order.render_text(), direct.render_text());
        prop_assert_eq!(rotated.render_text(), direct.render_text());
    }

    /// Concatenating per-unit streams in unit order reproduces the exact
    /// sequence a sequential run records, for any split of the work.
    #[test]
    fn event_stream_merge_reproduces_sequential_order(
        timestamps in proptest::collection::vec(0u64..1_000_000, 0..64),
        cuts in proptest::collection::vec(0usize..64, 0..6),
    ) {
        // Sequential ground truth: every event into one sink, in order.
        let seq = Arc::new(BufferSink::new());
        let t = Telemetry::new(seq.clone());
        for (i, at) in timestamps.iter().enumerate() {
            t.emit(*at, EventKind::VmAlloc { vm: i as u64, segments: 1 });
        }
        let sequential: Vec<Event> = seq.take();

        // Split the same sequence at arbitrary unit boundaries.
        let mut bounds: Vec<usize> =
            cuts.iter().map(|c| c % (timestamps.len() + 1)).collect();
        bounds.push(0);
        bounds.push(timestamps.len());
        bounds.sort_unstable();
        let mut streams = Vec::new();
        for w in bounds.windows(2) {
            streams.push(sequential[w[0]..w[1]].to_vec());
        }

        let merged = merge_event_streams(streams);
        prop_assert_eq!(merged.len(), sequential.len());
        for (a, b) in merged.iter().zip(sequential.iter()) {
            prop_assert_eq!(a.at_ps, b.at_ps);
            prop_assert_eq!(format!("{:?}", a.kind), format!("{:?}", b.kind));
        }
    }
}

/// Histogram merge equals single-stream observation (quantiles included).
#[test]
fn histogram_merge_matches_direct_observation() {
    let a = MetricsRegistry::new();
    let b = MetricsRegistry::new();
    let direct = MetricsRegistry::new();
    for v in [0u64, 1, 3, 900, 70_000] {
        a.histogram("h").observe(v);
        direct.histogram("h").observe(v);
    }
    for v in [2u64, 5, 1_000_000] {
        b.histogram("h").observe(v);
        direct.histogram("h").observe(v);
    }
    let merged = MetricsRegistry::new();
    merged.merge_from(&a);
    merged.merge_from(&b);
    assert_eq!(merged.render_text(), direct.render_text());
    assert_eq!(merged.histogram("h").count(), 8);
    assert_eq!(merged.histogram("h").quantile(0.5), direct.histogram("h").quantile(0.5));
}

/// A self-merge is a no-op rather than a deadlock or a double-count.
#[test]
fn self_merge_is_identity() {
    let reg = MetricsRegistry::new();
    reg.counter("c").add(7);
    reg.merge_from(&reg);
    assert_eq!(reg.counter("c").get(), 7);
}
