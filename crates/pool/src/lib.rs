//! # dtl-pool — rack-scale memory-pool orchestration over DTL devices
//!
//! The paper's DRAM Translation Layer saves power *inside* one CXL memory
//! device; its target deployment is a disaggregated pool of such devices
//! serving many hosts. This crate supplies the missing layer: a
//! deterministic orchestrator ([`MemoryPool`]) that owns N
//! [`DtlDevice`](dtl_core::DtlDevice)s behind their CXL links and exposes a
//! single pool API —
//!
//! * **VM admission** with pluggable [`PlacementPolicy`]s: pack-for-power
//!   concentrates load so whole devices drain empty, spread-for-bandwidth
//!   stripes allocation units across devices;
//! * **live evacuation** — VM shards move between devices through reserved
//!   destination capacity with a modelled copy time; the source keeps
//!   serving accesses until the cutover, so no segment is ever unreachable;
//! * a **pool-wide power coordinator** that extends the paper's rank-group
//!   consolidation across device boundaries: drain the least-utilized
//!   device, let its own power-down engine MPSM the emptied rank groups,
//!   and park it until admission pressure wakes it again;
//! * **health-driven failover** — devices whose ranks trip the `dtl-core`
//!   error-health lifecycle (or that an operator retires outright) are
//!   drained onto the survivors using the same evacuation machinery.
//!
//! Everything is deterministic: identical call sequences produce identical
//! pool states, placements, and telemetry, which is what lets the
//! `pool_scale` experiment shard across threads bit-identically.
//!
//! ```
//! use dtl_dram::{AccessKind, Picos};
//! use dtl_pool::{MemoryPool, PoolConfig};
//! use dtl_core::HostId;
//!
//! let mut pool = MemoryPool::analytic(PoolConfig::tiny(3)).unwrap();
//! pool.register_host(HostId(0)).unwrap();
//! let au = pool.config().dtl.au_bytes;
//! let vm = pool.alloc_vm(HostId(0), 2 * au, Picos::ZERO).unwrap();
//! let out = pool.access(vm, 0, AccessKind::Read, Picos::from_us(1)).unwrap();
//! assert!(out.link_delay > Picos::ZERO, "pool accesses pay the CXL link");
//! pool.tick(Picos::from_ms(1)).unwrap();
//! pool.check_invariants().unwrap();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod placement;
mod pool;

pub use placement::{Candidate, PlacementPolicy, Slice};
pub use pool::{
    EvacJob, MemoryPool, PoolAccessOutcome, PoolDeviceSnapshot, PoolSnapshot, PoolStats,
};

/// A pool of analytic-backend devices — the standard simulation pool type.
pub type AnalyticMemoryPool = MemoryPool<dtl_core::AnalyticBackend>;

use core::fmt;

use dtl_core::{DtlConfig, DtlError, HostId};
use dtl_cxl::{LinkModel, RetryPolicy};
use serde::{Deserialize, Serialize};

/// Index of a member device in the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId(pub u16);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// Pool-scoped VM identifier, stable across evacuations (the per-device
/// `VmHandle`s underneath change as shards move).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PoolVmId(pub u64);

impl fmt::Display for PoolVmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pvm{}", self.0)
    }
}

/// Error-health lifecycle of a member device, mirroring the per-rank
/// `RankHealth` lifecycle one level up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceHealth {
    /// Serving traffic and eligible for placement.
    Healthy,
    /// Failover tripped (rank-health threshold or operator drain): existing
    /// shards are being evacuated, no new placements.
    Draining,
    /// Permanently removed from service; shards are evacuated and the
    /// device is never used again.
    Retired,
}

impl DeviceHealth {
    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            DeviceHealth::Healthy => "healthy",
            DeviceHealth::Draining => "draining",
            DeviceHealth::Retired => "retired",
        }
    }
}

/// Power-coordinator state of a member device — the cross-device analogue
/// of the per-rank power-down lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoordState {
    /// Eligible for placement and serving traffic.
    Active,
    /// Chosen as the consolidation victim: shards are draining off it.
    Draining,
    /// Fully drained; its rank groups sit in MPSM until admission pressure
    /// wakes the device.
    Parked,
}

impl CoordState {
    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            CoordState::Active => "active",
            CoordState::Draining => "draining",
            CoordState::Parked => "parked",
        }
    }
}

/// Pool-wide power-coordinator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoordinatorConfig {
    /// Master switch; off, the pool never drains devices for power.
    pub enabled: bool,
    /// Free allocation units that must remain across the surviving active
    /// devices *after* absorbing the victim's load, or the drain is not
    /// started. Guards against park/wake ping-pong at the capacity edge.
    pub slack_aus: u32,
    /// Devices the coordinator must always leave active.
    pub min_active: u16,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig { enabled: true, slack_aus: 1, min_active: 1 }
    }
}

/// Parameters of a [`MemoryPool`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Member devices.
    pub devices: u16,
    /// Per-device DTL configuration (segment size, AU size, SMC, windows).
    pub dtl: DtlConfig,
    /// Channels per device.
    pub channels: u32,
    /// Ranks per channel per device.
    pub ranks_per_channel: u32,
    /// Segments per rank per device.
    pub segs_per_rank: u64,
    /// Placement policy for VM admission.
    pub policy: PlacementPolicy,
    /// Latency model of each device's CXL attachment.
    pub link: LinkModel,
    /// Link-layer retry policy of each device's CXL attachment.
    pub retry: RetryPolicy,
    /// Pool-wide power coordinator.
    pub coordinator: CoordinatorConfig,
    /// Modelled inter-device copy bandwidth for evacuations, bytes per
    /// second; sets how long a shard keeps being served by its source.
    pub evac_bytes_per_sec: u64,
    /// Fraction of a device's ranks in `Draining`/`Retired` health at which
    /// failover trips and the whole device is drained.
    pub failover_rank_fraction: f64,
}

impl PoolConfig {
    /// A small pool for tests: `devices` tiny devices (2 channels x 4 ranks
    /// x 32 segments of 256 KiB; 8 allocation units each), packed placement,
    /// CXL links, coordinator on.
    pub fn tiny(devices: u16) -> Self {
        PoolConfig {
            devices,
            dtl: DtlConfig::tiny(),
            channels: 2,
            ranks_per_channel: 4,
            segs_per_rank: 32,
            policy: PlacementPolicy::PackForPower,
            link: LinkModel::cxl(),
            retry: RetryPolicy::default(),
            coordinator: CoordinatorConfig::default(),
            evac_bytes_per_sec: 4 << 30,
            failover_rank_fraction: 0.25,
        }
    }

    /// Paper-scale members: each device is the Figure 12 node (4 channels x
    /// 8 ranks, 12 GiB ranks -> 384 GiB, 2 GiB allocation units).
    pub fn paper(devices: u16) -> Self {
        PoolConfig {
            devices,
            dtl: DtlConfig::paper(),
            channels: 4,
            ranks_per_channel: 8,
            segs_per_rank: (12u64 << 30) / DtlConfig::paper().segment_bytes,
            policy: PlacementPolicy::PackForPower,
            link: LinkModel::cxl(),
            retry: RetryPolicy::default(),
            coordinator: CoordinatorConfig::default(),
            evac_bytes_per_sec: 4 << 30,
            failover_rank_fraction: 0.25,
        }
    }

    /// Segments per device.
    pub fn segments_per_device(&self) -> u64 {
        u64::from(self.channels) * u64::from(self.ranks_per_channel) * self.segs_per_rank
    }

    /// Allocation units per device.
    pub fn aus_per_device(&self) -> u32 {
        (self.segments_per_device() / self.dtl.segments_per_au()) as u32
    }

    /// Bytes of memory per device.
    pub fn bytes_per_device(&self) -> u64 {
        self.segments_per_device() * self.dtl.segment_bytes
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`PoolError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), PoolError> {
        if self.devices == 0 {
            return Err(PoolError::InvalidConfig {
                reason: "pool needs at least one device".into(),
            });
        }
        if self.aus_per_device() == 0 {
            return Err(PoolError::InvalidConfig {
                reason: "device smaller than one allocation unit".into(),
            });
        }
        if self.evac_bytes_per_sec == 0 {
            return Err(PoolError::InvalidConfig {
                reason: "evacuation bandwidth must be positive".into(),
            });
        }
        if !(self.failover_rank_fraction > 0.0 && self.failover_rank_fraction <= 1.0) {
            return Err(PoolError::InvalidConfig {
                reason: "failover_rank_fraction must be in (0, 1]".into(),
            });
        }
        if u32::from(self.coordinator.min_active) == 0 {
            return Err(PoolError::InvalidConfig {
                reason: "coordinator.min_active must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// Errors reported by the pool orchestrator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PoolError {
    /// Configuration failed validation.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// A member device reported an error.
    Device {
        /// The reporting device.
        device: DeviceId,
        /// The device-level error.
        source: DtlError,
    },
    /// An unknown pool VM id.
    UnknownVm(PoolVmId),
    /// An unknown device index.
    UnknownDevice(DeviceId),
    /// A host that was never registered with the pool.
    UnknownHost(HostId),
    /// An access beyond a VM's allocated size.
    OutOfRange {
        /// The VM.
        vm: PoolVmId,
        /// The offending byte offset.
        offset: u64,
        /// The VM's allocated bytes.
        bytes: u64,
    },
    /// Not enough placeable capacity across healthy active devices (after
    /// waking every parked one).
    NoCapacity {
        /// Allocation units requested.
        requested_aus: u32,
        /// Allocation units placeable pool-wide.
        free_aus: u64,
    },
    /// A host exceeded its pool-level capacity quota.
    QuotaExceeded {
        /// The host at its limit.
        host: HostId,
        /// AUs currently mapped pool-wide.
        mapped_aus: u32,
        /// The configured cap.
        quota_aus: u32,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::InvalidConfig { reason } => {
                write!(f, "invalid pool configuration: {reason}")
            }
            PoolError::Device { device, source } => write!(f, "{device}: {source}"),
            PoolError::UnknownVm(vm) => write!(f, "unknown pool VM {}", vm.0),
            PoolError::UnknownDevice(d) => write!(f, "unknown device {d}"),
            PoolError::UnknownHost(h) => write!(f, "host {h} not registered with the pool"),
            PoolError::OutOfRange { vm, offset, bytes } => {
                write!(f, "offset {offset} beyond VM {}'s {bytes} bytes", vm.0)
            }
            PoolError::NoCapacity { requested_aus, free_aus } => {
                write!(f, "requested {requested_aus} AUs but only {free_aus} placeable")
            }
            PoolError::QuotaExceeded { host, mapped_aus, quota_aus } => {
                write!(f, "{host} at {mapped_aus} AUs would exceed its pool quota of {quota_aus}")
            }
        }
    }
}

impl std::error::Error for PoolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PoolError::Device { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<PoolError> for DtlError {
    /// Flattens a pool error for harnesses whose error type is [`DtlError`]:
    /// device errors unwrap to their source, everything else becomes
    /// [`DtlError::Internal`].
    fn from(e: PoolError) -> Self {
        match e {
            PoolError::Device { source, .. } => source,
            other => DtlError::Internal { reason: other.to_string() },
        }
    }
}
