//! The pool orchestrator: device ownership, VM admission, live
//! evacuation, pool-wide power coordination, and health-driven failover.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use dtl_core::{
    AccessOutcome, AnalyticBackend, DeviceSnapshot, DtlDevice, HealthStats, HostId, MemoryBackend,
    RankHealth, VmAllocation, VmHandle,
};
use dtl_cxl::LinkRetryStats;
use dtl_dram::{AccessKind, Picos, PowerReport, RankEnergy};
use dtl_fabric::{Interconnect, PointToPoint};
use dtl_telemetry::{
    BacklogSummary, ChannelOffsetSink, Histogram, LatencySummary, MetricsRegistry, SloReport,
    Telemetry,
};
use serde::{Deserialize, Serialize};

use crate::placement::{self, Candidate};
use crate::{CoordState, DeviceHealth, DeviceId, PlacementPolicy, PoolConfig, PoolError, PoolVmId};

/// Bytes one pool access moves across the interconnect (a cache line).
const ACCESS_BYTES: u64 = 64;

/// One member device plus its pool-side state: the health and coordinator
/// lifecycles, and the allocation-unit book the placement planner reads.
/// Link accounting lives in the pool's [`Interconnect`], not here.
#[derive(Debug)]
struct PoolDevice<B: MemoryBackend> {
    id: DeviceId,
    dev: DtlDevice<B>,
    health: DeviceHealth,
    coord: CoordState,
    /// AUs resident on the device: live shards plus evacuation
    /// reservations. The planner's free count is derived from this, so a
    /// destination can never be over-committed while a copy is in flight.
    allocated_aus: u32,
}

/// One contiguous piece of a pool VM living on one device, backed by a
/// device-level VM allocation.
#[derive(Debug)]
struct Shard {
    device: DeviceId,
    alloc: VmAllocation,
}

impl Shard {
    fn aus(&self) -> u32 {
        self.alloc.aus.len() as u32
    }
}

#[derive(Debug)]
struct PoolVm {
    host: HostId,
    bytes: u64,
    /// Shards in HPA-offset order: shard `k` covers the AU range after the
    /// AUs of shards `0..k`.
    shards: Vec<Shard>,
}

impl PoolVm {
    fn total_aus(&self) -> u32 {
        self.shards.iter().map(Shard::aus).sum()
    }
}

#[derive(Debug, Default)]
struct HostState {
    mapped_aus: u32,
    quota_aus: Option<u32>,
}

/// An in-flight shard evacuation: destination capacity is reserved, the
/// source keeps serving accesses, and at `ready_at` the shard cuts over.
#[derive(Debug)]
pub struct EvacJob {
    /// VM whose shard is moving.
    pub vm: PoolVmId,
    /// Source device.
    pub src: DeviceId,
    /// Device-level handle of the moving shard on the source.
    pub src_handle: VmHandle,
    /// Reserved destination allocations, in placement order.
    pub dst: Vec<(DeviceId, VmAllocation)>,
    /// When the modelled copy finishes and the shard cuts over.
    pub ready_at: Picos,
    /// When the evacuation was planned (for backlog-age accounting).
    pub queued_at: Picos,
    /// Bytes being copied.
    pub bytes: u64,
}

/// Aggregate pool statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    /// VMs admitted.
    pub admitted_vms: u64,
    /// Admissions rejected (capacity or quota).
    pub rejected_vms: u64,
    /// VMs deallocated.
    pub deallocated_vms: u64,
    /// Shard evacuations started.
    pub evacuations_started: u64,
    /// Shard evacuations completed (cut over).
    pub evacuations_completed: u64,
    /// Evacuations cancelled (VM deallocated or destination retired
    /// mid-copy).
    pub evacuations_cancelled: u64,
    /// Segments moved by completed evacuations.
    pub segments_evacuated: u64,
    /// Bytes moved by completed evacuations.
    pub bytes_evacuated: u64,
    /// Coordinator drains started.
    pub drains_started: u64,
    /// Devices parked by the coordinator.
    pub devices_parked: u64,
    /// Parked devices woken by admission or evacuation pressure.
    pub devices_woken: u64,
    /// Health-driven device failovers tripped.
    pub failovers: u64,
    /// Devices retired (operator or fault plan).
    pub devices_retired: u64,
}

/// Result of one pool access: the device outcome plus what the CXL
/// attachment added on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolAccessOutcome {
    /// Device that served the access.
    pub device: DeviceId,
    /// The device-level outcome.
    pub outcome: AccessOutcome,
    /// Link round-trip plus any CRC retry backoff.
    pub link_delay: Picos,
}

impl PoolAccessOutcome {
    /// Latency the pool added over raw DRAM: translation plus link.
    pub fn added_latency(&self) -> Picos {
        self.outcome.translation_latency + self.link_delay
    }
}

/// Per-device entry of a [`PoolSnapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoolDeviceSnapshot {
    /// The device.
    pub id: DeviceId,
    /// Error-health lifecycle.
    pub health: DeviceHealth,
    /// Power-coordinator lifecycle.
    pub coord: CoordState,
    /// AUs resident (shards plus evacuation reservations).
    pub allocated_aus: u32,
    /// AUs the placement planner considers free.
    pub free_aus: u32,
    /// The CXL attachment's accumulated retry statistics.
    pub link: LinkRetryStats,
    /// The device's own snapshot.
    pub device: DeviceSnapshot,
}

/// A serializable snapshot of the whole pool, with the cross-device
/// aggregates (rank residency, error counters, link totals) computed here
/// once rather than re-summed by every caller.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoolSnapshot {
    /// Per-device state.
    pub devices: Vec<PoolDeviceSnapshot>,
    /// Live pool VMs.
    pub vms: usize,
    /// Shard evacuations in flight.
    pub evacuations_pending: usize,
    /// Mapped (live) segments pool-wide.
    pub mapped_segments: u64,
    /// Cumulative power-state residency summed over every rank of every
    /// device, in `PowerState::ALL` order.
    pub rank_residency: [Picos; 5],
    /// Error-health counters summed over every device.
    pub errors: HealthStats,
    /// Link retry totals summed over every device's CXL attachment.
    pub link: LinkRetryStats,
    /// Aggregate pool statistics.
    pub stats: PoolStats,
}

/// A deterministic rack-scale pool of DTL devices behind CXL links.
///
/// See the [crate docs](crate) for the model. All mutating entry points
/// take the current simulation time; like `DtlDevice`, the pool assumes
/// monotone time across calls.
#[derive(Debug)]
pub struct MemoryPool<B: MemoryBackend> {
    config: PoolConfig,
    devices: Vec<PoolDevice<B>>,
    /// The link layer every access, admission round trip, and evacuation
    /// copy is charged through: point-to-point wires by default, or a
    /// switched CXL fabric via
    /// [`MemoryPool::with_devices_and_interconnect`].
    ic: Box<dyn Interconnect>,
    hosts: BTreeMap<u16, HostState>,
    vms: BTreeMap<u64, PoolVm>,
    next_vm: u64,
    evac: VecDeque<EvacJob>,
    stats: PoolStats,
    /// End-to-end access latency the pool added (translation + link +
    /// retry), always on — see [`MemoryPool::slo_report`].
    slo_access: Histogram,
    /// End-to-end admission latency (per-shard device carving + one link
    /// round trip per shard).
    slo_admission: Histogram,
    /// Age of completed evacuations (cutover minus planning time).
    slo_evac_age: Histogram,
    /// Deepest the evacuation queue ever got.
    evac_high_water: u64,
}

impl MemoryPool<AnalyticBackend> {
    /// Builds a pool of analytic-backend devices from `config` — the
    /// standard construction for simulations and tests.
    ///
    /// # Errors
    ///
    /// [`PoolError::InvalidConfig`] when the configuration fails
    /// validation.
    pub fn analytic(config: PoolConfig) -> Result<Self, PoolError> {
        MemoryPool::with_devices(config, |_, cfg| {
            DtlDevice::with_analytic_geometry(
                cfg.dtl,
                cfg.channels,
                cfg.ranks_per_channel,
                cfg.segs_per_rank,
            )
        })
    }

    /// Builds an analytic-backend pool charging its link traffic through
    /// `ic` instead of the default point-to-point wires — the construction
    /// fabric experiments use.
    ///
    /// # Errors
    ///
    /// [`PoolError::InvalidConfig`] when the configuration fails
    /// validation or `ic` does not cover every configured device.
    pub fn analytic_with_interconnect(
        config: PoolConfig,
        ic: Box<dyn Interconnect>,
    ) -> Result<Self, PoolError> {
        MemoryPool::with_devices_and_interconnect(config, ic, |_, cfg| {
            DtlDevice::with_analytic_geometry(
                cfg.dtl,
                cfg.channels,
                cfg.ranks_per_channel,
                cfg.segs_per_rank,
            )
        })
    }
}

impl<B: MemoryBackend> MemoryPool<B> {
    /// Builds a pool whose member devices come from `make_device` — the
    /// hook for cycle-accurate or instrumented backends. Link traffic is
    /// charged through dedicated point-to-point wires built from
    /// `config.link` / `config.retry`.
    ///
    /// # Errors
    ///
    /// [`PoolError::InvalidConfig`] when the configuration fails
    /// validation.
    pub fn with_devices(
        config: PoolConfig,
        make_device: impl FnMut(DeviceId, &PoolConfig) -> DtlDevice<B>,
    ) -> Result<Self, PoolError> {
        let ic = Box::new(PointToPoint::new(config.link, config.retry, config.devices));
        MemoryPool::with_devices_and_interconnect(config, ic, make_device)
    }

    /// Builds a pool whose member devices come from `make_device` and whose
    /// link traffic is charged through `ic` — the seam that swaps the
    /// point-to-point wiring for a switched CXL fabric without touching the
    /// orchestrator.
    ///
    /// # Errors
    ///
    /// [`PoolError::InvalidConfig`] when the configuration fails
    /// validation or `ic` does not cover every configured device.
    pub fn with_devices_and_interconnect(
        config: PoolConfig,
        ic: Box<dyn Interconnect>,
        mut make_device: impl FnMut(DeviceId, &PoolConfig) -> DtlDevice<B>,
    ) -> Result<Self, PoolError> {
        config.validate()?;
        if ic.devices() != config.devices {
            return Err(PoolError::InvalidConfig {
                reason: format!(
                    "interconnect reaches {} devices, pool configures {}",
                    ic.devices(),
                    config.devices
                ),
            });
        }
        let devices = (0..config.devices)
            .map(|i| {
                let id = DeviceId(i);
                PoolDevice {
                    id,
                    dev: make_device(id, &config),
                    health: DeviceHealth::Healthy,
                    coord: CoordState::Active,
                    allocated_aus: 0,
                }
            })
            .collect();
        Ok(MemoryPool {
            config,
            devices,
            ic,
            hosts: BTreeMap::new(),
            vms: BTreeMap::new(),
            next_vm: 0,
            evac: VecDeque::new(),
            stats: PoolStats::default(),
            slo_access: Histogram::default(),
            slo_admission: Histogram::default(),
            slo_evac_age: Histogram::default(),
            evac_high_water: 0,
        })
    }

    /// The pool configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Aggregate pool statistics.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Live pool VMs.
    pub fn vms(&self) -> usize {
        self.vms.len()
    }

    /// Ids of the live pool VMs, ascending.
    pub fn vm_ids(&self) -> Vec<PoolVmId> {
        self.vms.keys().map(|&k| PoolVmId(k)).collect()
    }

    /// A VM's AU-rounded allocated bytes, if it is live.
    pub fn vm_bytes(&self, vm: PoolVmId) -> Option<u64> {
        self.vms.get(&vm.0).map(|v| u64::from(v.total_aus()) * self.config.dtl.au_bytes)
    }

    /// The bytes a VM originally asked for (before AU rounding).
    pub fn vm_requested_bytes(&self, vm: PoolVmId) -> Option<u64> {
        self.vms.get(&vm.0).map(|v| v.bytes)
    }

    /// Devices a VM currently has shards on, ascending and deduplicated.
    pub fn vm_devices(&self, vm: PoolVmId) -> Option<Vec<DeviceId>> {
        let v = self.vms.get(&vm.0)?;
        let mut ids: Vec<DeviceId> = v.shards.iter().map(|s| s.device).collect();
        ids.sort_unstable();
        ids.dedup();
        Some(ids)
    }

    /// Shard evacuations in flight.
    pub fn evacuations_pending(&self) -> usize {
        self.evac.len()
    }

    /// Read access to one member device.
    pub fn device(&self, id: DeviceId) -> Option<&DtlDevice<B>> {
        self.devices.get(usize::from(id.0)).map(|d| &d.dev)
    }

    /// Mutable access to one member device (fault-injection hooks).
    pub fn device_mut(&mut self, id: DeviceId) -> Option<&mut DtlDevice<B>> {
        self.devices.get_mut(usize::from(id.0)).map(|d| &mut d.dev)
    }

    /// A device's error-health lifecycle state.
    pub fn device_health(&self, id: DeviceId) -> Option<DeviceHealth> {
        self.devices.get(usize::from(id.0)).map(|d| d.health)
    }

    /// A device's power-coordinator lifecycle state.
    pub fn coord_state(&self, id: DeviceId) -> Option<CoordState> {
        self.devices.get(usize::from(id.0)).map(|d| d.coord)
    }

    /// Queues a CRC corruption burst on one device's CXL link; the next
    /// access routed there pays the replay cost.
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownDevice`] for out-of-range ids.
    pub fn inject_crc_burst(&mut self, id: DeviceId, burst: u32) -> Result<(), PoolError> {
        if usize::from(id.0) >= self.devices.len() || !self.ic.inject_crc_burst(id.0, burst) {
            return Err(PoolError::UnknownDevice(id));
        }
        Ok(())
    }

    /// The interconnect the pool charges link traffic through.
    pub fn interconnect(&self) -> &dyn Interconnect {
        self.ic.as_ref()
    }

    /// Mutable interconnect access (fault-injection and scheduling hooks).
    pub fn interconnect_mut(&mut self) -> &mut dyn Interconnect {
        self.ic.as_mut()
    }

    /// Installs telemetry: device *i* records through a channel-offset
    /// shim (`offset = i * channels`), so one shared sink renders one
    /// Perfetto process-track group per device.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        let ic = &mut self.ic;
        for (i, d) in self.devices.iter_mut().enumerate() {
            let offset = i as u32 * self.config.channels;
            let sink = Arc::new(ChannelOffsetSink::new(telemetry.sink().clone(), offset));
            let mut t = Telemetry::new(sink);
            if let Some(m) = telemetry.metrics() {
                t = t.with_metrics(m.clone());
            }
            d.dev.set_telemetry(t.clone());
            ic.set_device_telemetry(i as u16, t);
        }
    }

    /// Registers a host on every member device.
    ///
    /// # Errors
    ///
    /// [`PoolError::Device`] when a device rejects the host (id beyond
    /// `DtlConfig::max_hosts`).
    pub fn register_host(&mut self, host: HostId) -> Result<(), PoolError> {
        for d in &mut self.devices {
            d.dev.register_host(host).map_err(|e| PoolError::Device { device: d.id, source: e })?;
        }
        self.hosts.entry(host.0).or_default();
        Ok(())
    }

    /// Sets (or clears) a host's pool-wide capacity quota in allocation
    /// units. Enforced at admission against the host's pool-wide mapped
    /// total, not per device.
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownHost`] for unregistered hosts.
    pub fn set_host_quota(
        &mut self,
        host: HostId,
        quota_aus: Option<u32>,
    ) -> Result<(), PoolError> {
        let hs = self.hosts.get_mut(&host.0).ok_or(PoolError::UnknownHost(host))?;
        hs.quota_aus = quota_aus;
        Ok(())
    }

    /// AUs a host has mapped pool-wide.
    pub fn host_mapped_aus(&self, host: HostId) -> Option<u32> {
        self.hosts.get(&host.0).map(|h| h.mapped_aus)
    }

    fn evac_delay(&self, bytes: u64) -> Picos {
        let ps =
            u128::from(bytes) * 1_000_000_000_000u128 / u128::from(self.config.evac_bytes_per_sec);
        Picos::from_ps((ps as u64).max(1))
    }

    fn in_flight(&self, device: DeviceId, handle: VmHandle) -> bool {
        self.evac.iter().any(|j| j.src == device && j.src_handle == handle)
    }

    /// Devices the placement planner may target: healthy, coordinator-
    /// active, not explicitly excluded, with free capacity.
    fn candidates(&self, excluded: &[DeviceId]) -> Vec<Candidate> {
        let total = self.config.aus_per_device();
        self.devices
            .iter()
            .filter(|d| {
                d.health == DeviceHealth::Healthy
                    && d.coord == CoordState::Active
                    && !excluded.contains(&d.id)
                    && d.allocated_aus < total
            })
            .map(|d| Candidate {
                device: d.id,
                free_aus: total - d.allocated_aus,
                allocated_aus: d.allocated_aus,
            })
            .collect()
    }

    /// Wakes the lowest-id healthy parked device; `false` when none exist.
    fn wake_one_parked(&mut self) -> bool {
        if let Some(d) = self
            .devices
            .iter_mut()
            .find(|d| d.coord == CoordState::Parked && d.health == DeviceHealth::Healthy)
        {
            d.coord = CoordState::Active;
            self.stats.devices_woken += 1;
            true
        } else {
            false
        }
    }

    /// Plans and carves `aus` allocation units for `host` across eligible
    /// devices, waking parked devices under pressure and excluding devices
    /// whose carve fails (e.g. capacity lost to retired ranks). Returns the
    /// carved device-level allocations in placement order, or the pool-wide
    /// placeable free count on failure.
    fn place_and_carve(
        &mut self,
        host: HostId,
        aus: u32,
        now: Picos,
        mut excluded: Vec<DeviceId>,
    ) -> Result<Vec<(DeviceId, VmAllocation)>, u64> {
        loop {
            let candidates = self.candidates(&excluded);
            let Some(slices) = placement::plan(self.config.policy, &candidates, aus) else {
                if self.wake_one_parked() {
                    continue;
                }
                return Err(candidates.iter().map(|c| u64::from(c.free_aus)).sum());
            };
            let mut carved: Vec<(DeviceId, VmAllocation)> = Vec::with_capacity(slices.len());
            let mut failed: Option<DeviceId> = None;
            for s in &slices {
                let d = &mut self.devices[usize::from(s.device.0)];
                match d.dev.alloc_vm(host, u64::from(s.aus) * self.config.dtl.au_bytes, now) {
                    Ok(alloc) => {
                        d.allocated_aus += s.aus;
                        carved.push((s.device, alloc));
                    }
                    Err(_) => {
                        failed = Some(s.device);
                        break;
                    }
                }
            }
            match failed {
                None => return Ok(carved),
                Some(bad) => {
                    // All-or-nothing: roll back and re-plan without the
                    // device that lied about its capacity.
                    for (id, alloc) in carved {
                        let d = &mut self.devices[usize::from(id.0)];
                        let n = alloc.aus.len() as u32;
                        d.dev.dealloc_vm(alloc.handle, now).expect("rollback of fresh alloc");
                        d.allocated_aus -= n;
                    }
                    excluded.push(bad);
                }
            }
        }
    }

    /// Admits a VM of `bytes` (AU-rounded up), placing its shards under the
    /// configured policy. Parked devices are woken before the request is
    /// rejected.
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownHost`], [`PoolError::QuotaExceeded`], or
    /// [`PoolError::NoCapacity`]; rejections are counted in
    /// [`PoolStats::rejected_vms`].
    pub fn alloc_vm(
        &mut self,
        host: HostId,
        bytes: u64,
        now: Picos,
    ) -> Result<PoolVmId, PoolError> {
        let hs = self.hosts.get(&host.0).ok_or(PoolError::UnknownHost(host))?;
        let n_aus = bytes.div_ceil(self.config.dtl.au_bytes).max(1) as u32;
        if let Some(quota) = hs.quota_aus {
            if hs.mapped_aus + n_aus > quota {
                self.stats.rejected_vms += 1;
                return Err(PoolError::QuotaExceeded {
                    host,
                    mapped_aus: hs.mapped_aus,
                    quota_aus: quota,
                });
            }
        }
        match self.place_and_carve(host, n_aus, now, Vec::new()) {
            Ok(carved) => {
                // Admission latency: each shard's device-level carve (table
                // walk + capacity wakes) plus one control-plane round trip
                // per shard on the interconnect.
                let mut admission = Picos::ZERO;
                for (device, _) in &carved {
                    let d = &self.devices[usize::from(device.0)];
                    admission +=
                        d.dev.last_admission_latency() + self.ic.round_trip(host, device.0);
                }
                self.slo_admission.observe(admission.as_ps());
                let shards =
                    carved.into_iter().map(|(device, alloc)| Shard { device, alloc }).collect();
                let id = PoolVmId(self.next_vm);
                self.next_vm += 1;
                self.vms.insert(id.0, PoolVm { host, bytes, shards });
                self.hosts.get_mut(&host.0).expect("checked above").mapped_aus += n_aus;
                self.stats.admitted_vms += 1;
                Ok(id)
            }
            Err(free_aus) => {
                self.stats.rejected_vms += 1;
                Err(PoolError::NoCapacity { requested_aus: n_aus, free_aus })
            }
        }
    }

    /// Releases a VM: cancels its in-flight evacuations and deallocates
    /// every shard (each device's own power-down engine then consolidates
    /// and parks freed rank groups).
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownVm`] for dead or never-issued ids.
    pub fn dealloc_vm(&mut self, vm: PoolVmId, now: Picos) -> Result<(), PoolError> {
        let v = self.vms.remove(&vm.0).ok_or(PoolError::UnknownVm(vm))?;
        let cancelled: Vec<EvacJob> = {
            let (keep, cancel): (VecDeque<EvacJob>, VecDeque<EvacJob>) =
                std::mem::take(&mut self.evac).into_iter().partition(|j| j.vm != vm);
            self.evac = keep;
            cancel.into_iter().collect()
        };
        for job in cancelled {
            self.release_dst(&job, now);
            self.stats.evacuations_cancelled += 1;
        }
        let aus = v.total_aus();
        for shard in v.shards {
            let d = &mut self.devices[usize::from(shard.device.0)];
            d.dev
                .dealloc_vm(shard.alloc.handle, now)
                .map_err(|e| PoolError::Device { device: d.id, source: e })?;
            d.allocated_aus -= shard.aus();
        }
        self.hosts.get_mut(&v.host.0).expect("vm host is registered").mapped_aus -= aus;
        self.stats.deallocated_vms += 1;
        Ok(())
    }

    fn release_dst(&mut self, job: &EvacJob, now: Picos) {
        for (id, alloc) in &job.dst {
            let d = &mut self.devices[usize::from(id.0)];
            let n = alloc.aus.len() as u32;
            d.dev.dealloc_vm(alloc.handle, now).expect("release of live reservation");
            d.allocated_aus -= n;
        }
    }

    /// One translated access to byte `offset` of a VM's address space. The
    /// owning shard's device serves it; the outcome carries the CXL link
    /// round-trip plus any CRC retry backoff on top of the device latency.
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownVm`], [`PoolError::OutOfRange`], or
    /// [`PoolError::Device`].
    pub fn access(
        &mut self,
        vm: PoolVmId,
        offset: u64,
        kind: AccessKind,
        now: Picos,
    ) -> Result<PoolAccessOutcome, PoolError> {
        let au_bytes = self.config.dtl.au_bytes;
        let v = self.vms.get(&vm.0).ok_or(PoolError::UnknownVm(vm))?;
        let au_index = offset / au_bytes;
        let within = offset % au_bytes;
        let mut skipped = 0u64;
        let mut target: Option<(DeviceId, VmHandle, usize)> = None;
        for shard in &v.shards {
            let n = u64::from(shard.aus());
            if au_index < skipped + n {
                target = Some((shard.device, shard.alloc.handle, (au_index - skipped) as usize));
                break;
            }
            skipped += n;
        }
        let Some((device, _handle, i)) = target else {
            return Err(PoolError::OutOfRange {
                vm,
                offset,
                bytes: u64::from(v.total_aus()) * au_bytes,
            });
        };
        let host = v.host;
        let shard = v
            .shards
            .iter()
            .find(|s| s.device == device && s.alloc.handle == _handle)
            .expect("target shard exists");
        let hpa = dtl_core::HostPhysAddr::new(shard.alloc.hpa_base(i, au_bytes).as_u64() + within);
        // One cache-line transaction crosses the interconnect (queueing +
        // propagation + retry), then the device serves it.
        let delivery = self.ic.submit_at(host, device.0, ACCESS_BYTES, now);
        let d = &mut self.devices[usize::from(device.0)];
        let outcome = d
            .dev
            .access(host, hpa, kind, now)
            .map_err(|e| PoolError::Device { device, source: e })?;
        let out = PoolAccessOutcome { device, outcome, link_delay: delivery.delay };
        self.slo_access.observe(out.added_latency().as_ps());
        Ok(out)
    }

    /// Starts evacuating every shard resident on `src` that is not already
    /// in flight. Shards that cannot be placed right now (no capacity even
    /// after waking every parked device) are left in place and retried on
    /// subsequent ticks — they remain fully accessible meanwhile.
    fn evacuate_device(&mut self, src: DeviceId, now: Picos) {
        let pending: Vec<(PoolVmId, HostId, VmHandle, u32)> = self
            .vms
            .iter()
            .flat_map(|(&id, v)| {
                v.shards
                    .iter()
                    .filter(|s| s.device == src)
                    .map(move |s| (PoolVmId(id), v.host, s.alloc.handle, s.aus()))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (vm, host, handle, aus) in pending {
            if self.in_flight(src, handle) {
                continue;
            }
            let Ok(carved) = self.place_and_carve(host, aus, now, vec![src]) else {
                continue;
            };
            let bytes = u64::from(aus) * self.config.dtl.au_bytes;
            // The copy reads the source over its link and writes every
            // destination over theirs; fabrics serialize those transfers
            // through shared ports (point-to-point wires charge nothing).
            let mut wire = self.ic.charge_bulk(host, src.0, bytes, now);
            for (dst, _) in &carved {
                wire += self.ic.charge_bulk(host, dst.0, bytes, now);
            }
            let ready_at = now + self.evac_delay(bytes) + wire;
            self.evac.push_back(EvacJob {
                vm,
                src,
                src_handle: handle,
                dst: carved,
                ready_at,
                queued_at: now,
                bytes,
            });
            self.evac_high_water = self.evac_high_water.max(self.evac.len() as u64);
            self.stats.evacuations_started += 1;
        }
    }

    /// Cuts over evacuations whose copy finished by `now`.
    fn cutover_due(&mut self, now: Picos) -> Result<(), PoolError> {
        // Jobs are scanned in start order; completion order still follows
        // ready_at because every due job cuts over within this call.
        let mut remaining: VecDeque<EvacJob> = VecDeque::with_capacity(self.evac.len());
        let jobs = std::mem::take(&mut self.evac);
        for job in jobs {
            if job.ready_at > now {
                remaining.push_back(job);
                continue;
            }
            let v = self.vms.get_mut(&job.vm.0).expect("jobs of dead VMs are cancelled");
            let pos = v
                .shards
                .iter()
                .position(|s| s.device == job.src && s.alloc.handle == job.src_handle)
                .expect("source shard exists until cutover");
            let old = v.shards.remove(pos);
            for (k, (device, alloc)) in job.dst.into_iter().enumerate() {
                v.shards.insert(pos + k, Shard { device, alloc });
            }
            let d = &mut self.devices[usize::from(job.src.0)];
            d.dev
                .dealloc_vm(old.alloc.handle, now)
                .map_err(|e| PoolError::Device { device: d.id, source: e })?;
            d.allocated_aus -= old.aus();
            self.slo_evac_age.observe(now.saturating_sub(job.queued_at).as_ps());
            self.stats.evacuations_completed += 1;
            self.stats.segments_evacuated +=
                u64::from(old.aus()) * self.config.dtl.segments_per_au();
            self.stats.bytes_evacuated += job.bytes;
        }
        self.evac = remaining;
        Ok(())
    }

    /// Trips health-driven failover: a healthy device whose rank-health
    /// lifecycle has pushed at least `failover_rank_fraction` of its ranks
    /// into `Draining`/`Retired` is marked draining pool-side.
    fn poll_health(&mut self) {
        let ranks = self.config.channels * self.config.ranks_per_channel;
        for d in &mut self.devices {
            if d.health != DeviceHealth::Healthy {
                continue;
            }
            let mut bad = 0u32;
            for c in 0..self.config.channels {
                for r in 0..self.config.ranks_per_channel {
                    if matches!(d.dev.rank_health(c, r), RankHealth::Draining | RankHealth::Retired)
                    {
                        bad += 1;
                    }
                }
            }
            if f64::from(bad) >= self.config.failover_rank_fraction * f64::from(ranks) && bad > 0 {
                d.health = DeviceHealth::Draining;
                self.stats.failovers += 1;
            }
        }
    }

    fn shards_on(&self, id: DeviceId) -> usize {
        self.vms.values().flat_map(|v| v.shards.iter()).filter(|s| s.device == id).count()
    }

    fn touches_jobs(&self, id: DeviceId) -> bool {
        self.evac.iter().any(|j| j.src == id || j.dst.iter().any(|(d, _)| *d == id))
    }

    /// Parks a device: bookkeeping plus the physical half — the device's
    /// own power-down engine only plans on the dealloc path, so a device
    /// the pool idles without it ever serving a VM would keep every rank
    /// in standby forever. Parking asks it to plan immediately.
    fn park_device(&mut self, id: DeviceId, now: Picos) -> Result<(), PoolError> {
        let d = &mut self.devices[usize::from(id.0)];
        d.coord = CoordState::Parked;
        d.dev.request_power_down(now).map_err(|e| PoolError::Device { device: id, source: e })?;
        self.stats.devices_parked += 1;
        Ok(())
    }

    /// The pool-wide power coordinator: parks drained victims, and — when
    /// the pool is quiescent — picks the least-utilized active device whose
    /// load fits in the others' free space (plus slack) and drains it, the
    /// cross-device extension of the paper's rank-group consolidation.
    fn coordinate(&mut self, now: Picos) -> Result<(), PoolError> {
        if !self.config.coordinator.enabled {
            return Ok(());
        }
        // Drained victims become parked; stuck drains are retried.
        let draining: Vec<DeviceId> = self
            .devices
            .iter()
            .filter(|d| d.coord == CoordState::Draining && d.health == DeviceHealth::Healthy)
            .map(|d| d.id)
            .collect();
        for id in &draining {
            if self.shards_on(*id) == 0 && !self.touches_jobs(*id) {
                self.park_device(*id, now)?;
            } else {
                self.evacuate_device(*id, now);
            }
        }
        if !self.evac.is_empty() || !draining.is_empty() {
            return Ok(()); // one consolidation at a time
        }
        let active: Vec<DeviceId> = self
            .devices
            .iter()
            .filter(|d| d.coord == CoordState::Active && d.health == DeviceHealth::Healthy)
            .map(|d| d.id)
            .collect();
        if active.len() <= usize::from(self.config.coordinator.min_active) {
            return Ok(());
        }
        // Least-utilized victim; ties prefer the highest id so low ids
        // accumulate load under packing.
        let victim = *active
            .iter()
            .min_by_key(|id| {
                (self.devices[usize::from(id.0)].allocated_aus, core::cmp::Reverse(id.0))
            })
            .expect("active is nonempty");
        let victim_load = self.devices[usize::from(victim.0)].allocated_aus;
        if victim_load == 0 {
            return self.park_device(victim, now);
        }
        let total = self.config.aus_per_device();
        let others_free: u64 = active
            .iter()
            .filter(|id| **id != victim)
            .map(|id| u64::from(total - self.devices[usize::from(id.0)].allocated_aus))
            .sum();
        if others_free >= u64::from(victim_load) + u64::from(self.config.coordinator.slack_aus) {
            self.devices[usize::from(victim.0)].coord = CoordState::Draining;
            self.stats.drains_started += 1;
            self.evacuate_device(victim, now);
        }
        Ok(())
    }

    /// Drains a device for maintenance: marked unhealthy-draining, its
    /// shards evacuate to the survivors, and it receives no new placements.
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownDevice`] for out-of-range ids.
    pub fn drain_device(&mut self, id: DeviceId, now: Picos) -> Result<(), PoolError> {
        let d = self.devices.get_mut(usize::from(id.0)).ok_or(PoolError::UnknownDevice(id))?;
        if d.health == DeviceHealth::Healthy {
            d.health = DeviceHealth::Draining;
        }
        self.evacuate_device(id, now);
        Ok(())
    }

    /// Retires a device permanently (device loss): in-flight evacuations
    /// *onto* it are cancelled and re-planned, every resident shard is
    /// evacuated, and the device never receives placements again. Shards
    /// stay readable on the retired device until their cutover completes,
    /// so no segment is ever lost.
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownDevice`] for out-of-range ids.
    pub fn retire_device(&mut self, id: DeviceId, now: Picos) -> Result<(), PoolError> {
        let d = self.devices.get_mut(usize::from(id.0)).ok_or(PoolError::UnknownDevice(id))?;
        if d.health != DeviceHealth::Retired {
            d.health = DeviceHealth::Retired;
            self.stats.devices_retired += 1;
        }
        // Cancel jobs that were copying onto the now-dead device; their
        // source shards are still live and will be re-planned.
        let (keep, cancel): (VecDeque<EvacJob>, VecDeque<EvacJob>) = std::mem::take(&mut self.evac)
            .into_iter()
            .partition(|j| !j.dst.iter().any(|(dst, _)| *dst == id));
        self.evac = keep;
        let cancelled: Vec<EvacJob> = cancel.into_iter().collect();
        for job in cancelled {
            self.release_dst(&job, now);
            self.stats.evacuations_cancelled += 1;
        }
        self.evacuate_device(id, now);
        Ok(())
    }

    /// Advances pool time: ticks every device, cuts over finished
    /// evacuations, polls device health for failover, retries evacuations
    /// off unhealthy devices, and runs the power coordinator.
    ///
    /// # Errors
    ///
    /// [`PoolError::Device`] on device-internal invariant violations.
    pub fn tick(&mut self, now: Picos) -> Result<(), PoolError> {
        self.ic.advance_to(now);
        for d in &mut self.devices {
            d.dev.tick(now).map_err(|e| PoolError::Device { device: d.id, source: e })?;
        }
        self.cutover_due(now)?;
        self.poll_health();
        let unhealthy: Vec<DeviceId> = self
            .devices
            .iter()
            .filter(|d| d.health != DeviceHealth::Healthy)
            .map(|d| d.id)
            .collect();
        for id in unhealthy {
            if self.shards_on(id) > 0 {
                self.evacuate_device(id, now);
            }
        }
        self.coordinate(now)
    }

    /// The next time [`MemoryPool::tick`] has timed work to do, for
    /// event-driven drivers (`dtl-event`): the earliest device activity
    /// (migrations, hotness deadlines) or the earliest evacuation cutover
    /// (`ready_at`). `None` means every engine is quiescent; health
    /// failover and the power coordinator are reactive — they reassess on
    /// the tick that handles whichever event fires next — so they add no
    /// deadlines of their own. Re-query after every tick or mutating call.
    pub fn next_activity_at(&self) -> Option<Picos> {
        let dev = self.devices.iter().filter_map(|d| d.dev.next_activity_at()).min();
        let evac = self.evac.iter().map(|j| j.ready_at).min();
        let link = self.ic.next_activity_at();
        [dev, evac, link].into_iter().flatten().min()
    }

    /// Per-device power reports at `now`, in device order.
    pub fn power_reports(&mut self, now: Picos) -> Vec<(DeviceId, PowerReport)> {
        self.devices.iter_mut().map(|d| (d.id, d.dev.power_report(now))).collect()
    }

    /// Pool-wide energy account at `now`: the sum of every device's total.
    pub fn pool_energy(&mut self, now: Picos) -> RankEnergy {
        let mut total = RankEnergy::default();
        for d in &mut self.devices {
            total.accumulate(&d.dev.power_report(now).total);
        }
        total
    }

    /// A full pool snapshot with cross-device aggregates precomputed.
    pub fn snapshot(&self) -> PoolSnapshot {
        let total = self.config.aus_per_device();
        let mut rank_residency = [Picos::ZERO; 5];
        let mut errors = HealthStats::default();
        let mut link = LinkRetryStats::default();
        let mut mapped_segments = 0u64;
        let devices: Vec<PoolDeviceSnapshot> = self
            .devices
            .iter()
            .map(|d| {
                let snap = d.dev.snapshot();
                for rank in &snap.ranks {
                    for (acc, add) in rank_residency.iter_mut().zip(rank.residency.iter()) {
                        *acc += *add;
                    }
                }
                errors.correctable_errors += snap.errors.correctable_errors;
                errors.uncorrectable_errors += snap.errors.uncorrectable_errors;
                errors.retire_trips += snap.errors.retire_trips;
                let dev_link = self.ic.device_stats(d.id.0);
                link.merge_from(&dev_link);
                mapped_segments += snap.mapped_segments;
                PoolDeviceSnapshot {
                    id: d.id,
                    health: d.health,
                    coord: d.coord,
                    allocated_aus: d.allocated_aus,
                    free_aus: total - d.allocated_aus,
                    link: dev_link,
                    device: snap,
                }
            })
            .collect();
        PoolSnapshot {
            devices,
            vms: self.vms.len(),
            evacuations_pending: self.evac.len(),
            mapped_segments,
            rank_residency,
            errors,
            link,
            stats: self.stats,
        }
    }

    /// Dumps pool statistics and cross-device aggregates into `registry` as
    /// `pool.*` counters. Counters are *set*, so repeated exports are
    /// idempotent (the same contract as `DtlDevice::export_metrics`).
    pub fn export_metrics(&self, registry: &MetricsRegistry) {
        let s = self.stats;
        registry.counter("pool.vms_admitted").set(s.admitted_vms);
        registry.counter("pool.vms_rejected").set(s.rejected_vms);
        registry.counter("pool.vms_deallocated").set(s.deallocated_vms);
        registry.counter("pool.evacuations_started").set(s.evacuations_started);
        registry.counter("pool.evacuations_completed").set(s.evacuations_completed);
        registry.counter("pool.evacuations_cancelled").set(s.evacuations_cancelled);
        registry.counter("pool.segments_evacuated").set(s.segments_evacuated);
        registry.counter("pool.bytes_evacuated").set(s.bytes_evacuated);
        registry.counter("pool.drains_started").set(s.drains_started);
        registry.counter("pool.devices_parked").set(s.devices_parked);
        registry.counter("pool.devices_woken").set(s.devices_woken);
        registry.counter("pool.failovers").set(s.failovers);
        registry.counter("pool.devices_retired").set(s.devices_retired);
        let snap = self.snapshot();
        registry.counter("pool.health.correctable_errors").set(snap.errors.correctable_errors);
        registry.counter("pool.health.uncorrectable_errors").set(snap.errors.uncorrectable_errors);
        registry.counter("pool.health.retire_trips").set(snap.errors.retire_trips);
        registry.counter("pool.link.crc_errors").set(snap.link.crc_errors);
        registry.counter("pool.link.retries").set(snap.link.retries);
        registry.counter("pool.link.giveups").set(snap.link.giveups);
    }

    /// The pool's SLO report: end-to-end access latency (translation +
    /// link + retry), admission latency (per-shard carving + link), and
    /// evacuation backlog age/depth. Sections with no samples are `None`.
    pub fn slo_report(&self) -> SloReport {
        SloReport {
            access: LatencySummary::from_histogram(&self.slo_access),
            admission: LatencySummary::from_histogram(&self.slo_admission),
            evac_backlog: BacklogSummary::from_parts(&self.slo_evac_age, self.evac_high_water),
            fabric_queue: self.ic.queue_latency(),
        }
    }

    /// Checks pool *and* device invariants: every device's internal
    /// consistency, the AU bookkeeping against live shards and evacuation
    /// reservations, and host quota accounting.
    ///
    /// # Errors
    ///
    /// The first violation found (device errors wrapped in
    /// [`PoolError::Device`], pool-level ones as
    /// [`PoolError::InvalidConfig`]-style internal descriptions).
    pub fn check_invariants(&self) -> Result<(), PoolError> {
        for d in &self.devices {
            d.dev.check_invariants().map_err(|e| PoolError::Device { device: d.id, source: e })?;
        }
        let mut per_device = vec![0u32; self.devices.len()];
        let mut per_host: BTreeMap<u16, u32> = BTreeMap::new();
        for v in self.vms.values() {
            for s in &v.shards {
                per_device[usize::from(s.device.0)] += s.aus();
            }
            *per_host.entry(v.host.0).or_default() += v.total_aus();
        }
        for j in &self.evac {
            if !self.vms.contains_key(&j.vm.0) {
                return Err(internal(format!("evacuation references dead VM {}", j.vm)));
            }
            for (id, alloc) in &j.dst {
                per_device[usize::from(id.0)] += alloc.aus.len() as u32;
            }
        }
        for (d, &counted) in self.devices.iter().zip(per_device.iter()) {
            if d.allocated_aus != counted {
                return Err(internal(format!(
                    "{} books {} AUs but shards+reservations sum to {counted}",
                    d.id, d.allocated_aus
                )));
            }
        }
        for (&host, hs) in &self.hosts {
            let counted = per_host.get(&host).copied().unwrap_or(0);
            if hs.mapped_aus != counted {
                return Err(internal(format!(
                    "host{host} books {} mapped AUs but VMs sum to {counted}",
                    hs.mapped_aus
                )));
            }
        }
        Ok(())
    }

    /// Sweeps one read through every allocation unit of every live VM —
    /// the zero-lost-segments oracle the failover campaigns assert after
    /// retiring devices.
    ///
    /// # Errors
    ///
    /// The first unreachable AU, as the underlying access error.
    pub fn assert_all_reachable(&mut self, now: Picos) -> Result<(), PoolError> {
        let au_bytes = self.config.dtl.au_bytes;
        for vm in self.vm_ids() {
            let aus = self.vm_bytes(vm).expect("listed VM is live") / au_bytes;
            for i in 0..aus {
                self.access(vm, i * au_bytes, AccessKind::Read, now)?;
            }
        }
        Ok(())
    }

    /// The placement policy in effect.
    pub fn policy(&self) -> PlacementPolicy {
        self.config.policy
    }
}

fn internal(reason: String) -> PoolError {
    PoolError::InvalidConfig { reason }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PoolConfig;

    fn pool(devices: u16) -> MemoryPool<AnalyticBackend> {
        let mut cfg = PoolConfig::tiny(devices);
        cfg.coordinator.enabled = false;
        let mut p = MemoryPool::analytic(cfg).unwrap();
        p.register_host(HostId(0)).unwrap();
        p
    }

    fn coord_pool(devices: u16) -> MemoryPool<AnalyticBackend> {
        let mut p = MemoryPool::analytic(PoolConfig::tiny(devices)).unwrap();
        p.register_host(HostId(0)).unwrap();
        p
    }

    fn au(p: &MemoryPool<AnalyticBackend>) -> u64 {
        p.config().dtl.au_bytes
    }

    fn secs(s: u64) -> Picos {
        Picos::from_secs(s)
    }

    /// Ticks until the evacuation queue drains (bounded).
    fn settle(p: &mut MemoryPool<AnalyticBackend>, mut now: Picos) -> Picos {
        for _ in 0..64 {
            now += secs(10);
            p.tick(now).unwrap();
            if p.evacuations_pending() == 0 {
                return now;
            }
        }
        panic!("evacuations never settled: {} pending", p.evacuations_pending());
    }

    #[test]
    fn pack_concentrates_and_spread_stripes() {
        let mut pack = pool(3);
        let b = au(&pack);
        for _ in 0..3 {
            pack.alloc_vm(HostId(0), b, Picos::ZERO).unwrap();
        }
        let snap = pack.snapshot();
        assert_eq!(snap.devices[0].allocated_aus, 3, "pack stacks one device");
        assert_eq!(snap.devices[1].allocated_aus + snap.devices[2].allocated_aus, 0);

        let mut cfg = PoolConfig::tiny(3);
        cfg.coordinator.enabled = false;
        cfg.policy = PlacementPolicy::SpreadForBandwidth;
        let mut spread = MemoryPool::analytic(cfg).unwrap();
        spread.register_host(HostId(0)).unwrap();
        spread.alloc_vm(HostId(0), 3 * b, Picos::ZERO).unwrap();
        let snap = spread.snapshot();
        let per: Vec<u32> = snap.devices.iter().map(|d| d.allocated_aus).collect();
        assert_eq!(per, vec![1, 1, 1], "spread stripes one AU per device");
    }

    #[test]
    fn access_reaches_every_au_and_charges_the_link() {
        let mut p = pool(2);
        let b = au(&p);
        let vm = p.alloc_vm(HostId(0), 3 * b, Picos::ZERO).unwrap();
        for i in 0..3 {
            let out = p.access(vm, i * b + 17, AccessKind::Read, secs(1)).unwrap();
            assert!(out.link_delay > Picos::ZERO, "link round-trip charged");
        }
        let err = p.access(vm, 3 * b, AccessKind::Read, secs(1)).unwrap_err();
        assert!(matches!(err, PoolError::OutOfRange { .. }), "{err}");
    }

    #[test]
    fn pool_quota_gates_admission_across_devices() {
        let mut p = pool(2);
        let b = au(&p);
        p.set_host_quota(HostId(0), Some(3)).unwrap();
        p.alloc_vm(HostId(0), 2 * b, Picos::ZERO).unwrap();
        let err = p.alloc_vm(HostId(0), 2 * b, Picos::ZERO).unwrap_err();
        assert!(matches!(err, PoolError::QuotaExceeded { .. }), "{err}");
        assert_eq!(p.stats().rejected_vms, 1);
        p.alloc_vm(HostId(0), b, Picos::ZERO).unwrap();
        p.check_invariants().unwrap();
    }

    #[test]
    fn dealloc_returns_capacity_and_books_balance() {
        let mut p = pool(2);
        let b = au(&p);
        let vm = p.alloc_vm(HostId(0), 5 * b, Picos::ZERO).unwrap();
        assert_eq!(p.host_mapped_aus(HostId(0)), Some(5));
        p.dealloc_vm(vm, secs(1)).unwrap();
        assert_eq!(p.host_mapped_aus(HostId(0)), Some(0));
        let snap = p.snapshot();
        assert!(snap.devices.iter().all(|d| d.allocated_aus == 0));
        assert_eq!(snap.mapped_segments, 0);
        p.check_invariants().unwrap();
    }

    #[test]
    fn retire_evacuates_every_shard_with_zero_loss() {
        let mut p = pool(3);
        let b = au(&p);
        let mut vms = Vec::new();
        for _ in 0..4 {
            vms.push(p.alloc_vm(HostId(0), b, Picos::ZERO).unwrap());
        }
        // Pack put all four AUs on dev0; retire it.
        p.retire_device(DeviceId(0), secs(1)).unwrap();
        assert_eq!(p.device_health(DeviceId(0)), Some(DeviceHealth::Retired));
        assert!(p.evacuations_pending() > 0);
        // Shards stay readable mid-copy.
        p.assert_all_reachable(secs(1)).unwrap();
        let now = settle(&mut p, secs(1));
        assert_eq!(p.stats().evacuations_completed, p.stats().evacuations_started);
        for vm in &vms {
            let homes = p.vm_devices(*vm).unwrap();
            assert!(!homes.contains(&DeviceId(0)), "{vm} still on retired device");
        }
        p.assert_all_reachable(now).unwrap();
        p.check_invariants().unwrap();
        let snap = p.snapshot();
        assert_eq!(snap.devices[0].allocated_aus, 0, "retired device fully drained");
    }

    /// Event-driven drivers wake the pool at [`MemoryPool::next_activity_at`]:
    /// a started evacuation must surface its cutover time, and ticking at
    /// exactly the reported instants must drain the queue without a grid.
    #[test]
    fn next_activity_surfaces_evacuation_cutover() {
        let mut p = pool(3);
        // The hotness engine, when enabled, always has a sampling-window
        // deadline; switch it off so only migrations and evacuations drive
        // the activity query (as the dtl-sim pool driver configures it).
        for i in 0..3 {
            p.device_mut(DeviceId(i)).unwrap().set_hotness_enabled(false);
        }
        let b = au(&p);
        for _ in 0..4 {
            p.alloc_vm(HostId(0), b, Picos::ZERO).unwrap();
        }
        assert_eq!(p.next_activity_at(), None, "quiescent pool has no deadline");
        p.retire_device(DeviceId(0), secs(1)).unwrap();
        let first = p.next_activity_at().expect("evacuation in progress");
        assert!(first > secs(1), "cutover is in the future");
        // Walk the event chain: tick only at reported activity times.
        let mut now = secs(1);
        for _ in 0..64 {
            match p.next_activity_at() {
                Some(t) => {
                    now = t.max(now);
                    p.tick(now).unwrap();
                }
                None => break,
            }
        }
        assert_eq!(p.evacuations_pending(), 0, "event walk drains evacuations");
        assert_eq!(p.stats().evacuations_completed, p.stats().evacuations_started);
        p.assert_all_reachable(now).unwrap();
        p.check_invariants().unwrap();
    }

    #[test]
    fn retirement_cancels_inbound_copies_and_replans() {
        let mut p = pool(3);
        let b = au(&p);
        let vm = p.alloc_vm(HostId(0), 2 * b, Picos::ZERO).unwrap();
        p.drain_device(DeviceId(0), secs(1)).unwrap();
        assert!(p.evacuations_pending() > 0);
        // The evacuation targets dev1 (busiest eligible under pack);
        // retiring dev1 mid-copy must cancel and re-plan onto dev2.
        p.retire_device(DeviceId(1), secs(2)).unwrap();
        assert!(p.stats().evacuations_cancelled > 0);
        let now = settle(&mut p, secs(2));
        let homes = p.vm_devices(vm).unwrap();
        assert_eq!(homes, vec![DeviceId(2)]);
        p.assert_all_reachable(now).unwrap();
        p.check_invariants().unwrap();
    }

    #[test]
    fn coordinator_drains_the_least_utilized_device_then_parks_it() {
        let mut p = coord_pool(3);
        let b = au(&p);
        // Pack fills dev0; dev1 gets one straggler AU via a manual drain.
        for _ in 0..6 {
            p.alloc_vm(HostId(0), b, Picos::ZERO).unwrap();
        }
        let mut now = secs(1);
        p.tick(now).unwrap();
        // Empty dev1/dev2 park immediately (one per tick).
        now += secs(10);
        p.tick(now).unwrap();
        let parked = p.snapshot().devices.iter().filter(|d| d.coord == CoordState::Parked).count();
        assert_eq!(parked, 2, "idle devices parked");
        assert!(p.stats().devices_parked >= 2);
        p.check_invariants().unwrap();
    }

    #[test]
    fn admission_wakes_parked_devices_under_pressure() {
        let mut p = coord_pool(2);
        let b = au(&p);
        let aus_per_dev = p.config().aus_per_device() as u64;
        let mut now = secs(1);
        p.tick(now).unwrap();
        now += secs(10);
        p.tick(now).unwrap();
        assert_eq!(p.coord_state(DeviceId(1)), Some(CoordState::Parked));
        // Fill past one device's capacity: the parked device must wake.
        p.alloc_vm(HostId(0), aus_per_dev * b, now).unwrap();
        p.alloc_vm(HostId(0), b, now).unwrap();
        assert_eq!(p.coord_state(DeviceId(1)), Some(CoordState::Active));
        assert_eq!(p.stats().devices_woken, 1);
        p.check_invariants().unwrap();
    }

    /// ISSUE 8 satellite regression: the coordinator parks devices via
    /// `request_power_down` — under a ladder policy the victim's ranks may
    /// already sit in active/precharge power-down or self-refresh, and the
    /// park must bridge them through standby instead of erroring (or
    /// double-charging the MPSM entry).
    #[test]
    fn coordinator_parks_devices_whose_ranks_ladder_demoted() {
        let mut cfg = PoolConfig::tiny(3);
        cfg.dtl.power_policy = dtl_dram::PowerPolicyKind::AdaptiveDemotion;
        let mut p = MemoryPool::analytic(cfg).unwrap();
        p.register_host(HostId(0)).unwrap();
        let b = au(&p);
        for _ in 0..6 {
            p.alloc_vm(HostId(0), b, Picos::ZERO).unwrap();
        }
        // First tick: every idle rank demotes a rung (the tiny adaptive
        // floor is microseconds); subsequent ticks park one empty device
        // each, with ranks at APD or deeper.
        let mut now = secs(1);
        for _ in 0..3 {
            p.tick(now).unwrap();
            now += secs(10);
        }
        let parked = p.snapshot().devices.iter().filter(|d| d.coord == CoordState::Parked).count();
        assert_eq!(parked, 2, "ladder-demoted devices still park");
        assert!(
            p.device(DeviceId(0)).unwrap().policy_demotions() > 0,
            "the adaptive policy actually demoted before the park"
        );
        p.check_invariants().unwrap();
    }

    #[test]
    fn snapshot_aggregates_residency_errors_and_link_totals() {
        let mut p = pool(2);
        let b = au(&p);
        let vm = p.alloc_vm(HostId(0), 2 * b, Picos::ZERO).unwrap();
        p.inject_crc_burst(DeviceId(0), 2).unwrap();
        p.access(vm, 0, AccessKind::Read, secs(1)).unwrap();
        let mut now = secs(1);
        for _ in 0..6 {
            now += secs(10);
            p.tick(now).unwrap();
        }
        let snap = p.snapshot();
        let summed: u64 = snap.devices.iter().map(|d| d.link.crc_errors).sum();
        assert_eq!(snap.link.crc_errors, summed, "link totals match per-device sum");
        assert!(snap.link.crc_errors >= 2);
        let residency_total: Picos = snap.rank_residency.iter().copied().sum();
        let per_device: Picos = snap
            .devices
            .iter()
            .flat_map(|d| d.device.ranks.iter())
            .flat_map(|r| r.residency.iter().copied())
            .sum();
        assert_eq!(residency_total, per_device, "residency aggregate matches");
        assert!(residency_total > Picos::ZERO);
    }

    #[test]
    fn slo_report_covers_access_admission_and_evacuation() {
        let mut p = pool(3);
        let b = au(&p);
        assert!(p.slo_report().is_empty(), "fresh pool has no samples");
        let mut vms = Vec::new();
        for _ in 0..4 {
            vms.push(p.alloc_vm(HostId(0), b, Picos::ZERO).unwrap());
        }
        p.access(vms[0], 17, AccessKind::Read, secs(1)).unwrap();
        p.retire_device(DeviceId(0), secs(1)).unwrap();
        let _ = settle(&mut p, secs(1));
        let slo = p.slo_report();
        let access = slo.access.expect("accesses observed");
        assert_eq!(access.count, 1);
        // The link round trip alone puts a floor under every access.
        assert!(access.p50_ps >= p.config().link.round_trip().as_ps());
        let admission = slo.admission.expect("admissions observed");
        assert_eq!(admission.count, 4);
        assert!(admission.p50_ps > 0);
        let evac = slo.evac_backlog.expect("evacuations completed");
        assert_eq!(evac.completed, p.stats().evacuations_completed);
        assert!(evac.peak_depth > 0);
        assert!(evac.max_age_ps > 0, "cutover happens after planning");
    }

    #[test]
    fn export_metrics_is_idempotent() {
        let mut p = pool(2);
        let b = au(&p);
        p.alloc_vm(HostId(0), b, Picos::ZERO).unwrap();
        let registry = MetricsRegistry::new();
        p.export_metrics(&registry);
        p.export_metrics(&registry);
        assert_eq!(registry.counter("pool.vms_admitted").get(), 1, "set, not add");
    }

    #[test]
    fn unknown_ids_are_rejected() {
        let mut p = pool(1);
        assert!(matches!(p.alloc_vm(HostId(9), 1, Picos::ZERO), Err(PoolError::UnknownHost(_))));
        assert!(matches!(p.dealloc_vm(PoolVmId(42), Picos::ZERO), Err(PoolError::UnknownVm(_))));
        assert!(matches!(
            p.retire_device(DeviceId(7), Picos::ZERO),
            Err(PoolError::UnknownDevice(_))
        ));
        assert!(matches!(
            p.access(PoolVmId(42), 0, AccessKind::Read, Picos::ZERO),
            Err(PoolError::UnknownVm(_))
        ));
    }

    #[test]
    fn capacity_exhaustion_reports_placeable_free_space() {
        let mut p = pool(1);
        let b = au(&p);
        let per_dev = u64::from(p.config().aus_per_device());
        p.alloc_vm(HostId(0), per_dev * b, Picos::ZERO).unwrap();
        let err = p.alloc_vm(HostId(0), b, Picos::ZERO).unwrap_err();
        match err {
            PoolError::NoCapacity { requested_aus, free_aus } => {
                assert_eq!(requested_aus, 1);
                assert_eq!(free_aus, 0);
            }
            other => panic!("unexpected {other}"),
        }
    }
}
