//! Deterministic placement planning for VM admission and evacuation.
//!
//! Planning is pure: the pool hands in a list of [`Candidate`]s (eligible
//! devices with their free/allocated allocation-unit counts) and gets back
//! the list of [`Slice`]s to carve, or `None` when the request cannot fit.
//! Placement never splits below one allocation unit — and an AU is itself a
//! whole number of segments by `DtlConfig` construction, so a VM is never
//! split below segment granularity.

use serde::{Deserialize, Serialize};

use crate::DeviceId;

/// How VM admission distributes allocation units across member devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Concentrate load on the already-busiest devices so the remainder
    /// drain empty and the pool coordinator can park them — the
    /// cross-device analogue of the paper's rank-group consolidation.
    PackForPower,
    /// Stripe allocation units across the emptiest devices so VM bandwidth
    /// aggregates over many links and controllers.
    SpreadForBandwidth,
}

impl PlacementPolicy {
    /// Short machine-friendly label (CLI values, JSON rows).
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicy::PackForPower => "pack",
            PlacementPolicy::SpreadForBandwidth => "spread",
        }
    }

    /// Parses a [`PlacementPolicy::label`] back.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "pack" => Some(PlacementPolicy::PackForPower),
            "spread" => Some(PlacementPolicy::SpreadForBandwidth),
            _ => None,
        }
    }
}

/// A device eligible to receive part of a placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The device.
    pub device: DeviceId,
    /// Allocation units it can still accept.
    pub free_aus: u32,
    /// Allocation units already resident (utilization key for packing).
    pub allocated_aus: u32,
}

/// One placement decision: `aus` allocation units on `device`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slice {
    /// Target device.
    pub device: DeviceId,
    /// Allocation units to carve there (always >= 1).
    pub aus: u32,
}

/// Plans where `aus` allocation units go under `policy`.
///
/// Deterministic in its inputs: ties break on the lower device id, so the
/// same candidate list always yields the same plan. Returns `None` when the
/// candidates' combined free capacity cannot hold the request (the caller
/// decides whether to wake parked devices and retry).
pub fn plan(policy: PlacementPolicy, candidates: &[Candidate], aus: u32) -> Option<Vec<Slice>> {
    if aus == 0 {
        return Some(Vec::new());
    }
    let total_free: u64 = candidates.iter().map(|c| u64::from(c.free_aus)).sum();
    if total_free < u64::from(aus) {
        return None;
    }
    match policy {
        PlacementPolicy::PackForPower => plan_pack(candidates, aus),
        PlacementPolicy::SpreadForBandwidth => plan_spread(candidates, aus),
    }
}

/// Pack: whole request on the busiest device that fits it; if none fits,
/// greedily fill busiest-first.
fn plan_pack(candidates: &[Candidate], aus: u32) -> Option<Vec<Slice>> {
    let mut by_busy: Vec<&Candidate> = candidates.iter().filter(|c| c.free_aus > 0).collect();
    // Busiest first; the id tie-break keeps the plan independent of the
    // caller's candidate order.
    by_busy.sort_by_key(|c| (core::cmp::Reverse(c.allocated_aus), c.device));
    if let Some(c) = by_busy.iter().find(|c| c.free_aus >= aus) {
        return Some(vec![Slice { device: c.device, aus }]);
    }
    let mut out = Vec::new();
    let mut remaining = aus;
    for c in by_busy {
        let take = c.free_aus.min(remaining);
        if take > 0 {
            out.push(Slice { device: c.device, aus: take });
            remaining -= take;
        }
        if remaining == 0 {
            return Some(out);
        }
    }
    None
}

/// Spread: hand out one allocation unit at a time to whichever candidate
/// has the most free capacity left, so the request stripes as evenly as the
/// free space allows.
fn plan_spread(candidates: &[Candidate], aus: u32) -> Option<Vec<Slice>> {
    let mut free: Vec<(DeviceId, u32, u32)> = candidates
        .iter()
        .filter(|c| c.free_aus > 0)
        .map(|c| (c.device, c.free_aus, 0u32))
        .collect();
    free.sort_by_key(|&(id, _, _)| id);
    let mut remaining = aus;
    while remaining > 0 {
        // Most free capacity wins; ties keep the earliest (lowest-id) slot.
        let mut best: Option<usize> = None;
        for (i, &(_, f, _)) in free.iter().enumerate() {
            if f > 0 && best.is_none_or(|b| f > free[b].1) {
                best = Some(i);
            }
        }
        let i = best?;
        free[i].1 -= 1;
        free[i].2 += 1;
        remaining -= 1;
    }
    Some(
        free.into_iter()
            .filter(|&(_, _, taken)| taken > 0)
            .map(|(device, _, taken)| Slice { device, aus: taken })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cand(id: u16, free: u32, allocated: u32) -> Candidate {
        Candidate { device: DeviceId(id), free_aus: free, allocated_aus: allocated }
    }

    #[test]
    fn pack_prefers_the_busiest_fitting_device() {
        let cs = [cand(0, 8, 0), cand(1, 3, 5), cand(2, 8, 2)];
        let plan = plan(PlacementPolicy::PackForPower, &cs, 3).unwrap();
        assert_eq!(plan, vec![Slice { device: DeviceId(1), aus: 3 }]);
    }

    #[test]
    fn pack_spills_busiest_first_when_nothing_fits_whole() {
        let cs = [cand(0, 2, 6), cand(1, 3, 1), cand(2, 2, 6)];
        let plan = plan(PlacementPolicy::PackForPower, &cs, 6).unwrap();
        assert_eq!(
            plan,
            vec![
                Slice { device: DeviceId(0), aus: 2 },
                Slice { device: DeviceId(2), aus: 2 },
                Slice { device: DeviceId(1), aus: 2 },
            ]
        );
    }

    #[test]
    fn spread_stripes_across_the_emptiest_devices() {
        let cs = [cand(0, 4, 4), cand(1, 8, 0), cand(2, 6, 2)];
        let plan = plan(PlacementPolicy::SpreadForBandwidth, &cs, 6).unwrap();
        // Most-free-first, one AU at a time: dev1 absorbs until it ties
        // dev2, then they alternate.
        let total: u32 = plan.iter().map(|s| s.aus).sum();
        assert_eq!(total, 6);
        let on = |id: u16| plan.iter().find(|s| s.device == DeviceId(id)).map_or(0, |s| s.aus);
        assert_eq!((on(0), on(1), on(2)), (0, 4, 2));
    }

    #[test]
    fn over_capacity_requests_are_rejected_not_truncated() {
        let cs = [cand(0, 2, 0), cand(1, 2, 0)];
        for policy in [PlacementPolicy::PackForPower, PlacementPolicy::SpreadForBandwidth] {
            assert!(plan(policy, &cs, 5).is_none(), "{}", policy.label());
            assert!(plan(policy, &cs, 4).is_some(), "{}", policy.label());
        }
    }

    #[test]
    fn labels_round_trip() {
        for policy in [PlacementPolicy::PackForPower, PlacementPolicy::SpreadForBandwidth] {
            assert_eq!(PlacementPolicy::parse(policy.label()), Some(policy));
        }
        assert_eq!(PlacementPolicy::parse("bogus"), None);
    }

    proptest! {
        /// Every policy respects per-device capacity, covers the request
        /// exactly, and never emits a slice below one allocation unit (the
        /// granularity floor: an AU is a whole number of segments).
        #[test]
        fn plans_respect_capacity_and_granularity(
            frees in proptest::collection::vec((0u32..20, 0u32..20), 1..8),
            aus in 0u32..64,
            pack in any::<bool>(),
        ) {
            let candidates: Vec<Candidate> = frees
                .iter()
                .enumerate()
                .map(|(i, &(free, allocated))| cand(i as u16, free, allocated))
                .collect();
            let policy =
                if pack { PlacementPolicy::PackForPower } else { PlacementPolicy::SpreadForBandwidth };
            let total_free: u64 = candidates.iter().map(|c| u64::from(c.free_aus)).sum();
            match plan(policy, &candidates, aus) {
                None => prop_assert!(u64::from(aus) > total_free, "fitting request rejected"),
                Some(slices) => {
                    let placed: u64 = slices.iter().map(|s| u64::from(s.aus)).sum();
                    prop_assert_eq!(placed, u64::from(aus), "request covered exactly");
                    for s in &slices {
                        prop_assert!(s.aus >= 1, "no sub-AU slices");
                        let c = candidates.iter().find(|c| c.device == s.device).unwrap();
                        prop_assert!(s.aus <= c.free_aus, "{} over capacity", s.device);
                    }
                    let mut ids: Vec<DeviceId> = slices.iter().map(|s| s.device).collect();
                    ids.sort_unstable();
                    ids.dedup();
                    prop_assert_eq!(ids.len(), slices.len(), "one slice per device");
                }
            }
        }

        /// Planning is deterministic in the candidate *set*: shuffling the
        /// input order never changes the plan.
        #[test]
        fn plans_are_input_order_independent(
            frees in proptest::collection::vec((1u32..12, 0u32..12), 2..6),
            aus in 1u32..24,
            pack in any::<bool>(),
        ) {
            let candidates: Vec<Candidate> = frees
                .iter()
                .enumerate()
                .map(|(i, &(free, allocated))| cand(i as u16, free, allocated))
                .collect();
            let mut reversed = candidates.clone();
            reversed.reverse();
            let policy =
                if pack { PlacementPolicy::PackForPower } else { PlacementPolicy::SpreadForBandwidth };
            prop_assert_eq!(plan(policy, &candidates, aus), plan(policy, &reversed, aus));
        }
    }
}
