//! # dtl-fault — deterministic fault injection for the DTL reproduction
//!
//! The paper's conclusion argues the DTL's indirection makes rank-level
//! *reliability* management (error-driven retirement) as transparent as its
//! power management. This crate supplies the adversary for exercising that
//! claim: seeded, fully deterministic schedules of
//!
//! * **correctable ECC errors** — per-rank Poisson background noise;
//! * **error storms** — a burst of (mostly uncorrectable) errors pinned to
//!   one victim rank, the canonical precursor of rank death;
//! * **CXL link CRC corruption** — transient flit corruption the link-level
//!   retry machinery must absorb;
//! * **migration interruptions** — an in-flight segment copy/swap cut off
//!   mid-transfer, exercising the crash-consistent replay/rollback paths.
//!
//! A [`FaultPlan`] is generated once from a [`FaultPlanConfig`] (same seed →
//! identical event list, bit-for-bit) and consumed through a
//! [`FaultInjector`], which releases events in timestamp order as simulated
//! time advances. The plan knows nothing about the device: the harness maps
//! each [`FaultKind`] onto the corresponding `DtlDevice` / `RemoteMemory`
//! injection hook.
//!
//! ```
//! use dtl_dram::Picos;
//! use dtl_fault::{FaultKind, FaultPlanConfig};
//!
//! let cfg = FaultPlanConfig {
//!     correctable_per_rank_per_sec: 2.0,
//!     ..FaultPlanConfig::quiet(42, Picos::from_secs(10), 2, 4)
//! };
//! let plan = cfg.generate();
//! assert_eq!(plan, cfg.generate(), "same seed, same plan");
//! let mut inj = plan.injector();
//! let early = inj.pop_due(Picos::from_secs(5));
//! assert!(early.iter().all(|e| e.at <= Picos::from_secs(5)));
//! assert!(early.iter().all(|e| matches!(e.kind, FaultKind::CorrectableEcc { .. })));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod pool;

pub use pool::{
    PoolFaultEvent, PoolFaultInjector, PoolFaultKind, PoolFaultPlan, PoolFaultPlanConfig,
};

use std::sync::Arc;

use dtl_dram::Picos;
use dtl_telemetry::{Counter, FaultKindId, MetricsRegistry};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A correctable (single-bit, ECC-fixed) DRAM error in one rank.
    CorrectableEcc {
        /// Channel of the faulting rank.
        channel: u32,
        /// Rank within the channel.
        rank: u32,
    },
    /// An uncorrectable (multi-bit) DRAM error in one rank: data in the
    /// affected segment is lost and must be reported to the host.
    UncorrectableEcc {
        /// Channel of the faulting rank.
        channel: u32,
        /// Rank within the channel.
        rank: u32,
    },
    /// CRC corruption of flits on the CXL link: the next transaction is
    /// corrupted `burst` consecutive times before transferring cleanly.
    LinkCrc {
        /// Consecutive corrupted transfer attempts.
        burst: u32,
    },
    /// The in-flight migration of one channel is cut off mid-transfer
    /// (controller reset, queue flush): partial data must be discarded and
    /// the job replayed or rolled back.
    MigrationInterrupt {
        /// Channel whose migration slot is interrupted.
        channel: u32,
    },
}

impl FaultKind {
    /// The telemetry mirror of this fault kind.
    pub fn telemetry_id(&self) -> FaultKindId {
        match self {
            FaultKind::CorrectableEcc { .. } => FaultKindId::CorrectableEcc,
            FaultKind::UncorrectableEcc { .. } => FaultKindId::UncorrectableEcc,
            FaultKind::LinkCrc { .. } => FaultKindId::LinkCrc,
            FaultKind::MigrationInterrupt { .. } => FaultKindId::MigrationInterrupt,
        }
    }

    /// Stable tie-break key for events at the same instant.
    fn sort_key(&self) -> (u8, u32, u32) {
        match *self {
            FaultKind::CorrectableEcc { channel, rank } => (0, channel, rank),
            FaultKind::UncorrectableEcc { channel, rank } => (1, channel, rank),
            FaultKind::LinkCrc { burst } => (2, burst, 0),
            FaultKind::MigrationInterrupt { channel } => (3, channel, 0),
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault strikes.
    pub at: Picos,
    /// What happens.
    pub kind: FaultKind,
}

/// An error storm: a dense burst of errors pinned to one victim rank —
/// the classic signature of a dying rank that should drive the health
/// state machine through `Degraded → Draining → Retired`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StormConfig {
    /// Victim channel.
    pub channel: u32,
    /// Victim rank within the channel.
    pub rank: u32,
    /// When the storm starts.
    pub start: Picos,
    /// Number of error events in the storm.
    pub events: u32,
    /// Spacing between consecutive storm events.
    pub spacing: Picos,
    /// Fraction of storm events that are merely correctable (the rest are
    /// uncorrectable).
    pub correctable_ratio: f64,
}

/// Parameters of a deterministic fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlanConfig {
    /// Seed: same seed (and parameters), same plan.
    pub seed: u64,
    /// Plan horizon; no event is scheduled at or after this time.
    pub duration: Picos,
    /// Device channels.
    pub channels: u32,
    /// Ranks per channel.
    pub ranks_per_channel: u32,
    /// Poisson rate of background correctable errors, per rank per second.
    pub correctable_per_rank_per_sec: f64,
    /// Poisson rate of link CRC corruption events per second.
    pub link_crc_per_sec: f64,
    /// Each link CRC event corrupts 1..=`link_crc_max_burst` consecutive
    /// transfer attempts (uniform).
    pub link_crc_max_burst: u32,
    /// Migration interruptions, uniformly spread over the horizon on
    /// uniformly random channels.
    pub migration_interrupts: u32,
    /// Optional error storm on one victim rank.
    pub storm: Option<StormConfig>,
}

impl FaultPlanConfig {
    /// A plan with every fault source switched off — the fault-free
    /// baseline, and the base to override individual knobs from.
    pub fn quiet(seed: u64, duration: Picos, channels: u32, ranks_per_channel: u32) -> Self {
        FaultPlanConfig {
            seed,
            duration,
            channels,
            ranks_per_channel,
            correctable_per_rank_per_sec: 0.0,
            link_crc_per_sec: 0.0,
            link_crc_max_burst: 1,
            migration_interrupts: 0,
            storm: None,
        }
    }

    /// Generates the plan: every fault source is expanded into a single
    /// time-sorted event list. Deterministic in `self`.
    pub fn generate(&self) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0xfa17_fa17_fa17_fa17);
        let mut events: Vec<FaultEvent> = Vec::new();
        // Background correctable noise: an independent Poisson process per
        // rank (exponential inter-arrival times).
        if self.correctable_per_rank_per_sec > 0.0 {
            for channel in 0..self.channels {
                for rank in 0..self.ranks_per_channel {
                    let mut t = 0.0f64;
                    loop {
                        t += exponential(&mut rng, self.correctable_per_rank_per_sec);
                        let at = Picos::from_ps((t * 1e12) as u64);
                        if at >= self.duration {
                            break;
                        }
                        events.push(FaultEvent {
                            at,
                            kind: FaultKind::CorrectableEcc { channel, rank },
                        });
                    }
                }
            }
        }
        // Link CRC corruption: one Poisson process for the whole link.
        if self.link_crc_per_sec > 0.0 {
            let mut t = 0.0f64;
            loop {
                t += exponential(&mut rng, self.link_crc_per_sec);
                let at = Picos::from_ps((t * 1e12) as u64);
                if at >= self.duration {
                    break;
                }
                let burst = rng.gen_range(1..=self.link_crc_max_burst.max(1));
                events.push(FaultEvent { at, kind: FaultKind::LinkCrc { burst } });
            }
        }
        // Migration interruptions: uniform times, uniform channels.
        for _ in 0..self.migration_interrupts {
            let at = Picos::from_ps(rng.gen_range(0..self.duration.as_ps().max(1)));
            let channel = rng.gen_range(0..self.channels.max(1));
            events.push(FaultEvent { at, kind: FaultKind::MigrationInterrupt { channel } });
        }
        // The storm, pinned to its victim.
        if let Some(storm) = self.storm {
            for k in 0..storm.events {
                let at = storm.start + storm.spacing * u64::from(k);
                if at >= self.duration {
                    break;
                }
                let kind = if rng.gen_bool(storm.correctable_ratio.clamp(0.0, 1.0)) {
                    FaultKind::CorrectableEcc { channel: storm.channel, rank: storm.rank }
                } else {
                    FaultKind::UncorrectableEcc { channel: storm.channel, rank: storm.rank }
                };
                events.push(FaultEvent { at, kind });
            }
        }
        events.sort_by_key(|e| (e.at, e.kind.sort_key()));
        FaultPlan { events }
    }
}

/// Exponential inter-arrival time (seconds) for a Poisson process of
/// `rate` events per second.
fn exponential(rng: &mut SmallRng, rate: f64) -> f64 {
    // 1 - u in (0, 1] avoids ln(0).
    let u: f64 = rng.gen();
    -(1.0 - u).ln() / rate
}

/// A generated, time-sorted fault schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The scheduled events in timestamp order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of a given kind-predicate (convenience for assertions).
    pub fn count_where(&self, mut pred: impl FnMut(&FaultKind) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }

    /// A consuming cursor over the plan.
    pub fn injector(&self) -> FaultInjector {
        FaultInjector { events: self.events.clone(), next: 0, released: None }
    }
}

/// Releases a [`FaultPlan`]'s events as simulated time advances.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    events: Vec<FaultEvent>,
    next: usize,
    /// Pre-resolved `fault.released.<kind>` counters, indexed by the
    /// `sort_key` discriminant; `None` until metrics are attached.
    released: Option<[Arc<Counter>; 4]>,
}

impl FaultInjector {
    /// Attaches a metrics registry: every released event bumps its
    /// `fault.released.<kind>` counter. Handles are resolved here once so
    /// [`FaultInjector::pop_due`] never touches the registry lock.
    pub fn set_metrics(&mut self, registry: &MetricsRegistry) {
        self.released = Some([
            registry.counter(&format!("fault.released.{}", FaultKindId::CorrectableEcc.label())),
            registry.counter(&format!("fault.released.{}", FaultKindId::UncorrectableEcc.label())),
            registry.counter(&format!("fault.released.{}", FaultKindId::LinkCrc.label())),
            registry
                .counter(&format!("fault.released.{}", FaultKindId::MigrationInterrupt.label())),
        ]);
    }

    /// Returns (and consumes) every event scheduled at or before `now`.
    /// `now` must be monotonic across calls.
    pub fn pop_due(&mut self, now: Picos) -> Vec<FaultEvent> {
        let start = self.next;
        while self.next < self.events.len() && self.events[self.next].at <= now {
            self.next += 1;
        }
        if let Some(counters) = &self.released {
            for ev in &self.events[start..self.next] {
                counters[ev.kind.sort_key().0 as usize].inc();
            }
        }
        self.events[start..self.next].to_vec()
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_next_at(&self) -> Option<Picos> {
        self.events.get(self.next).map(|e| e.at)
    }

    /// Events not yet released.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn base(seed: u64) -> FaultPlanConfig {
        FaultPlanConfig::quiet(seed, Picos::from_secs(60), 2, 4)
    }

    #[test]
    fn quiet_plan_is_empty() {
        assert!(base(1).generate().is_empty());
    }

    #[test]
    fn released_counters_track_pop_due() {
        let cfg = FaultPlanConfig {
            correctable_per_rank_per_sec: 2.0,
            link_crc_per_sec: 1.0,
            migration_interrupts: 5,
            ..base(11)
        };
        let plan = cfg.generate();
        let registry = MetricsRegistry::new();
        let mut inj = plan.injector();
        inj.set_metrics(&registry);
        // Drain in two steps to cover partial releases.
        inj.pop_due(cfg.duration / 2);
        inj.pop_due(cfg.duration);
        assert_eq!(inj.remaining(), 0);
        for kind in [
            FaultKindId::CorrectableEcc,
            FaultKindId::UncorrectableEcc,
            FaultKindId::LinkCrc,
            FaultKindId::MigrationInterrupt,
        ] {
            let counted = registry.counter(&format!("fault.released.{}", kind.label())).get();
            let planned = plan.count_where(|k| k.telemetry_id() == kind) as u64;
            assert_eq!(counted, planned, "{}", kind.label());
        }
    }

    #[test]
    fn same_seed_same_plan() {
        let cfg = FaultPlanConfig {
            correctable_per_rank_per_sec: 0.5,
            link_crc_per_sec: 0.2,
            link_crc_max_burst: 5,
            migration_interrupts: 7,
            storm: Some(StormConfig {
                channel: 1,
                rank: 2,
                start: Picos::from_secs(10),
                events: 20,
                spacing: Picos::from_ms(100),
                correctable_ratio: 0.3,
            }),
            ..base(99)
        };
        assert_eq!(cfg.generate(), cfg.generate());
        let other = FaultPlanConfig { seed: 100, ..cfg };
        assert_ne!(cfg.generate(), other.generate(), "different seed diverges");
    }

    #[test]
    fn events_are_sorted_and_within_horizon() {
        let cfg = FaultPlanConfig {
            correctable_per_rank_per_sec: 2.0,
            link_crc_per_sec: 1.0,
            migration_interrupts: 10,
            ..base(7)
        };
        let plan = cfg.generate();
        assert!(!plan.is_empty());
        for w in plan.events().windows(2) {
            assert!(w[0].at <= w[1].at, "sorted");
        }
        assert!(plan.events().iter().all(|e| e.at < cfg.duration));
    }

    #[test]
    fn poisson_rate_is_roughly_respected() {
        // 8 ranks x 60 s x 2/s = 960 expected events; allow wide slack.
        let cfg = FaultPlanConfig { correctable_per_rank_per_sec: 2.0, ..base(3) };
        let n = cfg.generate().len() as f64;
        assert!((700.0..1200.0).contains(&n), "got {n}");
    }

    #[test]
    fn storm_pins_victim_rank() {
        let storm = StormConfig {
            channel: 0,
            rank: 3,
            start: Picos::from_secs(5),
            events: 50,
            spacing: Picos::from_ms(10),
            correctable_ratio: 0.5,
        };
        let cfg = FaultPlanConfig { storm: Some(storm), ..base(11) };
        let plan = cfg.generate();
        assert_eq!(plan.len(), 50);
        let on_victim = plan.count_where(|k| {
            matches!(
                *k,
                FaultKind::CorrectableEcc { channel: 0, rank: 3 }
                    | FaultKind::UncorrectableEcc { channel: 0, rank: 3 }
            )
        });
        assert_eq!(on_victim, 50);
        let uncorrectable = plan.count_where(|k| matches!(k, FaultKind::UncorrectableEcc { .. }));
        assert!(uncorrectable > 0, "a mixed storm has uncorrectable events");
    }

    #[test]
    fn injector_releases_in_time_order() {
        let cfg = FaultPlanConfig { correctable_per_rank_per_sec: 1.0, ..base(5) };
        let plan = cfg.generate();
        let mut inj = plan.injector();
        let mut seen = 0;
        let mut t = Picos::ZERO;
        while t < cfg.duration {
            t += Picos::from_secs(1);
            for ev in inj.pop_due(t) {
                assert!(ev.at <= t);
                seen += 1;
            }
            if let Some(next) = inj.peek_next_at() {
                assert!(next > t);
            }
        }
        assert_eq!(seen, plan.len());
        assert_eq!(inj.remaining(), 0);
    }

    proptest! {
        #[test]
        fn any_seed_generates_a_valid_plan(seed in any::<u64>(), rate in 0.1f64..4.0) {
            let cfg = FaultPlanConfig {
                correctable_per_rank_per_sec: rate,
                link_crc_per_sec: rate / 2.0,
                link_crc_max_burst: 4,
                migration_interrupts: 5,
                ..FaultPlanConfig::quiet(seed, Picos::from_secs(20), 2, 2)
            };
            let plan = cfg.generate();
            let again = cfg.generate();
            prop_assert_eq!(plan.events(), again.events());
            for w in plan.events().windows(2) {
                prop_assert!(w[0].at <= w[1].at);
            }
            for e in plan.events() {
                prop_assert!(e.at < cfg.duration);
                match e.kind {
                    FaultKind::CorrectableEcc { channel, rank }
                    | FaultKind::UncorrectableEcc { channel, rank } => {
                        prop_assert!(channel < 2 && rank < 2);
                    }
                    FaultKind::LinkCrc { burst } => prop_assert!((1..=4).contains(&burst)),
                    FaultKind::MigrationInterrupt { channel } => prop_assert!(channel < 2),
                }
            }
        }
    }
}
