//! Pool-level fault plans: per-device fault schedules plus whole-device
//! loss, for exercising `dtl-pool` failover.
//!
//! A [`PoolFaultPlanConfig`] stamps one [`FaultPlanConfig`]-shaped schedule
//! per member device (each device gets its own derived seed, so plans do not
//! correlate across devices) and overlays `device_retirements` whole-device
//! losses at deterministic times. The plan knows nothing about the pool: the
//! harness maps [`PoolFaultKind::Device`] onto the member device's injection
//! hooks and [`PoolFaultKind::RetireDevice`] onto the pool's
//! `retire_device` API.

use dtl_dram::Picos;
use serde::{Deserialize, Serialize};

use crate::{FaultEvent, FaultKind, FaultPlanConfig};

/// One kind of pool-scoped fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PoolFaultKind {
    /// A device-local fault on one member device.
    Device {
        /// Index of the member device in the pool.
        device: u16,
        /// The device-local fault.
        kind: FaultKind,
    },
    /// A whole device is lost: the operator (or the pool's health policy)
    /// retires it and every VM shard on it must be evacuated.
    RetireDevice {
        /// Index of the member device in the pool.
        device: u16,
    },
}

impl PoolFaultKind {
    /// Stable tie-break key for events at the same instant: retirements
    /// sort after device-local faults on the same device, so a fault and a
    /// retirement scheduled at the same tick strike the live device first.
    fn sort_key(&self) -> (u16, u8, (u8, u32, u32)) {
        match *self {
            PoolFaultKind::Device { device, kind } => (device, 0, kind.sort_key()),
            PoolFaultKind::RetireDevice { device } => (device, 1, (0, 0, 0)),
        }
    }
}

/// One scheduled pool-scoped fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolFaultEvent {
    /// When the fault strikes.
    pub at: Picos,
    /// What happens.
    pub kind: PoolFaultKind,
}

/// Parameters of a deterministic pool-level fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolFaultPlanConfig {
    /// Seed: same seed (and parameters), same plan.
    pub seed: u64,
    /// Member devices in the pool.
    pub devices: u16,
    /// Template for each device's local schedule. Its `seed` is replaced by
    /// a per-device derivation of [`PoolFaultPlanConfig::seed`]; its
    /// geometry and rates apply to every device.
    pub per_device: FaultPlanConfig,
    /// Whole-device losses, spread evenly over the middle half of the
    /// horizon on distinct devices (capped at `devices`).
    pub device_retirements: u16,
}

impl PoolFaultPlanConfig {
    /// A pool plan with every fault source switched off.
    pub fn quiet(seed: u64, devices: u16, per_device: FaultPlanConfig) -> Self {
        PoolFaultPlanConfig { seed, devices, per_device, device_retirements: 0 }
    }

    /// The per-device seed: a SplitMix64 scramble of the pool seed and the
    /// device index, so per-device plans are independent but reproducible.
    fn device_seed(&self, device: u16) -> u64 {
        let mut z =
            self.seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(device) + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Generates the plan: per-device schedules plus retirements, merged
    /// into a single time-sorted list. Deterministic in `self`.
    pub fn generate(&self) -> PoolFaultPlan {
        let mut events: Vec<PoolFaultEvent> = Vec::new();
        for device in 0..self.devices {
            let cfg = FaultPlanConfig { seed: self.device_seed(device), ..self.per_device };
            for FaultEvent { at, kind } in cfg.generate().events() {
                events.push(PoolFaultEvent {
                    at: *at,
                    kind: PoolFaultKind::Device { device, kind: *kind },
                });
            }
        }
        // Retirements: distinct victims in a deterministic shuffle-free
        // order (stride through the device list from a seed-derived start),
        // struck at evenly spaced times across the middle half of the
        // horizon so evacuation always has runway on both sides.
        let retirements = self.device_retirements.min(self.devices);
        if retirements > 0 && self.devices > 0 {
            let start_dev = (self.device_seed(u16::MAX) % u64::from(self.devices)) as u16;
            let lo = self.per_device.duration / 4;
            let hi = self.per_device.duration - lo;
            let span = hi - lo;
            for k in 0..retirements {
                let device = (start_dev + k) % self.devices;
                let at = lo + span * u64::from(k) / u64::from(retirements);
                events.push(PoolFaultEvent { at, kind: PoolFaultKind::RetireDevice { device } });
            }
        }
        events.sort_by_key(|e| (e.at, e.kind.sort_key()));
        PoolFaultPlan { events }
    }
}

/// A generated, time-sorted pool-level fault schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolFaultPlan {
    events: Vec<PoolFaultEvent>,
}

impl PoolFaultPlan {
    /// The scheduled events in timestamp order.
    pub fn events(&self) -> &[PoolFaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events matching a kind-predicate (convenience for assertions).
    pub fn count_where(&self, mut pred: impl FnMut(&PoolFaultKind) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }

    /// A consuming cursor over the plan.
    pub fn injector(&self) -> PoolFaultInjector {
        PoolFaultInjector { events: self.events.clone(), next: 0 }
    }
}

/// Releases a [`PoolFaultPlan`]'s events as simulated time advances.
#[derive(Debug, Clone)]
pub struct PoolFaultInjector {
    events: Vec<PoolFaultEvent>,
    next: usize,
}

impl PoolFaultInjector {
    /// Returns (and consumes) every event scheduled at or before `now`.
    /// `now` must be monotonic across calls.
    pub fn pop_due(&mut self, now: Picos) -> Vec<PoolFaultEvent> {
        let start = self.next;
        while self.next < self.events.len() && self.events[self.next].at <= now {
            self.next += 1;
        }
        self.events[start..self.next].to_vec()
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_next_at(&self) -> Option<Picos> {
        self.events.get(self.next).map(|e| e.at)
    }

    /// Events not yet released.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn per_device(seed: u64) -> FaultPlanConfig {
        FaultPlanConfig {
            correctable_per_rank_per_sec: 1.0,
            link_crc_per_sec: 0.5,
            link_crc_max_burst: 3,
            migration_interrupts: 2,
            ..FaultPlanConfig::quiet(seed, Picos::from_secs(40), 2, 4)
        }
    }

    #[test]
    fn same_seed_same_pool_plan() {
        let cfg = PoolFaultPlanConfig {
            device_retirements: 2,
            ..PoolFaultPlanConfig::quiet(7, 4, per_device(0))
        };
        assert_eq!(cfg.generate(), cfg.generate());
        let other = PoolFaultPlanConfig { seed: 8, ..cfg };
        assert_ne!(cfg.generate(), other.generate());
    }

    #[test]
    fn devices_get_independent_schedules() {
        let cfg = PoolFaultPlanConfig::quiet(3, 2, per_device(0));
        let plan = cfg.generate();
        let dev = |d: u16| {
            plan.events()
                .iter()
                .filter_map(|e| match e.kind {
                    PoolFaultKind::Device { device, kind } if device == d => Some((e.at, kind)),
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        let (a, b) = (dev(0), dev(1));
        assert!(!a.is_empty() && !b.is_empty());
        assert_ne!(a, b, "per-device seeds must decorrelate the schedules");
    }

    #[test]
    fn retirements_hit_distinct_devices_mid_horizon() {
        let cfg = PoolFaultPlanConfig {
            device_retirements: 3,
            ..PoolFaultPlanConfig::quiet(
                11,
                4,
                FaultPlanConfig::quiet(0, Picos::from_secs(40), 2, 4),
            )
        };
        let plan = cfg.generate();
        let mut victims: Vec<u16> = plan
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                PoolFaultKind::RetireDevice { device } => {
                    assert!(e.at >= cfg.per_device.duration / 4);
                    assert!(e.at < cfg.per_device.duration);
                    Some(device)
                }
                _ => None,
            })
            .collect();
        assert_eq!(victims.len(), 3);
        victims.sort_unstable();
        victims.dedup();
        assert_eq!(victims.len(), 3, "distinct victims");
    }

    #[test]
    fn injector_releases_in_time_order() {
        let cfg = PoolFaultPlanConfig {
            device_retirements: 1,
            ..PoolFaultPlanConfig::quiet(5, 3, per_device(0))
        };
        let plan = cfg.generate();
        for w in plan.events().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        let mut inj = plan.injector();
        let mut seen = 0;
        let mut t = Picos::ZERO;
        while t < cfg.per_device.duration {
            t += Picos::from_secs(1);
            for ev in inj.pop_due(t) {
                assert!(ev.at <= t);
                seen += 1;
            }
        }
        assert_eq!(seen, plan.len());
        assert_eq!(inj.remaining(), 0);
    }
}
