//! Property tests: the set-associative cache against a reference model,
//! and hierarchy conservation laws.

use std::collections::HashMap;

use dtl_cache::{CacheHierarchy, CacheLevelConfig, HierarchyConfig, SetAssocCache};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A 1-way cache behaves exactly like a direct-mapped reference model.
    #[test]
    fn direct_mapped_matches_reference(ops in prop::collection::vec(
        (0u64..4096, any::<bool>()), 1..400
    )) {
        let cfg = CacheLevelConfig { capacity_bytes: 8 * 64, ways: 1, line_bytes: 64 };
        let mut cache = SetAssocCache::new(cfg);
        let sets = cfg.sets();
        let mut model: HashMap<u64, (u64, bool)> = HashMap::new(); // set -> (line, dirty)
        for (line, w) in ops {
            let addr = line * 64;
            let set = line % sets;
            let r = cache.access(addr, w);
            match model.get(&set) {
                Some((resident, dirty)) if *resident == line => {
                    prop_assert!(r.hit);
                    prop_assert_eq!(r.writeback, None);
                    model.insert(set, (line, *dirty || w));
                }
                Some((resident, dirty)) => {
                    prop_assert!(!r.hit);
                    let expect_wb = if *dirty { Some(resident * 64) } else { None };
                    prop_assert_eq!(r.writeback, expect_wb);
                    model.insert(set, (line, w));
                }
                None => {
                    prop_assert!(!r.hit);
                    prop_assert_eq!(r.writeback, None);
                    model.insert(set, (line, w));
                }
            }
        }
    }

    /// Dirty-line conservation: every written line is either still resident
    /// (probe hits) or was written back exactly once.
    #[test]
    fn dirty_lines_are_never_lost(lines in prop::collection::vec(0u64..512, 1..300)) {
        let cfg = CacheLevelConfig { capacity_bytes: 16 * 64, ways: 2, line_bytes: 64 };
        let mut cache = SetAssocCache::new(cfg);
        let mut written = std::collections::HashSet::new();
        let mut written_back = std::collections::HashSet::new();
        for line in lines {
            let addr = line * 64;
            let r = cache.access(addr, true);
            written.insert(addr);
            if let Some(wb) = r.writeback {
                prop_assert!(written.contains(&wb), "writeback of a never-written line");
                prop_assert!(!written_back.contains(&wb), "double writeback without rewrite");
                written_back.insert(wb);
                written.remove(&wb);
            }
            written_back.remove(&addr); // re-written lines may write back again
        }
        // Everything still "written" must be resident.
        for addr in written {
            prop_assert!(cache.probe(addr), "written line {addr:#x} vanished");
        }
    }

    /// The hierarchy's post-cache read count never exceeds the demand count
    /// and equals it for a cache-busting stride.
    #[test]
    fn hierarchy_filter_bounds(lines in prop::collection::vec(0u64..100_000, 1..500)) {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny());
        let mut post_reads = 0u64;
        for line in &lines {
            for a in h.access(line * 64, false) {
                if !a.is_write {
                    post_reads += 1;
                }
            }
        }
        prop_assert!(post_reads <= lines.len() as u64);
        let s = h.stats();
        prop_assert_eq!(s.accesses, lines.len() as u64);
        prop_assert_eq!(s.llc_misses, post_reads);
        prop_assert!(s.l1_misses >= s.l2_misses);
        prop_assert!(s.l2_misses >= s.llc_misses);
    }
}
