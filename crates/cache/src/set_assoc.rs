//! A generic set-associative, write-back, write-allocate cache with LRU
//! replacement.

use serde::{Deserialize, Serialize};

/// Configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheLevelConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (64 throughout the reproduction).
    pub line_bytes: u64,
}

impl CacheLevelConfig {
    /// Number of sets implied by the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the parameters do not divide into a whole power-of-two set
    /// count.
    pub fn sets(&self) -> u64 {
        let sets = self.capacity_bytes / (u64::from(self.ways) * self.line_bytes);
        assert!(sets > 0 && sets.is_power_of_two(), "set count {sets} must be a power of two");
        sets
    }
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the line was present.
    pub hit: bool,
    /// Line address (byte address of line start) of a dirty line evicted by
    /// the fill, if any.
    pub writeback: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Larger = more recently used.
    lru: u64,
}

/// One level of set-associative cache. Addresses are byte addresses; the
/// cache operates on aligned lines internally.
///
/// # Examples
///
/// ```
/// use dtl_cache::{CacheLevelConfig, SetAssocCache};
///
/// let mut c = SetAssocCache::new(CacheLevelConfig {
///     capacity_bytes: 32 * 1024,
///     ways: 8,
///     line_bytes: 64,
/// });
/// assert!(!c.access(0x1000, false).hit); // cold miss
/// assert!(c.access(0x1000, false).hit);  // now resident
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheLevelConfig,
    sets: u64,
    ways: Vec<Way>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Builds an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not yield a power-of-two set count.
    pub fn new(config: CacheLevelConfig) -> Self {
        let sets = config.sets();
        SetAssocCache {
            config,
            sets,
            ways: vec![
                Way { tag: 0, valid: false, dirty: false, lru: 0 };
                (sets * u64::from(config.ways)) as usize
            ],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> CacheLevelConfig {
        self.config
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio over all accesses so far (0 if none).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    #[inline]
    fn line(&self, addr: u64) -> u64 {
        addr / self.config.line_bytes
    }

    #[inline]
    fn set_of(&self, line: u64) -> u64 {
        line & (self.sets - 1)
    }

    #[inline]
    fn tag_of(&self, line: u64) -> u64 {
        line >> self.sets.trailing_zeros()
    }

    fn set_slice(&mut self, set: u64) -> &mut [Way] {
        let w = self.config.ways as usize;
        let start = set as usize * w;
        &mut self.ways[start..start + w]
    }

    /// Accesses `addr`; on a miss the line is filled (write-allocate) and
    /// the victim, if dirty, is reported for writeback.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessResult {
        let line = self.line(addr);
        let set = self.set_of(line);
        let tag = self.tag_of(line);
        self.tick += 1;
        let tick = self.tick;
        let sets = self.sets;
        let line_bytes = self.config.line_bytes;
        let ways = self.set_slice(set);
        // Hit path.
        for w in ways.iter_mut() {
            if w.valid && w.tag == tag {
                w.lru = tick;
                w.dirty |= is_write;
                self.hits += 1;
                return AccessResult { hit: true, writeback: None };
            }
        }
        // Miss: pick invalid way or LRU victim.
        let victim = ways
            .iter_mut()
            .min_by_key(|w| if w.valid { w.lru + 1 } else { 0 })
            .expect("ways is non-empty");
        let writeback = if victim.valid && victim.dirty {
            // Reconstruct the victim's byte address.
            let vline = (victim.tag << sets.trailing_zeros()) | set;
            Some(vline * line_bytes)
        } else {
            None
        };
        victim.tag = tag;
        victim.valid = true;
        victim.dirty = is_write;
        victim.lru = tick;
        self.misses += 1;
        AccessResult { hit: false, writeback }
    }

    /// Looks up without modifying state (no LRU update, no fill).
    pub fn probe(&self, addr: u64) -> bool {
        let line = self.line(addr);
        let set = self.set_of(line);
        let tag = self.tag_of(line);
        let w = self.config.ways as usize;
        let start = set as usize * w;
        self.ways[start..start + w].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Invalidates a line if present; returns whether it was dirty.
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let line = self.line(addr);
        let set = self.set_of(line);
        let tag = self.tag_of(line);
        let ways = self.set_slice(set);
        for w in ways.iter_mut() {
            if w.valid && w.tag == tag {
                w.valid = false;
                return Some(w.dirty);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways x 64 B = 512 B.
        SetAssocCache::new(CacheLevelConfig { capacity_bytes: 512, ways: 2, line_bytes: 64 })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0, false).hit);
        assert!(c.access(0, false).hit);
        assert!(c.access(63, false).hit, "same line");
        assert!(!c.access(64, false).hit, "next line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 lines: line addresses with set bits == 0: 0, 256, 512 ...
        c.access(0, false);
        c.access(256, false);
        c.access(0, false); // touch 0 so 256 is LRU
        let r = c.access(512, false); // evicts 256 (clean)
        assert!(!r.hit);
        assert_eq!(r.writeback, None);
        assert!(c.probe(0));
        assert!(!c.probe(256));
        assert!(c.probe(512));
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = tiny();
        c.access(0, true); // dirty
        c.access(256, false);
        let r = c.access(512, false); // evicts 0 (LRU, dirty)
        assert_eq!(r.writeback, Some(0));
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, true); // now dirty via hit
        c.access(256, false);
        let r = c.access(512, false);
        assert_eq!(r.writeback, Some(0));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.access(0, true);
        assert_eq!(c.invalidate(0), Some(true));
        assert_eq!(c.invalidate(0), None);
        assert!(!c.probe(0));
    }

    #[test]
    fn miss_ratio_math() {
        let mut c = tiny();
        assert_eq!(c.miss_ratio(), 0.0);
        c.access(0, false);
        c.access(0, false);
        assert!((c.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sets_computation_and_validation() {
        let cfg = CacheLevelConfig { capacity_bytes: 32 * 1024, ways: 8, line_bytes: 64 };
        assert_eq!(cfg.sets(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let cfg = CacheLevelConfig { capacity_bytes: 3 * 64, ways: 1, line_bytes: 64 };
        let _ = SetAssocCache::new(cfg);
    }
}
