//! The three-level host cache hierarchy of the paper's trace-driven setup
//! (Table 3): 32 KB L1-d, 1 MB L2, 8 MB LLC, all LRU, 64 B lines.
//!
//! Feeding a virtual/physical address stream through [`CacheHierarchy`]
//! yields the **post-cache** stream: LLC miss fills (reads) and LLC dirty
//! evictions (writes) — exactly what the DTL device observes over CXL.

use serde::{Deserialize, Serialize};

use crate::set_assoc::{CacheLevelConfig, SetAssocCache};

/// Post-cache memory access emitted by the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryAccess {
    /// Byte address (line-aligned).
    pub addr: u64,
    /// `true` for a writeback, `false` for a demand fill.
    pub is_write: bool,
}

/// Configuration of the full hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// First-level data cache.
    pub l1d: CacheLevelConfig,
    /// Second-level cache.
    pub l2: CacheLevelConfig,
    /// Last-level cache.
    pub llc: CacheLevelConfig,
}

impl HierarchyConfig {
    /// Table 3 of the paper: 32 KB/8-way L1-d, 1 MB/8-way L2, 8 MB/16-way
    /// LLC, 64 B lines, LRU.
    pub fn paper_table3() -> Self {
        HierarchyConfig {
            l1d: CacheLevelConfig { capacity_bytes: 32 << 10, ways: 8, line_bytes: 64 },
            l2: CacheLevelConfig { capacity_bytes: 1 << 20, ways: 8, line_bytes: 64 },
            llc: CacheLevelConfig { capacity_bytes: 8 << 20, ways: 16, line_bytes: 64 },
        }
    }

    /// A scaled-down hierarchy for fast tests (1/64 of Table 3).
    pub fn tiny() -> Self {
        HierarchyConfig {
            l1d: CacheLevelConfig { capacity_bytes: 1 << 10, ways: 2, line_bytes: 64 },
            l2: CacheLevelConfig { capacity_bytes: 16 << 10, ways: 4, line_bytes: 64 },
            llc: CacheLevelConfig { capacity_bytes: 128 << 10, ways: 8, line_bytes: 64 },
        }
    }
}

/// Per-level hit/miss statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// Demand accesses observed at L1.
    pub accesses: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// LLC misses (post-cache demand reads).
    pub llc_misses: u64,
    /// Writebacks emitted to memory.
    pub memory_writebacks: u64,
}

impl HierarchyStats {
    /// LLC misses per kilo-instruction given a retired instruction count.
    pub fn llc_mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.llc_misses as f64 * 1000.0 / instructions as f64
        }
    }

    /// Memory accesses (misses + writebacks) per kilo-instruction.
    pub fn mapki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            (self.llc_misses + self.memory_writebacks) as f64 * 1000.0 / instructions as f64
        }
    }
}

/// A non-inclusive, write-back, write-allocate L1→L2→LLC hierarchy.
///
/// # Examples
///
/// ```
/// use dtl_cache::{CacheHierarchy, HierarchyConfig};
///
/// let mut h = CacheHierarchy::new(HierarchyConfig::tiny());
/// let post = h.access(0x4000, false);
/// assert_eq!(post.len(), 1); // cold miss reaches memory
/// assert!(h.access(0x4000, false).is_empty()); // now cached
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1d: SetAssocCache,
    l2: SetAssocCache,
    llc: SetAssocCache,
    stats: HierarchyStats,
}

impl CacheHierarchy {
    /// Builds an empty hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        CacheHierarchy {
            l1d: SetAssocCache::new(config.l1d),
            l2: SetAssocCache::new(config.l2),
            llc: SetAssocCache::new(config.llc),
            stats: HierarchyStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// Miss ratios (L1, L2, LLC) observed so far.
    pub fn miss_ratios(&self) -> (f64, f64, f64) {
        (self.l1d.miss_ratio(), self.l2.miss_ratio(), self.llc.miss_ratio())
    }

    /// Runs one demand access through the hierarchy; returns the post-cache
    /// accesses it caused (0, 1 or more: the demand fill plus any dirty
    /// writebacks cascading out of the LLC).
    pub fn access(&mut self, addr: u64, is_write: bool) -> Vec<MemoryAccess> {
        let mut out = Vec::new();
        self.stats.accesses += 1;
        let r1 = self.l1d.access(addr, is_write);
        if let Some(wb) = r1.writeback {
            // L1 victim lands in L2 (write-allocate install as a write).
            self.install(1, wb, &mut out);
        }
        if r1.hit {
            return out;
        }
        self.stats.l1_misses += 1;
        let r2 = self.l2.access(addr, false);
        if let Some(wb) = r2.writeback {
            self.install(2, wb, &mut out);
        }
        if r2.hit {
            return out;
        }
        self.stats.l2_misses += 1;
        let r3 = self.llc.access(addr, false);
        if let Some(wb) = r3.writeback {
            self.stats.memory_writebacks += 1;
            out.push(MemoryAccess { addr: wb, is_write: true });
        }
        if !r3.hit {
            self.stats.llc_misses += 1;
            out.push(MemoryAccess { addr: addr & !63, is_write: false });
        }
        out
    }

    /// Installs a dirty victim from `from_level` into the next level down.
    fn install(&mut self, from_level: u8, addr: u64, out: &mut Vec<MemoryAccess>) {
        match from_level {
            1 => {
                let r = self.l2.access(addr, true);
                if let Some(wb) = r.writeback {
                    self.install(2, wb, out);
                }
            }
            2 => {
                let r = self.llc.access(addr, true);
                if let Some(wb) = r.writeback {
                    self.stats.memory_writebacks += 1;
                    out.push(MemoryAccess { addr: wb, is_write: true });
                }
            }
            _ => unreachable!("only L1 and L2 spill downward"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_reaches_memory_once() {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny());
        let post = h.access(0, false);
        assert_eq!(post, vec![MemoryAccess { addr: 0, is_write: false }]);
        assert!(h.access(0, false).is_empty());
        assert!(h.access(32, true).is_empty(), "same line");
        let s = h.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.llc_misses, 1);
    }

    #[test]
    fn working_set_larger_than_llc_thrashes() {
        let cfg = HierarchyConfig::tiny();
        let mut h = CacheHierarchy::new(cfg);
        let lines = (cfg.llc.capacity_bytes / 64) * 4;
        // Two sweeps over 4x the LLC: second sweep still misses.
        for _ in 0..2 {
            for i in 0..lines {
                h.access(i * 64, false);
            }
        }
        let s = h.stats();
        assert!(
            s.llc_misses as f64 > 1.5 * lines as f64,
            "expected thrashing, got {} misses for {} lines",
            s.llc_misses,
            lines
        );
    }

    #[test]
    fn dirty_data_eventually_written_back() {
        let cfg = HierarchyConfig::tiny();
        let mut h = CacheHierarchy::new(cfg);
        // Dirty a region larger than total cache capacity, then sweep a
        // disjoint clean region to force the dirty lines out to memory.
        let dirty_lines = (cfg.llc.capacity_bytes / 64) * 2;
        for i in 0..dirty_lines {
            h.access(i * 64, true);
        }
        let base = 1 << 30;
        for i in 0..dirty_lines * 2 {
            h.access(base + i * 64, false);
        }
        assert!(h.stats().memory_writebacks > 0);
    }

    #[test]
    fn small_working_set_stays_cached() {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny());
        // 8 lines, accessed 100 times each: only 8 cold misses escape.
        for _ in 0..100 {
            for i in 0..8 {
                h.access(i * 64, false);
            }
        }
        assert_eq!(h.stats().llc_misses, 8);
        let (l1, _, _) = h.miss_ratios();
        assert!(l1 < 0.05);
    }

    #[test]
    fn mapki_and_mpki_math() {
        let s = HierarchyStats {
            accesses: 0,
            l1_misses: 0,
            l2_misses: 0,
            llc_misses: 1500,
            memory_writebacks: 500,
        };
        assert!((s.llc_mpki(1_000_000) - 1.5).abs() < 1e-12);
        assert!((s.mapki(1_000_000) - 2.0).abs() < 1e-12);
        assert_eq!(s.mapki(0), 0.0);
    }

    #[test]
    fn paper_table3_dimensions() {
        let c = HierarchyConfig::paper_table3();
        assert_eq!(c.l1d.sets(), 64);
        assert_eq!(c.l2.sets(), 2048);
        assert_eq!(c.llc.sets(), 8192);
    }
}
