//! # dtl-cache — host-side cache hierarchy simulator
//!
//! Models the three-level cache hierarchy of the paper's trace-driven setup
//! (Table 3) to turn raw access streams into **post-cache** streams: the
//! demand fills and writebacks that actually reach a CXL memory device.
//!
//! ```
//! use dtl_cache::{CacheHierarchy, HierarchyConfig};
//!
//! let mut h = CacheHierarchy::new(HierarchyConfig::paper_table3());
//! let mut post_cache = Vec::new();
//! for i in 0..1000u64 {
//!     post_cache.extend(h.access(i * 4096, false));
//! }
//! // A 4 KiB-strided scan misses every time: all 1000 reach memory.
//! assert_eq!(post_cache.len(), 1000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod hierarchy;
mod set_assoc;

pub use hierarchy::{CacheHierarchy, HierarchyConfig, HierarchyStats, MemoryAccess};
pub use set_assoc::{AccessResult, CacheLevelConfig, SetAssocCache};
