//! Criterion microbenchmarks of the DTL's hot paths: segment-mapping-cache
//! lookups, the full translated access path, the FR-FCFS DRAM scheduler,
//! migration-table updates, the segment allocator, the cache hierarchy,
//! and trace generation.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dtl_cache::{CacheHierarchy, HierarchyConfig};
use dtl_core::{
    AuId, Dsn, DtlConfig, DtlDevice, HostId, HotnessEngine, HotnessParams, Hsn, SegmentAllocator,
    SegmentGeometry, SegmentLocation, SegmentMappingCache,
};
use dtl_dram::{AccessKind, AddressMapping, DramConfig, DramSystem, PhysAddr, Picos, Priority};
use dtl_trace::{TraceGen, WorkloadKind};

fn bench_smc(c: &mut Criterion) {
    let mut g = c.benchmark_group("smc");
    g.throughput(Throughput::Elements(1));
    let mut smc = SegmentMappingCache::paper();
    for i in 0..2048u32 {
        smc.fill(
            Hsn { host: HostId(0), au: AuId(i / 1024), au_offset: i % 1024 },
            Dsn(u64::from(i)),
        );
    }
    let mut i = 0u32;
    g.bench_function("lookup_mixed", |b| {
        b.iter(|| {
            i = (i + 7) % 4096;
            let hsn = Hsn { host: HostId(0), au: AuId(i / 1024), au_offset: i % 1024 };
            black_box(smc.lookup(hsn))
        })
    });
    g.bench_function("fill", |b| {
        b.iter(|| {
            i = i.wrapping_add(13) % 8192;
            let hsn = Hsn { host: HostId(0), au: AuId(i / 1024), au_offset: i % 1024 };
            smc.fill(hsn, Dsn(u64::from(i)));
        })
    });
    g.finish();
}

fn bench_device_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("device");
    g.throughput(Throughput::Elements(1));
    let cfg = DtlConfig::tiny();
    let mut dev = DtlDevice::with_analytic_geometry(cfg, 4, 8, 64);
    dev.register_host(HostId(0)).unwrap();
    let vm = dev.alloc_vm(HostId(0), 8 * cfg.au_bytes, Picos::ZERO).unwrap();
    let base = vm.hpa_base(0, cfg.au_bytes);
    let mut t = Picos::from_ns(1);
    let mut k = 0u64;
    g.bench_function("translated_access", |b| {
        b.iter(|| {
            k = (k + 1) % (8 * cfg.au_bytes / 64);
            t += Picos::from_ns(2);
            black_box(dev.access(HostId(0), base.offset_by(k * 64), AccessKind::Read, t).unwrap())
        })
    });
    g.finish();
}

fn bench_dram_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram");
    g.throughput(Throughput::Elements(64));
    g.bench_function("frfcfs_64_requests", |b| {
        b.iter_batched(
            || DramSystem::new(DramConfig::tiny(), AddressMapping::RankInterleaved).unwrap(),
            |mut sys| {
                for i in 0..64u64 {
                    sys.submit(
                        PhysAddr::new((i * 4096) % sys.config().geometry.capacity_bytes()),
                        AccessKind::Read,
                        Priority::Foreground,
                        Picos::from_ns(i * 10),
                    )
                    .unwrap();
                }
                sys.run_until_idle(Picos::from_us(5));
                black_box(sys.drain_completions().len())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_hotness(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotness");
    g.throughput(Throughput::Elements(1));
    let geo = SegmentGeometry { channels: 1, ranks_per_channel: 8, segs_per_rank: 1024 };
    let mut eng = HotnessEngine::new(geo, HotnessParams::paper());
    // Enter planning.
    let _ = eng.pump(Picos::from_ms(1), |_, _| true);
    let mut w = 0u64;
    g.bench_function("on_access_planning", |b| {
        b.iter(|| {
            w = (w + 127) % 1024;
            eng.on_access(
                SegmentLocation { channel: 0, rank: (w % 8) as u32, within: w },
                Picos::from_ms(2),
            );
        })
    });
    g.finish();
}

fn bench_allocator(c: &mut Criterion) {
    let mut g = c.benchmark_group("allocator");
    let geo = SegmentGeometry { channels: 4, ranks_per_channel: 8, segs_per_rank: 1024 };
    g.bench_function("alloc_free_au_1024_segments", |b| {
        b.iter_batched(
            || SegmentAllocator::new(geo),
            |mut a| {
                let dsns = a.allocate_au(1024).unwrap();
                a.free_segments(&dsns).unwrap();
                black_box(a.free_active_total())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(1));
    let mut h = CacheHierarchy::new(HierarchyConfig::paper_table3());
    let mut a = 0u64;
    g.bench_function("hierarchy_access", |b| {
        b.iter(|| {
            a = a.wrapping_add(4096) % (1 << 30);
            black_box(h.access(a, false).len())
        })
    });
    g.finish();
}

fn bench_tracegen(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace");
    g.throughput(Throughput::Elements(1));
    let mut gen = TraceGen::new(WorkloadKind::GraphAnalytics.spec().scaled(64), 1);
    g.bench_function("next_record", |b| b.iter(|| black_box(gen.next_record())));
    g.finish();
}

fn bench_telemetry(c: &mut Criterion) {
    use dtl_telemetry::{EventKind, MetricsRegistry, RingSink, Telemetry};
    use std::sync::Arc;
    let mut g = c.benchmark_group("telemetry");
    g.throughput(Throughput::Elements(1));
    let kind = |i: u64| EventKind::SegmentMigrated {
        channel: (i % 4) as u32,
        src: i,
        dst: i + 1,
        swap: false,
        bytes: 2 << 20,
    };
    // The disabled path is what every instrumented hot loop pays by default.
    let off = Telemetry::disabled();
    let mut i = 0u64;
    g.bench_function("emit_disabled", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            off.emit(black_box(i), black_box(kind(i)));
        })
    });
    let sink = Arc::new(RingSink::with_capacity(1 << 16));
    let on = Telemetry::new(sink as Arc<dyn dtl_telemetry::TelemetrySink>);
    g.bench_function("emit_ring", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            on.emit(black_box(i), black_box(kind(i)));
        })
    });
    let registry = MetricsRegistry::new();
    let counter = registry.counter("bench.counter");
    g.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    let hist = registry.histogram("bench.hist");
    g.bench_function("histogram_observe", |b| {
        b.iter(|| {
            i = i.wrapping_add(97);
            hist.observe(black_box(i & 0xffff));
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_smc,
    bench_device_access,
    bench_dram_scheduler,
    bench_hotness,
    bench_allocator,
    bench_cache,
    bench_tracegen,
    bench_telemetry
);
criterion_main!(benches);
