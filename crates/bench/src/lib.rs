//! # dtl-bench — table/figure renderers and the regeneration binaries
//!
//! Each `src/bin/figNN.rs` / `tabNN.rs` binary runs the matching
//! `dtl_sim::experiments` module at paper scale, prints the rows the paper
//! reports, and drops machine-readable JSON under `results/`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod render;

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dtl_telemetry::{chrome_trace, jsonl, MetricsRegistry, PowerTimeline, RingSink, Telemetry};

/// Prints `text` and writes `json` to `results/<name>.json`.
///
/// # Panics
///
/// Panics if the results directory cannot be created or written — the
/// binaries have nothing useful to do without their output.
pub fn emit(name: &str, text: &str, json: &str) {
    println!("{text}");
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results directory");
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, json).expect("write results JSON");
    eprintln!("[saved {}]", path.display());
}

/// Telemetry plumbing shared by the experiment binaries.
///
/// Parses `--trace-out PATH` and `--metrics-out PATH` from the command
/// line. When either flag is present, [`TelemetryCli::telemetry`] carries a
/// live ring-buffer sink (and a metrics registry); otherwise it is the
/// disabled no-op handle and the replay pays only dead branches.
///
/// [`TelemetryCli::finish`] writes the outputs:
/// * `--trace-out PATH` — a Chrome `trace_event` JSON (open in Perfetto or
///   `chrome://tracing`; one track per rank showing power-state residency
///   spans) plus the raw event stream as JSONL next to it (`PATH` with a
///   `.jsonl` extension);
/// * `--metrics-out PATH` — the plain-text metrics dump.
#[derive(Debug)]
pub struct TelemetryCli {
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    sink: Option<Arc<RingSink>>,
    registry: Arc<MetricsRegistry>,
    telemetry: Telemetry,
}

impl TelemetryCli {
    /// Ring capacity: a fig10/fig12-class run emits well under a million
    /// events; overflow is reported, not silently truncated mid-run.
    const RING_CAPACITY: usize = 1 << 20;

    /// Parses the process arguments.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().collect())
    }

    fn parse(args: Vec<String>) -> Self {
        let value_of = |flag: &str| -> Option<PathBuf> {
            args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(PathBuf::from)
        };
        let trace_out = value_of("--trace-out");
        let metrics_out = value_of("--metrics-out");
        let registry = Arc::new(MetricsRegistry::new());
        let (sink, telemetry) = if trace_out.is_some() || metrics_out.is_some() {
            let sink = Arc::new(RingSink::with_capacity(Self::RING_CAPACITY));
            let telemetry = Telemetry::new(sink.clone() as Arc<dyn dtl_telemetry::TelemetrySink>)
                .with_metrics(registry.clone());
            (Some(sink), telemetry)
        } else {
            (None, Telemetry::disabled())
        };
        TelemetryCli { trace_out, metrics_out, sink, registry, telemetry }
    }

    /// The handle to pass into `*_traced` runners (disabled when no
    /// telemetry flag was given).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The metrics registry behind [`TelemetryCli::telemetry`].
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Whether any telemetry output was requested.
    pub fn enabled(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some()
    }

    /// Drains the sink and writes the requested outputs, closing the
    /// power-state timeline at the last event. Prefer
    /// [`TelemetryCli::finish_at`] when the run's true end time is known —
    /// it also credits residency accrued after the final transition.
    ///
    /// # Panics
    ///
    /// Panics if an output path cannot be written — like [`emit`], the
    /// binaries have nothing useful to do without their output.
    pub fn finish(&self) {
        self.finish_inner(None);
    }

    /// Like [`TelemetryCli::finish`], but closes every rank's open span at
    /// `end_ps` (the replay horizon) instead of the last recorded event.
    ///
    /// # Panics
    ///
    /// Panics if an output path cannot be written.
    pub fn finish_at(&self, end_ps: u64) {
        self.finish_inner(Some(end_ps));
    }

    fn finish_inner(&self, horizon_ps: Option<u64>) {
        if let (Some(path), Some(sink)) = (&self.trace_out, &self.sink) {
            let events = sink.drain();
            if sink.dropped() > 0 {
                eprintln!(
                    "[trace: ring buffer dropped {} events; the trace is truncated]",
                    sink.dropped()
                );
            }
            let last = events.iter().map(|e| e.at_ps).max().unwrap_or(0);
            let end_ps = horizon_ps.unwrap_or(last).max(last);
            let timeline = PowerTimeline::from_events(&events, end_ps);
            fs::write(path, chrome_trace(&timeline, &events)).expect("write Chrome trace");
            eprintln!("[trace saved {} — open in Perfetto or chrome://tracing]", path.display());
            let raw = path.with_extension("jsonl");
            fs::write(&raw, jsonl(&events)).expect("write event JSONL");
            eprintln!("[events saved {}]", raw.display());
        }
        if let Some(path) = &self.metrics_out {
            fs::write(path, self.registry.render_text()).expect("write metrics dump");
            eprintln!("[metrics saved {}]", path.display());
        }
    }
}
