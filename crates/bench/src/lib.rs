//! # dtl-bench — table/figure renderers and the regeneration binaries
//!
//! Each `src/bin/figNN.rs` / `tabNN.rs` binary runs the matching
//! `dtl_sim::experiments` module at paper scale, prints the rows the paper
//! reports, and drops machine-readable JSON under `results/`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod render;

use std::fs;
use std::path::Path;

/// Prints `text` and writes `json` to `results/<name>.json`.
///
/// # Panics
///
/// Panics if the results directory cannot be created or written — the
/// binaries have nothing useful to do without their output.
pub fn emit(name: &str, text: &str, json: &str) {
    println!("{text}");
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results directory");
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, json).expect("write results JSON");
    eprintln!("[saved {}]", path.display());
}
