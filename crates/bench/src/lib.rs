//! # dtl-bench — the uniform experiment driver and its binaries
//!
//! Every `src/bin/<name>.rs` binary is one line: `dtl_bench::drive("<name>")`.
//! The driver resolves the experiment in the
//! [`dtl_sim::experiments::registry`], parses the shared CLI surface, runs
//! it, prints the rendered tables, and drops machine-readable JSON under
//! `results/`.
//!
//! Shared flags (every binary):
//!
//! * `--tiny` (alias `--quick`) — reduced scale instead of paper scale;
//! * `--seed N` — override the experiment's historical default seed;
//! * `--jobs N` — worker count for the deterministic [`dtl_sim::exec`]
//!   engine; output is bit-identical for every value (default: all cores);
//! * `--out PATH` — JSON destination (default `results/<name>.json`);
//! * `--trace-out PATH` — Chrome `trace_event` JSON (open in Perfetto or
//!   `chrome://tracing`; one track per rank showing power-state residency
//!   spans) plus the raw event stream as JSONL next to it (`PATH` with a
//!   `.jsonl` extension);
//! * `--metrics-out PATH` — the plain-text metrics dump;
//! * `--timeseries-out PATH` — the windowed time series folded from the
//!   event stream (CSV, or JSONL when `PATH` ends in `.jsonl`), for the
//!   campaign-scale experiments that produce one;
//! * `--timeseries-width-s N` — time-series window width in sim seconds
//!   (default 300);
//! * `--heartbeat` — campaign experiments print a wall-clock-throttled
//!   progress line per completed work unit to stderr.
//!
//! Experiment-specific flags (e.g. `diff_fuzz --replay`) pass through via
//! [`RunContext::args`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use dtl_sim::render;

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dtl_sim::experiments::{Experiment, RunContext};
use dtl_telemetry::{chrome_trace, jsonl, MetricsRegistry, PowerTimeline, RingSink, Telemetry};

/// Ring capacity: a fig10/fig12-class run emits well under a million
/// events; overflow is reported, not silently truncated mid-run.
const RING_CAPACITY: usize = 1 << 20;

/// The CLI surface shared by every experiment binary. Parse once with
/// [`ExperimentCli::from_args`], hand [`ExperimentCli::context`] to the
/// experiment, then [`ExperimentCli::finish`] the telemetry outputs.
#[derive(Debug)]
pub struct ExperimentCli {
    /// `--tiny` / `--quick`: reduced scale.
    pub tiny: bool,
    /// `--seed N` override.
    pub seed: Option<u64>,
    /// `--jobs N` worker count (defaults to all cores; output is
    /// bit-identical for every value).
    pub jobs: usize,
    /// `--out PATH` JSON destination override.
    pub out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    timeseries_out: Option<PathBuf>,
    series_width: Option<u64>,
    sink: Option<Arc<RingSink>>,
    registry: Arc<MetricsRegistry>,
    telemetry: Telemetry,
    args: Vec<String>,
}

impl ExperimentCli {
    /// Parses the process arguments.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1).collect())
    }

    fn parse(args: Vec<String>) -> Self {
        let value_of = |flag: &str| -> Option<&String> {
            args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1))
        };
        let parsed = |flag: &str| -> Option<u64> {
            value_of(flag).map(|v| {
                v.parse().unwrap_or_else(|_| panic!("{flag} expects an integer, got {v:?}"))
            })
        };
        let tiny = args.iter().any(|a| a == "--tiny" || a == "--quick");
        let seed = parsed("--seed");
        let jobs =
            parsed("--jobs").map_or_else(dtl_sim::exec::available_jobs, |n| (n as usize).max(1));
        let out = value_of("--out").map(PathBuf::from);
        let trace_out = value_of("--trace-out").map(PathBuf::from);
        let metrics_out = value_of("--metrics-out").map(PathBuf::from);
        let timeseries_out = value_of("--timeseries-out").map(PathBuf::from);
        let series_width = timeseries_out
            .as_ref()
            .map(|_| parsed("--timeseries-width-s").unwrap_or(300) * 1_000_000_000_000);
        let registry = Arc::new(MetricsRegistry::new());
        let (sink, telemetry) = if trace_out.is_some() || metrics_out.is_some() {
            let sink = Arc::new(RingSink::with_capacity(RING_CAPACITY));
            let telemetry = Telemetry::new(sink.clone() as Arc<dyn dtl_telemetry::TelemetrySink>)
                .with_metrics(registry.clone());
            (Some(sink), telemetry)
        } else {
            (None, Telemetry::disabled())
        };
        ExperimentCli {
            tiny,
            seed,
            jobs,
            out,
            trace_out,
            metrics_out,
            timeseries_out,
            series_width,
            sink,
            registry,
            telemetry,
            args,
        }
    }

    /// The [`RunContext`] this invocation describes.
    pub fn context(&self) -> RunContext {
        RunContext {
            tiny: self.tiny,
            seed: self.seed,
            jobs: self.jobs,
            telemetry: self.telemetry.clone(),
            args: self.args.clone(),
            series_width: self.series_width,
        }
    }

    /// The metrics registry behind the context's telemetry handle.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Whether any telemetry output was requested.
    pub fn telemetry_enabled(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some()
    }

    /// The JSON destination for experiment `name`.
    fn json_path(&self, name: &str) -> PathBuf {
        self.out.clone().unwrap_or_else(|| Path::new("results").join(format!("{name}.json")))
    }

    /// Drains the sink and writes the requested telemetry outputs, closing
    /// every rank's open power-state span at `horizon_ps` when given (the
    /// replay horizon) or at the last recorded event otherwise.
    ///
    /// # Panics
    ///
    /// Panics if an output path cannot be written — the binaries have
    /// nothing useful to do without their output.
    pub fn finish(&self, horizon_ps: Option<u64>) {
        if let Some(sink) = &self.sink {
            // Surfaced in both places a consumer might look: the metrics
            // dump (as a counter) and stderr (loudly) — a truncated stream
            // silently passing for a complete one is how bad conclusions
            // get drawn.
            let dropped = sink.dropped();
            self.registry.counter("telemetry.dropped_events").set(dropped);
            if dropped > 0 {
                eprintln!(
                    "WARNING: telemetry ring dropped {dropped} events; \
                     the trace and every stream-derived output are incomplete"
                );
            }
        }
        if let (Some(path), Some(sink)) = (&self.trace_out, &self.sink) {
            let events = sink.drain();
            let last = events.iter().map(|e| e.at_ps).max().unwrap_or(0);
            let end_ps = horizon_ps.unwrap_or(last).max(last);
            let timeline = PowerTimeline::from_events(&events, end_ps);
            fs::write(path, chrome_trace(&timeline, &events)).expect("write Chrome trace");
            eprintln!("[trace saved {} — open in Perfetto or chrome://tracing]", path.display());
            let raw = path.with_extension("jsonl");
            fs::write(&raw, jsonl(&events)).expect("write event JSONL");
            eprintln!("[events saved {}]", raw.display());
        }
        if let Some(path) = &self.metrics_out {
            fs::write(path, self.registry.render_text()).expect("write metrics dump");
            eprintln!("[metrics saved {}]", path.display());
        }
    }
}

/// Runs the registered experiment `name` under the process arguments —
/// the entire body of every experiment binary. Exits nonzero on a device
/// error or an acceptance failure.
///
/// # Panics
///
/// Panics if `name` is not in the registry or an output path cannot be
/// written.
pub fn drive(name: &str) {
    let exp = dtl_sim::experiments::find(name)
        .unwrap_or_else(|| panic!("{name} is not in the experiment registry"));
    let cli = ExperimentCli::from_args();
    if let Err(msg) = drive_experiment(exp, &cli) {
        eprintln!("{msg}");
        std::process::exit(1);
    }
}

/// Runs one registry entry under an already-parsed CLI: build the context,
/// run, print the tables, write `results/<name>.json`, flush telemetry.
/// The `Err` carries the message to report before exiting nonzero.
///
/// # Errors
///
/// Device errors and [`RunOutput::failure`](dtl_sim::experiments::RunOutput)
/// acceptance failures.
///
/// # Panics
///
/// Panics if an output path cannot be written.
pub fn drive_experiment(exp: &dyn Experiment, cli: &ExperimentCli) -> Result<(), String> {
    let ctx = cli.context();
    let out = exp.run(&ctx).map_err(|e| format!("{}: {e}", exp.name()))?;
    if !out.text.is_empty() {
        println!("{}", out.text);
    }
    if let Some(json) = &out.json {
        let path = cli.json_path(exp.name());
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir).expect("create results directory");
        }
        fs::write(&path, json).expect("write results JSON");
        eprintln!("[saved {}]", path.display());
    }
    if let Some(path) = &cli.timeseries_out {
        match &out.timeseries {
            Some(series) => {
                let body = if path.extension().is_some_and(|e| e == "jsonl") {
                    series.to_jsonl()
                } else {
                    series.to_csv()
                };
                fs::write(path, body).expect("write time series");
                eprintln!(
                    "[time series saved {} — {} windows of {}s]",
                    path.display(),
                    series.windows().len(),
                    series.width_ps() / 1_000_000_000_000
                );
            }
            None => eprintln!(
                "[--timeseries-out: {} does not produce a windowed series; nothing written]",
                exp.name()
            ),
        }
    }
    cli.finish(out.horizon_ps);
    match out.failure {
        Some(msg) => Err(msg),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(args: &[&str]) -> ExperimentCli {
        ExperimentCli::parse(args.iter().map(|s| (*s).to_string()).collect())
    }

    #[test]
    fn parses_the_shared_surface() {
        let c = cli(&["--tiny", "--seed", "9", "--jobs", "3", "--out", "x.json"]);
        assert!(c.tiny);
        assert_eq!(c.seed, Some(9));
        assert_eq!(c.jobs, 3);
        assert_eq!(c.out.as_deref(), Some(Path::new("x.json")));
        assert!(!c.telemetry_enabled());
        assert!(!c.context().telemetry.enabled());
    }

    #[test]
    fn quick_is_a_tiny_alias_and_jobs_defaults_to_cores() {
        let c = cli(&["--quick"]);
        assert!(c.tiny);
        assert_eq!(c.jobs, dtl_sim::exec::available_jobs());
        assert_eq!(c.json_path("fig02"), Path::new("results").join("fig02.json"));
    }

    #[test]
    fn telemetry_flags_enable_the_ring_sink() {
        let c = cli(&["--trace-out", "/tmp/t.json"]);
        assert!(c.telemetry_enabled());
        assert!(c.context().telemetry.enabled());
        assert!(c.context().telemetry.metrics().is_some());
    }

    #[test]
    fn jobs_zero_is_clamped_to_one() {
        assert_eq!(cli(&["--jobs", "0"]).jobs, 1);
    }

    #[test]
    fn finish_publishes_the_dropped_event_counter() {
        let dir = std::env::temp_dir().join("dtl_bench_dropped_test");
        fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("m.txt");
        let c = cli(&["--metrics-out", metrics.to_str().unwrap()]);
        c.finish(None);
        let dump = fs::read_to_string(&metrics).unwrap();
        assert!(
            dump.contains("telemetry.dropped_events"),
            "the drop counter must land in the metrics dump: {dump}"
        );
    }

    #[test]
    fn timeseries_flags_set_the_window_width() {
        let c = cli(&["--timeseries-out", "/tmp/s.csv"]);
        assert_eq!(c.series_width, Some(300 * 1_000_000_000_000));
        assert_eq!(c.context().series_width, c.series_width);
        // The series does not need the ring sink.
        assert!(!c.telemetry_enabled());
        let c = cli(&["--timeseries-out", "/tmp/s.csv", "--timeseries-width-s", "60"]);
        assert_eq!(c.series_width, Some(60 * 1_000_000_000_000));
        // Width without a destination stays off.
        assert_eq!(cli(&["--timeseries-width-s", "60"]).series_width, None);
    }

    #[test]
    fn timeseries_run_writes_windowed_csv() {
        let dir = std::env::temp_dir().join("dtl_bench_series_test");
        fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("vm_campaign.csv");
        let json = dir.join("vm_campaign.json");
        let c = cli(&[
            "--tiny",
            "--jobs",
            "2",
            "--hosts",
            "2",
            "--out",
            json.to_str().unwrap(),
            "--timeseries-out",
            csv.to_str().unwrap(),
            "--timeseries-width-s",
            "3600",
        ]);
        let exp = dtl_sim::experiments::find("vm_campaign").unwrap();
        drive_experiment(exp, &c).unwrap();
        let body = fs::read_to_string(&csv).unwrap();
        assert!(body.starts_with(dtl_telemetry::TIMESERIES_CSV_HEADER));
        assert!(body.lines().count() > 1, "a day of windows follows the header");
    }
}
