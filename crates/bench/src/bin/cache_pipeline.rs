//! Validates the §5.2 trace methodology: raw streams through the Table 3
//! cache hierarchy become low-MAPKI, long-stride post-cache streams.

use dtl_bench::emit;
use dtl_sim::experiments::cache_pipeline;
use dtl_sim::{f1, pct, to_json, Table};
use dtl_trace::WorkloadKind;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let records = if quick { 200_000 } else { 1_500_000 };
    let r = cache_pipeline::run(7, records, &WorkloadKind::TRACED);
    let mut t = Table::new(
        "Cache pipeline (Section 5.2 methodology)",
        &[
            "workload",
            "raw_apki",
            "post_mapki",
            "l1_miss",
            "l2_miss",
            "llc_miss",
            "pre_4m",
            "post_4m",
        ],
    );
    for row in &r.rows {
        let (l1, l2, llc) = row.miss_ratios;
        t.row(&[
            row.workload.clone(),
            f1(row.raw_apki),
            f1(row.post_mapki),
            pct(l1),
            pct(l2),
            pct(llc),
            pct(row.pre_at_least_4m),
            pct(row.post_at_least_4m),
        ]);
    }
    emit("cache_pipeline", &t.render(), &to_json(&r));
}
