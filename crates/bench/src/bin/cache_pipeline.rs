//! Thin driver for the registered `cache_pipeline` experiment (see
//! [`dtl_sim::experiments::cache_pipeline`]). The shared CLI surface (`--tiny`,
//! `--seed`, `--jobs`, `--out`, `--trace-out`, `--metrics-out`) is
//! documented in the `dtl_bench` crate docs.

fn main() {
    dtl_bench::drive("cache_pipeline");
}
