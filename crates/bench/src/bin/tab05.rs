//! Regenerates Table 5: DTL structure sizes at 384 GB and 4 TB.

use dtl_bench::{emit, render};
use dtl_sim::experiments::tab05;
use dtl_sim::to_json;

fn main() {
    let r = tab05::run();
    emit("tab05", &render::tab05(&r).render(), &to_json(&r));
}
