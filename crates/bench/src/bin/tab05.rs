//! Thin driver for the registered `tab05` experiment (see
//! [`dtl_sim::experiments::tab05`]). The shared CLI surface (`--tiny`,
//! `--seed`, `--jobs`, `--out`, `--trace-out`, `--metrics-out`) is
//! documented in the `dtl_bench` crate docs.

fn main() {
    dtl_bench::drive("tab05");
}
