//! Ablation: the hotness engine's two tunables — the profiling idle
//! threshold (paper default 50 ms) and the victim-sampling window
//! (0.5 ms). A short threshold enters self-refresh eagerly but risks
//! ping-pong; a long one leaves savings on the table.

use dtl_bench::emit;
use dtl_sim::{pct, to_json, HotnessRunConfig, Table};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    threshold_ms_unscaled: f64,
    sr_entries: u64,
    sr_exits: u64,
    sr_residency: f64,
    swaps: u64,
    stable_power_mw: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut base = HotnessRunConfig::paper_scaled(1, 6, 224.0 / 288.0);
    if quick {
        base.accesses = 1_500_000;
        base.scale = 256;
    }
    // The harness derives thresholds from the paper values divided by the
    // scale; emulate other paper-scale thresholds by scaling the replay's
    // access budget instead (the threshold-to-replay-length ratio is what
    // matters). We simply run at different effective thresholds by varying
    // the scale-adjusted threshold through a custom run below.
    let mut rows = Vec::new();
    for factor in [0.25f64, 0.5, 1.0, 2.0, 4.0] {
        let r = run_hotness_with_threshold(&base, factor);
        rows.push(Row {
            threshold_ms_unscaled: 50.0 * factor,
            sr_entries: r.sr_entries,
            sr_exits: r.sr_exits,
            sr_residency: r.sr_residency,
            swaps: r.swaps_executed,
            stable_power_mw: r.stable_power_mw,
        });
    }
    let mut t = Table::new(
        "Ablation: profiling threshold (paper default 50 ms)",
        &["threshold", "sr_entries", "sr_exits", "residency", "swaps", "stable_mw"],
    );
    for r in &rows {
        t.row(&[
            format!("{:.1}ms", r.threshold_ms_unscaled),
            r.sr_entries.to_string(),
            r.sr_exits.to_string(),
            pct(r.sr_residency),
            r.swaps.to_string(),
            format!("{:.0}", r.stable_power_mw),
        ]);
    }
    emit("ablate_hotness_params", &t.render(), &to_json(&rows));
}

/// Runs the hotness replay with the profiling threshold scaled by `factor`
/// relative to the paper's 50 ms default, extending the replay so longer
/// thresholds still see several threshold windows.
fn run_hotness_with_threshold(base: &HotnessRunConfig, factor: f64) -> dtl_sim::HotnessRunResult {
    let cfg =
        HotnessRunConfig { accesses: (base.accesses as f64 * factor.max(1.0)) as u64, ..*base };
    dtl_sim::run_hotness_with_threshold_factor(&cfg, factor).expect("hotness replay")
}
