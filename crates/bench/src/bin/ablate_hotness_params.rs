//! Thin driver for the registered `ablate_hotness_params` experiment (see
//! [`dtl_sim::experiments::ablate_hotness_params`]). The shared CLI surface (`--tiny`,
//! `--seed`, `--jobs`, `--out`, `--trace-out`, `--metrics-out`) is
//! documented in the `dtl_bench` crate docs.

fn main() {
    dtl_bench::drive("ablate_hotness_params");
}
