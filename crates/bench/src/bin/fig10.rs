//! Regenerates Figure 10: segment size vs segment access distance.

use dtl_bench::{emit, render};
use dtl_sim::experiments::fig10;
use dtl_sim::to_json;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (records, scale) = if quick { (200_000, 64) } else { (2_000_000, 64) };
    let r = fig10::run(11, records, scale);
    emit("fig10", &render::fig10(&r).render(), &to_json(&r));
}
