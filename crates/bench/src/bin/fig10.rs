//! Thin driver for the registered `fig10` experiment (see
//! [`dtl_sim::experiments::fig10`]). The shared CLI surface (`--tiny`,
//! `--seed`, `--jobs`, `--out`, `--trace-out`, `--metrics-out`) is
//! documented in the `dtl_bench` crate docs.

fn main() {
    dtl_bench::drive("fig10");
}
