//! Regenerates Table 6: CXL controller power and area at 7 nm.

use dtl_bench::{emit, render};
use dtl_sim::experiments::tab06;
use dtl_sim::to_json;

fn main() {
    let r = tab06::run();
    emit("tab06", &render::tab06(&r).render(), &to_json(&r));
}
