//! Regenerates Table 4: per-workload MAPKI calibration.

use dtl_bench::{emit, render};
use dtl_sim::experiments::tab04;
use dtl_sim::to_json;

fn main() {
    let r = tab04::run(1, 100_000);
    emit("tab04", &render::tab04(&r).render(), &to_json(&r));
}
