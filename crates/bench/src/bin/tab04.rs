//! Thin driver for the registered `tab04` experiment (see
//! [`dtl_sim::experiments::tab04`]). The shared CLI surface (`--tiny`,
//! `--seed`, `--jobs`, `--out`, `--trace-out`, `--metrics-out`) is
//! documented in the `dtl_bench` crate docs.

fn main() {
    dtl_bench::drive("tab04");
}
