//! Thin driver for the registered `sec6_1` experiment (see
//! [`dtl_sim::experiments::sec6_1`]). The shared CLI surface (`--tiny`,
//! `--seed`, `--jobs`, `--out`, `--trace-out`, `--metrics-out`) is
//! documented in the `dtl_bench` crate docs.

fn main() {
    dtl_bench::drive("sec6_1");
}
