//! Regenerates Section 6.1: AMAT under DTL translation.

use dtl_bench::{emit, render};
use dtl_sim::experiments::sec6_1;
use dtl_sim::to_json;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let accesses = if quick { 200_000 } else { 2_000_000 };
    let r = sec6_1::run(3, accesses, 16).expect("SMC replay");
    emit("sec6_1", &render::sec6_1(&r).render(), &to_json(&r));
}
