//! Regenerates Figure 1: VM memory usage profiling.

use dtl_bench::{emit, render};
use dtl_sim::experiments::fig01;
use dtl_sim::to_json;

fn main() {
    let r = fig01::run(1);
    emit("fig01", &render::fig01(&r).render(), &to_json(&r));
}
