//! Thin driver for the registered `fig01` experiment (see
//! [`dtl_sim::experiments::fig01`]). The shared CLI surface (`--tiny`,
//! `--seed`, `--jobs`, `--out`, `--trace-out`, `--metrics-out`) is
//! documented in the `dtl_bench` crate docs.

fn main() {
    dtl_bench::drive("fig01");
}
