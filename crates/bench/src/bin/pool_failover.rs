//! Thin driver for the registered `pool_failover` experiment (see
//! [`dtl_sim::experiments::pool_failover`]). Accepts `--campaigns N` on
//! top of the shared CLI surface (`--tiny`, `--seed`, `--jobs`, `--out`,
//! `--trace-out`, `--metrics-out`) documented in the `dtl_bench` crate
//! docs.

fn main() {
    dtl_bench::drive("pool_failover");
}
