//! Regenerates Figure 9: post-cache stride distributions.

use dtl_bench::{emit, render};
use dtl_sim::experiments::fig09;
use dtl_sim::to_json;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let records = if quick { 50_000 } else { 400_000 };
    let r = fig09::run(1, records, 16);
    emit("fig09", &render::fig09(&r).render(), &to_json(&r));
}
