//! Ablation: translation segment size (the paper's §4.1 design decision).
//!
//! Sweeps 1 / 2 / 4 MiB and reports the three quantities the paper weighs:
//! the cold-segment fraction (finer = more cold capacity to harvest), the
//! mapping-metadata footprint (finer = bigger tables), and the migration
//! cost per consolidated segment (finer = cheaper individual moves).

use dtl_bench::emit;
use dtl_sim::experiments::fig10;
use dtl_sim::{f1, pct, to_json, Table};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    segment_bytes: u64,
    cold_fraction: f64,
    sram_kb: f64,
    dram_kb: f64,
    migration_ms_per_segment: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let records = if quick { 200_000 } else { 1_000_000 };
    // Cold fractions at each granularity from the Figure 10 machinery.
    let fig = fig10::run(11, records, 64);
    let mut rows = Vec::new();
    for fr in &fig.rows {
        let seg = fr.granularity_bytes;
        // Structure sizes: entry counts scale inversely with segment size.
        let cfg = dtl_core::OverheadConfig {
            segment_bytes: seg,
            ..dtl_core::OverheadConfig::paper_384gb()
        };
        let sizes = dtl_core::StructureSizes::compute(&cfg);
        // Migration time of one segment at the paper's opportunistic
        // bandwidth (4.6 GB/s, halved for same-channel swap traffic).
        let migration_ms = seg as f64 / (4.6e9 / 2.0) * 1e3;
        rows.push(Row {
            segment_bytes: seg,
            cold_fraction: fr.cold_fraction,
            sram_kb: sizes.sram_total() as f64 / 1024.0,
            dram_kb: sizes.dram_total() as f64 / 1024.0,
            migration_ms_per_segment: migration_ms,
        });
    }
    let mut t = Table::new(
        "Ablation: segment size (paper picks 2 MiB, Section 4.1)",
        &["segment", "cold_fraction", "sram_kb", "dram_kb", "migrate_ms/seg"],
    );
    for r in &rows {
        t.row(&[
            format!("{}MB", r.segment_bytes >> 20),
            pct(r.cold_fraction),
            f1(r.sram_kb),
            f1(r.dram_kb),
            format!("{:.2}", r.migration_ms_per_segment),
        ]);
    }
    emit("ablate_segment_size", &t.render(), &to_json(&rows));
}
