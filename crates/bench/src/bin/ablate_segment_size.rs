//! Thin driver for the registered `ablate_segment_size` experiment (see
//! [`dtl_sim::experiments::ablate_segment_size`]). The shared CLI surface (`--tiny`,
//! `--seed`, `--jobs`, `--out`, `--trace-out`, `--metrics-out`) is
//! documented in the `dtl_bench` crate docs.

fn main() {
    dtl_bench::drive("ablate_segment_size");
}
