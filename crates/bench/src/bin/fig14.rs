//! Regenerates Figure 14: additional savings from hotness-aware
//! self-refresh at the paper's allocation points.
//!
//! Pass `--trace-out PATH` / `--metrics-out PATH` for telemetry from one
//! additional traced treatment replay at the first allocation point (the
//! sweep itself replays several independent devices whose timelines would
//! not compose into one trace).

use dtl_bench::{emit, render, TelemetryCli};
use dtl_sim::experiments::fig14;
use dtl_sim::{run_hotness_traced, to_json, HotnessRunConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let telemetry = TelemetryCli::from_args();
    let mut base = HotnessRunConfig::paper_scaled(1, 6, 208.0 / 288.0);
    if quick {
        base.accesses = 1_000_000;
        base.scale = 256;
    }
    let r = fig14::run(&base, &fig14::PAPER_POINTS).expect("hotness replay");
    emit("fig14", &render::fig14(&r).render(), &to_json(&r));
    if telemetry.enabled() {
        let (_, ranks, frac) = fig14::PAPER_POINTS[0];
        let cfg = HotnessRunConfig { active_ranks: ranks, allocated_fraction: frac, ..base };
        let traced =
            run_hotness_traced(&cfg, telemetry.telemetry()).expect("traced hotness replay");
        telemetry.finish_at(traced.duration.as_ps());
    }
}
