//! Regenerates Figure 14: additional savings from hotness-aware
//! self-refresh at the paper's allocation points.

use dtl_bench::{emit, render};
use dtl_sim::experiments::fig14;
use dtl_sim::{to_json, HotnessRunConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut base = HotnessRunConfig::paper_scaled(1, 6, 208.0 / 288.0);
    if quick {
        base.accesses = 1_000_000;
        base.scale = 256;
    }
    let r = fig14::run(&base, &fig14::PAPER_POINTS).expect("hotness replay");
    emit("fig14", &render::fig14(&r).render(), &to_json(&r));
}
