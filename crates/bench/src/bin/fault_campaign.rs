//! Runs the fault campaign: the Figure 12 VM schedule replayed fault-free
//! and under a deterministic fault load (ECC noise, an error storm on one
//! victim rank, CXL link CRC corruption, migration interruptions), and
//! reports the capacity, energy, and latency cost of the faults.

use dtl_bench::{emit, render};
use dtl_sim::experiments::fault_campaign;
use dtl_sim::{to_json, FaultRunConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick { FaultRunConfig::tiny_storm(1) } else { fault_campaign::paper(1) };
    let r = fault_campaign::run(&cfg).expect("fault campaign replay");
    emit("fault_campaign", &render::fault_campaign(&r).render(), &to_json(&r));
}
