//! Thin driver for the registered `fault_campaign` experiment (see
//! [`dtl_sim::experiments::fault_campaign`]). The shared CLI surface (`--tiny`,
//! `--seed`, `--jobs`, `--out`, `--trace-out`, `--metrics-out`) is
//! documented in the `dtl_bench` crate docs.

fn main() {
    dtl_bench::drive("fault_campaign");
}
