//! Runs the fault campaign: the Figure 12 VM schedule replayed fault-free
//! and under a deterministic fault load (ECC noise, an error storm on one
//! victim rank, CXL link CRC corruption, migration interruptions), and
//! reports the capacity, energy, and latency cost of the faults.
//!
//! Pass `--trace-out PATH` for a Chrome/Perfetto trace of the faulted
//! replay (fault strikes, health transitions, CXL retries, power spans)
//! and `--metrics-out PATH` for the metrics dump including the
//! `fault.released.*` counters.

use dtl_bench::{emit, render, TelemetryCli};
use dtl_sim::experiments::fault_campaign;
use dtl_sim::{to_json, FaultRunConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let telemetry = TelemetryCli::from_args();
    let cfg = if quick { FaultRunConfig::tiny_storm(1) } else { fault_campaign::paper(1) };
    let r = fault_campaign::run_traced(&cfg, telemetry.telemetry()).expect("fault campaign replay");
    emit("fault_campaign", &render::fault_campaign(&r).render(), &to_json(&r));
    telemetry.finish_at(dtl_dram::Picos::from_secs(u64::from(cfg.run.duration_min) * 60).as_ps());
}
