//! Thin driver for the registered `ablate_migration_priority` experiment (see
//! [`dtl_sim::experiments::ablate_migration_priority`]). The shared CLI surface (`--tiny`,
//! `--seed`, `--jobs`, `--out`, `--trace-out`, `--metrics-out`) is
//! documented in the `dtl_bench` crate docs.

fn main() {
    dtl_bench::drive("ablate_migration_priority");
}
