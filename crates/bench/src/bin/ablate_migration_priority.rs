//! Ablation: migration scheduling priority (the paper's §4.2 decision that
//! the migration queue issues only when the foreground queue is empty).
//!
//! Replays a foreground stream against the cycle-accurate DRAM simulator
//! while a segment migration runs, with the migration traffic classed as
//! (a) strict-background (the paper's design) and (b) same-priority
//! foreground traffic. The foreground latency difference is the cost the
//! paper's design avoids.

use dtl_bench::emit;
use dtl_dram::{AccessKind, AddressMapping, DramConfig, DramSystem, PhysAddr, Picos, Priority};
use dtl_sim::{f1, to_json, Table};
use dtl_trace::{TraceGen, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    policy: String,
    fg_mean_ns: f64,
    fg_max_ns: f64,
    migration_bytes: u64,
}

fn run(policy_background: bool, requests: u64) -> Row {
    let mut sys = DramSystem::new(DramConfig::tiny(), AddressMapping::dtl_default()).unwrap();
    let cap = sys.config().geometry.capacity_bytes();
    let mut gen = TraceGen::new(WorkloadKind::DataServing.spec().scaled(512), 1);
    // A 256 KiB "segment migration": reads from one region, writes to
    // another, issued up front.
    let seg = 256u64 << 10;
    let mig_priority = if policy_background { Priority::Migration } else { Priority::Foreground };
    for i in 0..(seg / 64) {
        sys.submit(
            PhysAddr::new((cap / 2 + i * 64) % cap),
            AccessKind::Read,
            mig_priority,
            Picos::ZERO,
        )
        .unwrap();
        sys.submit(
            PhysAddr::new((cap / 2 + seg + i * 64) % cap),
            AccessKind::Write,
            mig_priority,
            Picos::ZERO,
        )
        .unwrap();
    }
    // Foreground stream at a moderate rate.
    let mut t = Picos::ZERO;
    let mut fg_ids = std::collections::HashSet::new();
    for _ in 0..requests {
        let r = gen.next_record();
        t += Picos::from_ns(50);
        let id = sys
            .submit(
                PhysAddr::new(r.addr % (cap / 2)),
                if r.is_write { AccessKind::Write } else { AccessKind::Read },
                Priority::Foreground,
                t,
            )
            .unwrap();
        fg_ids.insert(id);
        if sys.pending() > 1024 {
            sys.advance_to(t);
        }
    }
    sys.run_until_idle(Picos::from_us(10));
    let mut sum = 0.0;
    let mut max = 0.0f64;
    let mut n = 0u64;
    for c in sys.drain_completions() {
        if fg_ids.contains(&c.id) {
            let l = c.latency().as_ns_f64();
            sum += l;
            max = max.max(l);
            n += 1;
        }
    }
    Row {
        policy: if policy_background {
            "background (paper)".into()
        } else {
            "same-priority".into()
        },
        fg_mean_ns: sum / n as f64,
        fg_max_ns: max,
        migration_bytes: seg * 2,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let requests = if quick { 5_000 } else { 30_000 };
    let rows = vec![run(true, requests), run(false, requests)];
    let mut t = Table::new(
        "Ablation: migration priority during a 256 KiB segment migration",
        &["policy", "fg_mean_ns", "fg_max_ns"],
    );
    for r in &rows {
        t.row(&[r.policy.clone(), f1(r.fg_mean_ns), f1(r.fg_max_ns)]);
    }
    emit("ablate_migration_priority", &t.render(), &to_json(&rows));
    let delta = rows[1].fg_mean_ns - rows[0].fg_mean_ns;
    println!("strict-background migration keeps foreground latency {delta:.1} ns lower on average");
}
