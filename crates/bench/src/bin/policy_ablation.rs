//! Thin driver for the registered `policy_ablation` experiment (see
//! [`dtl_sim::experiments::policy_ablation`]). The shared CLI surface
//! (`--tiny`, `--seed`, `--jobs`, `--out`, `--trace-out`, `--metrics-out`)
//! is documented in the `dtl_bench` crate docs.

fn main() {
    dtl_bench::drive("policy_ablation");
}
