//! Ablation: why not just use CKE power-down? The conventional alternative
//! to the DTL is the memory controller's own idle power-down (CKE low,
//! precharge power-down at ~35 % of standby power) — no consolidation, no
//! indirection.
//!
//! This study measures per-rank idle-gap distributions under the paper's
//! interleaved traffic with the cycle-accurate simulator, then computes
//! how much background power CKE power-down could reclaim at different
//! entry timeouts. Because fine-grained interleaving keeps *every* rank
//! lukewarm, the gaps are far shorter than any safe timeout — the
//! consolidation that the DTL's indirection enables is what unlocks the
//! savings.

use dtl_bench::emit;
use dtl_dram::{
    AccessKind, AddressMapping, CommandSink, DramConfig, DramSystem, Geometry, IssuedCommand,
    PhysAddr, Picos, PowerParams, PowerState, Priority,
};
use dtl_sim::{pct, to_json, Table};
use dtl_trace::{Mixer, WorkloadKind};
use serde::Serialize;

/// Records the issue time of every command, per rank.
#[derive(Debug, Default)]
struct GapSink {
    per_rank: std::collections::HashMap<(u32, u32), Vec<Picos>>,
}

impl CommandSink for GapSink {
    fn on_command(&mut self, cmd: IssuedCommand) {
        self.per_rank.entry((cmd.channel, cmd.rank)).or_default().push(cmd.at);
    }
}

#[derive(Serialize)]
struct Row {
    utilization_label: String,
    timeout_ns: u64,
    pd_residency: f64,
    cke_background_saving: f64,
    dtl_background_saving: f64,
}

fn measure(gbps: f64, requests: u64, timeouts_ns: &[u64]) -> Vec<(u64, f64)> {
    let geometry = Geometry::cxl_1tb();
    let cfg = DramConfig { geometry, ..DramConfig::cxl_1tb_ddr4_2933() };
    let mut sys = DramSystem::new(cfg, AddressMapping::RankInterleaved).unwrap();
    let specs: Vec<_> = WorkloadKind::TRACED.iter().map(|k| k.spec().scaled(64)).collect();
    let mut mix = Mixer::new(&specs, 1);
    let gap_ps = (64.0 / gbps / 1e9 * 1e12) as u64;
    let mut t = Picos::ZERO;
    let mut sink = GapSink::default();
    let space = mix.address_space_bytes().min(geometry.capacity_bytes());
    for _ in 0..requests {
        let r = mix.next_record();
        t += Picos::from_ps(gap_ps);
        sys.submit(
            PhysAddr::new(r.addr % space),
            if r.is_write { AccessKind::Write } else { AccessKind::Read },
            Priority::Foreground,
            t,
        )
        .unwrap();
        if sys.pending() > 512 {
            sys.advance_to_with_sink(t, &mut sink);
        }
    }
    let mut horizon = t + Picos::from_us(10);
    while sys.pending() > 0 {
        sys.advance_to_with_sink(horizon, &mut sink);
        horizon += Picos::from_us(10);
    }
    // For each timeout: fraction of rank-time spent in gaps longer than the
    // timeout (minus the timeout itself, which is spent waiting to enter).
    let total = t;
    let ranks = geometry.total_ranks() as u128;
    timeouts_ns
        .iter()
        .map(|&to| {
            let timeout = Picos::from_ns(to);
            let mut pd_ps: u128 = 0;
            for times in sink.per_rank.values() {
                let mut prev = Picos::ZERO;
                for &at in times {
                    let gap = at.saturating_sub(prev);
                    if gap > timeout {
                        pd_ps += u128::from((gap - timeout).as_ps());
                    }
                    prev = prev.max(at);
                }
                let tail = total.saturating_sub(prev);
                if tail > timeout {
                    pd_ps += u128::from((tail - timeout).as_ps());
                }
            }
            (to, pd_ps as f64 / (u128::from(total.as_ps()) * ranks) as f64)
        })
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let requests = if quick { 20_000 } else { 120_000 };
    let p = PowerParams::ddr4_128gb_dimm();
    let pd_factor = 1.0 - p.factor(PowerState::PrechargePowerDown); // 0.65 reclaimable
                                                                    // The DTL's Figure 12 background saving at the same occupancy.
    let dtl_saving = 0.457;
    let timeouts = [100u64, 1_000, 10_000];
    let mut rows = Vec::new();
    for (label, gbps) in [("30 GB/s", 30.0), ("10 GB/s", 10.0), ("3 GB/s", 3.0)] {
        for (to, residency) in measure(gbps, requests, &timeouts) {
            rows.push(Row {
                utilization_label: label.to_string(),
                timeout_ns: to,
                pd_residency: residency,
                cke_background_saving: residency * pd_factor,
                dtl_background_saving: dtl_saving,
            });
        }
    }
    let mut t = Table::new(
        "Ablation: CKE idle power-down vs DTL consolidation",
        &["traffic", "timeout", "pd_residency", "cke_bg_saving", "dtl_bg_saving"],
    );
    for r in &rows {
        t.row(&[
            r.utilization_label.clone(),
            format!("{}ns", r.timeout_ns),
            pct(r.pd_residency),
            pct(r.cke_background_saving),
            pct(r.dtl_background_saving),
        ]);
    }
    emit("ablate_cke_powerdown", &t.render(), &to_json(&rows));
    println!(
        "interleaving keeps every rank lukewarm: CKE power-down cannot touch\n\
         what DTL consolidation reclaims unless traffic nearly stops"
    );
}
