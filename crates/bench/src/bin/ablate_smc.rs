//! Ablation: segment mapping cache sizing (the paper picks a 64-entry L1
//! and a 1024-entry 4-way L2; Table 3/5). Sweeps both levels and reports
//! measured miss ratios on the mixed trace plus the resulting AMAT adder.

use dtl_bench::emit;
use dtl_core::{AuId, Dsn, HostId, Hsn, SegmentMappingCache};
use dtl_cxl::AmatModel;
use dtl_dram::Picos;
use dtl_sim::{f1, pct, to_json, Table};
use dtl_trace::{Mixer, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    l1_entries: usize,
    l2_entries: usize,
    l1_miss: f64,
    l2_miss: f64,
    translation_ns: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let accesses = if quick { 100_000 } else { 600_000 };
    // One mixed post-cache trace reused across all SMC sizings.
    let specs: Vec<_> = WorkloadKind::TRACED.iter().map(|k| k.spec().scaled(16)).collect();
    let mut mix = Mixer::new(&specs, 3);
    let seg = dtl_trace::SEGMENT_BYTES;
    let trace: Vec<u32> = (0..accesses).map(|_| (mix.next_record().addr / seg) as u32).collect();
    let mut rows = Vec::new();
    for l1 in [16usize, 32, 64, 128] {
        for l2 in [256usize, 1024, 4096] {
            let mut smc = SegmentMappingCache::new(l1, l2, 4);
            for s in &trace {
                let hsn = Hsn { host: HostId(0), au: AuId(s / 1024), au_offset: s % 1024 };
                let (_, hit) = smc.lookup(hsn);
                if hit.is_none() {
                    smc.fill(hsn, Dsn(u64::from(*s)));
                }
            }
            let st = smc.stats();
            let mut amat = AmatModel::paper(Picos::from_ns(121));
            amat.l1_miss_ratio = st.l1_miss_ratio();
            amat.l2_miss_ratio = st.l2_miss_ratio();
            rows.push(Row {
                l1_entries: l1,
                l2_entries: l2,
                l1_miss: st.l1_miss_ratio(),
                l2_miss: st.l2_miss_ratio(),
                translation_ns: amat.translation_overhead().as_ns_f64(),
            });
        }
    }
    let mut t = Table::new(
        "Ablation: SMC sizing (paper: 64-entry L1, 1024-entry 4-way L2)",
        &["l1", "l2", "l1_miss", "l2_miss", "translation_ns"],
    );
    for r in &rows {
        t.row(&[
            r.l1_entries.to_string(),
            r.l2_entries.to_string(),
            pct(r.l1_miss),
            pct(r.l2_miss),
            f1(r.translation_ns),
        ]);
    }
    emit("ablate_smc", &t.render(), &to_json(&rows));
}
