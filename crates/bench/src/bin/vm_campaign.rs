//! Thin driver for the registered `vm_campaign` experiment (see
//! [`dtl_sim::experiments::vm_campaign`]). Accepts `--hosts N` and
//! `--minutes N` on top of the shared CLI surface (`--tiny`, `--seed`,
//! `--jobs`, `--out`, `--trace-out`, `--metrics-out`) documented in the
//! `dtl_bench` crate docs.

fn main() {
    dtl_bench::drive("vm_campaign");
}
