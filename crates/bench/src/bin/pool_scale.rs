//! Thin driver for the registered `pool_scale` experiment (see
//! [`dtl_sim::experiments::pool_scale`]). The shared CLI surface (`--tiny`,
//! `--seed`, `--jobs`, `--out`, `--trace-out`, `--metrics-out`) is
//! documented in the `dtl_bench` crate docs.

fn main() {
    dtl_bench::drive("pool_scale");
}
