//! Regenerates the §6.6 scaling claim: a larger device (more channels and
//! ranks) loses even less from disabling rank interleaving.

use dtl_bench::emit;
use dtl_sim::experiments::sec6_6;
use dtl_sim::{pct, to_json, Table};
use dtl_trace::WorkloadKind;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let requests = if quick { 8_000 } else { 40_000 };
    let r = sec6_6::run(requests, &WorkloadKind::TRACED);
    let mut t = Table::new(
        "Section 6.6 - device scaling and the cost of the DTL mapping",
        &["device", "channels", "ranks/ch", "mean_slowdown"],
    );
    for row in &r.rows {
        t.row(&[
            row.label.clone(),
            row.channels.to_string(),
            row.ranks_per_channel.to_string(),
            pct(row.mean_slowdown - 1.0),
        ]);
    }
    emit("sec6_6", &t.render(), &to_json(&r));
}
