//! Thin driver for the registered `loaded_latency` experiment (see
//! [`dtl_sim::experiments::loaded_latency`]). The shared CLI surface (`--tiny`,
//! `--seed`, `--jobs`, `--out`, `--trace-out`, `--metrics-out`) is
//! documented in the `dtl_bench` crate docs.

fn main() {
    dtl_bench::drive("loaded_latency");
}
