//! Validates the loaded-latency model against the cycle-level simulator
//! (standard memory bandwidth-latency characterization, cf. Intel MLC).

use dtl_bench::emit;
use dtl_sim::experiments::loaded_latency;
use dtl_sim::{f1, to_json, Table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let requests = if quick { 4_000 } else { 20_000 };
    let r = loaded_latency::run(3, requests);
    let mut t = Table::new(
        "Loaded latency - cycle simulator vs M/D/1 model (one channel)",
        &["offered_gbps", "measured_ns", "model_ns"],
    );
    for p in &r.points {
        t.row(&[f1(p.offered / 1e9), f1(p.measured_ns), p.predicted_ns.map_or("-".into(), f1)]);
    }
    emit("loaded_latency", &t.render(), &to_json(&r));
}
