//! Regenerates Figure 2: performance with varying numbers of active ranks.

use dtl_bench::{emit, render};
use dtl_sim::experiments::fig02;
use dtl_sim::to_json;
use dtl_trace::WorkloadKind;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let requests = if quick { 10_000 } else { 60_000 };
    let r = fig02::run(requests, &WorkloadKind::ALL);
    emit("fig02", &render::fig02(&r).render(), &to_json(&r));
}
