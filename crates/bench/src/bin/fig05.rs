//! Regenerates Figure 5: the cost of disabling rank interleaving, local vs
//! CXL.

use dtl_bench::{emit, render};
use dtl_sim::experiments::fig05;
use dtl_sim::to_json;
use dtl_trace::WorkloadKind;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let requests = if quick { 10_000 } else { 60_000 };
    let r = fig05::run(requests, &WorkloadKind::TRACED);
    emit("fig05", &render::fig05(&r).render(), &to_json(&r));
}
