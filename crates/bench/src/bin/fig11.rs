//! Regenerates Figure 11: the DRAM power model.

use dtl_bench::{emit, render};
use dtl_sim::experiments::fig11;
use dtl_sim::to_json;

fn main() {
    let r = fig11::run();
    let (a, b) = render::fig11(&r);
    emit("fig11", &format!("{}\n{}", a.render(), b.render()), &to_json(&r));
}
