//! Regenerates Figure 15: total savings from both mechanisms stacked.

use dtl_bench::{emit, render};
use dtl_sim::experiments::{fig14, fig15};
use dtl_sim::{to_json, HotnessRunConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut base = HotnessRunConfig::paper_scaled(1, 6, 208.0 / 288.0);
    if quick {
        base.accesses = 1_000_000;
        base.scale = 256;
    }
    let r = fig15::run(&base, 8, &fig14::PAPER_POINTS).expect("hotness replay");
    emit("fig15", &render::fig15(&r).render(), &to_json(&r));
}
