//! Ablation: row-buffer policy under the DTL's rank-MSB mapping. The
//! Figure 6 layout keeps each 2 MiB segment row-buffer-friendly, which
//! only pays off under an open-page controller; closed-page (auto
//! precharge) forfeits those hits.

use dtl_bench::emit;
use dtl_dram::{AddressMapping, PagePolicy};
use dtl_sim::experiments::latency_sweep::{measure, SweepConfig};
use dtl_sim::{f1, pct, to_json, Table};
use dtl_trace::WorkloadKind;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    policy: String,
    amat_ns: f64,
    row_hit_fraction: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let requests = if quick { 8_000 } else { 40_000 };
    let mut rows = Vec::new();
    for kind in
        [WorkloadKind::MediaStreaming, WorkloadKind::DataServing, WorkloadKind::GraphAnalytics]
    {
        for policy in [PagePolicy::OpenPage, PagePolicy::ClosedPage] {
            let mut cfg = SweepConfig::paper(8, AddressMapping::dtl_default(), 0);
            cfg.requests = requests;
            cfg.page_policy = policy;
            let out = measure(&cfg, &kind.spec());
            rows.push(Row {
                workload: kind.name().to_string(),
                policy: format!("{policy:?}"),
                amat_ns: out.amat.as_ns_f64(),
                row_hit_fraction: out.row_hit_fraction,
            });
        }
    }
    let mut t = Table::new(
        "Ablation: page policy under the DTL mapping",
        &["workload", "policy", "amat_ns", "row_hits"],
    );
    for r in &rows {
        t.row(&[r.workload.clone(), r.policy.clone(), f1(r.amat_ns), pct(r.row_hit_fraction)]);
    }
    emit("ablate_page_policy", &t.render(), &to_json(&rows));
}
