//! Thin driver for the registered `sec3_4_reentry` experiment (see
//! [`dtl_sim::experiments::sec3_4_reentry`]). The shared CLI surface (`--tiny`,
//! `--seed`, `--jobs`, `--out`, `--trace-out`, `--metrics-out`) is
//! documented in the `dtl_bench` crate docs.

fn main() {
    dtl_bench::drive("sec3_4_reentry");
}
