//! Reproduces the §3.4 re-entry claim: after a self-refreshing victim rank
//! is woken by an access, most of its segments are still cold, so
//! re-entering self-refresh needs only a little migration.

use dtl_bench::emit;
use dtl_sim::{run_reentry, to_json, HotnessRunConfig, Table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut cfg = HotnessRunConfig::paper_scaled(1, 6, 224.0 / 288.0);
    if quick {
        cfg = HotnessRunConfig {
            allocated_fraction: 0.8,
            accesses: 2_000_000,
            ..HotnessRunConfig::tiny(5, true)
        };
    }
    let r = run_reentry(&cfg).expect("re-entry study");
    let mut t = Table::new("Section 3.4 - self-refresh exit and re-entry", &["metric", "value"]);
    t.row(&["migrations before first SR entries".into(), r.initial_migrations.to_string()]);
    t.row(&["probes until a victim woke".into(), r.probes_to_wake.to_string()]);
    t.row(&["migrations to re-enter".into(), r.reentry_migrations.to_string()]);
    t.row(&["time to re-enter".into(), r.reentry_time.to_string()]);
    t.row(&["total SR entries".into(), r.sr_entries.to_string()]);
    emit("sec3_4_reentry", &t.render(), &to_json(&r));
    println!(
        "re-entry needed {} migrations vs {} during warmup — most victim \
         segments stayed cold, as the paper claims",
        r.reentry_migrations, r.initial_migrations
    );
}
