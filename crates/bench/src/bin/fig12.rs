//! Regenerates Figures 12 and 13: rank-level power-down over a 6-hour VM
//! schedule (runtime power, energy savings, breakdown).

use dtl_bench::{emit, render};
use dtl_sim::experiments::fig12;
use dtl_sim::{to_json, PowerDownRunConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg =
        if quick { PowerDownRunConfig::tiny(1, true) } else { PowerDownRunConfig::paper(1, true) };
    // Execution-overhead inputs: Figure 5's CXL interleaving cost plus the
    // Section 6.1 translation inflation.
    let r = fig12::run(&cfg, (0.014, 0.0018)).expect("schedule replay");
    emit(
        "fig12",
        &format!("{}\n{}", render::fig12(&r).render(), render::fig13(&r).render()),
        &to_json(&r),
    );
}
