//! Regenerates Figures 12 and 13: rank-level power-down over a 6-hour VM
//! schedule (runtime power, energy savings, breakdown).
//!
//! Pass `--trace-out PATH` for a Chrome/Perfetto power-state trace of the
//! DTL replay and `--metrics-out PATH` for the metrics dump.

use dtl_bench::{emit, render, TelemetryCli};
use dtl_sim::experiments::fig12;
use dtl_sim::{to_json, PowerDownRunConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let telemetry = TelemetryCli::from_args();
    let cfg =
        if quick { PowerDownRunConfig::tiny(1, true) } else { PowerDownRunConfig::paper(1, true) };
    // Execution-overhead inputs: Figure 5's CXL interleaving cost plus the
    // Section 6.1 translation inflation.
    let r =
        fig12::run_traced(&cfg, (0.014, 0.0018), telemetry.telemetry()).expect("schedule replay");
    emit(
        "fig12",
        &format!("{}\n{}", render::fig12(&r).render(), render::fig13(&r).render()),
        &to_json(&r),
    );
    telemetry.finish_at(dtl_dram::Picos::from_secs(u64::from(cfg.duration_min) * 60).as_ps());
}
