//! Runs the differential fuzzer: the cycle-level DTL device and the flat
//! reference model (`dtl-check`) replay seeded random op streams in
//! lockstep while an external invariant suite cross-checks translation
//! bijectivity, residency conservation, power safety, and shadowed
//! segment contents. The acceptance batch drives ≥ 10 000 ops over ≥ 20
//! seeds (including deterministic fault plans) and must report zero
//! violations.
//!
//! * `--smoke` — the time-boxed CI batch (a few seconds, fixed seeds).
//! * `--seeds N` / `--ops N` — override the clean-seed count / ops per
//!   seed of the acceptance batch.
//! * `--replay JSON` — re-run a shrunk counterexample printed by a
//!   failing run and exit nonzero if it still fails.

use dtl_bench::{emit, render};
use dtl_check::Counterexample;
use dtl_sim::experiments::diff_fuzz;
use dtl_sim::{to_json, CheckRunConfig};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    if let Some(json) = arg_value("--replay") {
        let ce = Counterexample::from_json(&json).expect("parse counterexample JSON");
        match ce.reproduce() {
            Some(failure) => {
                eprintln!("reproduced: {failure}");
                std::process::exit(1);
            }
            None => {
                println!("counterexample no longer fails ({} ops)", ce.ops.len());
                return;
            }
        }
    }

    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut cfg = if smoke { CheckRunConfig::smoke() } else { CheckRunConfig::acceptance() };
    if let Some(n) = arg_value("--seeds").and_then(|v| v.parse::<u64>().ok()) {
        cfg.clean_seeds = (0..n).collect();
    }
    if let Some(n) = arg_value("--ops").and_then(|v| v.parse::<usize>().ok()) {
        cfg.ops_per_seed = n;
    }

    let r = diff_fuzz::run(&cfg);
    emit("diff_fuzz", &render::diff_fuzz(&r).render(), &to_json(&r));
    if let Some(ce) = &r.first_counterexample {
        eprintln!("first counterexample (replay with --replay '<json>'):\n{ce}");
        std::process::exit(1);
    }
}
