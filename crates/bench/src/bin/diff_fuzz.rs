//! Thin driver for the registered `diff_fuzz` experiment (see
//! [`dtl_sim::experiments::diff_fuzz`]). The shared CLI surface (`--tiny`,
//! `--seed`, `--jobs`, `--out`, `--trace-out`, `--metrics-out`) is
//! documented in the `dtl_bench` crate docs.

fn main() {
    dtl_bench::drive("diff_fuzz");
}
