//! Runs every experiment at (optionally quick) scale — the one-command
//! reproduction of the paper's evaluation section.

use std::process::Command;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin directory");
    let bins = [
        "fig01",
        "fig02",
        "fig05",
        "fig09",
        "fig10",
        "fig11",
        "fig12",
        "fig14",
        "fig15",
        "tab04",
        "tab05",
        "tab06",
        "sec6_1",
        "sec6_6",
        "sec3_4_reentry",
        "cache_pipeline",
        "ablate_segment_size",
        "ablate_smc",
        "ablate_hotness_params",
        "ablate_migration_priority",
        "ablate_cke_powerdown",
        "ablate_page_policy",
        "loaded_latency",
    ];
    for b in bins {
        println!("\n########## {b} ##########");
        let mut cmd = Command::new(dir.join(b));
        if quick {
            cmd.arg("--quick");
        }
        let status = cmd.status().unwrap_or_else(|e| panic!("failed to launch {b}: {e}"));
        assert!(status.success(), "{b} failed with {status}");
    }
    println!("\nall experiments regenerated; JSON results under results/");
}
