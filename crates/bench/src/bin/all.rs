//! Runs every registered experiment at (optionally `--tiny`/`--quick`)
//! scale, in process — the one-command reproduction of the paper's
//! evaluation section. The set of experiments is the
//! [`dtl_sim::experiments::registry`] itself, so a newly registered
//! experiment is picked up with no list to maintain here.
//!
//! * `--list` — print `name — summary` for every registered experiment
//!   and exit (CI greps this against `src/bin/` to catch drift).
//! * Shared flags (`--tiny`, `--seed`, `--jobs`, …) apply to every
//!   experiment; see the `dtl_bench` crate docs.

use dtl_bench::ExperimentCli;
use dtl_sim::experiments::registry;

fn main() {
    if std::env::args().any(|a| a == "--list") {
        for exp in registry() {
            println!("{} — {}", exp.name(), exp.summary());
        }
        return;
    }
    let cli = ExperimentCli::from_args();
    for exp in registry() {
        println!("\n########## {} ##########", exp.name());
        if let Err(msg) = dtl_bench::drive_experiment(*exp, &cli) {
            eprintln!("{msg}");
            eprintln!("{} failed; aborting the sweep", exp.name());
            std::process::exit(1);
        }
    }
    println!("\nall {} experiments regenerated; JSON results under results/", registry().len());
}
