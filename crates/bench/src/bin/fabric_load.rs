//! Thin driver for the registered `fabric_load` experiment (see
//! [`dtl_sim::experiments::fabric_load`]). The shared CLI surface
//! (`--tiny`, `--seed`, `--jobs`, `--out`, `--trace-out`,
//! `--metrics-out`) is documented in the `dtl_bench` crate docs.

fn main() {
    dtl_bench::drive("fabric_load");
}
