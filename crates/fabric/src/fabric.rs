//! The switched fabric: static routes over the validated topology, two
//! port crossings per access, per-device link-layer retry engines, and the
//! fabric-wide fairness/energy report.

use std::collections::BTreeMap;

use dtl_core::HostId;
use dtl_cxl::{LinkDelivery, LinkModel, LinkRetryStats, RetryEngine, RetryPolicy};
use dtl_dram::Picos;
use dtl_telemetry::{EventKind, Histogram, LatencySummary, Telemetry};
use serde::{Deserialize, Serialize};

use crate::port::{Port, PortReport};
use crate::topology::TopologyConfig;
use crate::{FabricError, Interconnect, Route};

/// One host's slice of the fabric-wide fairness ledger.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostShare {
    /// The host.
    pub host: u16,
    /// Bytes the fabric moved for it (each transfer counted once, not per
    /// port crossed).
    pub bytes: u64,
    /// Transfers the fabric carried for it.
    pub transfers: u64,
    /// Total port queue wait its transfers paid, picoseconds.
    pub queue_wait_ps: u64,
    /// Its fraction of all bytes the fabric moved, 0..=1.
    pub share: f64,
}

/// End-of-run summary of the fabric: per-port counters, the switch-port
/// energy headline, and the per-host fairness ledger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricReport {
    /// Per-port reports, in global port order (up ports first).
    pub ports: Vec<PortReport>,
    /// Ports that carried at least one transfer.
    pub ports_used: u64,
    /// Sum of every port's energy over the horizon, millijoules.
    pub port_energy_mj: f64,
    /// Highest per-port wire utilization, 0..=1.
    pub max_utilization: f64,
    /// Transfers the fabric carried (each counted once).
    pub transfers: u64,
    /// Bytes the fabric carried (each counted once).
    pub bytes: u64,
    /// Per-host fairness ledger, ascending host id.
    pub hosts: Vec<HostShare>,
}

impl FabricReport {
    /// The smallest and largest per-host byte share, 0..=1 each — equal
    /// shares mean the fabric served its hosts evenly under saturation.
    pub fn share_bounds(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for h in &self.hosts {
            lo = lo.min(h.share);
            hi = hi.max(h.share);
        }
        if self.hosts.is_empty() {
            (0.0, 0.0)
        } else {
            (lo, hi)
        }
    }
}

/// Per-host fabric-wide accumulators.
#[derive(Debug, Default, Clone, Copy)]
struct HostLedger {
    bytes: u64,
    transfers: u64,
    queue_wait_ps: u64,
}

/// A switch-hierarchy CXL fabric implementing [`Interconnect`].
///
/// Every access crosses two ports (the host's up port, then the target
/// head's down port), each a FIFO resource whose backlog is integrated
/// analytically (see [`crate::port`]), plus the base propagation
/// round-trip and the per-device CRC retry engine. Multi-headed devices
/// route through the lowest-id switch the host shares with any head.
#[derive(Debug)]
pub struct CxlFabric {
    topo: TopologyConfig,
    link: LinkModel,
    ports: Vec<Port>,
    /// `(host, device) -> (switch, up port, down port)`, resolved once at
    /// construction from the validated topology.
    routes: BTreeMap<(u16, u16), (u16, u32, u32)>,
    engines: Vec<RetryEngine>,
    telemetry: Vec<Telemetry>,
    queue_hist: Histogram,
    hosts: BTreeMap<u16, HostLedger>,
}

impl CxlFabric {
    /// Builds a fabric over `topo` with per-device links modeled by `link`
    /// (propagation) and `retry` (CRC replay).
    ///
    /// # Errors
    ///
    /// [`FabricError::InvalidTopology`] when the topology fails
    /// [`TopologyConfig::validate`].
    pub fn new(
        topo: TopologyConfig,
        link: LinkModel,
        retry: RetryPolicy,
    ) -> Result<Self, FabricError> {
        topo.validate()?;
        let ports = (0..topo.ports())
            .map(|p| {
                let owner = topo.port_owner(p).expect("id in range");
                let switch = topo.port_switch(p).expect("id in range");
                Port::new(owner, switch, topo.port)
            })
            .collect();
        let mut routes = BTreeMap::new();
        for h in 0..topo.hosts {
            for d in 0..topo.devices {
                let r = topo.resolve(h, d).expect("validated topologies route every pair");
                routes.insert((h, d), r);
            }
        }
        let engines = (0..topo.devices)
            .map(|_| {
                let mut e = RetryEngine::new(retry);
                e.set_base_latency(link.round_trip());
                e
            })
            .collect();
        let telemetry = vec![Telemetry::disabled(); usize::from(topo.devices)];
        Ok(CxlFabric {
            topo,
            link,
            ports,
            routes,
            engines,
            telemetry,
            queue_hist: Histogram::default(),
            hosts: BTreeMap::new(),
        })
    }

    /// The topology the fabric was built over.
    pub fn topology(&self) -> &TopologyConfig {
        &self.topo
    }

    /// Pushes one transfer through both ports of its route, returning
    /// `(queue wait, total port+switch delay)`. Shared by the access and
    /// bulk paths.
    fn cross(&mut self, host: HostId, device: u16, bytes: u64, now: Picos) -> (Picos, Picos) {
        let &(_, up, down) = self.routes.get(&(host.0, device)).expect("routed pair");
        let t = &self.telemetry[usize::from(device)];
        let a = self.ports[up as usize].submit(host.0, bytes, now);
        t.emit(
            now.as_ps(),
            EventKind::FabricTransfer { port: up, bytes, queue_ps: a.wait.as_ps() },
        );
        let arrive = a.done + self.topo.switch_latency;
        let b = self.ports[down as usize].submit(host.0, bytes, arrive);
        t.emit(
            arrive.as_ps(),
            EventKind::FabricTransfer { port: down, bytes, queue_ps: b.wait.as_ps() },
        );
        let wait = a.wait + b.wait;
        // Forward path: both serializations, both waits, one switch
        // crossing; the response crosses the switch once more (its wire
        // occupancy is folded into the port serialization charge).
        let total = b.done + self.topo.switch_latency - now;
        let ledger = self.hosts.entry(host.0).or_default();
        ledger.bytes += bytes;
        ledger.transfers += 1;
        ledger.queue_wait_ps += wait.as_ps();
        (wait, total)
    }
}

impl Interconnect for CxlFabric {
    fn devices(&self) -> u16 {
        self.topo.devices
    }

    fn route(&self, host: HostId, device: u16) -> Option<Route> {
        self.routes.get(&(host.0, device)).map(|&(switch, up, down)| Route::Switched {
            switch,
            up_port: up,
            down_port: down,
        })
    }

    fn round_trip(&self, _host: HostId, _device: u16) -> Picos {
        // Control-plane charge: propagation plus two switch crossings, no
        // queueing (admission does not serialize data through the ports).
        self.link.round_trip() + self.topo.switch_latency + self.topo.switch_latency
    }

    fn submit_at(&mut self, host: HostId, device: u16, bytes: u64, now: Picos) -> LinkDelivery {
        let (wait, port_delay) = self.cross(host, device, bytes, now);
        self.queue_hist.observe(wait.as_ps());
        let retry = self.engines[usize::from(device)].on_submit_at(now + port_delay);
        LinkDelivery {
            delay: self.link.round_trip() + port_delay + retry.delay,
            clean: retry.clean,
        }
    }

    fn charge_bulk(&mut self, host: HostId, device: u16, bytes: u64, now: Picos) -> Picos {
        // Background copies occupy the wire and the fairness ledger but
        // skip the retry engine and the SLO queue histogram.
        let (_, port_delay) = self.cross(host, device, bytes, now);
        port_delay
    }

    fn advance_to(&mut self, now: Picos) {
        for e in &mut self.engines {
            e.release_due(now);
        }
    }

    fn next_activity_at(&self) -> Option<Picos> {
        self.engines.iter().filter_map(RetryEngine::next_burst_at).min()
    }

    fn inject_crc_burst(&mut self, device: u16, burst: u32) -> bool {
        match self.engines.get_mut(usize::from(device)) {
            Some(e) => {
                e.inject_crc_burst(burst);
                true
            }
            None => false,
        }
    }

    fn device_stats(&self, device: u16) -> LinkRetryStats {
        self.engines.get(usize::from(device)).map(RetryEngine::stats).unwrap_or_default()
    }

    fn set_device_telemetry(&mut self, device: u16, telemetry: Telemetry) {
        if let Some(e) = self.engines.get_mut(usize::from(device)) {
            e.set_telemetry(telemetry.clone());
        }
        if let Some(t) = self.telemetry.get_mut(usize::from(device)) {
            *t = telemetry;
        }
    }

    fn queue_latency(&self) -> Option<LatencySummary> {
        LatencySummary::from_histogram(&self.queue_hist)
    }

    fn fabric_report(&self, end: Picos) -> Option<FabricReport> {
        let ports: Vec<PortReport> = self.ports.iter().map(|p| p.report(end)).collect();
        let total_bytes: u64 = self.hosts.values().map(|l| l.bytes).sum();
        let hosts = self
            .hosts
            .iter()
            .map(|(&host, l)| HostShare {
                host,
                bytes: l.bytes,
                transfers: l.transfers,
                queue_wait_ps: l.queue_wait_ps,
                share: if total_bytes == 0 { 0.0 } else { l.bytes as f64 / total_bytes as f64 },
            })
            .collect();
        Some(FabricReport {
            ports_used: ports.iter().filter(|p| p.transfers > 0).count() as u64,
            port_energy_mj: ports.iter().map(|p| p.energy_mj).sum(),
            max_utilization: ports.iter().map(|p| p.utilization).fold(0.0, f64::max),
            transfers: self.hosts.values().map(|l| l.transfers).sum(),
            bytes: total_bytes,
            hosts,
            ports,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(hosts: u16, devices: u16) -> CxlFabric {
        CxlFabric::new(
            TopologyConfig::dual_switch(hosts, devices),
            LinkModel::cxl(),
            RetryPolicy::default(),
        )
        .unwrap()
    }

    #[test]
    fn clean_submit_charges_propagation_ports_and_switches() {
        let mut f = fabric(2, 4);
        let now = Picos::from_us(3);
        let d = f.submit_at(HostId(0), 0, 64, now);
        assert!(d.clean);
        // Empty fabric: round trip + 2x64B serialization + 2x switch hop.
        let ser = Picos::from_ns(2);
        let expected =
            LinkModel::cxl().round_trip() + ser + ser + Picos::from_ns(25) + Picos::from_ns(25);
        assert_eq!(d.delay, expected);
        assert_eq!(f.queue_latency().unwrap().count, 1);
    }

    #[test]
    fn contention_on_a_shared_down_port_queues_fifo() {
        let mut f = fabric(2, 4);
        let now = Picos::from_us(1);
        let first = f.submit_at(HostId(0), 0, 64, now);
        // Host 1 hits the same device at the same instant: its up port is
        // free but device 0's down port is busy with host 0's transfer.
        let second = f.submit_at(HostId(1), 0, 64, now);
        assert!(second.delay > first.delay, "{:?} vs {:?}", second.delay, first.delay);
        let r = f.fabric_report(Picos::from_us(2)).unwrap();
        assert_eq!(r.transfers, 2);
        assert_eq!(r.bytes, 128);
        let (lo, hi) = r.share_bounds();
        assert_eq!((lo, hi), (0.5, 0.5), "equal traffic, equal shares");
    }

    #[test]
    fn per_host_ledger_conserves_bytes_against_ports() {
        let mut f = fabric(2, 4);
        for k in 0..20u64 {
            let host = HostId((k % 2) as u16);
            let dev = (k % 4) as u16;
            f.submit_at(host, dev, 64 + k, Picos::from_ns(k * 500));
        }
        f.charge_bulk(HostId(0), 1, 1 << 20, Picos::from_us(50));
        let r = f.fabric_report(Picos::from_ms(1)).unwrap();
        let host_total: u64 = r.hosts.iter().map(|h| h.bytes).sum();
        assert_eq!(host_total, r.bytes, "fairness ledger covers every byte once");
        // Each byte crosses exactly two ports.
        let port_total: u64 = r.ports.iter().map(|p| p.bytes).sum();
        assert_eq!(port_total, 2 * r.bytes);
        for p in &r.ports {
            let per_host: u64 = p.per_host_bytes.iter().map(|&(_, b)| b).sum();
            assert_eq!(per_host, p.bytes, "port ledger sums to the port total");
        }
    }

    #[test]
    fn crc_bursts_reach_the_routed_device_engine() {
        let mut f = fabric(1, 2);
        assert!(f.inject_crc_burst(1, 3));
        assert!(!f.inject_crc_burst(9, 1), "out-of-range device rejected");
        let clean = f.submit_at(HostId(0), 0, 64, Picos::from_us(1));
        let dirty = f.submit_at(HostId(0), 1, 64, Picos::from_us(1));
        assert!(clean.clean);
        assert!(dirty.delay > clean.delay, "burst charges replay backoff");
        assert_eq!(f.device_stats(1).crc_errors, 3);
        assert_eq!(f.stats().crc_errors, 3);
    }

    #[test]
    fn packing_under_one_switch_uses_fewer_ports_than_spreading() {
        let mut pack = fabric(2, 4);
        let mut spread = fabric(2, 4);
        for k in 0..8u64 {
            let host = HostId((k % 2) as u16);
            let at = Picos::from_us(10 * k);
            pack.submit_at(host, 0, 64, at);
            spread.submit_at(host, (k % 4) as u16, 64, at);
        }
        let end = Picos::from_ms(1);
        let p = pack.fabric_report(end).unwrap();
        let s = spread.fabric_report(end).unwrap();
        assert!(p.ports_used < s.ports_used, "{} vs {}", p.ports_used, s.ports_used);
        assert!(p.port_energy_mj < s.port_energy_mj, "sleeping ports save energy");
    }
}
