//! The per-port contention model: FIFO serialization with
//! utilization-dependent queueing, integrated analytically between events.
//!
//! A port is a single serializing resource. Each transfer arriving at
//! `arrive` starts at `max(arrive, busy_until)` and occupies the wire for
//! `bytes * 1e6 / bytes_per_us` picoseconds — so the queue wait a transfer
//! sees is exactly the backlog the earlier arrivals left behind, computed
//! in closed form without simulating the queue entry-by-entry. Everything
//! is integer picosecond arithmetic; the only floats are the energy
//! numbers derived at report time.
//!
//! The port also keeps the fairness ledger the QoS accounting reads:
//! bytes and queue waits attributed per host, whose sums must equal the
//! port totals (pinned by the conservation proptest).

use std::collections::BTreeMap;

use dtl_dram::Picos;
use serde::{Deserialize, Serialize};

use crate::topology::{PortConfig, PortOwner};

/// What one transfer paid at one port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PortCharge {
    /// Time spent queued behind earlier transfers.
    pub wait: Picos,
    /// Serialization time on the wire.
    pub ser: Picos,
    /// Instant the transfer fully drained through the port.
    pub done: Picos,
}

/// One fabric port: FIFO backlog, awake/asleep windows, and the per-host
/// byte ledger.
#[derive(Debug)]
pub(crate) struct Port {
    owner: PortOwner,
    switch: u16,
    cfg: PortConfig,
    /// When the current backlog drains; arrivals before this queue.
    busy_until: Picos,
    /// Start of the open awake window, if the port ever woke.
    awake_since: Option<Picos>,
    /// When the open awake window closes absent new traffic.
    awake_until: Picos,
    /// Closed awake windows, accumulated.
    active_ps: u64,
    /// Total wire occupancy (serialization time), for utilization.
    busy_ps: u64,
    bytes: u64,
    transfers: u64,
    queue_wait_ps: u64,
    per_host_bytes: BTreeMap<u16, u64>,
    per_host_wait_ps: BTreeMap<u16, u64>,
}

impl Port {
    pub(crate) fn new(owner: PortOwner, switch: u16, cfg: PortConfig) -> Self {
        Port {
            owner,
            switch,
            cfg,
            busy_until: Picos::ZERO,
            awake_since: None,
            awake_until: Picos::ZERO,
            active_ps: 0,
            busy_ps: 0,
            bytes: 0,
            transfers: 0,
            queue_wait_ps: 0,
            per_host_bytes: BTreeMap::new(),
            per_host_wait_ps: BTreeMap::new(),
        }
    }

    /// Serialization time for `bytes` at this port's bandwidth (≥ 1 ps).
    fn ser_time(&self, bytes: u64) -> Picos {
        let ps = u128::from(bytes) * 1_000_000u128 / u128::from(self.cfg.bytes_per_us);
        Picos::from_ps((ps as u64).max(1))
    }

    /// Charges a transfer of `bytes` for `host` arriving at `arrive`,
    /// advancing the FIFO backlog and the awake window.
    pub(crate) fn submit(&mut self, host: u16, bytes: u64, arrive: Picos) -> PortCharge {
        match self.awake_since {
            None => self.awake_since = Some(arrive),
            Some(since) => {
                if arrive >= self.awake_until {
                    // The previous awake window closed before this arrival;
                    // bank it and wake afresh.
                    self.active_ps += self.awake_until.saturating_sub(since).as_ps();
                    self.awake_since = Some(arrive);
                }
            }
        }
        let ser = self.ser_time(bytes);
        let start = self.busy_until.max(arrive);
        let wait = start.saturating_sub(arrive);
        let done = start + ser;
        self.busy_until = done;
        self.awake_until = done + self.cfg.sleep_timeout;
        self.busy_ps += ser.as_ps();
        self.bytes += bytes;
        self.transfers += 1;
        self.queue_wait_ps += wait.as_ps();
        *self.per_host_bytes.entry(host).or_default() += bytes;
        *self.per_host_wait_ps.entry(host).or_default() += wait.as_ps();
        PortCharge { wait, ser, done }
    }

    /// Picoseconds the port spent awake over `[0, end]`, counting the
    /// still-open window (clamped to `end`). Non-destructive.
    fn awake_ps(&self, end: Picos) -> u64 {
        let open = self
            .awake_since
            .map(|since| self.awake_until.min(end).saturating_sub(since).as_ps())
            .unwrap_or(0);
        self.active_ps + open
    }

    /// Summarizes the port over the horizon `[0, end]`.
    pub(crate) fn report(&self, end: Picos) -> PortReport {
        let horizon_ps = end.as_ps().max(1);
        let awake_ps = self.awake_ps(end).min(horizon_ps);
        let awake_s = awake_ps as f64 * 1e-12;
        let asleep_s = (horizon_ps - awake_ps) as f64 * 1e-12;
        let energy_mj = self.cfg.active_mw * awake_s
            + self.cfg.sleep_mw * asleep_s
            + self.cfg.pj_per_byte * self.bytes as f64 * 1e-9;
        PortReport {
            owner: self.owner,
            switch: self.switch,
            transfers: self.transfers,
            bytes: self.bytes,
            queue_wait_ps: self.queue_wait_ps,
            utilization: self.busy_ps.min(horizon_ps) as f64 / horizon_ps as f64,
            awake_fraction: awake_ps as f64 / horizon_ps as f64,
            energy_mj,
            per_host_bytes: self.per_host_bytes.iter().map(|(&h, &b)| (h, b)).collect(),
            per_host_wait_ps: self.per_host_wait_ps.iter().map(|(&h, &w)| (h, w)).collect(),
        }
    }
}

/// One port's contribution to a [`FabricReport`](crate::FabricReport).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortReport {
    /// The endpoint owning the port.
    pub owner: PortOwner,
    /// The switch it hangs off.
    pub switch: u16,
    /// Transfers serialized.
    pub transfers: u64,
    /// Bytes serialized.
    pub bytes: u64,
    /// Total queue wait transfers paid here, picoseconds.
    pub queue_wait_ps: u64,
    /// Wire occupancy over the horizon, 0..=1.
    pub utilization: f64,
    /// Fraction of the horizon the port was awake, 0..=1.
    pub awake_fraction: f64,
    /// Port energy over the horizon (awake/asleep power plus switching),
    /// millijoules.
    pub energy_mj: f64,
    /// Bytes attributed per host, ascending host id; sums to `bytes`.
    pub per_host_bytes: Vec<(u16, u64)>,
    /// Queue wait attributed per host, ascending host id; sums to
    /// `queue_wait_ps`.
    pub per_host_wait_ps: Vec<(u16, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn port() -> Port {
        Port::new(PortOwner::Device(0), 0, PortConfig::default())
    }

    #[test]
    fn fifo_backlog_queues_same_instant_arrivals() {
        let mut p = port();
        let now = Picos::from_us(5);
        // 64 B at 32 B/ns serializes in 2 ns.
        let a = p.submit(0, 64, now);
        assert_eq!(a.wait, Picos::ZERO);
        assert_eq!(a.ser, Picos::from_ns(2));
        let b = p.submit(1, 64, now);
        assert_eq!(b.wait, Picos::from_ns(2), "second arrival queues behind the first");
        assert_eq!(b.done, now + Picos::from_ns(4));
        // After the backlog drains the queue is empty again.
        let c = p.submit(0, 64, now + Picos::from_us(1));
        assert_eq!(c.wait, Picos::ZERO);
    }

    #[test]
    fn per_host_ledger_conserves_port_totals() {
        let mut p = port();
        for k in 0..10u64 {
            p.submit((k % 3) as u16, 64 + k, Picos::from_ns(k * 100));
        }
        let r = p.report(Picos::from_us(10));
        assert_eq!(r.per_host_bytes.iter().map(|&(_, b)| b).sum::<u64>(), r.bytes);
        assert_eq!(r.per_host_wait_ps.iter().map(|&(_, w)| w).sum::<u64>(), r.queue_wait_ps);
    }

    #[test]
    fn awake_windows_close_after_the_sleep_timeout() {
        let mut p = port();
        p.submit(0, 64, Picos::from_us(1));
        // Sparse traffic: the port sleeps between the two windows.
        p.submit(0, 64, Picos::from_us(100));
        let r = p.report(Picos::from_us(200));
        // Two ~1 µs awake windows out of 200 µs.
        assert!(r.awake_fraction > 0.005 && r.awake_fraction < 0.03, "{}", r.awake_fraction);
        let idle = port().report(Picos::from_us(200));
        assert!(idle.energy_mj < r.energy_mj, "an awake port outspends a sleeping one");
        assert_eq!(idle.awake_fraction, 0.0);
    }
}
