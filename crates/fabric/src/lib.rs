//! CXL fabric model: switch-hierarchy topologies, per-port FIFO contention,
//! multi-headed devices, and the [`Interconnect`] trait that pool harnesses
//! charge traffic through.
//!
//! The paper evaluates the DRAM Translation Layer on a point-to-point CXL
//! link — one host, one device, a fixed propagation round trip plus the
//! link-layer CRC retry penalty. Disaggregated deployments are not wired
//! that way: hosts reach pooled devices through a hierarchy of CXL switches
//! whose ports are finite shared resources, and a device can expose several
//! *heads* so multiple hosts reach it without crossing an extra switch tier.
//! This crate models that fabric analytically on the discrete-event spine:
//!
//! - [`TopologyConfig`] declares hosts, switches, devices, and the
//!   host-link / device-link edge lists, and validates them (every endpoint
//!   attached, no duplicate edges, full host × device reachability).
//! - A port (see [`PortReport`]) is a FIFO wire: each transfer serializes at the port's
//!   bandwidth behind earlier arrivals, so queue wait is integrated
//!   *between* events rather than cycle-stepped, and an idle timeout lets
//!   unused ports sleep (the switch-port energy headline).
//! - [`CxlFabric`] routes each access through its host's up port and the
//!   target head's down port, charges both crossings plus the propagation
//!   round trip and the per-device retry engine, and keeps a per-host
//!   fairness ledger for saturation analysis.
//! - [`Interconnect`] is the seam: the pool orchestrator charges all link
//!   traffic through it, so the same harness runs over [`PointToPoint`]
//!   (bit-identical to the pre-fabric direct wiring) or a switched fabric.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;

use dtl_core::HostId;
use dtl_cxl::{LinkDelivery, LinkModel, LinkRetryStats, RetryEngine, RetryPolicy};
use dtl_dram::Picos;
use dtl_telemetry::{LatencySummary, Telemetry};

mod fabric;
pub mod port;
mod topology;

pub use fabric::{CxlFabric, FabricReport, HostShare};
pub use port::PortReport;
pub use topology::{PortConfig, PortOwner, TopologyConfig};

/// Errors from fabric construction and topology validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FabricError {
    /// The declared topology cannot carry traffic as specified.
    InvalidTopology {
        /// Human-readable explanation of the failed check.
        reason: String,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::InvalidTopology { reason } => {
                write!(f, "invalid fabric topology: {reason}")
            }
        }
    }
}

impl std::error::Error for FabricError {}

/// The path an access takes from a host to a device head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// A dedicated point-to-point link; no shared ports on the path.
    Direct,
    /// Through one switch: up the host's root port, down the device head's
    /// port.
    Switched {
        /// Switch the path crosses.
        switch: u16,
        /// Global index of the host-side (up) port.
        up_port: u32,
        /// Global index of the device-side (down) port.
        down_port: u32,
    },
}

/// The interconnect between hosts and pooled devices.
///
/// `MemoryPool` charges every link interaction through this trait: demand
/// accesses ([`submit_at`](Interconnect::submit_at)), admission-control
/// round trips ([`round_trip`](Interconnect::round_trip)), and bulk
/// evacuation traffic ([`charge_bulk`](Interconnect::charge_bulk)).
/// [`PointToPoint`] reproduces the original per-device `RetryEngine` wiring
/// exactly; [`CxlFabric`] adds switch-port queueing, multi-headed routing,
/// and fairness accounting behind the same calls.
pub trait Interconnect: fmt::Debug + Send {
    /// Number of devices reachable through this interconnect.
    fn devices(&self) -> u16;

    /// The path `host` takes to `device`, or `None` when the pair is not
    /// connected.
    fn route(&self, host: HostId, device: u16) -> Option<Route>;

    /// Control-plane round-trip charge for `host` → `device` (admission
    /// latency accounting); no data serializes and no queueing accrues.
    fn round_trip(&self, host: HostId, device: u16) -> Picos;

    /// Charges one demand access of `bytes` from `host` to `device` at
    /// `now`. The returned [`LinkDelivery::delay`] is the *total* added
    /// link latency — propagation round trip, any port queue/serialization
    /// time, and the CRC retry penalty — so callers add it to the device
    /// access latency directly.
    fn submit_at(&mut self, host: HostId, device: u16, bytes: u64, now: Picos) -> LinkDelivery;

    /// Charges a bulk (evacuation / migration) transfer of `bytes` at
    /// `now`, returning the added wire delay. Point-to-point links dedicate
    /// the wire and charge nothing extra; fabrics serialize the copy
    /// through its route's ports.
    fn charge_bulk(&mut self, host: HostId, device: u16, bytes: u64, now: Picos) -> Picos;

    /// Releases time-scheduled link work (e.g. scheduled CRC bursts) due at
    /// or before `now`.
    fn advance_to(&mut self, now: Picos);

    /// Earliest instant at which scheduled link work becomes due, for
    /// event-driven harnesses that sleep between activity.
    fn next_activity_at(&self) -> Option<Picos>;

    /// Queues a CRC corruption burst on `device`'s link. Returns `false`
    /// when the device is out of range.
    fn inject_crc_burst(&mut self, device: u16, burst: u32) -> bool;

    /// Retry statistics for one device's link (zeroed when out of range).
    fn device_stats(&self, device: u16) -> LinkRetryStats;

    /// Installs the telemetry handle link events for `device` are emitted
    /// through.
    fn set_device_telemetry(&mut self, device: u16, telemetry: Telemetry);

    /// Summary of port queue wait, or `None` where no shared ports exist
    /// (point-to-point) or nothing was charged yet.
    fn queue_latency(&self) -> Option<LatencySummary>;

    /// End-of-run fabric report over the horizon ending at `end`, or
    /// `None` where no fabric is modeled.
    fn fabric_report(&self, end: Picos) -> Option<FabricReport>;

    /// Retry statistics merged across every device link.
    fn stats(&self) -> LinkRetryStats {
        let mut total = LinkRetryStats::default();
        for d in 0..self.devices() {
            total.merge_from(&self.device_stats(d));
        }
        total
    }
}

/// Dedicated point-to-point links: one [`RetryEngine`] per device, no
/// shared ports, no queueing — the wiring `MemoryPool` used before the
/// fabric existed, preserved bit-for-bit behind [`Interconnect`].
#[derive(Debug)]
pub struct PointToPoint {
    link: LinkModel,
    engines: Vec<RetryEngine>,
}

impl PointToPoint {
    /// One dedicated link per device, each modeled by `link` (propagation)
    /// and `retry` (CRC replay policy).
    pub fn new(link: LinkModel, retry: RetryPolicy, devices: u16) -> Self {
        let engines = (0..devices)
            .map(|_| {
                let mut e = RetryEngine::new(retry);
                e.set_base_latency(link.round_trip());
                e
            })
            .collect();
        PointToPoint { link, engines }
    }

    /// The link model shared by every device wire.
    pub fn link(&self) -> LinkModel {
        self.link
    }
}

impl Interconnect for PointToPoint {
    fn devices(&self) -> u16 {
        self.engines.len() as u16
    }

    fn route(&self, _host: HostId, device: u16) -> Option<Route> {
        (usize::from(device) < self.engines.len()).then_some(Route::Direct)
    }

    fn round_trip(&self, _host: HostId, _device: u16) -> Picos {
        self.link.round_trip()
    }

    fn submit_at(&mut self, _host: HostId, device: u16, _bytes: u64, now: Picos) -> LinkDelivery {
        let d = self.engines[usize::from(device)].on_submit_at(now);
        LinkDelivery { delay: self.link.round_trip() + d.delay, clean: d.clean }
    }

    fn charge_bulk(&mut self, _host: HostId, _device: u16, _bytes: u64, _now: Picos) -> Picos {
        // The dedicated wire absorbs background copies; matches the
        // pre-fabric pool, which charged evacuations no link time.
        Picos::ZERO
    }

    fn advance_to(&mut self, now: Picos) {
        for e in &mut self.engines {
            e.release_due(now);
        }
    }

    fn next_activity_at(&self) -> Option<Picos> {
        self.engines.iter().filter_map(RetryEngine::next_burst_at).min()
    }

    fn inject_crc_burst(&mut self, device: u16, burst: u32) -> bool {
        match self.engines.get_mut(usize::from(device)) {
            Some(e) => {
                e.inject_crc_burst(burst);
                true
            }
            None => false,
        }
    }

    fn device_stats(&self, device: u16) -> LinkRetryStats {
        self.engines.get(usize::from(device)).map(RetryEngine::stats).unwrap_or_default()
    }

    fn set_device_telemetry(&mut self, device: u16, telemetry: Telemetry) {
        if let Some(e) = self.engines.get_mut(usize::from(device)) {
            e.set_telemetry(telemetry);
        }
    }

    fn queue_latency(&self) -> Option<LatencySummary> {
        None
    }

    fn fabric_report(&self, _end: Picos) -> Option<FabricReport> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_matches_direct_engine_wiring() {
        // The Interconnect seam must reproduce the pre-fabric charge
        // exactly: round_trip + retry delay, same engine state evolution.
        let link = LinkModel::cxl();
        let policy = RetryPolicy::default();
        let mut ic = PointToPoint::new(link, policy, 2);
        let mut direct = RetryEngine::new(policy);
        direct.set_base_latency(link.round_trip());

        let now = Picos::from_us(5);
        let via = ic.submit_at(HostId(0), 0, 64, now);
        let raw = direct.on_submit_at(now);
        assert_eq!(via.delay, link.round_trip() + raw.delay);
        assert_eq!(via.clean, raw.clean);

        ic.inject_crc_burst(0, 2);
        direct.inject_crc_burst(2);
        let via = ic.submit_at(HostId(0), 0, 64, now);
        let raw = direct.on_submit_at(now);
        assert_eq!(via.delay, link.round_trip() + raw.delay);
        assert_eq!(ic.device_stats(0), direct.stats());
        assert_eq!(ic.device_stats(1), LinkRetryStats::default(), "device 1 untouched");
        assert_eq!(ic.stats(), direct.stats());
    }

    #[test]
    fn point_to_point_has_no_fabric_sections() {
        let ic = PointToPoint::new(LinkModel::cxl(), RetryPolicy::default(), 1);
        assert_eq!(ic.route(HostId(0), 0), Some(Route::Direct));
        assert_eq!(ic.route(HostId(0), 1), None);
        assert!(ic.queue_latency().is_none());
        assert!(ic.fabric_report(Picos::from_ms(1)).is_none());
        assert!(ic.next_activity_at().is_none());
        assert_eq!(ic.devices(), 1);
    }

    #[test]
    fn bulk_charge_is_free_on_dedicated_wires() {
        let mut ic = PointToPoint::new(LinkModel::cxl(), RetryPolicy::default(), 1);
        assert_eq!(ic.charge_bulk(HostId(0), 0, 1 << 30, Picos::from_us(1)), Picos::ZERO);
        assert_eq!(ic.stats(), LinkRetryStats::default());
    }
}
