//! The fabric topology: hosts reach devices through switches over typed
//! ports, declared as a flat edge list and validated before any traffic
//! flows.
//!
//! The model is one switch tier — `host --(up port)--> switch --(down
//! port)--> device` — which covers the deployments the paper's pool
//! chapter assumes: a handful of leaf switches fanning a rack of devices
//! out to its hosts. A device listed on several switches is
//! *multi-headed*: it owns one down port per head and is reachable by
//! every host attached to any of those switches.
//!
//! Routes are static. For a `(host, device)` pair the fabric always
//! crosses the lowest-id switch both sides share, so routing is a pure
//! function of the topology — the determinism the routing proptests pin.

use dtl_dram::Picos;
use serde::{Deserialize, Serialize};

use crate::FabricError;

/// Which endpoint a port belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PortOwner {
    /// An up port: `host` side of a host↔switch edge.
    Host(u16),
    /// A down port: `device` side of a switch↔device edge (one per head
    /// of a multi-headed device).
    Device(u16),
}

impl PortOwner {
    /// Short human-readable label (`host3` / `dev1`).
    pub fn label(self) -> String {
        match self {
            PortOwner::Host(h) => format!("host{h}"),
            PortOwner::Device(d) => format!("dev{d}"),
        }
    }
}

/// Physical parameters shared by every fabric port.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PortConfig {
    /// Serialization bandwidth, bytes per microsecond (so the per-transfer
    /// serialization time `bytes * 1e6 / bytes_per_us` is exact integer
    /// picoseconds). 32_000 ≈ a x8 CXL 2.0 port.
    pub bytes_per_us: u64,
    /// Idle time after the last transfer drains before the port drops into
    /// its low-power state.
    pub sleep_timeout: Picos,
    /// Power burned while the port is awake, milliwatts.
    pub active_mw: f64,
    /// Power burned while the port sleeps, milliwatts.
    pub sleep_mw: f64,
    /// Switching energy per byte serialized, picojoules.
    pub pj_per_byte: f64,
}

impl Default for PortConfig {
    /// A x8 CXL 2.0-class port: 32 GB/s, 1 µs sleep entry, 250 mW awake
    /// vs 10 mW asleep, 2 pJ/byte.
    fn default() -> Self {
        PortConfig {
            bytes_per_us: 32_000,
            sleep_timeout: Picos::from_us(1),
            active_mw: 250.0,
            sleep_mw: 10.0,
            pj_per_byte: 2.0,
        }
    }
}

/// A declared switch-hierarchy topology: the edge lists plus the shared
/// port physics. Validated by [`TopologyConfig::validate`] (or implicitly
/// by [`CxlFabric::new`](crate::CxlFabric::new)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Hosts attached to the fabric.
    pub hosts: u16,
    /// Switches in the (single) switch tier.
    pub switches: u16,
    /// Devices attached to the fabric.
    pub devices: u16,
    /// Host↔switch edges `(host, switch)`; each edge is one up port owned
    /// by the host.
    pub host_links: Vec<(u16, u16)>,
    /// Switch↔device edges `(device, switch)`; each edge is one down port
    /// — a device with several edges is multi-headed.
    pub device_links: Vec<(u16, u16)>,
    /// Shared physical parameters of every port.
    pub port: PortConfig,
    /// Store-and-forward latency added per switch crossing, each way.
    pub switch_latency: Picos,
}

impl TopologyConfig {
    /// The classic dual-switch rack: every host links to both switches,
    /// devices split half/half between them (low ids under switch 0), and
    /// device 0 is dual-headed so multi-head routing is always exercised.
    pub fn dual_switch(hosts: u16, devices: u16) -> Self {
        let host_links = (0..hosts).flat_map(|h| [(h, 0), (h, 1)]).collect::<Vec<_>>();
        let mut device_links: Vec<(u16, u16)> =
            (0..devices).map(|d| (d, u16::from(d >= devices.div_ceil(2)))).collect();
        if devices > 1 {
            // The second head: device 0 is also reachable through switch 1.
            device_links.push((0, 1));
        }
        TopologyConfig {
            hosts,
            switches: 2,
            devices,
            host_links,
            device_links,
            port: PortConfig::default(),
            switch_latency: Picos::from_ns(25),
        }
    }

    /// A single switch joining every host to every device.
    pub fn single_switch(hosts: u16, devices: u16) -> Self {
        TopologyConfig {
            hosts,
            switches: 1,
            devices,
            host_links: (0..hosts).map(|h| (h, 0)).collect(),
            device_links: (0..devices).map(|d| (d, 0)).collect(),
            port: PortConfig::default(),
            switch_latency: Picos::from_ns(25),
        }
    }

    /// Total ports: one up port per host link plus one down port per
    /// device link, in that order ([`TopologyConfig::port_owner`]).
    pub fn ports(&self) -> u32 {
        (self.host_links.len() + self.device_links.len()) as u32
    }

    /// The owner of global port `id`, or `None` out of range. Up ports
    /// occupy `0..host_links.len()`, down ports follow in declaration
    /// order.
    pub fn port_owner(&self, id: u32) -> Option<PortOwner> {
        let id = id as usize;
        if let Some(&(h, _)) = self.host_links.get(id) {
            return Some(PortOwner::Host(h));
        }
        self.device_links.get(id - self.host_links.len()).map(|&(d, _)| PortOwner::Device(d))
    }

    /// The switch global port `id` hangs off, or `None` out of range.
    pub fn port_switch(&self, id: u32) -> Option<u16> {
        let id = id as usize;
        if let Some(&(_, s)) = self.host_links.get(id) {
            return Some(s);
        }
        self.device_links.get(id - self.host_links.len()).map(|&(_, s)| s)
    }

    /// Resolves the static route for `(host, device)`: the lowest-id
    /// switch both sides share, with the up/down global port ids crossing
    /// it. `None` when they share no switch (validation rejects such
    /// topologies, so a validated fabric always routes).
    pub fn resolve(&self, host: u16, device: u16) -> Option<(u16, u32, u32)> {
        let mut best: Option<(u16, u32, u32)> = None;
        for (ui, &(h, hs)) in self.host_links.iter().enumerate() {
            if h != host {
                continue;
            }
            for (di, &(d, ds)) in self.device_links.iter().enumerate() {
                if d != device || ds != hs {
                    continue;
                }
                let candidate = (hs, ui as u32, (self.host_links.len() + di) as u32);
                if best.is_none_or(|(s, _, _)| hs < s) {
                    best = Some(candidate);
                }
            }
        }
        best
    }

    /// Validates the topology: ids in range, no duplicate edges, every
    /// host and device attached, every `(host, device)` pair routable, and
    /// positive port bandwidth.
    ///
    /// # Errors
    ///
    /// [`FabricError::InvalidTopology`] naming the first violation.
    pub fn validate(&self) -> Result<(), FabricError> {
        let bad = |reason: String| Err(FabricError::InvalidTopology { reason });
        if self.hosts == 0 || self.switches == 0 || self.devices == 0 {
            return bad("hosts, switches, and devices must all be nonzero".into());
        }
        if self.port.bytes_per_us == 0 {
            return bad("port bandwidth must be positive".into());
        }
        for &(h, s) in &self.host_links {
            if h >= self.hosts || s >= self.switches {
                return bad(format!("host link ({h}, {s}) out of range"));
            }
        }
        for &(d, s) in &self.device_links {
            if d >= self.devices || s >= self.switches {
                return bad(format!("device link ({d}, {s}) out of range"));
            }
        }
        let mut hl = self.host_links.clone();
        hl.sort_unstable();
        hl.dedup();
        if hl.len() != self.host_links.len() {
            return bad("duplicate host link".into());
        }
        let mut dl = self.device_links.clone();
        dl.sort_unstable();
        dl.dedup();
        if dl.len() != self.device_links.len() {
            return bad("duplicate device link (a head per switch at most)".into());
        }
        for h in 0..self.hosts {
            if !self.host_links.iter().any(|&(x, _)| x == h) {
                return bad(format!("host{h} has no up port"));
            }
        }
        for d in 0..self.devices {
            if !self.device_links.iter().any(|&(x, _)| x == d) {
                return bad(format!("dev{d} has no head"));
            }
        }
        for h in 0..self.hosts {
            for d in 0..self.devices {
                if self.resolve(h, d).is_none() {
                    return bad(format!("host{h} cannot reach dev{d} through any shared switch"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_switch_validates_and_routes_through_the_lowest_shared_switch() {
        let t = TopologyConfig::dual_switch(2, 4);
        t.validate().unwrap();
        // Device 0 is dual-headed but the lowest shared switch wins.
        let (sw, up, down) = t.resolve(1, 0).unwrap();
        assert_eq!(sw, 0);
        assert_eq!(t.port_owner(up), Some(PortOwner::Host(1)));
        assert_eq!(t.port_switch(up), Some(0));
        assert_eq!(t.port_owner(down), Some(PortOwner::Device(0)));
        // High-id devices live under switch 1.
        let (sw, _, down) = t.resolve(0, 3).unwrap();
        assert_eq!(sw, 1);
        assert_eq!(t.port_switch(down), Some(1));
    }

    #[test]
    fn validation_rejects_unreachable_and_malformed_topologies() {
        let mut t = TopologyConfig::single_switch(2, 2);
        t.validate().unwrap();
        // An unreachable pair: host 1 on a switch with no devices.
        t.switches = 2;
        t.host_links = vec![(0, 0), (1, 1)];
        assert!(t.validate().is_err());
        // Duplicate edge.
        let mut t = TopologyConfig::single_switch(1, 1);
        t.host_links.push((0, 0));
        assert!(t.validate().is_err());
        // Out-of-range id.
        let mut t = TopologyConfig::single_switch(1, 1);
        t.device_links = vec![(3, 0)];
        assert!(t.validate().is_err());
        // Detached device.
        let mut t = TopologyConfig::single_switch(1, 2);
        t.device_links = vec![(0, 0)];
        assert!(t.validate().is_err());
    }
}
