//! Property tests for the switched fabric: routing is a pure function of
//! the topology (two fabrics built from the same config route, delay, and
//! report identically under the same traffic), and the per-host fairness
//! ledger conserves bytes — the host shares decompose exactly the total
//! traffic the ports carried, under any offered load.

use dtl_core::HostId;
use dtl_cxl::{LinkModel, RetryPolicy};
use dtl_dram::Picos;
use dtl_fabric::{CxlFabric, Interconnect, TopologyConfig};
use proptest::prelude::*;

/// A generated traffic schedule over a dual-switch fabric: `(host_pick,
/// device_pick, bytes, gap_ns)` tuples, resolved modulo the fabric size.
fn traffic() -> impl Strategy<Value = Vec<(u16, u16, u64, u64)>> {
    proptest::collection::vec((0u16..8, 0u16..8, 1u64..4096, 0u64..5_000), 1..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two fabrics built from the same topology route identically and,
    /// replaying the same schedule, charge identical delays and produce
    /// identical reports — routing and queueing are deterministic.
    #[test]
    fn routing_and_charging_are_deterministic(
        hosts in 1u16..4,
        devices in 1u16..7,
        schedule in traffic(),
    ) {
        let topo = TopologyConfig::dual_switch(hosts, devices);
        let mk = || CxlFabric::new(topo.clone(), LinkModel::cxl(), RetryPolicy::default()).unwrap();
        let (mut a, mut b) = (mk(), mk());
        for h in 0..hosts {
            for d in 0..devices {
                prop_assert_eq!(a.route(HostId(h), d), b.route(HostId(h), d));
                prop_assert!(a.route(HostId(h), d).is_some(), "dual_switch reaches every pair");
                prop_assert_eq!(a.round_trip(HostId(h), d), b.round_trip(HostId(h), d));
            }
        }
        let mut now = Picos::ZERO;
        for &(h, d, bytes, gap) in &schedule {
            now += Picos::from_ns(gap);
            let (host, device) = (HostId(h % hosts), d % devices);
            let da = a.submit_at(host, device, bytes, now);
            let db = b.submit_at(host, device, bytes, now);
            prop_assert_eq!(da.delay, db.delay);
            prop_assert_eq!(da.clean, db.clean);
        }
        let end = now + Picos::from_us(10);
        prop_assert_eq!(a.fabric_report(end), b.fabric_report(end));
        prop_assert_eq!(a.queue_latency(), b.queue_latency());
    }

    /// The per-host fairness ledger conserves traffic: host shares
    /// decompose the report's total bytes exactly, the total equals what
    /// the schedule offered, and every transfer crosses exactly two ports
    /// (one up, one down).
    #[test]
    fn host_ledger_conserves_charged_bytes(
        hosts in 1u16..4,
        devices in 1u16..7,
        schedule in traffic(),
    ) {
        let topo = TopologyConfig::dual_switch(hosts, devices);
        let mut fab = CxlFabric::new(topo, LinkModel::cxl(), RetryPolicy::default()).unwrap();
        let mut now = Picos::ZERO;
        let mut offered = 0u64;
        for &(h, d, bytes, gap) in &schedule {
            now += Picos::from_ns(gap);
            fab.submit_at(HostId(h % hosts), d % devices, bytes, now);
            offered += bytes;
        }
        let r = fab.fabric_report(now + Picos::from_us(10)).expect("switched fabric reports");
        prop_assert_eq!(r.bytes, offered, "the report totals the offered traffic");
        let host_sum: u64 = r.hosts.iter().map(|s| s.bytes).sum();
        prop_assert_eq!(host_sum, offered, "host shares decompose the total");
        let port_sum: u64 = r.ports.iter().map(|p| p.bytes).sum();
        prop_assert_eq!(port_sum, 2 * offered, "each transfer crosses one up and one down port");
        let share_sum: f64 = r.hosts.iter().map(|s| s.share).sum();
        prop_assert!((share_sum - 1.0).abs() < 1e-9, "shares sum to 1: {}", share_sum);
        let transfer_sum: u64 = r.hosts.iter().map(|s| s.transfers).sum();
        prop_assert_eq!(transfer_sum, schedule.len() as u64);
    }
}
