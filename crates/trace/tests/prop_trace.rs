//! Property tests on the trace substrates: generator envelope properties,
//! mixer ordering/partitioning, and schedule accounting.

use dtl_trace::{
    Mixer, NodeConfig, TraceGen, VmEventKind, VmSchedule, WorkloadKind, SEGMENT_BYTES,
};
use proptest::prelude::*;

fn kinds() -> Vec<WorkloadKind> {
    WorkloadKind::ALL.to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generated addresses are always line-aligned and inside the working
    /// set, for every workload and seed.
    #[test]
    fn generator_envelope(seed in 0u64..1000, kind_idx in 0usize..10) {
        let spec = kinds()[kind_idx].spec().scaled(512);
        let mut gen = TraceGen::new(spec, seed);
        for r in gen.take_records(2000) {
            prop_assert!(r.addr < spec.working_set_bytes);
            prop_assert_eq!(r.addr % 64, 0);
        }
    }

    /// MAPKI holds within 15% for every workload and seed.
    #[test]
    fn generator_mapki_envelope(seed in 0u64..100, kind_idx in 0usize..10) {
        let spec = kinds()[kind_idx].spec().scaled(512);
        let mut gen = TraceGen::new(spec, seed);
        let n = 20_000usize;
        let recs = gen.take_records(n);
        let mapki = n as f64 * 1000.0 / recs.last().unwrap().icount as f64;
        prop_assert!(
            (mapki - spec.mapki).abs() / spec.mapki < 0.15,
            "{:?}: {} vs {}", kinds()[kind_idx], mapki, spec.mapki
        );
    }

    /// Mixed streams are icount-ordered and every record belongs to its
    /// instance's region.
    #[test]
    fn mixer_partition(seed in 0u64..500, n_apps in 2usize..8) {
        let specs: Vec<_> = kinds().into_iter().take(n_apps).map(|k| k.spec().scaled(512)).collect();
        let mut mix = Mixer::new(&specs, seed);
        let mut last = 0u64;
        for _ in 0..3000 {
            let r = mix.next_record();
            prop_assert!(r.icount >= last);
            last = r.icount;
            let base = mix.base_of(r.instance);
            prop_assert!(r.addr >= base);
            prop_assert!(r.addr < base + specs[r.instance as usize].working_set_bytes);
            prop_assert_eq!(base % SEGMENT_BYTES, 0);
        }
    }

    /// Schedules never exceed node capacity, balance alloc/dealloc, and
    /// keep committed memory non-negative at every instant.
    #[test]
    fn schedule_accounting(seed in 0u64..500, hours in 1u32..8) {
        let node = NodeConfig::paper();
        let s = VmSchedule::synthesize(seed, node, hours * 60);
        let mut mem = 0i128;
        let mut vcpus = 0i64;
        let mut specs = std::collections::HashMap::new();
        for e in s.events() {
            match e.kind {
                VmEventKind::Alloc(vm) => {
                    mem += i128::from(vm.mem_bytes);
                    vcpus += i64::from(vm.vcpus);
                    specs.insert(vm.id, vm);
                }
                VmEventKind::Dealloc(id) => {
                    let vm = specs.remove(&id).expect("balanced");
                    mem -= i128::from(vm.mem_bytes);
                    vcpus -= i64::from(vm.vcpus);
                }
            }
            prop_assert!(mem >= 0 && vcpus >= 0);
            prop_assert!(mem <= i128::from(node.mem_bytes));
            prop_assert!(vcpus <= i64::from(node.vcpus));
        }
        prop_assert_eq!(mem, 0, "everything deallocated at the end");
        prop_assert!(specs.is_empty());
    }
}
