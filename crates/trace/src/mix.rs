//! Mixing several workload traces into one shared-device stream.
//!
//! Each workload instance receives a disjoint, segment-aligned base offset
//! in a flat "host" address space; records are merged by instruction count,
//! which models the applications progressing at the same instruction rate
//! on separate cores (the paper's "mixed trace" methodology, §5.2).

use serde::{Deserialize, Serialize};

use crate::workload::{TraceGen, TraceRecord, WorkloadSpec, SEGMENT_BYTES};

/// A record in a mixed stream, tagged with the originating instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MixedRecord {
    /// Global instruction count (max over per-app icounts at merge).
    pub icount: u64,
    /// Address in the flat mixed address space.
    pub addr: u64,
    /// Writeback vs demand read.
    pub is_write: bool,
    /// Index of the instance that produced the record.
    pub instance: u32,
}

/// Merges multiple [`TraceGen`]s into one instruction-ordered stream over
/// disjoint address regions.
///
/// # Examples
///
/// ```
/// use dtl_trace::{Mixer, WorkloadKind};
///
/// let specs: Vec<_> = [WorkloadKind::WebSearch, WorkloadKind::DataCaching]
///     .iter()
///     .map(|k| k.spec().scaled(256))
///     .collect();
/// let mut mix = Mixer::new(&specs, 7);
/// let r = mix.next_record();
/// assert!(r.instance < 2);
/// ```
#[derive(Debug, Clone)]
pub struct Mixer {
    gens: Vec<TraceGen>,
    bases: Vec<u64>,
    /// Lookahead record per generator.
    heads: Vec<TraceRecord>,
}

impl Mixer {
    /// Builds a mixer over `specs`, seeding instance `i` with `seed + i`.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty.
    pub fn new(specs: &[WorkloadSpec], seed: u64) -> Self {
        assert!(!specs.is_empty(), "mixer needs at least one workload");
        let mut gens = Vec::with_capacity(specs.len());
        let mut bases = Vec::with_capacity(specs.len());
        let mut base = 0u64;
        for (i, spec) in specs.iter().enumerate() {
            bases.push(base);
            // Segment-aligned disjoint regions.
            base += spec.working_set_bytes.next_multiple_of(SEGMENT_BYTES);
            gens.push(TraceGen::new(*spec, seed.wrapping_add(i as u64)));
        }
        let heads = gens.iter_mut().map(TraceGen::next_record).collect();
        Mixer { gens, bases, heads }
    }

    /// Total flat address-space size spanned by all instances.
    pub fn address_space_bytes(&self) -> u64 {
        let last = self.gens.len() - 1;
        self.bases[last] + self.gens[last].spec().working_set_bytes.next_multiple_of(SEGMENT_BYTES)
    }

    /// Base offset of instance `i`.
    pub fn base_of(&self, i: u32) -> u64 {
        self.bases[i as usize]
    }

    /// Number of instances in the mix.
    pub fn instances(&self) -> u32 {
        self.gens.len() as u32
    }

    /// Whether the flat-space segment `seg` is hot in its owner's placement.
    pub fn is_hot_segment(&self, seg: u64) -> bool {
        let addr = seg * SEGMENT_BYTES;
        match self.instance_of(addr) {
            Some(i) => {
                let local = (addr - self.bases[i as usize]) / SEGMENT_BYTES;
                self.gens[i as usize].is_hot_segment(local)
            }
            None => false,
        }
    }

    /// Which instance owns flat address `addr`, if any.
    pub fn instance_of(&self, addr: u64) -> Option<u32> {
        for (i, gen) in self.gens.iter().enumerate() {
            let b = self.bases[i];
            if addr >= b && addr < b + gen.spec().working_set_bytes {
                return Some(i as u32);
            }
        }
        None
    }

    /// Next record in global instruction order.
    pub fn next_record(&mut self) -> MixedRecord {
        let (i, _) = self
            .heads
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.icount)
            .expect("heads is non-empty");
        let head = self.heads[i];
        self.heads[i] = self.gens[i].next_record();
        MixedRecord {
            icount: head.icount,
            addr: self.bases[i] + head.addr,
            is_write: head.is_write,
            instance: i as u32,
        }
    }

    /// Collects `n` records.
    pub fn take_records(&mut self, n: usize) -> Vec<MixedRecord> {
        (0..n).map(|_| self.next_record()).collect()
    }
}

impl Iterator for Mixer {
    type Item = MixedRecord;

    fn next(&mut self) -> Option<MixedRecord> {
        Some(self.next_record())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stride::StrideHistogram;
    use crate::workload::WorkloadKind;

    fn specs(n: usize) -> Vec<WorkloadSpec> {
        WorkloadKind::TRACED.iter().take(n).map(|k| k.spec().scaled(256)).collect()
    }

    #[test]
    fn regions_are_disjoint() {
        let mix = Mixer::new(&specs(4), 1);
        for i in 0..4u32 {
            let b = mix.base_of(i);
            assert_eq!(b % SEGMENT_BYTES, 0, "segment aligned");
            if i > 0 {
                assert!(b > mix.base_of(i - 1));
            }
        }
    }

    #[test]
    fn records_map_back_to_their_instance() {
        let mut mix = Mixer::new(&specs(4), 2);
        for r in mix.take_records(5000) {
            let owner = mix.instance_of(r.addr);
            assert_eq!(owner, Some(r.instance));
        }
    }

    #[test]
    fn icount_nondecreasing() {
        let mut mix = Mixer::new(&specs(3), 3);
        let recs = mix.take_records(5000);
        assert!(recs.windows(2).all(|w| w[0].icount <= w[1].icount));
    }

    #[test]
    fn all_instances_contribute() {
        let mut mix = Mixer::new(&specs(8), 4);
        let recs = mix.take_records(20_000);
        for i in 0..8u32 {
            assert!(recs.iter().any(|r| r.instance == i), "instance {i} silent");
        }
    }

    #[test]
    fn mixing_widens_strides_like_figure_9() {
        // Standalone media-streaming has narrow strides; an 8-app mix must
        // be dominated by >=4MB strides (paper: 89.3%).
        let spec = WorkloadKind::MediaStreaming.spec().scaled(256);
        let mut solo_h = StrideHistogram::new();
        let mut solo = crate::workload::TraceGen::new(spec, 5);
        for _ in 0..30_000 {
            solo_h.observe(solo.next_record().addr);
        }
        let mut mix_h = StrideHistogram::new();
        let mut mix = Mixer::new(&specs(8), 5);
        for _ in 0..30_000 {
            mix_h.observe(mix.next_record().addr);
        }
        assert!(
            mix_h.fraction_at_least_4m() > 0.8,
            "mixed >=4MB fraction {}",
            mix_h.fraction_at_least_4m()
        );
        assert!(
            mix_h.fraction_at_least_4m() > solo_h.fraction_at_least_4m(),
            "mixing must widen strides"
        );
    }

    #[test]
    fn hot_segment_lookup_in_flat_space() {
        let mix = Mixer::new(&specs(2), 6);
        let total_segs = mix.address_space_bytes() / SEGMENT_BYTES;
        let hot = (0..total_segs).filter(|&s| mix.is_hot_segment(s)).count();
        assert!(hot > 0, "some segments must be hot");
        assert!((hot as u64) < total_segs, "not all segments hot");
    }

    #[test]
    #[should_panic(expected = "at least one workload")]
    fn empty_mix_panics() {
        let _ = Mixer::new(&[], 0);
    }
}
