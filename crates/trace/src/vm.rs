//! Azure-like VM schedule synthesis (paper Figure 1 methodology).
//!
//! The paper replays 400 VMs sampled from the Microsoft Azure public
//! dataset onto a 48-vCPU / 384 GB node for six hours and observes < 50 %
//! average committed memory. We cannot ship the dataset, so this module
//! synthesizes schedules from the trace's published shape: lifetimes are
//! multiples of 5 minutes and skew short, vCPU counts are small powers of
//! two, and memory per vCPU falls in the 1–8 GB band.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Identifier of a VM within one schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VmId(pub u32);

/// Static shape of one VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmSpec {
    /// Schedule-unique id.
    pub id: VmId,
    /// Virtual CPUs.
    pub vcpus: u32,
    /// Reserved memory.
    pub mem_bytes: u64,
    /// Lifetime in minutes (always a multiple of 5, like the Azure trace).
    pub lifetime_min: u32,
}

/// The hosting node (paper: 48 vCPUs, 384 GB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeConfig {
    /// Schedulable vCPUs.
    pub vcpus: u32,
    /// Memory capacity available to VMs.
    pub mem_bytes: u64,
}

impl NodeConfig {
    /// The paper's node: 48 vCPUs, 384 GB.
    pub fn paper() -> Self {
        NodeConfig { vcpus: 48, mem_bytes: 384 << 30 }
    }
}

/// Allocation or deallocation of a VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VmEventKind {
    /// VM starts; memory is reserved.
    Alloc(VmSpec),
    /// VM ends; memory is released.
    Dealloc(VmId),
}

/// One scheduling event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmEvent {
    /// Event time in minutes from schedule start.
    pub at_min: u32,
    /// What happened.
    pub kind: VmEventKind,
}

/// A committed-memory sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UsageSample {
    /// Sample time in minutes.
    pub at_min: u32,
    /// Sum of reserved memory over active VMs.
    pub mem_bytes: u64,
    /// Sum of vCPUs over active VMs.
    pub vcpus: u32,
    /// Number of active VMs.
    pub active_vms: u32,
}

/// A complete synthesized VM schedule.
///
/// # Examples
///
/// ```
/// use dtl_trace::{NodeConfig, VmSchedule};
///
/// let s = VmSchedule::synthesize(1, NodeConfig::paper(), 360);
/// // The Figure 1 headline: average committed memory below 50%.
/// assert!(s.average_usage_fraction() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmSchedule {
    node: NodeConfig,
    duration_min: u32,
    events: Vec<VmEvent>,
}

impl VmSchedule {
    /// Synthesizes a schedule: every 5 minutes, newly sampled VMs are
    /// admitted first-fit while the node has vCPU and memory headroom.
    ///
    /// Deterministic for a given `(seed, node, duration_min)`.
    pub fn synthesize(seed: u64, node: NodeConfig, duration_min: u32) -> VmSchedule {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut next_id = 0u32;
        let mut active: Vec<(VmSpec, u32)> = Vec::new(); // (vm, end_min)
        let mut used_vcpus = 0u32;
        let mut used_mem = 0u64;
        for t in (0..duration_min).step_by(5) {
            // Retire finished VMs.
            let mut i = 0;
            while i < active.len() {
                if active[i].1 <= t {
                    let (vm, _) = active.swap_remove(i);
                    used_vcpus -= vm.vcpus;
                    used_mem -= vm.mem_bytes;
                    events.push(VmEvent { at_min: t, kind: VmEventKind::Dealloc(vm.id) });
                } else {
                    i += 1;
                }
            }
            // Admit new arrivals: a handful of candidates per tick (the
            // cluster scheduler keeps nodes well-packed on vCPUs).
            let arrivals = rng.gen_range(1..=4);
            for _ in 0..arrivals {
                let vm = Self::sample_vm(&mut rng, &mut next_id, duration_min - t);
                if used_vcpus + vm.vcpus <= node.vcpus && used_mem + vm.mem_bytes <= node.mem_bytes
                {
                    used_vcpus += vm.vcpus;
                    used_mem += vm.mem_bytes;
                    active.push((vm, t + vm.lifetime_min));
                    events.push(VmEvent { at_min: t, kind: VmEventKind::Alloc(vm) });
                }
            }
        }
        // Deallocate whatever is still alive at the end.
        for (vm, _) in active {
            events.push(VmEvent { at_min: duration_min, kind: VmEventKind::Dealloc(vm.id) });
        }
        VmSchedule { node, duration_min, events }
    }

    fn sample_vm(rng: &mut SmallRng, next_id: &mut u32, remaining_min: u32) -> VmSpec {
        let vcpus = *pick(rng, &[(1u32, 25), (2, 30), (4, 25), (8, 15), (16, 5)]);
        let gb_per_vcpu = *pick(rng, &[(1u64, 10), (2, 30), (4, 40), (8, 20)]);
        // Lifetime: geometric over 5-minute slots, mean ~45 min, capped so
        // it ends within the schedule (the Azure trace skews short but has
        // a long tail).
        let mut slots = 1u32;
        while rng.gen::<f64>() > 0.12 && slots < 96 {
            slots += 1;
        }
        let lifetime_min = (slots * 5).min(remaining_min.max(5));
        let id = VmId(*next_id);
        *next_id += 1;
        VmSpec { id, vcpus, mem_bytes: u64::from(vcpus) * gb_per_vcpu * (1 << 30), lifetime_min }
    }

    /// The node this schedule targets.
    pub fn node(&self) -> NodeConfig {
        self.node
    }

    /// Schedule length in minutes.
    pub fn duration_min(&self) -> u32 {
        self.duration_min
    }

    /// All events in time order.
    pub fn events(&self) -> &[VmEvent] {
        &self.events
    }

    /// Total VMs that appear in the schedule.
    pub fn vm_count(&self) -> usize {
        self.events.iter().filter(|e| matches!(e.kind, VmEventKind::Alloc(_))).count()
    }

    /// Committed-memory time series sampled every `step_min` minutes.
    pub fn usage_series(&self, step_min: u32) -> Vec<UsageSample> {
        assert!(step_min > 0, "step must be non-zero");
        let mut out = Vec::new();
        let mut mem = 0u64;
        let mut vcpus = 0u32;
        let mut active = 0u32;
        let mut specs: std::collections::HashMap<VmId, VmSpec> = std::collections::HashMap::new();
        let mut ei = 0;
        let mut t = 0;
        while t <= self.duration_min {
            while ei < self.events.len() && self.events[ei].at_min <= t {
                match self.events[ei].kind {
                    VmEventKind::Alloc(vm) => {
                        mem += vm.mem_bytes;
                        vcpus += vm.vcpus;
                        active += 1;
                        specs.insert(vm.id, vm);
                    }
                    VmEventKind::Dealloc(id) => {
                        let vm = specs.remove(&id).expect("dealloc of unknown VM");
                        mem -= vm.mem_bytes;
                        vcpus -= vm.vcpus;
                        active -= 1;
                    }
                }
                ei += 1;
            }
            out.push(UsageSample { at_min: t, mem_bytes: mem, vcpus, active_vms: active });
            t += step_min;
        }
        out
    }

    /// Mean committed memory as a fraction of node capacity (the paper's
    /// Figure 1 headline: below 0.5).
    pub fn average_usage_fraction(&self) -> f64 {
        let series = self.usage_series(5);
        let sum: f64 = series.iter().map(|s| s.mem_bytes as f64).sum();
        sum / series.len() as f64 / self.node.mem_bytes as f64
    }
}

fn pick<'a, T, R: Rng>(rng: &mut R, weighted: &'a [(T, u32)]) -> &'a T {
    let total: u32 = weighted.iter().map(|(_, w)| w).sum();
    let mut x = rng.gen_range(0..total);
    for (v, w) in weighted {
        if x < *w {
            return v;
        }
        x -= w;
    }
    &weighted[weighted.len() - 1].0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> VmSchedule {
        VmSchedule::synthesize(1, NodeConfig::paper(), 360)
    }

    #[test]
    fn events_are_time_ordered_and_balanced() {
        let s = schedule();
        assert!(s.events().windows(2).all(|w| w[0].at_min <= w[1].at_min));
        let allocs = s.vm_count();
        let deallocs =
            s.events().iter().filter(|e| matches!(e.kind, VmEventKind::Dealloc(_))).count();
        assert_eq!(allocs, deallocs, "every VM must be deallocated");
        assert!(allocs > 50, "expect a busy 6-hour schedule, got {allocs}");
    }

    #[test]
    fn capacity_never_exceeded() {
        let s = schedule();
        for sample in s.usage_series(5) {
            assert!(sample.mem_bytes <= s.node().mem_bytes);
            assert!(sample.vcpus <= s.node().vcpus);
        }
    }

    #[test]
    fn average_usage_below_half_like_figure_1() {
        // The paper's headline: average committed memory < 50% of 384 GB.
        for seed in 0..5 {
            let s = VmSchedule::synthesize(seed, NodeConfig::paper(), 360);
            let f = s.average_usage_fraction();
            assert!(f < 0.5, "seed {seed}: usage fraction {f}");
            assert!(f > 0.1, "seed {seed}: schedule suspiciously empty ({f})");
        }
    }

    #[test]
    fn lifetimes_are_five_minute_multiples() {
        let s = schedule();
        for e in s.events() {
            if let VmEventKind::Alloc(vm) = e.kind {
                assert_eq!(vm.lifetime_min % 5, 0);
                assert!(vm.lifetime_min >= 5);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = VmSchedule::synthesize(9, NodeConfig::paper(), 120);
        let b = VmSchedule::synthesize(9, NodeConfig::paper(), 120);
        assert_eq!(a, b);
        let c = VmSchedule::synthesize(10, NodeConfig::paper(), 120);
        assert_ne!(a, c);
    }

    #[test]
    fn usage_series_starts_and_ends_near_zero() {
        let s = schedule();
        let series = s.usage_series(5);
        assert_eq!(series.first().unwrap().at_min, 0);
        // Everything is deallocated at duration_min.
        assert_eq!(series.last().unwrap().mem_bytes, 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_step_rejected() {
        let _ = schedule().usage_series(0);
    }
}
