//! Segment reuse-distance analysis (paper Figure 10).
//!
//! The paper classifies a segment as **cold** when its access distance
//! (the reuse distance between consecutive accesses to the segment) exceeds
//! 10 million memory instructions. We classify a segment cold when it
//! exhibits such a gap — the largest inter-access gap, or the gap from its
//! last access to the end of the window, exceeds the threshold.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// The paper's coldness threshold: 10 million memory instructions.
pub const COLD_THRESHOLD_INSTRUCTIONS: u64 = 10_000_000;

/// Result of a cold-fraction analysis at one granularity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColdFraction {
    /// Granularity in bytes the trace was folded to.
    pub granularity_bytes: u64,
    /// Segments touched at least once.
    pub touched_segments: u64,
    /// Touched segments classified cold.
    pub cold_segments: u64,
    /// Instructions covered by the trace window.
    pub window_instructions: u64,
}

impl ColdFraction {
    /// Cold segments as a fraction of touched segments (0 if none touched).
    pub fn fraction(&self) -> f64 {
        if self.touched_segments == 0 {
            0.0
        } else {
            self.cold_segments as f64 / self.touched_segments as f64
        }
    }
}

/// Streaming cold-fraction analyzer: feed `(icount, addr)` pairs, then ask
/// for the cold fraction.
///
/// # Examples
///
/// ```
/// use dtl_trace::ReuseAnalyzer;
///
/// let mut a = ReuseAnalyzer::new(2 << 20);
/// a.observe(1_000, 0);           // segment 0 touched once
/// a.observe(20_000_000, 4 << 20); // segment 2 touched once, much later
/// let cf = a.cold_fraction(10_000_000);
/// assert_eq!(cf.touched_segments, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReuseAnalyzer {
    granularity_bytes: u64,
    /// Per-segment: (access count, last icount, max inter-access gap).
    segments: HashMap<u64, (u64, u64, u64)>,
    first_icount: Option<u64>,
    last_icount: u64,
}

impl ReuseAnalyzer {
    /// Analyzer folding addresses to `granularity_bytes` segments.
    ///
    /// # Panics
    ///
    /// Panics if the granularity is zero.
    pub fn new(granularity_bytes: u64) -> Self {
        assert!(granularity_bytes > 0, "granularity must be non-zero");
        ReuseAnalyzer {
            granularity_bytes,
            segments: HashMap::new(),
            first_icount: None,
            last_icount: 0,
        }
    }

    /// Feeds one access.
    pub fn observe(&mut self, icount: u64, addr: u64) {
        let seg = addr / self.granularity_bytes;
        self.first_icount.get_or_insert(icount);
        self.last_icount = self.last_icount.max(icount);
        let e = self.segments.entry(seg).or_insert((0, icount, 0));
        let gap = icount.saturating_sub(e.1);
        e.0 += 1;
        e.1 = icount;
        e.2 = e.2.max(gap);
    }

    /// Segments touched so far.
    pub fn touched_segments(&self) -> u64 {
        self.segments.len() as u64
    }

    /// Classifies segments with `threshold_instructions` (the paper uses
    /// [`COLD_THRESHOLD_INSTRUCTIONS`]): a segment is cold when it shows an
    /// inter-access gap above the threshold, counting the trailing gap from
    /// its last access to the end of the window.
    pub fn cold_fraction(&self, threshold_instructions: u64) -> ColdFraction {
        let window = self.last_icount.saturating_sub(self.first_icount.unwrap_or(0));
        let mut cold = 0;
        for (_count, last, max_gap) in self.segments.values() {
            let trailing = self.last_icount.saturating_sub(*last);
            if (*max_gap).max(trailing) > threshold_instructions {
                cold += 1;
            }
        }
        ColdFraction {
            granularity_bytes: self.granularity_bytes,
            touched_segments: self.segments.len() as u64,
            cold_segments: cold,
            window_instructions: window,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::Mixer;
    use crate::workload::WorkloadKind;

    #[test]
    fn hot_segment_not_cold() {
        let mut a = ReuseAnalyzer::new(2 << 20);
        // Segment 0 touched every 1M instructions over a 100M window.
        for i in 0..100 {
            a.observe(i * 1_000_000, 0);
        }
        // Segment 5 touched twice, 100M apart.
        a.observe(0, 5 * (2 << 20));
        a.observe(99_000_000, 5 * (2 << 20));
        let cf = a.cold_fraction(COLD_THRESHOLD_INSTRUCTIONS);
        assert_eq!(cf.touched_segments, 2);
        assert_eq!(cf.cold_segments, 1);
        assert!((cf.fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_analyzer_reports_zero() {
        let a = ReuseAnalyzer::new(2 << 20);
        let cf = a.cold_fraction(COLD_THRESHOLD_INSTRUCTIONS);
        assert_eq!(cf.touched_segments, 0);
        assert_eq!(cf.fraction(), 0.0);
    }

    #[test]
    fn coarser_granularity_merges_segments() {
        let mut a2 = ReuseAnalyzer::new(2 << 20);
        let mut a4 = ReuseAnalyzer::new(4 << 20);
        for (i, addr) in [(0u64, 0u64), (10, 2 << 20), (20, 4 << 20)] {
            a2.observe(i, addr);
            a4.observe(i, addr);
        }
        assert_eq!(a2.touched_segments(), 3);
        assert_eq!(a4.touched_segments(), 2);
    }

    #[test]
    fn figure_10_shape_2mb_colder_than_4mb() {
        // The paper's Figure 10: 61.5% cold at 2 MB, 33.2% at 4 MB. Shape
        // check: 2 MB granularity must classify a clearly larger fraction
        // cold than 4 MB. Working sets are scaled 64x for test speed; the
        // threshold scales by 64/4 = 16 (sweeps run 64x faster, but hot
        // bursts stretch revisit distances ~4x).
        let specs: Vec<_> = WorkloadKind::TRACED.iter().map(|k| k.spec().scaled(64)).collect();
        let mut mix = Mixer::new(&specs, 42);
        let mut a2 = ReuseAnalyzer::new(2 << 20);
        let mut a4 = ReuseAnalyzer::new(4 << 20);
        for _ in 0..400_000 {
            let r = mix.next_record();
            a2.observe(r.icount, r.addr);
            a4.observe(r.icount, r.addr);
        }
        let threshold = COLD_THRESHOLD_INSTRUCTIONS / 16;
        let f2 = a2.cold_fraction(threshold).fraction();
        let f4 = a4.cold_fraction(threshold).fraction();
        assert!(f2 > f4 + 0.05, "2MB cold {f2} must exceed 4MB cold {f4}");
        assert!(f2 > 0.5 && f2 < 0.9, "2MB cold fraction {f2} out of plausible band");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_granularity_rejected() {
        let _ = ReuseAnalyzer::new(0);
    }
}
