//! Synthetic CloudSuite-analog workload generators.
//!
//! The real paper traces CloudSuite with Pin; we cannot, so each generator
//! is a statistical twin calibrated to the paper's published per-workload
//! numbers:
//!
//! * **MAPKI** (memory accesses per kilo-instruction) from Table 4 drives
//!   the instruction-count spacing between accesses;
//! * the **stride profile** (Figure 9) drives the streaming component;
//! * the **hot-set parameters** (fraction of the working set that is hot
//!   and the probability an access lands there) drive the segment
//!   reuse-distance distribution (Figure 10).
//!
//! Generators emit *post-cache* streams directly, which is what the paper's
//! custom trace-driven simulator consumes.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::stride::{StrideBucket, StrideProfile};

/// The ten CloudSuite benchmarks of the paper (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Spark-based batch analytics.
    DataAnalytics,
    /// Memcached-style key-value caching.
    DataCaching,
    /// Cassandra NoSQL serving.
    DataServing,
    /// Instagram-like Django server.
    DjangoWorkload,
    /// Facebook OSS performance suite (HHVM).
    FbOssPerformance,
    /// GraphX graph analytics.
    GraphAnalytics,
    /// Spark MLlib recommendation.
    InMemoryAnalytics,
    /// Nginx video streaming.
    MediaStreaming,
    /// Apache Solr index search.
    WebSearch,
    /// Elgg + Memcached + MySQL web stack.
    WebServing,
}

impl WorkloadKind {
    /// All ten workloads, in the paper's Table 4 order.
    pub const ALL: [WorkloadKind; 10] = [
        WorkloadKind::DataAnalytics,
        WorkloadKind::DataCaching,
        WorkloadKind::DataServing,
        WorkloadKind::DjangoWorkload,
        WorkloadKind::FbOssPerformance,
        WorkloadKind::GraphAnalytics,
        WorkloadKind::InMemoryAnalytics,
        WorkloadKind::MediaStreaming,
        WorkloadKind::WebSearch,
        WorkloadKind::WebServing,
    ];

    /// The eight workloads used for the trace-driven studies (Figures 9,
    /// 10, 14; the paper's Pin traces cover the eight that run to
    /// completion under Pintool).
    pub const TRACED: [WorkloadKind; 8] = [
        WorkloadKind::DataAnalytics,
        WorkloadKind::DataCaching,
        WorkloadKind::DataServing,
        WorkloadKind::GraphAnalytics,
        WorkloadKind::InMemoryAnalytics,
        WorkloadKind::MediaStreaming,
        WorkloadKind::WebSearch,
        WorkloadKind::WebServing,
    ];

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::DataAnalytics => "data-analytics",
            WorkloadKind::DataCaching => "data-caching",
            WorkloadKind::DataServing => "data-serving",
            WorkloadKind::DjangoWorkload => "django-workload",
            WorkloadKind::FbOssPerformance => "fb-oss-performance",
            WorkloadKind::GraphAnalytics => "graph-analytics",
            WorkloadKind::InMemoryAnalytics => "in-memory-analytics",
            WorkloadKind::MediaStreaming => "media-streaming",
            WorkloadKind::WebSearch => "web-search",
            WorkloadKind::WebServing => "web-serving",
        }
    }

    /// The calibrated statistical spec for this workload.
    pub fn spec(self) -> WorkloadSpec {
        // MAPKI values are Table 4 of the paper verbatim. Stride profiles
        // follow Figure 9's qualitative classes: Data-serving,
        // Media-streaming and Web-serving have narrow strides standalone;
        // the analytics/search workloads are wide.
        match self {
            WorkloadKind::DataAnalytics => WorkloadSpec {
                kind: self,
                mapki: 1.9,
                read_fraction: 0.70,
                working_set_bytes: 8 << 30,
                hot_fraction: 0.35,
                hot_access_prob: 0.85,
                mean_run_lines: 8,
                hot_run_mean: 8,
                dead_fraction: 0.40,
                strides: StrideProfile::mixed(),
            },
            WorkloadKind::DataCaching => WorkloadSpec {
                kind: self,
                mapki: 1.5,
                read_fraction: 0.80,
                working_set_bytes: 8 << 30,
                hot_fraction: 0.30,
                hot_access_prob: 0.90,
                mean_run_lines: 2,
                hot_run_mean: 4,
                dead_fraction: 0.30,
                strides: StrideProfile::wide(),
            },
            WorkloadKind::DataServing => WorkloadSpec {
                kind: self,
                mapki: 4.2,
                read_fraction: 0.65,
                working_set_bytes: 8 << 30,
                hot_fraction: 0.40,
                hot_access_prob: 0.75,
                mean_run_lines: 24,
                hot_run_mean: 12,
                dead_fraction: 0.35,
                strides: StrideProfile::narrow(),
            },
            WorkloadKind::DjangoWorkload => WorkloadSpec {
                kind: self,
                mapki: 0.8,
                read_fraction: 0.72,
                working_set_bytes: 4 << 30,
                hot_fraction: 0.35,
                hot_access_prob: 0.85,
                mean_run_lines: 4,
                hot_run_mean: 6,
                dead_fraction: 0.30,
                strides: StrideProfile::mixed(),
            },
            WorkloadKind::FbOssPerformance => WorkloadSpec {
                kind: self,
                mapki: 3.6,
                read_fraction: 0.70,
                working_set_bytes: 8 << 30,
                hot_fraction: 0.40,
                hot_access_prob: 0.80,
                mean_run_lines: 6,
                hot_run_mean: 8,
                dead_fraction: 0.35,
                strides: StrideProfile::mixed(),
            },
            WorkloadKind::GraphAnalytics => WorkloadSpec {
                kind: self,
                mapki: 6.5,
                read_fraction: 0.85,
                working_set_bytes: 16 << 30,
                hot_fraction: 0.45,
                hot_access_prob: 0.70,
                mean_run_lines: 3,
                hot_run_mean: 4,
                dead_fraction: 0.30,
                strides: StrideProfile::wide(),
            },
            WorkloadKind::InMemoryAnalytics => WorkloadSpec {
                kind: self,
                mapki: 2.5,
                read_fraction: 0.75,
                working_set_bytes: 8 << 30,
                hot_fraction: 0.40,
                hot_access_prob: 0.80,
                mean_run_lines: 10,
                hot_run_mean: 10,
                dead_fraction: 0.40,
                strides: StrideProfile::mixed(),
            },
            WorkloadKind::MediaStreaming => WorkloadSpec {
                kind: self,
                mapki: 4.6,
                read_fraction: 0.90,
                working_set_bytes: 8 << 30,
                hot_fraction: 0.25,
                hot_access_prob: 0.55,
                mean_run_lines: 64,
                hot_run_mean: 32,
                dead_fraction: 0.50,
                strides: StrideProfile::sequential(),
            },
            WorkloadKind::WebSearch => WorkloadSpec {
                kind: self,
                mapki: 0.7,
                read_fraction: 0.90,
                working_set_bytes: 8 << 30,
                hot_fraction: 0.30,
                hot_access_prob: 0.75,
                mean_run_lines: 4,
                hot_run_mean: 6,
                dead_fraction: 0.35,
                strides: StrideProfile::wide(),
            },
            WorkloadKind::WebServing => WorkloadSpec {
                kind: self,
                mapki: 0.7,
                read_fraction: 0.70,
                working_set_bytes: 4 << 30,
                hot_fraction: 0.35,
                hot_access_prob: 0.80,
                mean_run_lines: 16,
                hot_run_mean: 12,
                dead_fraction: 0.30,
                strides: StrideProfile::narrow(),
            },
        }
    }
}

/// Statistical parameters of one synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Which benchmark this models.
    pub kind: WorkloadKind,
    /// Post-cache memory accesses per kilo-instruction (Table 4).
    pub mapki: f64,
    /// Fraction of post-cache accesses that are reads.
    pub read_fraction: f64,
    /// Size of the address region the workload touches.
    pub working_set_bytes: u64,
    /// Fraction of 2 MiB segments that belong to the hot set.
    pub hot_fraction: f64,
    /// Probability that an access targets the hot set.
    pub hot_access_prob: f64,
    /// Mean consecutive-line run length of the streaming component.
    pub mean_run_lines: u32,
    /// Mean burst length (accesses) to one hot segment before switching.
    pub hot_run_mean: u32,
    /// Fraction of the working set that is allocated but dormant (touched
    /// at most during initialization): datacenter heaps hold large cold
    /// regions whose reuse distances exceed any profiling window, which is
    /// what makes rank-level cold collection possible at all (§6.3).
    pub dead_fraction: f64,
    /// Stride distribution of the streaming component between runs.
    pub strides: StrideProfile,
}

impl WorkloadSpec {
    /// Scales the working set (hot set scales with it), for laptop-scale
    /// simulation. Panics if `div` is zero.
    pub fn scaled(mut self, div: u64) -> Self {
        assert!(div > 0, "scale divisor must be non-zero");
        self.working_set_bytes = (self.working_set_bytes / div).max(SEGMENT_BYTES * 8);
        self
    }

    /// Validates a (possibly hand-built) spec: probabilities in range, a
    /// normalized stride profile, a positive MAPKI, and a working set of
    /// at least eight segments.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.mapki > 0.0 && self.mapki < 1000.0) {
            return Err(format!("mapki {} out of (0, 1000)", self.mapki));
        }
        for (name, v) in [
            ("read_fraction", self.read_fraction),
            ("hot_fraction", self.hot_fraction),
            ("hot_access_prob", self.hot_access_prob),
            ("dead_fraction", self.dead_fraction),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} {v} out of [0, 1]"));
            }
        }
        if self.working_set_bytes < SEGMENT_BYTES * 8 {
            return Err(format!(
                "working set {} below the 8-segment minimum",
                self.working_set_bytes
            ));
        }
        if !self.strides.is_normalized() {
            return Err("stride profile mass does not sum to 1".into());
        }
        if self.mean_run_lines == 0 {
            return Err("mean_run_lines must be non-zero".into());
        }
        Ok(())
    }
}

/// Segment size used for hot-set placement (the paper's 2 MiB default).
pub const SEGMENT_BYTES: u64 = 2 << 20;

/// One post-cache trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Cumulative retired instructions at this access.
    pub icount: u64,
    /// Byte address within the workload's private region (line aligned).
    pub addr: u64,
    /// Writeback vs demand read.
    pub is_write: bool,
}

/// Deterministic post-cache trace generator for one workload instance.
///
/// # Examples
///
/// ```
/// use dtl_trace::{TraceGen, WorkloadKind};
///
/// let mut gen = TraceGen::new(WorkloadKind::WebSearch.spec().scaled(64), 42);
/// let first = gen.next_record();
/// assert_eq!(first.addr % 64, 0);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGen {
    spec: WorkloadSpec,
    rng: SmallRng,
    icount: u64,
    cursor: u64,
    run_remaining: u32,
    hot_seg: u64,
    hot_run_remaining: u32,
    hot_segments: Vec<u64>,
    /// Segment index -> is hot (for analysis).
    hot_lookup: Vec<bool>,
    /// Size of the live (non-dormant) zone in bytes.
    live_bytes: u64,
}

impl TraceGen {
    /// Builds a generator with a private random hot-segment placement.
    ///
    /// # Panics
    ///
    /// Panics if the spec's working set is smaller than 8 segments.
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        spec.validate().expect("invalid workload spec");
        let n_segments = spec.working_set_bytes / SEGMENT_BYTES;
        let mut rng = SmallRng::seed_from_u64(seed);
        // The live zone excludes the dormant tail of the working set.
        let live_segments =
            ((n_segments as f64 * (1.0 - spec.dead_fraction)) as u64).clamp(4, n_segments);
        let n_hot = ((live_segments as f64 * spec.hot_fraction).round() as u64).max(1);
        // Random placement within the live zone, without replacement
        // (partial Fisher-Yates).
        let mut all: Vec<u64> = (0..live_segments).collect();
        for i in 0..n_hot as usize {
            let j = rng.gen_range(i..all.len());
            all.swap(i, j);
        }
        let hot_segments: Vec<u64> = all[..n_hot as usize].to_vec();
        let mut hot_lookup = vec![false; n_segments as usize];
        for &s in &hot_segments {
            hot_lookup[s as usize] = true;
        }
        let cursor = rng.gen_range(0..live_segments) * SEGMENT_BYTES;
        let hot_seg = hot_segments[0];
        TraceGen {
            spec,
            rng,
            icount: 0,
            cursor,
            run_remaining: 0,
            hot_seg,
            hot_run_remaining: 0,
            hot_segments,
            hot_lookup,
            live_bytes: live_segments * SEGMENT_BYTES,
        }
    }

    /// The spec in use.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Whether segment `idx` belongs to the hot placement.
    pub fn is_hot_segment(&self, idx: u64) -> bool {
        self.hot_lookup.get(idx as usize).copied().unwrap_or(false)
    }

    /// Number of segments in the working set.
    pub fn segment_count(&self) -> u64 {
        self.hot_lookup.len() as u64
    }

    /// Generates the next record. Infinite stream.
    pub fn next_record(&mut self) -> TraceRecord {
        // Instruction gap ~ Exp(1000 / MAPKI), keeping MAPKI on target.
        let mean_gap = 1000.0 / self.spec.mapki;
        let u: f64 = self.rng.gen_range(1e-9..1.0f64);
        let gap = (-u.ln() * mean_gap).max(1.0) as u64;
        self.icount += gap.max(1);
        let is_write = self.rng.gen::<f64>() >= self.spec.read_fraction;
        let addr = if self.rng.gen::<f64>() < self.spec.hot_access_prob {
            self.hot_address()
        } else {
            self.stream_address()
        };
        TraceRecord { icount: self.icount, addr, is_write }
    }

    /// Generates `n` records into a vector.
    pub fn take_records(&mut self, n: usize) -> Vec<TraceRecord> {
        (0..n).map(|_| self.next_record()).collect()
    }

    /// Shifts the hot set: `fraction` of the hot segments are replaced by
    /// randomly chosen live-zone segments (deterministic given the
    /// generator's internal RNG). Models the pattern drift that real
    /// services exhibit over minutes to hours (§6.3 cites such shifts as
    /// the reason self-refresh phases end and re-form).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn drift_hot_set(&mut self, fraction: f64) {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0, 1]");
        let n_replace =
            ((self.hot_segments.len() as f64 * fraction) as usize).min(self.hot_segments.len());
        let live_segments = self.live_bytes / SEGMENT_BYTES;
        for i in 0..n_replace {
            let old = self.hot_segments[i];
            self.hot_lookup[old as usize] = false;
            // Draw until we land on a currently-cold live segment (bounded
            // retries keep this deterministic and cheap).
            let mut next = old;
            for _ in 0..16 {
                let candidate = self.rng.gen_range(0..live_segments);
                if !self.hot_lookup[candidate as usize] {
                    next = candidate;
                    break;
                }
            }
            self.hot_segments[i] = next;
            self.hot_lookup[next as usize] = true;
        }
        // Reset the burst state so drift takes effect immediately.
        self.hot_run_remaining = 0;
    }

    fn hot_address(&mut self) -> u64 {
        // Hot traffic is *bursty*: a request touches one hot segment many
        // times before moving on (this segment-level temporal locality is
        // what gives the paper's SMC its ~85% hit rate). Between bursts,
        // segments are drawn with a Zipf-ish square-law skew.
        if self.hot_run_remaining == 0 {
            let u: f64 = self.rng.gen();
            let idx = ((u * u) * self.hot_segments.len() as f64) as usize;
            self.hot_seg = self.hot_segments[idx.min(self.hot_segments.len() - 1)];
            let mean = f64::from(self.spec.hot_run_mean.max(1));
            let v: f64 = self.rng.gen_range(1e-9..1.0f64);
            self.hot_run_remaining = ((-v.ln() * mean) as u32).clamp(1, 4096);
        }
        self.hot_run_remaining -= 1;
        let off = self.rng.gen_range(0..SEGMENT_BYTES / 64) * 64;
        self.hot_seg * SEGMENT_BYTES + off
    }

    fn stream_address(&mut self) -> u64 {
        let ws = self.live_bytes;
        if self.run_remaining > 0 {
            self.run_remaining -= 1;
            self.cursor = (self.cursor + 64) % ws;
            return self.cursor;
        }
        let bucket = self.spec.strides.sample_bucket(&mut self.rng);
        match bucket {
            StrideBucket::AtLeast4M => {
                // Jump to a fresh random point of the working set.
                self.cursor = self.rng.gen_range(0..ws / 64) * 64;
            }
            b => {
                let stride = b.sample_stride(&mut self.rng);
                self.cursor = (self.cursor + stride) % ws;
            }
        }
        // Start a new sequential run (geometric length around the mean).
        let mean = f64::from(self.spec.mean_run_lines.max(1));
        let u: f64 = self.rng.gen_range(1e-9..1.0f64);
        self.run_remaining = ((-u.ln() * mean) as u32).min(4096);
        self.cursor
    }
}

impl Iterator for TraceGen {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        Some(self.next_record())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(kind: WorkloadKind) -> WorkloadSpec {
        kind.spec().scaled(256)
    }

    #[test]
    fn all_presets_validate() {
        for k in WorkloadKind::ALL {
            k.spec().validate().unwrap();
            k.spec().scaled(512).validate().unwrap();
        }
    }

    #[test]
    fn validate_catches_bad_specs() {
        let mut s = WorkloadKind::WebSearch.spec();
        s.hot_access_prob = 1.5;
        assert!(s.validate().is_err());
        let mut s = WorkloadKind::WebSearch.spec();
        s.mapki = 0.0;
        assert!(s.validate().is_err());
        let mut s = WorkloadKind::WebSearch.spec();
        s.strides.mass[0] += 0.5;
        assert!(s.validate().is_err());
        let mut s = WorkloadKind::WebSearch.spec();
        s.working_set_bytes = 1;
        assert!(s.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid workload spec")]
    fn generator_rejects_invalid_spec() {
        let mut s = WorkloadKind::WebSearch.spec();
        s.read_fraction = 2.0;
        let _ = TraceGen::new(s, 1);
    }

    #[test]
    fn table4_mapki_values() {
        let expect = [
            (WorkloadKind::DataAnalytics, 1.9),
            (WorkloadKind::DataCaching, 1.5),
            (WorkloadKind::DataServing, 4.2),
            (WorkloadKind::DjangoWorkload, 0.8),
            (WorkloadKind::FbOssPerformance, 3.6),
            (WorkloadKind::GraphAnalytics, 6.5),
            (WorkloadKind::InMemoryAnalytics, 2.5),
            (WorkloadKind::MediaStreaming, 4.6),
            (WorkloadKind::WebSearch, 0.7),
            (WorkloadKind::WebServing, 0.7),
        ];
        for (k, m) in expect {
            assert_eq!(k.spec().mapki, m, "{}", k.name());
        }
    }

    #[test]
    fn generated_mapki_matches_spec() {
        for kind in [WorkloadKind::GraphAnalytics, WorkloadKind::WebSearch] {
            let spec = small_spec(kind);
            let mut gen = TraceGen::new(spec, 1);
            let n = 50_000;
            let recs = gen.take_records(n);
            let instr = recs.last().unwrap().icount;
            let mapki = n as f64 * 1000.0 / instr as f64;
            assert!(
                (mapki - spec.mapki).abs() / spec.mapki < 0.1,
                "{}: generated MAPKI {mapki} vs spec {}",
                kind.name(),
                spec.mapki
            );
        }
    }

    #[test]
    fn addresses_stay_in_working_set_and_aligned() {
        let spec = small_spec(WorkloadKind::DataServing);
        let mut gen = TraceGen::new(spec, 3);
        for r in gen.take_records(20_000) {
            assert!(r.addr < spec.working_set_bytes);
            assert_eq!(r.addr % 64, 0);
        }
    }

    #[test]
    fn read_fraction_approximately_respected() {
        let spec = small_spec(WorkloadKind::MediaStreaming);
        let mut gen = TraceGen::new(spec, 9);
        let recs = gen.take_records(20_000);
        let reads = recs.iter().filter(|r| !r.is_write).count() as f64 / recs.len() as f64;
        assert!((reads - spec.read_fraction).abs() < 0.02, "read fraction {reads}");
    }

    #[test]
    fn icount_is_monotonic() {
        let mut gen = TraceGen::new(small_spec(WorkloadKind::DataCaching), 5);
        let recs = gen.take_records(1000);
        assert!(recs.windows(2).all(|w| w[0].icount < w[1].icount));
    }

    #[test]
    fn hot_set_placement_matches_fraction() {
        let spec = small_spec(WorkloadKind::GraphAnalytics);
        let gen = TraceGen::new(spec, 11);
        let hot = (0..gen.segment_count()).filter(|&s| gen.is_hot_segment(s)).count() as f64;
        let frac = hot / gen.segment_count() as f64;
        // Hot segments are placed within the live zone only.
        let expect = spec.hot_fraction * (1.0 - spec.dead_fraction);
        assert!((frac - expect).abs() < 0.05, "hot fraction {frac} vs {expect}");
    }

    #[test]
    fn hot_segments_receive_most_traffic() {
        let spec = small_spec(WorkloadKind::DataCaching);
        let mut gen = TraceGen::new(spec, 2);
        let recs = gen.take_records(30_000);
        let hot_hits = recs.iter().filter(|r| gen.is_hot_segment(r.addr / SEGMENT_BYTES)).count()
            as f64
            / recs.len() as f64;
        assert!(
            hot_hits > spec.hot_access_prob - 0.05,
            "hot traffic share {hot_hits} vs prob {}",
            spec.hot_access_prob
        );
    }

    #[test]
    fn drift_replaces_part_of_the_hot_set() {
        let spec = small_spec(WorkloadKind::DataServing);
        let mut gen = TraceGen::new(spec, 3);
        let before: Vec<u64> =
            (0..gen.segment_count()).filter(|&s| gen.is_hot_segment(s)).collect();
        gen.drift_hot_set(0.5);
        let after: Vec<u64> = (0..gen.segment_count()).filter(|&s| gen.is_hot_segment(s)).collect();
        assert_eq!(before.len(), after.len(), "hot-set size is preserved");
        let moved = before.iter().filter(|s| !after.contains(s)).count();
        assert!(moved > 0, "some segments must move");
        // Traffic follows the new placement.
        let recs = gen.take_records(20_000);
        let hot_hits = recs.iter().filter(|r| gen.is_hot_segment(r.addr / SEGMENT_BYTES)).count()
            as f64
            / recs.len() as f64;
        assert!(hot_hits > spec.hot_access_prob - 0.05, "post-drift hot share {hot_hits}");
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn drift_rejects_bad_fraction() {
        let mut gen = TraceGen::new(small_spec(WorkloadKind::DataServing), 3);
        gen.drift_hot_set(1.5);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let spec = small_spec(WorkloadKind::WebServing);
        let a = TraceGen::new(spec, 77).take_records(500);
        let b = TraceGen::new(spec, 77).take_records(500);
        assert_eq!(a, b);
        let c = TraceGen::new(spec, 78).take_records(500);
        assert_ne!(a, c);
    }

    #[test]
    fn scaled_keeps_minimum_size() {
        let s = WorkloadKind::WebServing.spec().scaled(1 << 40);
        assert_eq!(s.working_set_bytes, SEGMENT_BYTES * 8);
    }

    #[test]
    fn sequential_workload_has_more_line_strides_than_wide() {
        use crate::stride::StrideHistogram;
        let mut seq_h = StrideHistogram::new();
        let mut wide_h = StrideHistogram::new();
        let mut seq = TraceGen::new(small_spec(WorkloadKind::MediaStreaming), 4);
        let mut wide = TraceGen::new(small_spec(WorkloadKind::GraphAnalytics), 4);
        for _ in 0..30_000 {
            seq_h.observe(seq.next_record().addr);
            wide_h.observe(wide.next_record().addr);
        }
        assert!(
            seq_h.fraction(StrideBucket::Line) > wide_h.fraction(StrideBucket::Line),
            "sequential {} vs wide {}",
            seq_h.fraction(StrideBucket::Line),
            wide_h.fraction(StrideBucket::Line)
        );
    }
}
