//! # dtl-trace — synthetic workloads and VM schedules
//!
//! The DTL paper evaluates with CloudSuite traces (collected with Pin) and
//! the Microsoft Azure public VM dataset. Neither can be shipped, so this
//! crate synthesizes statistical twins calibrated to every number the paper
//! publishes about them:
//!
//! * [`WorkloadKind::spec`] — per-benchmark MAPKI (Table 4), stride profile
//!   (Figure 9) and hot-set shape (Figure 10);
//! * [`Mixer`] — multi-application mixes over disjoint regions (§5.2);
//! * [`VmSchedule`] — 6-hour VM alloc/dealloc schedules whose committed
//!   memory averages below 50 % of the node (Figure 1);
//! * [`StrideHistogram`] / [`ReuseAnalyzer`] — the measurement tools that
//!   regenerate Figures 9 and 10 from any stream.
//!
//! ```
//! use dtl_trace::{TraceGen, WorkloadKind};
//!
//! let mut gen = TraceGen::new(WorkloadKind::GraphAnalytics.spec().scaled(256), 1);
//! let burst = gen.take_records(1000);
//! assert_eq!(burst.len(), 1000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod mix;
mod reuse;
mod stride;
mod vm;
mod workload;

pub use mix::{MixedRecord, Mixer};
pub use reuse::{ColdFraction, ReuseAnalyzer, COLD_THRESHOLD_INSTRUCTIONS};
pub use stride::{StrideBucket, StrideHistogram, StrideProfile};
pub use vm::{NodeConfig, UsageSample, VmEvent, VmEventKind, VmId, VmSchedule, VmSpec};
pub use workload::{TraceGen, TraceRecord, WorkloadKind, WorkloadSpec, SEGMENT_BYTES};
