//! Access-stride modeling and measurement (paper Figure 9).
//!
//! The paper characterizes post-cache streams by the distance between
//! consecutive memory accesses, bucketed as `<4 KiB`, `<64 KiB`, `<1 MiB`,
//! `<4 MiB` and `>=4 MiB`. [`StrideProfile`] drives the synthetic workload
//! generators; [`StrideHistogram`] measures a stream the same way the paper
//! does.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Stride buckets used throughout the reproduction, matching Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StrideBucket {
    /// 64 B — sequential line streaming.
    Line,
    /// (64 B, 4 KiB] — within-page strides.
    UpTo4K,
    /// (4 KiB, 64 KiB].
    UpTo64K,
    /// (64 KiB, 1 MiB].
    UpTo1M,
    /// (1 MiB, 4 MiB).
    UpTo4M,
    /// >= 4 MiB — the bucket that dominates datacenter mixes.
    AtLeast4M,
}

impl StrideBucket {
    /// All buckets in ascending stride order.
    pub const ALL: [StrideBucket; 6] = [
        StrideBucket::Line,
        StrideBucket::UpTo4K,
        StrideBucket::UpTo64K,
        StrideBucket::UpTo1M,
        StrideBucket::UpTo4M,
        StrideBucket::AtLeast4M,
    ];

    /// Classifies an absolute stride in bytes.
    pub fn classify(stride: u64) -> StrideBucket {
        if stride <= 64 {
            StrideBucket::Line
        } else if stride <= 4 << 10 {
            StrideBucket::UpTo4K
        } else if stride <= 64 << 10 {
            StrideBucket::UpTo64K
        } else if stride <= 1 << 20 {
            StrideBucket::UpTo1M
        } else if stride < 4 << 20 {
            StrideBucket::UpTo4M
        } else {
            StrideBucket::AtLeast4M
        }
    }

    /// A representative stride (bytes) drawn uniformly from the bucket.
    pub fn sample_stride<R: Rng>(self, rng: &mut R) -> u64 {
        let (lo, hi) = match self {
            StrideBucket::Line => (64, 64),
            StrideBucket::UpTo4K => (128, 4 << 10),
            StrideBucket::UpTo64K => ((4 << 10) + 64, 64 << 10),
            StrideBucket::UpTo1M => ((64 << 10) + 64, 1 << 20),
            StrideBucket::UpTo4M => ((1 << 20) + 64, (4 << 20) - 64),
            StrideBucket::AtLeast4M => (4 << 20, 64 << 20),
        };
        if lo == hi {
            lo
        } else {
            let s: u64 = rng.gen_range(lo..=hi);
            s & !63 // line aligned
        }
    }

    /// Display label matching the paper's figure legend.
    pub fn label(self) -> &'static str {
        match self {
            StrideBucket::Line => "64B",
            StrideBucket::UpTo4K => "<=4KB",
            StrideBucket::UpTo64K => "<=64KB",
            StrideBucket::UpTo1M => "<=1MB",
            StrideBucket::UpTo4M => "<4MB",
            StrideBucket::AtLeast4M => ">=4MB",
        }
    }
}

/// A probability distribution over stride buckets.
///
/// # Examples
///
/// ```
/// use dtl_trace::StrideProfile;
///
/// assert!(StrideProfile::sequential().is_normalized());
/// assert!(StrideProfile::wide().mass[5] > StrideProfile::sequential().mass[5]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrideProfile {
    /// Probability mass per bucket, in [`StrideBucket::ALL`] order. Must sum
    /// to ~1.
    pub mass: [f64; 6],
}

impl StrideProfile {
    /// A profile dominated by sequential streaming (media-streaming style).
    pub fn sequential() -> Self {
        StrideProfile { mass: [0.70, 0.15, 0.06, 0.04, 0.02, 0.03] }
    }

    /// Narrow strides with some page-level jumps (data-serving style).
    pub fn narrow() -> Self {
        StrideProfile { mass: [0.40, 0.30, 0.12, 0.08, 0.04, 0.06] }
    }

    /// Mixed strides (analytics style).
    pub fn mixed() -> Self {
        StrideProfile { mass: [0.12, 0.13, 0.12, 0.10, 0.08, 0.45] }
    }

    /// Wide random access (graph / search style).
    pub fn wide() -> Self {
        StrideProfile { mass: [0.05, 0.06, 0.06, 0.06, 0.07, 0.70] }
    }

    /// Samples a bucket.
    pub fn sample_bucket<R: Rng>(&self, rng: &mut R) -> StrideBucket {
        let mut x: f64 = rng.gen();
        for (i, m) in self.mass.iter().enumerate() {
            if x < *m {
                return StrideBucket::ALL[i];
            }
            x -= m;
        }
        StrideBucket::AtLeast4M
    }

    /// Checks the mass sums to 1 within tolerance.
    pub fn is_normalized(&self) -> bool {
        (self.mass.iter().sum::<f64>() - 1.0).abs() < 1e-6
    }
}

/// Histogram of consecutive-access strides, measured like Figure 9.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StrideHistogram {
    counts: [u64; 6],
    last_addr: Option<u64>,
}

impl StrideHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds the next access address.
    pub fn observe(&mut self, addr: u64) {
        if let Some(prev) = self.last_addr {
            let stride = addr.abs_diff(prev);
            let b = StrideBucket::classify(stride);
            self.counts[Self::index(b)] += 1;
        }
        self.last_addr = Some(addr);
    }

    fn index(b: StrideBucket) -> usize {
        StrideBucket::ALL.iter().position(|x| *x == b).expect("bucket in ALL")
    }

    /// Raw count for a bucket.
    pub fn count(&self, b: StrideBucket) -> u64 {
        self.counts[Self::index(b)]
    }

    /// Total strides observed.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of strides in `b` (0 if empty).
    pub fn fraction(&self, b: StrideBucket) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.count(b) as f64 / t as f64
        }
    }

    /// Fraction of strides that are at least 4 MiB (the paper's headline
    /// statistic: 89.3 % for the 8-application mix).
    pub fn fraction_at_least_4m(&self) -> f64 {
        self.fraction(StrideBucket::AtLeast4M)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn classify_boundaries() {
        assert_eq!(StrideBucket::classify(0), StrideBucket::Line);
        assert_eq!(StrideBucket::classify(64), StrideBucket::Line);
        assert_eq!(StrideBucket::classify(65), StrideBucket::UpTo4K);
        assert_eq!(StrideBucket::classify(4096), StrideBucket::UpTo4K);
        assert_eq!(StrideBucket::classify(4097), StrideBucket::UpTo64K);
        assert_eq!(StrideBucket::classify(1 << 20), StrideBucket::UpTo1M);
        assert_eq!(StrideBucket::classify((4 << 20) - 1), StrideBucket::UpTo4M);
        assert_eq!(StrideBucket::classify(4 << 20), StrideBucket::AtLeast4M);
    }

    #[test]
    fn sampled_strides_fall_in_their_bucket() {
        let mut rng = SmallRng::seed_from_u64(7);
        for b in StrideBucket::ALL {
            for _ in 0..100 {
                let s = b.sample_stride(&mut rng);
                assert_eq!(StrideBucket::classify(s), b, "stride {s} for {b:?}");
                assert_eq!(s % 64, 0, "strides are line-aligned");
            }
        }
    }

    #[test]
    fn presets_are_normalized() {
        for p in [
            StrideProfile::sequential(),
            StrideProfile::narrow(),
            StrideProfile::mixed(),
            StrideProfile::wide(),
        ] {
            assert!(p.is_normalized());
        }
    }

    #[test]
    fn sampling_follows_mass() {
        let p = StrideProfile::wide();
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 20_000;
        let mut big = 0;
        for _ in 0..n {
            if p.sample_bucket(&mut rng) == StrideBucket::AtLeast4M {
                big += 1;
            }
        }
        let frac = big as f64 / n as f64;
        assert!((frac - 0.70).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn histogram_measures_stream() {
        let mut h = StrideHistogram::new();
        h.observe(0);
        h.observe(64); // Line
        h.observe(128); // Line
        h.observe(10 << 20); // AtLeast4M
        assert_eq!(h.total(), 3);
        assert_eq!(h.count(StrideBucket::Line), 2);
        assert!((h.fraction_at_least_4m() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_uses_absolute_stride() {
        let mut h = StrideHistogram::new();
        h.observe(10 << 20);
        h.observe(0); // backwards 10 MiB
        assert_eq!(h.count(StrideBucket::AtLeast4M), 1);
    }
}
