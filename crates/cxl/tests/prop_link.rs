//! Property tests: under arbitrary seeded CRC fault storms, the aggregate
//! [`LinkRetryStats`] kept by the retry engine must equal the sum of the
//! per-event `CxlRetry` telemetry records — the telemetry stream is a
//! lossless decomposition of the stats, not a parallel approximation.

use std::sync::Arc;

use dtl_cxl::{RetryEngine, RetryPolicy};
use dtl_dram::Picos;
use dtl_telemetry::{EventKind, RingSink, Telemetry};
use proptest::prelude::*;

/// Replay delay for one consumed burst under `policy`, mirroring the
/// engine's doubling backoff capped at `max_retries` replays.
fn expected_delay(policy: &RetryPolicy, burst: u32) -> Picos {
    let replays = burst.min(policy.max_retries);
    let mut delay = Picos::ZERO;
    for k in 0..replays {
        delay += policy.base_backoff * (1u64 << k.min(16));
    }
    delay
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Stats equal the telemetry event sum under any fault storm.
    #[test]
    fn stats_match_summed_telemetry_events(
        bursts in proptest::collection::vec(0u32..12, 0..64),
        clean_submits in 0usize..16,
        max_retries in 1u32..8,
    ) {
        let policy = RetryPolicy {
            max_retries,
            base_backoff: Picos::from_ns(100),
            retry_energy_pj: 15.0,
        };
        let sink = Arc::new(RingSink::with_capacity(256));
        let mut engine = RetryEngine::new(policy);
        engine.set_telemetry(Telemetry::new(sink.clone()));

        for &b in &bursts {
            engine.inject_crc_burst(b);
        }
        let submits = bursts.len() + clean_submits;
        for i in 0..submits {
            engine.on_submit_at(Picos::from_ns(i as u64 * 500));
        }

        // Sum the per-event records.
        let events = sink.drain();
        prop_assert_eq!(sink.dropped(), 0);
        let (mut crc, mut retries, mut giveups) = (0u64, 0u64, 0u64);
        let mut retry_time = Picos::ZERO;
        let mut energy_pj = 0.0f64;
        for ev in &events {
            let EventKind::CxlRetry { burst, replays, gave_up, delay_ps } = ev.kind else {
                prop_assert!(false, "unexpected event kind: {:?}", ev.kind);
                unreachable!();
            };
            crc += u64::from(burst);
            retries += u64::from(replays);
            giveups += u64::from(gave_up);
            retry_time += Picos::from_ps(delay_ps);
            energy_pj += f64::from(replays) * policy.retry_energy_pj;
            prop_assert_eq!(Picos::from_ps(delay_ps), expected_delay(&policy, burst));
        }

        // One event per consumed (non-zero) burst; clean submits are silent.
        let consumed = bursts.iter().filter(|&&b| b > 0).count();
        prop_assert_eq!(events.len(), consumed);

        let stats = engine.stats();
        prop_assert_eq!(stats.crc_errors, crc);
        prop_assert_eq!(stats.retries, retries);
        prop_assert_eq!(stats.giveups, giveups);
        prop_assert_eq!(stats.retry_time, retry_time);
        prop_assert!((stats.retry_energy_pj - energy_pj).abs() < 1e-6);
    }
}
