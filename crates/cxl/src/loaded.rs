//! Loaded-latency model: average memory latency as a function of bandwidth
//! utilization, the standard "loaded latency" characterization of memory
//! systems (cf. Intel MLC, which the paper uses for its Table 1 numbers).
//!
//! The model is M/D/1-shaped: a fixed service time plus a queueing term
//! that diverges as utilization approaches the sustainable peak. It is
//! *validated against the cycle-level simulator* by the
//! `loaded_latency` experiment in `dtl-sim`.

use serde::{Deserialize, Serialize};

use dtl_dram::Picos;

/// Parameters of the loaded-latency curve.
///
/// # Examples
///
/// ```
/// use dtl_cxl::LoadedLatencyModel;
/// use dtl_dram::Picos;
///
/// let m = LoadedLatencyModel::ddr4_2933_channel(Picos::from_ns(89));
/// let light = m.latency_at(1.0e9).unwrap();
/// let heavy = m.latency_at(15.0e9).unwrap();
/// assert!(heavy > light);
/// assert!(m.latency_at(m.sustainable_bandwidth()).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadedLatencyModel {
    /// Unloaded (idle) latency.
    pub idle_latency: Picos,
    /// Mean service time of one request at the bottleneck resource.
    pub service_time: Picos,
    /// Sustainable peak bandwidth, bytes/second.
    pub peak_bandwidth: f64,
    /// Fraction of the peak actually reachable before the queue diverges
    /// (banks, turnarounds and refresh steal headroom; ~0.75–0.9 for DDR4).
    pub efficiency: f64,
}

impl LoadedLatencyModel {
    /// A model for one DDR4-2933 channel behind an optional link.
    pub fn ddr4_2933_channel(link_round_trip: Picos) -> Self {
        LoadedLatencyModel {
            idle_latency: Picos::from_ns(55) + link_round_trip,
            // One BL8 burst occupies the data bus for 4 clocks (~2.7 ns).
            service_time: Picos::from_ns_f64(2.73),
            peak_bandwidth: 23.5e9,
            efficiency: 0.82,
        }
    }

    /// Mean latency at the given offered bandwidth (bytes/second).
    ///
    /// Returns `None` when the offered load meets or exceeds the
    /// sustainable bandwidth (the queue has no steady state).
    pub fn latency_at(&self, offered: f64) -> Option<Picos> {
        let sustainable = self.peak_bandwidth * self.efficiency;
        if offered >= sustainable {
            return None;
        }
        let rho = offered / sustainable;
        // M/D/1 mean waiting time: rho * s / (2 (1 - rho)).
        let wait_ns = rho * self.service_time.as_ns_f64() / (2.0 * (1.0 - rho));
        Some(self.idle_latency + Picos::from_ns_f64(wait_ns))
    }

    /// The sustainable bandwidth (bytes/second).
    pub fn sustainable_bandwidth(&self) -> f64 {
        self.peak_bandwidth * self.efficiency
    }

    /// The utilization (fraction of sustainable bandwidth) at which the
    /// mean latency exceeds `limit`, by bisection. Returns 1.0 when even
    /// 99.9 % load stays under the limit.
    pub fn knee(&self, limit: Picos) -> f64 {
        let (mut lo, mut hi) = (0.0f64, 0.999f64);
        if self.latency_at(self.sustainable_bandwidth() * hi).is_none_or(|l| l <= limit) {
            return 1.0;
        }
        for _ in 0..40 {
            let mid = (lo + hi) / 2.0;
            match self.latency_at(self.sustainable_bandwidth() * mid) {
                Some(l) if l <= limit => lo = mid,
                _ => hi = mid,
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_latency_at_zero_load() {
        let m = LoadedLatencyModel::ddr4_2933_channel(Picos::ZERO);
        assert_eq!(m.latency_at(0.0), Some(m.idle_latency));
    }

    #[test]
    fn latency_grows_monotonically_and_diverges() {
        let m = LoadedLatencyModel::ddr4_2933_channel(Picos::from_ns(89));
        let mut prev = Picos::ZERO;
        for pct in [10u32, 30, 50, 70, 90] {
            let offered = m.sustainable_bandwidth() * f64::from(pct) / 100.0;
            let l = m.latency_at(offered).expect("below sustainable");
            assert!(l > prev, "latency must grow with load");
            prev = l;
        }
        assert_eq!(m.latency_at(m.sustainable_bandwidth()), None);
        assert_eq!(m.latency_at(m.peak_bandwidth * 2.0), None);
    }

    #[test]
    fn link_latency_shifts_the_curve() {
        let local = LoadedLatencyModel::ddr4_2933_channel(Picos::ZERO);
        let cxl = LoadedLatencyModel::ddr4_2933_channel(Picos::from_ns(89));
        let offered = local.sustainable_bandwidth() * 0.5;
        let dl = local.latency_at(offered).unwrap();
        let dc = cxl.latency_at(offered).unwrap();
        assert_eq!(dc - dl, Picos::from_ns(89));
    }

    #[test]
    fn knee_is_sane() {
        let m = LoadedLatencyModel::ddr4_2933_channel(Picos::ZERO);
        // Latency doubles somewhere well past half load for DDR-like
        // service times.
        let knee = m.knee(m.idle_latency * 2);
        assert!(knee > 0.5 && knee < 1.0, "knee {knee}");
        // A huge limit is never exceeded.
        assert_eq!(m.knee(Picos::from_ms(1)), 1.0);
    }
}
