//! # dtl-cxl — CXL link and controller-front-end models
//!
//! Models the attachment point between hosts and the DTL memory device:
//!
//! * [`LinkModel`] — the added latency of CXL vs native DRAM (Table 1 of
//!   the paper: 121 ns native, 210 ns CXL);
//! * [`RetryEngine`] — the CXL link-layer CRC/ack/replay loop, charging
//!   exponential-backoff latency and link energy to corrupted transfers;
//! * [`AmatModel`] — the paper's §6.1 analytical AMAT under DTL address
//!   translation (Equations 1–2);
//! * [`RemoteMemory`] — a cycle-level [`dtl_dram::DramSystem`] behind a
//!   link, reporting host-observed latencies (including retry delays).
//!
//! ```
//! use dtl_cxl::AmatModel;
//! use dtl_dram::Picos;
//!
//! let m = AmatModel::paper(Picos::from_ns(121));
//! assert!((m.amat().as_ns_f64() - 214.2).abs() < 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod amat;
mod link;
mod loaded;
mod remote;

pub use amat::AmatModel;
pub use link::{LinkDelivery, LinkModel, LinkRetryStats, RetryEngine, RetryPolicy};
pub use loaded::LoadedLatencyModel;
pub use remote::{RemoteMemory, RemoteStats};
