//! CXL link latency model and link-level retry.
//!
//! The paper emulates CXL-attached memory by adding latency to local DRAM
//! accesses (Quartz, §5.1, Table 1): native DRAM is 121 ns and CXL memory
//! 210 ns. Quartz itself only injects delays, so a delay model reproduces
//! the paper's methodology exactly.
//!
//! CXL flits carry a CRC; a corrupted flit is replayed from the retry
//! buffer rather than surfaced to the host. [`RetryEngine`] models that
//! ack/replay loop: each corrupted transfer costs one exponentially
//! backed-off replay, and a transfer corrupted more than
//! [`RetryPolicy::max_retries`] times forces a link recovery (counted as a
//! give-up) before the request finally goes through. Retries are invisible
//! to the host except as added latency and link energy.

use std::collections::VecDeque;

use dtl_telemetry::{EventKind, Telemetry};
use serde::{Deserialize, Serialize};

use dtl_dram::Picos;

/// Idle (unloaded) access latency of a memory attachment point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkModel {
    /// One-way request latency added by the interconnect before the request
    /// reaches the device controller.
    pub request_latency: Picos,
    /// Response latency added after the device produces data.
    pub response_latency: Picos,
}

impl LinkModel {
    /// Native (direct-attached) DRAM: the 121 ns of Table 1 comes from the
    /// DRAM itself, so the link adds nothing.
    pub fn native() -> Self {
        LinkModel { request_latency: Picos::ZERO, response_latency: Picos::ZERO }
    }

    /// CXL attachment: Table 1 measures 210 ns vs 121 ns native, i.e. the
    /// link adds 89 ns, split evenly between request and response paths.
    pub fn cxl() -> Self {
        LinkModel {
            request_latency: Picos::from_ns_f64(44.5),
            response_latency: Picos::from_ns_f64(44.5),
        }
    }

    /// A custom symmetric link adding `total_ns` round-trip.
    pub fn symmetric_ns(total_ns: f64) -> Self {
        LinkModel {
            request_latency: Picos::from_ns_f64(total_ns / 2.0),
            response_latency: Picos::from_ns_f64(total_ns / 2.0),
        }
    }

    /// Total round-trip latency added by the link.
    pub fn round_trip(&self) -> Picos {
        self.request_latency + self.response_latency
    }
}

/// Link-level retry parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Replays attempted before the link declares recovery (a give-up).
    pub max_retries: u32,
    /// Backoff before the first replay; each further replay doubles it.
    pub base_backoff: Picos,
    /// Link energy charged per replayed transfer (pJ).
    pub retry_energy_pj: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // A flit replay round trip is on the order of the link latency;
        // 100 ns base backoff keeps a single CRC hit cheap (~100 ns) while
        // a pathological burst escalates fast enough to be visible.
        RetryPolicy { max_retries: 4, base_backoff: Picos::from_ns(100), retry_energy_pj: 15.0 }
    }
}

/// Accumulated retry activity on a link.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkRetryStats {
    /// CRC-corrupted transfers observed.
    pub crc_errors: u64,
    /// Replays performed.
    pub retries: u64,
    /// Transfers that exhausted [`RetryPolicy::max_retries`] and forced a
    /// link recovery. The request is still delivered afterwards.
    pub giveups: u64,
    /// Total time spent in backoff/replay.
    pub retry_time: Picos,
    /// Total link energy spent on replays (pJ).
    pub retry_energy_pj: f64,
}

impl LinkRetryStats {
    /// Folds `other` into `self` field-by-field. Pool-level reporting sums
    /// the per-device link engines with this instead of re-implementing the
    /// field list at every call site.
    pub fn merge_from(&mut self, other: &LinkRetryStats) {
        self.crc_errors += other.crc_errors;
        self.retries += other.retries;
        self.giveups += other.giveups;
        self.retry_time += other.retry_time;
        self.retry_energy_pj += other.retry_energy_pj;
    }
}

/// Outcome of pushing one request through the retry layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkDelivery {
    /// Extra latency the retry loop added to this request.
    pub delay: Picos,
    /// `false` when the transfer exhausted its retries and needed a link
    /// recovery before delivery.
    pub clean: bool,
}

/// Models the CXL link-layer CRC/ack/replay loop.
///
/// Fault injectors queue corruption bursts with
/// [`RetryEngine::inject_crc_burst`]; the next submitted request consumes
/// one burst and pays the replay cost. Requests are never lost — the link
/// layer guarantees delivery — so faults surface only as latency and
/// energy.
#[derive(Debug, Default)]
pub struct RetryEngine {
    policy: RetryPolicy,
    stats: LinkRetryStats,
    /// Corruption counts waiting to be consumed, one per upcoming request.
    pending: VecDeque<u32>,
    /// Time-keyed bursts not yet released into `pending`, sorted by
    /// (release time, insertion order) — the event-driven alternative to
    /// injecting at poll time. See [`RetryEngine::schedule_crc_burst`].
    scheduled: VecDeque<(Picos, u32)>,
    telemetry: Telemetry,
    /// Clean round-trip latency added to every submission when computing
    /// the observed-latency histogram (the attachment's link round trip).
    base_latency: Picos,
    /// Per-submission observed link latency (base + retry delay), ps. Feeds
    /// the access-latency section of SLO reports.
    latency_hist: dtl_telemetry::Histogram,
}

impl RetryEngine {
    /// Builds an engine with the given policy.
    pub fn new(policy: RetryPolicy) -> Self {
        RetryEngine {
            policy,
            stats: LinkRetryStats::default(),
            pending: VecDeque::new(),
            scheduled: VecDeque::new(),
            telemetry: Telemetry::disabled(),
            base_latency: Picos::ZERO,
            latency_hist: dtl_telemetry::Histogram::default(),
        }
    }

    /// Sets the clean link round trip folded into every observed-latency
    /// sample (defaults to zero, i.e. the histogram records retry delay
    /// only). Call once at attachment setup with the link's
    /// [`LinkModel::round_trip`].
    pub fn set_base_latency(&mut self, base: Picos) {
        self.base_latency = base;
    }

    /// The per-submission observed link latency histogram: one sample of
    /// `base latency + retry delay` per [`RetryEngine::on_submit_at`] call,
    /// clean or corrupted.
    pub fn latency_histogram(&self) -> &dtl_telemetry::Histogram {
        &self.latency_hist
    }

    /// Installs a telemetry handle; every consumed corruption burst emits a
    /// `CxlRetry` event (via [`RetryEngine::on_submit_at`]).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The policy in effect.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Replaces the retry policy. Accumulated statistics are kept.
    pub fn set_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Accumulated retry statistics.
    pub fn stats(&self) -> LinkRetryStats {
        self.stats
    }

    /// Queues a corruption burst: the next submitted request's transfer is
    /// corrupted `burst` times before getting through. Bursts queue FIFO,
    /// one per request.
    pub fn inject_crc_burst(&mut self, burst: u32) {
        if burst > 0 {
            self.pending.push_back(burst);
        }
    }

    /// Corruption bursts queued but not yet consumed by a request.
    pub fn pending_bursts(&self) -> usize {
        self.pending.len()
    }

    /// Schedules a corruption burst for release at time `at`: the burst
    /// stays dormant until [`RetryEngine::release_due`] moves it into the
    /// consumable queue. This is the event-driven form of
    /// [`RetryEngine::inject_crc_burst`] — a driver posts one event at
    /// [`RetryEngine::next_burst_at`] instead of polling every tick.
    /// Bursts sharing a release time keep their scheduling order (FIFO).
    pub fn schedule_crc_burst(&mut self, at: Picos, burst: u32) {
        if burst == 0 {
            return;
        }
        // Stable insert: after any entry with release time <= at.
        let idx = self.scheduled.partition_point(|&(t, _)| t <= at);
        self.scheduled.insert(idx, (at, burst));
    }

    /// Release time of the earliest scheduled (not yet released) burst —
    /// the event-driven caller's next wakeup. `None` when nothing is
    /// scheduled.
    pub fn next_burst_at(&self) -> Option<Picos> {
        self.scheduled.front().map(|&(at, _)| at)
    }

    /// Releases every scheduled burst due by `now` into the consumable
    /// queue (in release order) and returns how many were released.
    pub fn release_due(&mut self, now: Picos) -> usize {
        let mut released = 0;
        while let Some(&(at, burst)) = self.scheduled.front() {
            if at > now {
                break;
            }
            self.scheduled.pop_front();
            self.pending.push_back(burst);
            released += 1;
        }
        released
    }

    /// Tick-era entry point from before submissions carried a timestamp.
    #[deprecated(note = "use `on_submit_at(now)`; this stamps telemetry at time zero")]
    pub fn on_submit(&mut self) -> LinkDelivery {
        self.on_submit_at(Picos::ZERO)
    }

    /// Passes one request through the link at instant `now`, consuming a
    /// queued corruption burst if present, and returns the latency it
    /// cost. A consumed burst additionally emits one `CxlRetry` telemetry
    /// event stamped `now`, carrying exactly the quantities added to
    /// [`LinkRetryStats`] (the invariant the `prop_link` test pins).
    pub fn on_submit_at(&mut self, now: Picos) -> LinkDelivery {
        let Some(burst) = self.pending.pop_front() else {
            self.latency_hist.observe(self.base_latency.as_ps());
            return LinkDelivery { delay: Picos::ZERO, clean: true };
        };
        self.stats.crc_errors += u64::from(burst);
        let replays = burst.min(self.policy.max_retries);
        let clean = burst <= self.policy.max_retries;
        if !clean {
            self.stats.giveups += 1;
        }
        let mut delay = Picos::ZERO;
        for k in 0..replays {
            delay += self.policy.base_backoff * (1u64 << k.min(16));
        }
        self.stats.retries += u64::from(replays);
        self.stats.retry_time += delay;
        self.stats.retry_energy_pj += f64::from(replays) * self.policy.retry_energy_pj;
        self.telemetry.emit(
            now.as_ps(),
            EventKind::CxlRetry { burst, replays, gave_up: !clean, delay_ps: delay.as_ps() },
        );
        self.latency_hist.observe((self.base_latency + delay).as_ps());
        LinkDelivery { delay, clean }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cxl_adds_89ns_over_native() {
        let native = LinkModel::native();
        let cxl = LinkModel::cxl();
        assert_eq!(native.round_trip(), Picos::ZERO);
        assert_eq!(cxl.round_trip(), Picos::from_ns(89));
    }

    #[test]
    fn symmetric_splits_evenly() {
        let l = LinkModel::symmetric_ns(100.0);
        assert_eq!(l.request_latency, l.response_latency);
        assert_eq!(l.round_trip(), Picos::from_ns(100));
    }

    #[test]
    fn clean_submit_costs_nothing() {
        let mut r = RetryEngine::new(RetryPolicy::default());
        let d = r.on_submit_at(Picos::ZERO);
        assert_eq!(d, LinkDelivery { delay: Picos::ZERO, clean: true });
        assert_eq!(r.stats(), LinkRetryStats::default());
    }

    #[test]
    fn single_crc_hit_costs_one_backoff() {
        let mut r = RetryEngine::new(RetryPolicy::default());
        r.inject_crc_burst(1);
        let d = r.on_submit_at(Picos::ZERO);
        assert!(d.clean);
        assert_eq!(d.delay, Picos::from_ns(100));
        let s = r.stats();
        assert_eq!((s.crc_errors, s.retries, s.giveups), (1, 1, 0));
        assert_eq!(s.retry_time, Picos::from_ns(100));
        assert!((s.retry_energy_pj - 15.0).abs() < 1e-9);
    }

    #[test]
    fn backoff_doubles_per_replay() {
        let mut r = RetryEngine::new(RetryPolicy::default());
        r.inject_crc_burst(3);
        let d = r.on_submit_at(Picos::ZERO);
        assert!(d.clean);
        // 100 + 200 + 400 ns.
        assert_eq!(d.delay, Picos::from_ns(700));
    }

    #[test]
    fn exhausted_retries_force_recovery_but_deliver() {
        let mut r = RetryEngine::new(RetryPolicy::default());
        r.inject_crc_burst(9);
        let d = r.on_submit_at(Picos::ZERO);
        assert!(!d.clean, "past max_retries the link recovers");
        // Capped at max_retries = 4 replays: 100 + 200 + 400 + 800 ns.
        assert_eq!(d.delay, Picos::from_ns(1500));
        let s = r.stats();
        assert_eq!((s.crc_errors, s.retries, s.giveups), (9, 4, 1));
    }

    #[test]
    fn bursts_queue_one_per_request() {
        let mut r = RetryEngine::new(RetryPolicy::default());
        r.inject_crc_burst(1);
        r.inject_crc_burst(2);
        r.inject_crc_burst(0); // ignored
        assert_eq!(r.pending_bursts(), 2);
        assert_eq!(r.on_submit_at(Picos::ZERO).delay, Picos::from_ns(100));
        assert_eq!(r.on_submit_at(Picos::ZERO).delay, Picos::from_ns(300));
        assert_eq!(r.on_submit_at(Picos::ZERO).delay, Picos::ZERO);
        assert_eq!(r.pending_bursts(), 0);
    }

    #[test]
    fn scheduled_bursts_release_at_their_time() {
        let mut r = RetryEngine::new(RetryPolicy::default());
        r.schedule_crc_burst(Picos::from_us(10), 2);
        r.schedule_crc_burst(Picos::from_us(5), 1);
        r.schedule_crc_burst(Picos::from_us(5), 0); // ignored
        assert_eq!(r.next_burst_at(), Some(Picos::from_us(5)));
        assert_eq!(r.pending_bursts(), 0, "dormant until released");
        assert_eq!(r.release_due(Picos::from_us(5)), 1);
        assert_eq!(r.pending_bursts(), 1);
        assert_eq!(r.next_burst_at(), Some(Picos::from_us(10)));
        assert_eq!(r.release_due(Picos::from_us(7)), 0, "not due yet");
        assert_eq!(r.release_due(Picos::from_us(20)), 1);
        assert_eq!(r.next_burst_at(), None);
        // Release order is consumption order: burst 1 then burst 2.
        assert_eq!(r.on_submit_at(Picos::ZERO).delay, Picos::from_ns(100));
        assert_eq!(r.on_submit_at(Picos::ZERO).delay, Picos::from_ns(300));
    }

    #[test]
    fn latency_histogram_observes_clean_and_retried_submissions() {
        let mut r = RetryEngine::new(RetryPolicy::default());
        r.set_base_latency(Picos::from_ns(89));
        r.on_submit_at(Picos::ZERO); // clean: 89 ns
        r.inject_crc_burst(1);
        r.on_submit_at(Picos::from_us(1)); // 89 + 100 ns
        let h = r.latency_histogram();
        assert_eq!(h.count(), 2, "both paths observe");
        assert_eq!(h.sum(), Picos::from_ns(89 + 189).as_ps());
        assert!(h.percentile(99.0) >= Picos::from_ns(189).as_ps());
    }

    #[test]
    fn same_time_scheduled_bursts_keep_fifo_order() {
        let mut r = RetryEngine::new(RetryPolicy::default());
        let t = Picos::from_us(1);
        r.schedule_crc_burst(t, 3);
        r.schedule_crc_burst(t, 1);
        assert_eq!(r.release_due(t), 2);
        // First scheduled (burst 3 → 700 ns) consumed first.
        assert_eq!(r.on_submit_at(Picos::ZERO).delay, Picos::from_ns(700));
        assert_eq!(r.on_submit_at(Picos::ZERO).delay, Picos::from_ns(100));
    }
}
