//! CXL link latency model.
//!
//! The paper emulates CXL-attached memory by adding latency to local DRAM
//! accesses (Quartz, §5.1, Table 1): native DRAM is 121 ns and CXL memory
//! 210 ns. Quartz itself only injects delays, so a delay model reproduces
//! the paper's methodology exactly.

use serde::{Deserialize, Serialize};

use dtl_dram::Picos;

/// Idle (unloaded) access latency of a memory attachment point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkModel {
    /// One-way request latency added by the interconnect before the request
    /// reaches the device controller.
    pub request_latency: Picos,
    /// Response latency added after the device produces data.
    pub response_latency: Picos,
}

impl LinkModel {
    /// Native (direct-attached) DRAM: the 121 ns of Table 1 comes from the
    /// DRAM itself, so the link adds nothing.
    pub fn native() -> Self {
        LinkModel { request_latency: Picos::ZERO, response_latency: Picos::ZERO }
    }

    /// CXL attachment: Table 1 measures 210 ns vs 121 ns native, i.e. the
    /// link adds 89 ns, split evenly between request and response paths.
    pub fn cxl() -> Self {
        LinkModel {
            request_latency: Picos::from_ns_f64(44.5),
            response_latency: Picos::from_ns_f64(44.5),
        }
    }

    /// A custom symmetric link adding `total_ns` round-trip.
    pub fn symmetric_ns(total_ns: f64) -> Self {
        LinkModel {
            request_latency: Picos::from_ns_f64(total_ns / 2.0),
            response_latency: Picos::from_ns_f64(total_ns / 2.0),
        }
    }

    /// Total round-trip latency added by the link.
    pub fn round_trip(&self) -> Picos {
        self.request_latency + self.response_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cxl_adds_89ns_over_native() {
        let native = LinkModel::native();
        let cxl = LinkModel::cxl();
        assert_eq!(native.round_trip(), Picos::ZERO);
        assert_eq!(cxl.round_trip(), Picos::from_ns(89));
    }

    #[test]
    fn symmetric_splits_evenly() {
        let l = LinkModel::symmetric_ns(100.0);
        assert_eq!(l.request_latency, l.response_latency);
        assert_eq!(l.round_trip(), Picos::from_ns(100));
    }
}
