//! Average memory access time of DTL-translated CXL accesses — the
//! analytical model of the paper's §6.1 (Equations 1 and 2):
//!
//! ```text
//! AMAT_CXL = CXL_mem_lat + Addr_translation
//! Addr_translation = L1_SMC_hit_time
//!                  + L1_miss_ratio * (L2_SMC_hit_time
//!                  + L2_miss_ratio * L2_SMC_miss_penalty)
//! ```
//!
//! With the paper's parameters (1.5 GHz controller clock; L1 hit 1 cycle,
//! L2 hit 7 cycles; a miss costing two SRAM accesses plus one DRAM access;
//! miss ratios 14.7 % / 15.4 %), the translation adder is ~4.2 ns on a
//! 210 ns CXL access: AMAT ≈ 214.2 ns.

use serde::{Deserialize, Serialize};

use dtl_dram::Picos;

/// Parameters of the segment-mapping-cache AMAT model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AmatModel {
    /// Base CXL memory latency without DTL.
    pub cxl_mem_latency: Picos,
    /// L1 SMC hit time.
    pub l1_hit: Picos,
    /// L2 SMC hit time (paid on L1 misses).
    pub l2_hit: Picos,
    /// Full miss penalty: table-walk SRAM accesses plus the DRAM access to
    /// the segment mapping table.
    pub l2_miss_penalty: Picos,
    /// L1 SMC miss ratio in [0, 1].
    pub l1_miss_ratio: f64,
    /// L2 SMC miss ratio (of L1 misses) in [0, 1].
    pub l2_miss_ratio: f64,
}

impl AmatModel {
    /// Controller clock of the paper's CXL controller (quad Cortex-R5).
    pub const CONTROLLER_CLOCK_GHZ: f64 = 1.5;

    /// The paper's §6.1 configuration: 1-cycle L1 SMC, 7-cycle L2 SMC at
    /// 1.5 GHz; the miss path costs two 1-cycle SRAM accesses (host base
    /// address table + AU base address table) plus one DRAM access; the
    /// measured SMC miss ratios are 14.7 % and 15.4 %.
    pub fn paper(dram_access: Picos) -> Self {
        let cycle = Picos::from_ns_f64(1.0 / Self::CONTROLLER_CLOCK_GHZ);
        AmatModel {
            cxl_mem_latency: Picos::from_ns(210),
            l1_hit: cycle,
            l2_hit: cycle * 7,
            l2_miss_penalty: cycle * 2 + dram_access,
            l1_miss_ratio: 0.147,
            l2_miss_ratio: 0.154,
        }
    }

    /// Equation 2: the address-translation latency adder.
    pub fn translation_overhead(&self) -> Picos {
        let l1 = self.l1_hit.as_ns_f64();
        let l2 = self.l2_hit.as_ns_f64();
        let pen = self.l2_miss_penalty.as_ns_f64();
        let ns = l1 + self.l1_miss_ratio * (l2 + self.l2_miss_ratio * pen);
        Picos::from_ns_f64(ns)
    }

    /// Equation 1: the DTL-translated CXL AMAT.
    pub fn amat(&self) -> Picos {
        self.cxl_mem_latency + self.translation_overhead()
    }

    /// Relative execution-time inflation for a workload with the given
    /// memory intensity (the paper reports +0.18 % for CloudSuite).
    ///
    /// `mapki` is memory accesses per kilo-instruction, `base_cpi` the
    /// workload's compute CPI on a `core_ghz` core, and `exposed` the
    /// fraction of each access latency that shows up as stall (out-of-order
    /// cores hide the rest).
    pub fn execution_time_inflation(
        &self,
        mapki: f64,
        base_cpi: f64,
        core_ghz: f64,
        exposed: f64,
    ) -> f64 {
        let mem_per_instr = |amat_ns: f64| mapki / 1000.0 * amat_ns * exposed;
        let base_ns = base_cpi / core_ghz + mem_per_instr(self.cxl_mem_latency.as_ns_f64());
        let added_ns = mem_per_instr(self.translation_overhead().as_ns_f64());
        added_ns / base_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_model() -> AmatModel {
        AmatModel::paper(Picos::from_ns(121))
    }

    #[test]
    fn paper_translation_overhead_is_about_4_2ns() {
        let m = paper_model();
        let ov = m.translation_overhead().as_ns_f64();
        assert!((ov - 4.2).abs() < 0.5, "translation overhead {ov} ns");
    }

    #[test]
    fn paper_amat_is_about_214ns() {
        let m = paper_model();
        let amat = m.amat().as_ns_f64();
        assert!((amat - 214.2).abs() < 0.6, "AMAT {amat} ns");
    }

    #[test]
    fn perfect_caches_reduce_to_l1_hit() {
        let mut m = paper_model();
        m.l1_miss_ratio = 0.0;
        assert_eq!(m.translation_overhead(), m.l1_hit);
    }

    #[test]
    fn always_miss_pays_full_walk() {
        let mut m = paper_model();
        m.l1_miss_ratio = 1.0;
        m.l2_miss_ratio = 1.0;
        let expect = m.l1_hit + m.l2_hit + m.l2_miss_penalty;
        let got = m.translation_overhead();
        assert!(got.as_ps().abs_diff(expect.as_ps()) <= 10, "expected {expect}, got {got}");
    }

    #[test]
    fn execution_inflation_small_for_cloudsuite() {
        let m = paper_model();
        // MAPKI ~2, CPI ~1.0 at 2.7 GHz, 8% exposure: the paper reports
        // +0.18%; the model must land well below 1%.
        let infl = m.execution_time_inflation(2.0, 1.0, 2.7, 0.08);
        assert!(infl > 0.0 && infl < 0.01, "inflation {infl}");
    }
}
