//! A DRAM device behind a CXL (or native) link: adds link latency to each
//! request's arrival and each completion's finish time.

use dtl_dram::{
    AccessKind, AddressMapping, Completion, DramConfig, DramError, DramSystem, PhysAddr, Picos,
    Priority,
};
use serde::{Deserialize, Serialize};

use crate::link::LinkModel;

/// Latency statistics of host-observed accesses through the link.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RemoteStats {
    /// Completed round trips.
    pub completed: u64,
    /// Sum of host-observed latency (ps).
    pub total_latency_ps: u128,
    /// Max host-observed latency.
    pub max_latency: Picos,
}

impl RemoteStats {
    /// Mean host-observed latency.
    pub fn mean_latency(&self) -> Picos {
        if self.completed == 0 {
            Picos::ZERO
        } else {
            Picos::from_ps((self.total_latency_ps / u128::from(self.completed)) as u64)
        }
    }
}

/// A [`DramSystem`] accessed over a [`LinkModel`].
///
/// Requests submitted at host time `t` arrive at the device at
/// `t + request_latency`; device completions are observed by the host
/// `response_latency` later.
///
/// # Examples
///
/// ```
/// use dtl_cxl::{LinkModel, RemoteMemory};
/// use dtl_dram::{AccessKind, AddressMapping, DramConfig, PhysAddr, Picos, Priority};
///
/// let mut m = RemoteMemory::new(
///     DramConfig::tiny(),
///     AddressMapping::RankInterleaved,
///     LinkModel::cxl(),
/// )?;
/// m.submit(PhysAddr::new(0), AccessKind::Read, Priority::Foreground, Picos::ZERO)?;
/// m.advance_to(Picos::from_us(1));
/// let done = m.drain_completions();
/// assert!(done[0].latency() >= Picos::from_ns(89), "link latency included");
/// # Ok::<(), dtl_dram::DramError>(())
/// ```
#[derive(Debug)]
pub struct RemoteMemory {
    dram: DramSystem,
    link: LinkModel,
    stats: RemoteStats,
}

impl RemoteMemory {
    /// Builds a remote memory device.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from [`DramSystem::new`].
    pub fn new(
        config: DramConfig,
        mapping: AddressMapping,
        link: LinkModel,
    ) -> Result<Self, DramError> {
        Ok(RemoteMemory { dram: DramSystem::new(config, mapping)?, link, stats: RemoteStats::default() })
    }

    /// The link model in effect.
    pub fn link(&self) -> LinkModel {
        self.link
    }

    /// The wrapped DRAM device.
    pub fn dram(&self) -> &DramSystem {
        &self.dram
    }

    /// Mutable access to the wrapped DRAM device (power-state control,
    /// reports).
    pub fn dram_mut(&mut self) -> &mut DramSystem {
        &mut self.dram
    }

    /// Host-observed latency statistics.
    pub fn stats(&self) -> RemoteStats {
        self.stats
    }

    /// Submits a request issued by the host at `host_time`.
    ///
    /// # Errors
    ///
    /// Propagates address-range errors from the device.
    pub fn submit(
        &mut self,
        addr: PhysAddr,
        kind: AccessKind,
        priority: Priority,
        host_time: Picos,
    ) -> Result<u64, DramError> {
        self.dram.submit(addr, kind, priority, host_time + self.link.request_latency)
    }

    /// Advances device time.
    pub fn advance_to(&mut self, t: Picos) {
        self.dram.advance_to(t);
    }

    /// Drains completions with host-observed times: `finished` includes the
    /// response latency, `arrival` is rolled back to the host issue time, so
    /// [`Completion::latency`] is the full host-observed round trip.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        let req = self.link.request_latency;
        let resp = self.link.response_latency;
        let out: Vec<Completion> = self
            .dram
            .drain_completions()
            .into_iter()
            .map(|mut c| {
                c.finished += resp;
                c.arrival = c.arrival.saturating_sub(req);
                c
            })
            .collect();
        for c in &out {
            self.stats.completed += 1;
            self.stats.total_latency_ps += u128::from(c.latency().as_ps());
            self.stats.max_latency = self.stats.max_latency.max(c.latency());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn remote(link: LinkModel) -> RemoteMemory {
        RemoteMemory::new(DramConfig::tiny(), AddressMapping::RankInterleaved, link).unwrap()
    }

    #[test]
    fn cxl_latency_exceeds_native_by_round_trip() {
        let mut native = remote(LinkModel::native());
        let mut cxl = remote(LinkModel::cxl());
        for m in [&mut native, &mut cxl] {
            m.submit(PhysAddr::new(4096), AccessKind::Read, Priority::Foreground, Picos::ZERO)
                .unwrap();
            m.advance_to(Picos::from_us(1));
        }
        let ln = native.drain_completions()[0].latency();
        let lc = cxl.drain_completions()[0].latency();
        assert_eq!(lc, ln + Picos::from_ns(89));
    }

    #[test]
    fn stats_accumulate() {
        let mut m = remote(LinkModel::cxl());
        for i in 0..10u64 {
            m.submit(PhysAddr::new(i * 64), AccessKind::Read, Priority::Foreground, Picos::ZERO)
                .unwrap();
        }
        m.advance_to(Picos::from_us(2));
        let done = m.drain_completions();
        assert_eq!(done.len(), 10);
        assert_eq!(m.stats().completed, 10);
        assert!(m.stats().mean_latency() >= Picos::from_ns(89));
        assert!(m.stats().max_latency >= m.stats().mean_latency());
    }

    #[test]
    fn empty_stats_mean_is_zero() {
        let m = remote(LinkModel::native());
        assert_eq!(m.stats().mean_latency(), Picos::ZERO);
    }
}
