//! A DRAM device behind a CXL (or native) link: adds link latency to each
//! request's arrival and each completion's finish time, including any
//! link-level CRC retry delay.

use std::collections::HashMap;

use dtl_dram::{
    AccessKind, AddressMapping, Completion, DramConfig, DramError, DramSystem, PhysAddr, Picos,
    Priority,
};
use serde::{Deserialize, Serialize};

use crate::link::{LinkModel, LinkRetryStats, RetryEngine, RetryPolicy};

/// Latency statistics of host-observed accesses through the link.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RemoteStats {
    /// Completed round trips.
    pub completed: u64,
    /// Sum of host-observed latency (ps).
    pub total_latency_ps: u128,
    /// Max host-observed latency.
    pub max_latency: Picos,
}

impl RemoteStats {
    /// Mean host-observed latency.
    pub fn mean_latency(&self) -> Picos {
        if self.completed == 0 {
            Picos::ZERO
        } else {
            Picos::from_ps((self.total_latency_ps / u128::from(self.completed)) as u64)
        }
    }
}

/// A [`DramSystem`] accessed over a [`LinkModel`].
///
/// Requests submitted at host time `t` arrive at the device at
/// `t + request_latency`; device completions are observed by the host
/// `response_latency` later.
///
/// # Examples
///
/// ```
/// use dtl_cxl::{LinkModel, RemoteMemory};
/// use dtl_dram::{AccessKind, AddressMapping, DramConfig, PhysAddr, Picos, Priority};
///
/// let mut m = RemoteMemory::new(
///     DramConfig::tiny(),
///     AddressMapping::RankInterleaved,
///     LinkModel::cxl(),
/// )?;
/// m.submit(PhysAddr::new(0), AccessKind::Read, Priority::Foreground, Picos::ZERO)?;
/// m.advance_to(Picos::from_us(1));
/// let done = m.drain_completions();
/// assert!(done[0].latency() >= Picos::from_ns(89), "link latency included");
/// # Ok::<(), dtl_dram::DramError>(())
/// ```
#[derive(Debug)]
pub struct RemoteMemory {
    dram: DramSystem,
    link: LinkModel,
    retry: RetryEngine,
    /// Retry delay charged to each in-flight request, keyed by the device's
    /// request id, so completions can roll arrivals back to the true host
    /// issue time.
    retry_delays: HashMap<u64, Picos>,
    stats: RemoteStats,
}

impl RemoteMemory {
    /// Builds a remote memory device.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from [`DramSystem::new`].
    pub fn new(
        config: DramConfig,
        mapping: AddressMapping,
        link: LinkModel,
    ) -> Result<Self, DramError> {
        Ok(RemoteMemory {
            dram: DramSystem::new(config, mapping)?,
            link,
            retry: RetryEngine::new(RetryPolicy::default()),
            retry_delays: HashMap::new(),
            stats: RemoteStats::default(),
        })
    }

    /// The link model in effect.
    pub fn link(&self) -> LinkModel {
        self.link
    }

    /// The wrapped DRAM device.
    pub fn dram(&self) -> &DramSystem {
        &self.dram
    }

    /// Mutable access to the wrapped DRAM device (power-state control,
    /// reports).
    pub fn dram_mut(&mut self) -> &mut DramSystem {
        &mut self.dram
    }

    /// Host-observed latency statistics.
    pub fn stats(&self) -> RemoteStats {
        self.stats
    }

    /// Accumulated link-retry statistics.
    pub fn retry_stats(&self) -> LinkRetryStats {
        self.retry.stats()
    }

    /// Replaces the link retry policy.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry.set_policy(policy);
    }

    /// Installs a telemetry handle on both the link retry engine (CxlRetry
    /// events) and the wrapped DRAM device (RankPowerTransition events).
    pub fn set_telemetry(&mut self, telemetry: dtl_telemetry::Telemetry) {
        self.retry.set_telemetry(telemetry.clone());
        self.dram.set_telemetry(telemetry);
    }

    /// Queues a CRC corruption burst against the next submitted request
    /// (fault injection). The request is still delivered; it just pays the
    /// replay latency and energy.
    pub fn inject_crc_error(&mut self, burst: u32) {
        self.retry.inject_crc_burst(burst);
    }

    /// Submits a request issued by the host at `host_time`.
    ///
    /// If a CRC corruption burst is queued, the request is delayed by the
    /// link-layer replay loop before reaching the device.
    ///
    /// # Errors
    ///
    /// Propagates address-range errors from the device.
    pub fn submit(
        &mut self,
        addr: PhysAddr,
        kind: AccessKind,
        priority: Priority,
        host_time: Picos,
    ) -> Result<u64, DramError> {
        let delivery = self.retry.on_submit_at(host_time);
        let arrive = host_time + self.link.request_latency + delivery.delay;
        let id = self.dram.submit(addr, kind, priority, arrive)?;
        if delivery.delay > Picos::ZERO {
            self.retry_delays.insert(id, delivery.delay);
        }
        Ok(id)
    }

    /// Advances device time.
    pub fn advance_to(&mut self, t: Picos) {
        self.dram.advance_to(t);
    }

    /// Drains completions with host-observed times: `finished` includes the
    /// response latency, `arrival` is rolled back to the host issue time
    /// (undoing the request latency and any CRC retry delay), so
    /// [`Completion::latency`] is the full host-observed round trip
    /// including retries.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        let req = self.link.request_latency;
        let resp = self.link.response_latency;
        let out: Vec<Completion> = self
            .dram
            .drain_completions()
            .into_iter()
            .map(|mut c| {
                let retry = self.retry_delays.remove(&c.id).unwrap_or(Picos::ZERO);
                c.finished += resp;
                c.arrival = c.arrival.saturating_sub(req + retry);
                c
            })
            .collect();
        for c in &out {
            self.stats.completed += 1;
            self.stats.total_latency_ps += u128::from(c.latency().as_ps());
            self.stats.max_latency = self.stats.max_latency.max(c.latency());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn remote(link: LinkModel) -> RemoteMemory {
        RemoteMemory::new(DramConfig::tiny(), AddressMapping::RankInterleaved, link).unwrap()
    }

    #[test]
    fn cxl_latency_exceeds_native_by_round_trip() {
        let mut native = remote(LinkModel::native());
        let mut cxl = remote(LinkModel::cxl());
        for m in [&mut native, &mut cxl] {
            m.submit(PhysAddr::new(4096), AccessKind::Read, Priority::Foreground, Picos::ZERO)
                .unwrap();
            m.advance_to(Picos::from_us(1));
        }
        let ln = native.drain_completions()[0].latency();
        let lc = cxl.drain_completions()[0].latency();
        assert_eq!(lc, ln + Picos::from_ns(89));
    }

    #[test]
    fn stats_accumulate() {
        let mut m = remote(LinkModel::cxl());
        for i in 0..10u64 {
            m.submit(PhysAddr::new(i * 64), AccessKind::Read, Priority::Foreground, Picos::ZERO)
                .unwrap();
        }
        m.advance_to(Picos::from_us(2));
        let done = m.drain_completions();
        assert_eq!(done.len(), 10);
        assert_eq!(m.stats().completed, 10);
        assert!(m.stats().mean_latency() >= Picos::from_ns(89));
        assert!(m.stats().max_latency >= m.stats().mean_latency());
    }

    #[test]
    fn empty_stats_mean_is_zero() {
        let m = remote(LinkModel::native());
        assert_eq!(m.stats().mean_latency(), Picos::ZERO);
    }

    #[test]
    fn crc_retry_adds_host_observed_latency() {
        let mut clean = remote(LinkModel::cxl());
        let mut faulty = remote(LinkModel::cxl());
        faulty.inject_crc_error(1);
        for m in [&mut clean, &mut faulty] {
            m.submit(PhysAddr::new(4096), AccessKind::Read, Priority::Foreground, Picos::ZERO)
                .unwrap();
            m.advance_to(Picos::from_us(2));
        }
        let lc = clean.drain_completions()[0].latency();
        let lf = faulty.drain_completions()[0].latency();
        assert_eq!(lf, lc + Picos::from_ns(100), "one replay = one base backoff");
        let s = faulty.retry_stats();
        assert_eq!((s.crc_errors, s.retries, s.giveups), (1, 1, 0));
        assert_eq!(clean.retry_stats(), LinkRetryStats::default());
    }

    #[test]
    fn giveup_still_delivers_the_request() {
        let mut m = remote(LinkModel::cxl());
        m.set_retry_policy(RetryPolicy {
            max_retries: 2,
            base_backoff: Picos::from_ns(50),
            retry_energy_pj: 10.0,
        });
        m.inject_crc_error(5);
        m.submit(PhysAddr::new(0), AccessKind::Write, Priority::Foreground, Picos::ZERO).unwrap();
        m.advance_to(Picos::from_us(2));
        let done = m.drain_completions();
        assert_eq!(done.len(), 1, "no lost writes at the link layer");
        let s = m.retry_stats();
        assert_eq!((s.crc_errors, s.retries, s.giveups), (5, 2, 1));
        // 50 + 100 ns of replay time.
        assert_eq!(s.retry_time, Picos::from_ns(150));
        assert!((s.retry_energy_pj - 20.0).abs() < 1e-9);
        assert!(done[0].latency() >= Picos::from_ns(150));
    }

    #[test]
    fn retry_delay_is_charged_per_request() {
        let mut m = remote(LinkModel::native());
        m.inject_crc_error(1);
        // First request eats the burst; second is clean.
        m.submit(PhysAddr::new(0), AccessKind::Read, Priority::Foreground, Picos::ZERO).unwrap();
        m.submit(PhysAddr::new(1 << 20), AccessKind::Read, Priority::Foreground, Picos::ZERO)
            .unwrap();
        m.advance_to(Picos::from_us(2));
        let done = m.drain_completions();
        assert_eq!(done.len(), 2);
        let (lo, hi) = {
            let a = done[0].latency();
            let b = done[1].latency();
            (a.min(b), a.max(b))
        };
        assert!(hi >= lo + Picos::from_ns(100), "only the corrupted request pays");
    }
}
