//! Mutation test: a deliberately corrupted forward-mapping entry must be
//! caught by the differential harness and shrunk into a small, replayable
//! counterexample. This is the acceptance proof that the oracle actually
//! has teeth — a checker that can't catch a planted bug checks nothing.

use dtl_check::{fuzz, generate, CheckSetup, Counterexample, FuzzOp, FuzzOutcome};

fn mutated(seed: u64, ops: usize) -> CheckSetup {
    let mut setup = CheckSetup::tiny(seed, ops);
    setup.stream.mutate = true;
    setup
}

#[test]
fn planted_corruption_is_caught_and_minimized() {
    let setup = mutated(101, 400);
    let outcome = fuzz(&setup);
    let ce = match outcome {
        FuzzOutcome::Failed(ce) => ce,
        FuzzOutcome::Clean(stats) => {
            panic!("planted mapping corruption went undetected: {stats:?}")
        }
    };
    let original = generate(&setup.stream);
    assert!(
        ce.ops.len() < original.len() / 2,
        "minimizer should shrink {} ops well below half, got {}",
        original.len(),
        ce.ops.len()
    );
    assert!(
        ce.ops.iter().any(|op| matches!(op, FuzzOp::CorruptMapping)),
        "the corruption op itself must survive shrinking"
    );
    // The shrunk stream must replay to a failure from a fresh harness.
    let reproduced = ce.reproduce().expect("shrunk counterexample must still fail");
    assert_eq!(reproduced.violation.to_string(), ce.violation);
}

#[test]
fn counterexample_survives_json_roundtrip_and_replays() {
    let outcome = fuzz(&mutated(202, 300));
    let ce = match outcome {
        FuzzOutcome::Failed(ce) => ce,
        FuzzOutcome::Clean(_) => panic!("planted corruption went undetected"),
    };
    let parsed = Counterexample::from_json(&ce.to_json()).expect("json parses");
    assert_eq!(parsed.ops, ce.ops);
    assert!(parsed.reproduce().is_some(), "replay from JSON must reproduce the failure");
}

#[test]
fn clean_seeds_stay_clean() {
    // Guard the guard: without the planted mutation the same seeds verify,
    // so the catches above are attributable to the corruption alone.
    for seed in [101, 202] {
        let outcome = fuzz(&CheckSetup::tiny(seed, 300));
        match outcome {
            FuzzOutcome::Clean(stats) => assert!(stats.accesses > 0),
            FuzzOutcome::Failed(ce) => panic!("clean seed {seed} failed: {ce}"),
        }
    }
}
