//! The lockstep harness: executes one [`FuzzOp`] stream against a real
//! [`DtlDevice`] and the [`Oracle`] simultaneously, cross-checking after
//! every step and deep-checking at configurable intervals.

use dtl_core::{
    AnalyticBackend, AuId, DtlConfig, DtlDevice, DtlError, HostId, HostPhysAddr, Hsn,
    SegmentGeometry, VmHandle,
};
use dtl_dram::{AccessKind, Picos, PowerParams, PowerPolicyKind};
use serde::{Deserialize, Serialize};

use crate::invariants::{check_access_rank, check_device, CheckStats};
use crate::ops::{FuzzOp, OpStreamConfig};
use crate::oracle::{Oracle, Violation};

/// Device + stream parameters for one lockstep run. Fully determines the
/// run: equal configs replay identically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckSetup {
    /// Stream generator parameters (seed, op mix, fault plan).
    pub stream: OpStreamConfig,
    /// Segments per rank of the fuzzed device.
    pub segs_per_rank: u64,
    /// Run the full invariant suite every N executed ops (0: only at
    /// [`FuzzOp::Check`] points and at the end).
    pub check_interval: usize,
    /// Rank power-management policy the device starts under (the stream's
    /// [`FuzzOp::SwitchPolicy`] ops may change it mid-run).
    pub policy: PowerPolicyKind,
}

impl CheckSetup {
    /// The default fuzzing target: `DtlConfig::tiny()` over a 2-channel ×
    /// 4-rank × 64-segment analytic device, deep-checked every 16 ops.
    pub fn tiny(seed: u64, ops: usize) -> Self {
        CheckSetup {
            stream: OpStreamConfig::tiny(seed, ops),
            segs_per_rank: 64,
            check_interval: 16,
            policy: PowerPolicyKind::FixedThreshold,
        }
    }

    /// [`CheckSetup::tiny`] with a deterministic fault plan composed in.
    pub fn tiny_faulted(seed: u64, ops: usize) -> Self {
        CheckSetup {
            stream: OpStreamConfig::tiny_faulted(seed, ops),
            segs_per_rank: 64,
            check_interval: 16,
            policy: PowerPolicyKind::FixedThreshold,
        }
    }

    /// The same setup under a different starting power policy.
    pub fn with_policy(self, policy: PowerPolicyKind) -> Self {
        CheckSetup { policy, ..self }
    }

    /// Builds the device under test.
    pub fn build_device(&self) -> DtlDevice<AnalyticBackend> {
        let mut cfg = DtlConfig::tiny();
        cfg.power_policy = self.policy;
        let geo = SegmentGeometry {
            channels: self.stream.channels,
            ranks_per_channel: self.stream.ranks_per_channel,
            segs_per_rank: self.segs_per_rank,
        };
        let backend = AnalyticBackend::new(geo, cfg.segment_bytes, PowerParams::ddr4_128gb_dimm());
        let mut dev = DtlDevice::new(cfg, backend);
        dev.set_command_tap(true);
        dev
    }
}

/// Counters from one completed (or failed) run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Ops executed (including skipped no-ops).
    pub executed: u64,
    /// Ops skipped because their target set was empty (no live VM yet).
    pub skipped: u64,
    /// Accesses issued.
    pub accesses: u64,
    /// Device commands replayed into the oracle.
    pub commands: u64,
    /// Full invariant-suite runs.
    pub full_checks: u64,
    /// Quiesced deep checks.
    pub deep_checks: u64,
    /// Mapped segments at the end of the run.
    pub final_mapped: u64,
}

/// A cross-check failure at a specific stream position.
#[derive(Debug, Clone)]
pub struct CheckFailure {
    /// Index of the op that exposed the violation.
    pub op_index: usize,
    /// The violation.
    pub violation: Violation,
}

impl std::fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op {}: {}", self.op_index, self.violation)
    }
}

/// One VM visible to the fuzzer.
#[derive(Debug)]
struct LiveVm {
    handle: VmHandle,
    aus: Vec<AuId>,
}

/// Drives device and oracle in lockstep. See the module docs.
#[derive(Debug)]
pub struct LockstepHarness {
    dev: DtlDevice<AnalyticBackend>,
    oracle: Oracle,
    setup: CheckSetup,
    vms: Vec<LiveVm>,
    now: Picos,
    write_version: u64,
    stats: RunStats,
}

impl LockstepHarness {
    /// Builds the harness: device (tap enabled), oracle, registered
    /// hosts.
    pub fn new(setup: CheckSetup) -> Self {
        let mut dev = setup.build_device();
        for h in 0..setup.stream.hosts {
            dev.register_host(HostId(h)).expect("host registration under max_hosts");
        }
        let oracle = Oracle::new(dev.geometry());
        LockstepHarness {
            dev,
            oracle,
            setup,
            vms: Vec::new(),
            now: Picos::ZERO,
            write_version: 0,
            stats: RunStats::default(),
        }
    }

    /// Run statistics so far.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// The device under test (diagnostics).
    pub fn device(&self) -> &DtlDevice<AnalyticBackend> {
        &self.dev
    }

    /// The reference model (diagnostics).
    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }

    /// Executes the whole stream; stops at the first violation.
    ///
    /// # Errors
    ///
    /// The first [`CheckFailure`].
    pub fn run_ops(&mut self, ops: &[FuzzOp]) -> Result<RunStats, CheckFailure> {
        for (i, op) in ops.iter().enumerate() {
            self.step(*op).map_err(|violation| CheckFailure { op_index: i, violation })?;
            if self.setup.check_interval > 0 && (i + 1) % self.setup.check_interval == 0 {
                self.full_check(false)
                    .map_err(|violation| CheckFailure { op_index: i, violation })?;
            }
        }
        self.deep_check().map_err(|violation| CheckFailure { op_index: ops.len(), violation })?;
        self.stats.final_mapped = self.oracle.mapped_segments();
        Ok(self.stats)
    }

    /// Executes one op and replays its committed commands into the
    /// oracle.
    fn step(&mut self, op: FuzzOp) -> Result<(), Violation> {
        self.stats.executed += 1;
        self.now += self.setup.stream.op_time;
        let au_bytes = self.dev.config().au_bytes;
        match op {
            FuzzOp::Alloc { host, aus } => {
                let host = HostId(host % self.setup.stream.hosts);
                let bytes = u64::from(aus.max(1)) * au_bytes;
                match self.dev.alloc_vm(host, bytes, self.now) {
                    Ok(vm) => self.vms.push(LiveVm { handle: vm.handle, aus: vm.aus }),
                    Err(DtlError::OutOfCapacity { .. }) | Err(DtlError::QuotaExceeded { .. }) => {
                        self.stats.skipped += 1;
                    }
                    Err(e) => return Err(device_error(e)),
                }
            }
            FuzzOp::Dealloc { vm } => match self.pick_vm(vm) {
                Some(idx) => {
                    let live = self.vms.remove(idx);
                    self.dev.dealloc_vm(live.handle, self.now).map_err(device_error)?;
                }
                None => self.stats.skipped += 1,
            },
            FuzzOp::Grow { vm, aus } => match self.pick_vm(vm) {
                Some(idx) => {
                    let handle = self.vms[idx].handle;
                    let bytes = u64::from(aus.max(1)) * au_bytes;
                    match self.dev.grow_vm(handle, bytes, self.now) {
                        Ok(new_aus) => self.vms[idx].aus.extend(new_aus),
                        Err(DtlError::OutOfCapacity { .. })
                        | Err(DtlError::QuotaExceeded { .. }) => self.stats.skipped += 1,
                        Err(e) => return Err(device_error(e)),
                    }
                }
                None => self.stats.skipped += 1,
            },
            FuzzOp::Shrink { vm, aus } => match self.pick_vm(vm) {
                Some(idx) => {
                    let n = u32::from(aus.max(1));
                    if (n as usize) < self.vms[idx].aus.len() {
                        let handle = self.vms[idx].handle;
                        self.dev.shrink_vm(handle, n, self.now).map_err(device_error)?;
                        let keep = self.vms[idx].aus.len() - n as usize;
                        self.vms[idx].aus.truncate(keep);
                    } else {
                        self.stats.skipped += 1;
                    }
                }
                None => self.stats.skipped += 1,
            },
            FuzzOp::Access { vm, addr, write } => match self.pick_vm(vm) {
                Some(idx) => self.do_access(idx, addr, write)?,
                None => self.stats.skipped += 1,
            },
            FuzzOp::Tick { us } => {
                self.now += Picos::from_us(u64::from(us));
                self.dev.tick(self.now).map_err(device_error)?;
            }
            FuzzOp::RetireRank { channel, rank } => {
                let c = u32::from(channel) % self.dev.geometry().channels;
                let r = u32::from(rank) % self.dev.geometry().ranks_per_channel;
                match self.dev.retire_rank(c, r, self.now) {
                    // Refusals (last active rank, no spare capacity, already
                    // retiring) are legitimate outcomes, not bugs.
                    Ok(())
                    | Err(DtlError::OutOfCapacity { .. })
                    | Err(DtlError::Internal { .. }) => {}
                    Err(e) => return Err(device_error(e)),
                }
            }
            FuzzOp::Correctable { channel, rank } => {
                let (c, r) = self.pick_rank(channel, rank);
                self.dev.inject_correctable_error(c, r, self.now).map_err(device_error)?;
            }
            FuzzOp::Uncorrectable { channel, rank } => {
                let (c, r) = self.pick_rank(channel, rank);
                self.dev.inject_uncorrectable_error(c, r, self.now).map_err(device_error)?;
            }
            FuzzOp::Interrupt { channel } => {
                let c = u32::from(channel) % self.dev.geometry().channels;
                self.dev.inject_migration_interrupt(c, self.now).map_err(device_error)?;
            }
            FuzzOp::Check => {
                self.drain_into_oracle()?;
                return self.deep_check();
            }
            FuzzOp::SwitchPolicy { policy } => {
                self.dev.set_power_policy(PowerPolicyKind::from_index(policy));
            }
            FuzzOp::PostponeRefresh { channel, rank } => {
                let (c, r) = self.pick_rank(channel, rank);
                // A declined postponement is a legitimate outcome.
                let _granted = self.dev.postpone_refresh(c, r, self.now).map_err(device_error)?;
            }
            FuzzOp::CorruptMapping => {
                self.dev.corrupt_mapping_for_test();
            }
            FuzzOp::CorruptPowerLog => {
                // Sync the ledger first so only the legality check — not
                // stream coherence — can flag the forged transition.
                self.drain_into_oracle()?;
                self.dev.corrupt_power_log_for_test(self.now);
            }
        }
        self.drain_into_oracle()
    }

    fn do_access(&mut self, idx: usize, addr: u64, write: bool) -> Result<(), Violation> {
        let au_bytes = self.dev.config().au_bytes;
        let segment_bytes = self.dev.config().segment_bytes;
        let vm = &self.vms[idx];
        let span = vm.aus.len() as u64 * au_bytes;
        let addr = (addr % span) & !63;
        let au = vm.aus[(addr / au_bytes) as usize];
        let offset = addr % au_bytes;
        let hpa = HostPhysAddr::new(u64::from(au.0) * au_bytes + offset);
        let host = vm.handle.host;
        let hsn = Hsn { host, au, au_offset: (offset / segment_bytes) as u32 };
        let kind = if write { AccessKind::Write } else { AccessKind::Read };
        let out = self.dev.access(host, hpa, kind, self.now).map_err(device_error)?;
        self.stats.accesses += 1;
        // Commands the access flushed (power wakes) must land in the
        // ledger before the power-safety spot check.
        self.drain_into_oracle()?;
        if write {
            self.write_version += 1;
            let value = 0x5eed_0000_0000_0000 | self.write_version;
            self.oracle.note_write(hsn, out.dsn, value, self.write_version);
        } else {
            self.oracle.note_read(hsn, out.dsn)?;
        }
        check_access_rank(&self.oracle, out.dsn, self.dev.geometry())
    }

    /// Replays every buffered device command into the oracle.
    fn drain_into_oracle(&mut self) -> Result<(), Violation> {
        for cmd in self.dev.drain_commands() {
            self.stats.commands += 1;
            self.oracle.apply(&cmd)?;
        }
        Ok(())
    }

    /// Runs the full suite without quiescing.
    fn full_check(&mut self, quiesced: bool) -> Result<(), Violation> {
        self.drain_into_oracle()?;
        let _: CheckStats = check_device(&self.dev, &self.oracle, quiesced)?;
        self.stats.full_checks += 1;
        Ok(())
    }

    /// Quiesces in-flight migrations (bounded), re-syncs racy shadows,
    /// then runs the suite with the exact conservation laws on.
    fn deep_check(&mut self) -> Result<(), Violation> {
        let mut tries = 0;
        while self.dev.migrations_pending() > 0 && tries < 256 {
            self.now += Picos::from_us(100);
            self.dev.tick(self.now).map_err(device_error)?;
            tries += 1;
        }
        self.drain_into_oracle()?;
        let quiesced = self.dev.migrations_pending() == 0;
        if quiesced {
            self.oracle.resync_dirty();
        }
        let _: CheckStats = check_device(&self.dev, &self.oracle, quiesced)?;
        self.stats.full_checks += 1;
        self.stats.deep_checks += 1;
        Ok(())
    }

    fn pick_vm(&self, raw: u8) -> Option<usize> {
        if self.vms.is_empty() {
            None
        } else {
            Some(usize::from(raw) % self.vms.len())
        }
    }

    fn pick_rank(&self, channel: u8, rank: u8) -> (u32, u32) {
        let geo = self.dev.geometry();
        (u32::from(channel) % geo.channels, u32::from(rank) % geo.ranks_per_channel)
    }
}

/// An unexpected device error is itself a violation: the op streams only
/// issue requests the device contract says are serviceable.
fn device_error(e: DtlError) -> Violation {
    Violation::DeviceInternal { detail: e.to_string() }
}

/// Convenience: build the harness and run `ops` from scratch.
///
/// # Errors
///
/// The first [`CheckFailure`].
pub fn replay(setup: &CheckSetup, ops: &[FuzzOp]) -> Result<RunStats, CheckFailure> {
    LockstepHarness::new(*setup).run_ops(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::generate;

    #[test]
    fn clean_run_has_no_violations() {
        let setup = CheckSetup::tiny(11, 400);
        let ops = generate(&setup.stream);
        let stats = replay(&setup, &ops).expect("clean stream must verify");
        assert!(stats.accesses > 0);
        assert!(stats.commands > 0);
        assert!(stats.full_checks > 0);
    }

    #[test]
    fn faulted_run_has_no_violations() {
        let setup = CheckSetup::tiny_faulted(12, 400);
        let ops = generate(&setup.stream);
        let stats = replay(&setup, &ops).expect("faulted stream must verify");
        assert!(stats.deep_checks > 0);
    }

    #[test]
    fn clean_run_verifies_under_every_policy() {
        for kind in PowerPolicyKind::ALL {
            let setup = CheckSetup::tiny(21, 400).with_policy(kind);
            let ops = generate(&setup.stream);
            let stats =
                replay(&setup, &ops).unwrap_or_else(|f| panic!("{kind:?} stream failed: {f}"));
            assert!(stats.accesses > 0, "{kind:?} run exercised accesses");
        }
    }

    /// ISSUE 8 mutation pin: a planted rung-skipping power transition must
    /// be flagged by the oracle's legality check — not merely stream
    /// coherence — and ddmin must shrink the stream to (nearly) the
    /// forged op alone.
    #[test]
    fn planted_illegal_transition_is_caught_and_shrunk() {
        let setup = CheckSetup {
            stream: crate::ops::OpStreamConfig {
                mutate_power: true,
                ..CheckSetup::tiny(17, 300).stream
            },
            ..CheckSetup::tiny(17, 300)
        };
        let ops = generate(&setup.stream);
        let failure = replay(&setup, &ops).expect_err("the forged transition must be caught");
        assert!(
            matches!(failure.violation, Violation::IllegalTransition { .. }),
            "unexpected violation class: {}",
            failure.violation
        );
        let ce = crate::minimize::minimize(&setup, &ops, &failure);
        assert!(ce.ops.len() <= 2, "ddmin should isolate the forged op, got {} ops", ce.ops.len());
        assert!(ce.ops.contains(&FuzzOp::CorruptPowerLog));
        assert!(ce.reproduce().is_some(), "the shrunk stream must still fail");
    }

    #[test]
    fn corrupted_mapping_is_caught() {
        let setup = CheckSetup {
            stream: crate::ops::OpStreamConfig { mutate: true, ..CheckSetup::tiny(13, 300).stream },
            ..CheckSetup::tiny(13, 300)
        };
        let ops = generate(&setup.stream);
        let failure = replay(&setup, &ops).expect_err("the wrench must be caught");
        assert!(
            matches!(
                failure.violation,
                Violation::ProbeMismatch { .. }
                    | Violation::ForwardMismatch { .. }
                    | Violation::DeviceInternal { .. }
                    | Violation::StreamIncoherent { .. }
            ),
            "unexpected violation class: {}",
            failure.violation
        );
    }
}
