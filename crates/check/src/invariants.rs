//! The external invariant suite: cross-checks a [`DtlDevice`] against the
//! [`Oracle`] after any step.
//!
//! Everything here is recomputed from the device's *outputs* (reverse
//! table dump, snapshot, probes) against the oracle's independent flat
//! model — deliberately not reusing the device's internal
//! `check_invariants` arithmetic (which still runs as a final
//! belt-and-braces step, so internal assertion failures also surface as
//! violations rather than panics).

use dtl_core::{Dsn, DtlDevice, HostPhysAddr, Hsn, MemoryBackend};
use dtl_dram::{Picos, PowerState};

use crate::oracle::{Oracle, Violation};

/// What a full check covered, for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Mapped entries cross-checked.
    pub entries: u64,
    /// Forward-walk probes issued.
    pub probes: u64,
    /// Ranks audited.
    pub ranks: u64,
}

/// Runs the full invariant suite. `quiesced` additionally enforces the
/// exact conservation laws that only hold with no migrations in flight
/// (allocated == mapped per rank, shadowed content == mapped set).
///
/// # Errors
///
/// The first [`Violation`] found.
pub fn check_device<B: MemoryBackend>(
    dev: &DtlDevice<B>,
    oracle: &Oracle,
    quiesced: bool,
) -> Result<CheckStats, Violation> {
    let mut stats = CheckStats::default();
    let geo = dev.geometry();
    let cfg = dev.config();

    // 1. Translation bijectivity: the device's reverse table and the
    //    oracle's flat map must be the same relation, and the device's
    //    forward walk must agree entry by entry (no two HPAs can share a
    //    DPA: both sides are keyed maps, so agreement + equal cardinality
    //    is bijectivity).
    let entries = dev.mapped_entries();
    if entries.len() as u64 != oracle.mapped_segments() {
        return Err(Violation::CountMismatch {
            device: entries.len() as u64,
            oracle: oracle.mapped_segments(),
        });
    }
    for (dsn, hsn) in &entries {
        if oracle.translate(*hsn) != Some(*dsn) {
            return Err(Violation::ForwardMismatch {
                hsn: *hsn,
                device: Some(*dsn),
                oracle: oracle.translate(*hsn),
            });
        }
        stats.entries += 1;
    }
    for (hsn, dsn) in oracle.iter_forward() {
        let hpa = hpa_of(hsn, cfg.au_bytes, cfg.segment_bytes);
        let probe = dev.probe_translation(hsn.host, hpa);
        if probe != Some(dsn) {
            return Err(Violation::ProbeMismatch { hsn, probe, oracle: dsn });
        }
        stats.probes += 1;
    }

    // 2. Residency conservation, power ledger, and power safety, per
    //    rank from one snapshot.
    let snap = dev.snapshot();
    let mapped_per_rank = oracle.mapped_per_rank();
    let now = dev.backend().now();
    let mut allocated_total = 0u64;
    for rank in &snap.ranks {
        let idx = (rank.channel * geo.ranks_per_channel + rank.rank) as usize;
        let mapped = mapped_per_rank[idx];
        allocated_total += rank.allocated_segments;
        if rank.allocated_segments + rank.free_segments != geo.segs_per_rank {
            return Err(Violation::ResidencyMismatch {
                channel: rank.channel,
                rank: rank.rank,
                detail: format!(
                    "allocated {} + free {} != capacity {}",
                    rank.allocated_segments, rank.free_segments, geo.segs_per_rank
                ),
            });
        }
        if mapped > rank.allocated_segments {
            return Err(Violation::ResidencyMismatch {
                channel: rank.channel,
                rank: rank.rank,
                detail: format!(
                    "{mapped} live segments exceed {} allocated slots",
                    rank.allocated_segments
                ),
            });
        }
        if quiesced && mapped != rank.allocated_segments {
            return Err(Violation::ResidencyMismatch {
                channel: rank.channel,
                rank: rank.rank,
                detail: format!(
                    "quiesced, yet {} allocated vs {mapped} live segments",
                    rank.allocated_segments
                ),
            });
        }
        let ledger = oracle.power_state(rank.channel, rank.rank);
        if ledger != rank.power {
            return Err(Violation::PowerLedgerMismatch {
                channel: rank.channel,
                rank: rank.rank,
                ledger,
                device: rank.power,
            });
        }
        // The backend future-dates transition completions (done = now +
        // exit latency), so a rank's residency clock may run ahead of
        // backend now by at most one in-flight transition latency; it
        // must never lag. Analytic backends integrate residency in closed
        // form at transition boundaries and report their exact worst-case
        // latency, so no tick-quantization slack is added on top.
        let slack = dev.backend().residency_slack();
        let residency_sum = rank.residency.iter().fold(Picos::ZERO, |acc, t| acc + *t);
        if residency_sum < now || residency_sum > now + slack {
            return Err(Violation::ResidencyClock {
                channel: rank.channel,
                rank: rank.rank,
                sum: residency_sum,
                now,
            });
        }
        stats.ranks += 1;
    }
    let reserved = dev.pending_copy_reservations();
    if allocated_total != oracle.mapped_segments() + reserved {
        return Err(Violation::ReservationImbalance {
            allocated: allocated_total,
            mapped: oracle.mapped_segments(),
            reserved,
        });
    }

    // 3. Power safety: no live segment may sit in an MPSM rank (its data
    //    would be gone). Self-refresh holds data, so cold live segments
    //    are allowed there.
    for (dsn, hsn) in &entries {
        let loc = geo.location(*dsn);
        if oracle.power_state(loc.channel, loc.rank) == PowerState::Mpsm {
            return Err(Violation::MappedInMpsm {
                dsn: *dsn,
                hsn: *hsn,
                channel: loc.channel,
                rank: loc.rank,
            });
        }
    }

    // 4. Quiesced-only content conservation.
    if quiesced {
        oracle.check_content_conservation()?;
    }

    // 5. The device's own internal checker (a broken internal invariant
    //    is a finding, not a harness crash).
    dev.check_invariants().map_err(|e| Violation::DeviceInternal { detail: e.to_string() })?;

    Ok(stats)
}

/// Reconstructs the HPA of a host segment's first byte.
pub(crate) fn hpa_of(hsn: Hsn, au_bytes: u64, segment_bytes: u64) -> HostPhysAddr {
    HostPhysAddr::new(u64::from(hsn.au.0) * au_bytes + u64::from(hsn.au_offset) * segment_bytes)
}

/// Power-safety spot check after one access: the serving rank must have
/// come out of any sleep state by the time the access retired (the wake
/// transition must already be in the applied stream).
pub fn check_access_rank(
    oracle: &Oracle,
    dsn: Dsn,
    geo: dtl_core::SegmentGeometry,
) -> Result<(), Violation> {
    let loc = geo.location(dsn);
    let state = oracle.power_state(loc.channel, loc.rank);
    if state == PowerState::Mpsm || state == PowerState::SelfRefresh {
        return Err(Violation::AccessToSleepingRank {
            dsn,
            channel: loc.channel,
            rank: loc.rank,
            state,
        });
    }
    Ok(())
}
