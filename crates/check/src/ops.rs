//! The differential fuzzer's op vocabulary and deterministic stream
//! generator.
//!
//! Ops reference VMs by *index into the currently-live set, modulo its
//! size* rather than by handle, so a shrunk stream (ops deleted anywhere)
//! still resolves every reference — the property delta-debugging needs to
//! shrink aggressively without re-validating.
//!
//! Access addresses and read/write mix come from a [`dtl_trace::TraceGen`]
//! workload generator; fault ops are composed from a deterministic
//! [`dtl_fault::FaultPlanConfig`] plan, interleaved by event time.

use dtl_dram::Picos;
use dtl_fault::{FaultKind, FaultPlanConfig};
use dtl_trace::{TraceGen, WorkloadKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One fuzzer op. `vm` fields are indices into the live-VM list modulo
/// its length at execution time; rank/channel fields are taken modulo the
/// geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FuzzOp {
    /// Allocate a VM of `aus` allocation units for `host`.
    Alloc {
        /// Host index (modulo configured hosts).
        host: u16,
        /// Size in AUs (at least 1).
        aus: u8,
    },
    /// Deallocate a live VM.
    Dealloc {
        /// Live-VM index.
        vm: u8,
    },
    /// Grow a live VM.
    Grow {
        /// Live-VM index.
        vm: u8,
        /// Additional AUs (at least 1).
        aus: u8,
    },
    /// Shrink a live VM by releasing its top AUs.
    Shrink {
        /// Live-VM index.
        vm: u8,
        /// AUs to release.
        aus: u8,
    },
    /// One 64 B access into a live VM's address space.
    Access {
        /// Live-VM index.
        vm: u8,
        /// Byte address within the VM's space (modulo its size).
        addr: u64,
        /// Write vs read.
        write: bool,
    },
    /// Advance device time.
    Tick {
        /// Microseconds to advance.
        us: u32,
    },
    /// Permanently retire a rank (the device may legitimately refuse).
    RetireRank {
        /// Channel (modulo geometry).
        channel: u8,
        /// Rank (modulo geometry).
        rank: u8,
    },
    /// Inject a correctable ECC error.
    Correctable {
        /// Channel (modulo geometry).
        channel: u8,
        /// Rank (modulo geometry).
        rank: u8,
    },
    /// Inject an uncorrectable ECC error.
    Uncorrectable {
        /// Channel (modulo geometry).
        channel: u8,
        /// Rank (modulo geometry).
        rank: u8,
    },
    /// Interrupt the channel's in-flight migration.
    Interrupt {
        /// Channel (modulo geometry).
        channel: u8,
    },
    /// Quiesce migrations and run the deep (conservation) checks.
    Check,
    /// Switch the device's rank power-management policy mid-stream.
    SwitchPolicy {
        /// Policy index (modulo the number of built-in policies).
        policy: u8,
    },
    /// Ask the active policy to postpone a rank's next refresh (the
    /// refresh-aware policy's lever; other policies decline).
    PostponeRefresh {
        /// Channel (modulo geometry).
        channel: u8,
        /// Rank (modulo geometry).
        rank: u8,
    },
    /// Mutation hook: deliberately corrupt one forward-mapping entry in
    /// the device. Only generated when explicitly requested; the checker
    /// must catch the divergence.
    CorruptMapping,
    /// Mutation hook: forge a rung-skipping power transition into the
    /// command stream without touching the backend. Only generated when
    /// explicitly requested; the checker's legal-transition check must
    /// catch it.
    CorruptPowerLog,
}

/// Deterministic generator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpStreamConfig {
    /// RNG seed; equal seeds produce equal streams.
    pub seed: u64,
    /// Ops to generate (fault ops may add a few more).
    pub ops: usize,
    /// Hosts to spread allocations over.
    pub hosts: u16,
    /// Nominal time per op, for positioning fault-plan events.
    pub op_time: Picos,
    /// Compose a deterministic `dtl-fault` plan into the stream.
    pub with_faults: bool,
    /// Channels (for fault-plan generation).
    pub channels: u32,
    /// Ranks per channel (for fault-plan generation).
    pub ranks_per_channel: u32,
    /// Insert a [`FuzzOp::CorruptMapping`] two-thirds through.
    pub mutate: bool,
    /// Insert a [`FuzzOp::CorruptPowerLog`] one-third through.
    pub mutate_power: bool,
}

impl OpStreamConfig {
    /// A small default stream: 2×4 geometry, 2 hosts, 50 µs per op.
    pub fn tiny(seed: u64, ops: usize) -> Self {
        OpStreamConfig {
            seed,
            ops,
            hosts: 2,
            op_time: Picos::from_us(50),
            with_faults: false,
            channels: 2,
            ranks_per_channel: 4,
            mutate: false,
            mutate_power: false,
        }
    }

    /// Like [`OpStreamConfig::tiny`] with a fault plan composed in.
    pub fn tiny_faulted(seed: u64, ops: usize) -> Self {
        OpStreamConfig { with_faults: true, ..Self::tiny(seed, ops) }
    }
}

/// Generates the op stream for `cfg`. Deterministic: equal configs yield
/// equal streams.
pub fn generate(cfg: &OpStreamConfig) -> Vec<FuzzOp> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xc0de_c0de_c0de_c0de);
    // One workload generator supplies realistic address locality and
    // read/write mix for the access ops.
    let kinds = [
        WorkloadKind::WebSearch,
        WorkloadKind::DataCaching,
        WorkloadKind::GraphAnalytics,
        WorkloadKind::MediaStreaming,
    ];
    let spec = kinds[(cfg.seed % kinds.len() as u64) as usize].spec().scaled(256);
    let mut trace = TraceGen::new(spec, cfg.seed);
    let mut ops = Vec::with_capacity(cfg.ops + 16);
    for _ in 0..cfg.ops {
        let roll = rng.gen_range(0..100u32);
        let op = match roll {
            0..=11 => FuzzOp::Alloc { host: rng.gen_range(0..cfg.hosts), aus: rng.gen_range(1..4) },
            12..=18 => FuzzOp::Dealloc { vm: rng.gen() },
            19..=22 => FuzzOp::Grow { vm: rng.gen(), aus: rng.gen_range(1..3) },
            23..=26 => FuzzOp::Shrink { vm: rng.gen(), aus: rng.gen_range(1..3) },
            27..=75 => {
                let rec = trace.next_record();
                FuzzOp::Access { vm: rng.gen(), addr: rec.addr, write: rec.is_write }
            }
            76..=77 => FuzzOp::SwitchPolicy { policy: rng.gen() },
            78..=79 => FuzzOp::PostponeRefresh { channel: rng.gen(), rank: rng.gen() },
            80..=92 => FuzzOp::Tick { us: rng.gen_range(20..400) },
            93..=94 => FuzzOp::RetireRank { channel: rng.gen(), rank: rng.gen() },
            95..=97 => FuzzOp::Check,
            _ => FuzzOp::Interrupt { channel: rng.gen() },
        };
        ops.push(op);
    }
    if cfg.with_faults {
        compose_fault_plan(cfg, &mut ops);
    }
    if cfg.mutate {
        let at = ops.len() * 2 / 3;
        ops.insert(at, FuzzOp::CorruptMapping);
    }
    if cfg.mutate_power {
        let at = ops.len() / 3;
        ops.insert(at, FuzzOp::CorruptPowerLog);
    }
    ops
}

/// Maps a deterministic fault plan's timed events onto stream positions
/// (`index = at / op_time`) and splices them in.
fn compose_fault_plan(cfg: &OpStreamConfig, ops: &mut Vec<FuzzOp>) {
    let duration = cfg.op_time * ops.len() as u64;
    let plan =
        FaultPlanConfig::quiet(cfg.seed, duration, cfg.channels, cfg.ranks_per_channel).generate();
    let mut timed: Vec<(usize, FuzzOp)> = Vec::new();
    for ev in plan.events() {
        let idx = ((ev.at.as_ps() / cfg.op_time.as_ps().max(1)) as usize).min(ops.len());
        let op = match ev.kind {
            FaultKind::CorrectableEcc { channel, rank } => {
                FuzzOp::Correctable { channel: channel as u8, rank: rank as u8 }
            }
            FaultKind::UncorrectableEcc { channel, rank } => {
                FuzzOp::Uncorrectable { channel: channel as u8, rank: rank as u8 }
            }
            FaultKind::MigrationInterrupt { channel } => {
                FuzzOp::Interrupt { channel: channel as u8 }
            }
            // Link CRC faults live in dtl-cxl, outside the device the
            // oracle mirrors.
            FaultKind::LinkCrc { .. } => continue,
        };
        timed.push((idx, op));
    }
    // Splice back-to-front so earlier indices stay valid.
    timed.sort_by_key(|(idx, _)| *idx);
    for (idx, op) in timed.into_iter().rev() {
        ops.insert(idx, op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&OpStreamConfig::tiny(42, 300));
        let b = generate(&OpStreamConfig::tiny(42, 300));
        assert_eq!(a, b);
        let c = generate(&OpStreamConfig::tiny(43, 300));
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn fault_plan_composes_extra_ops() {
        let plain = generate(&OpStreamConfig::tiny(7, 400));
        let faulted = generate(&OpStreamConfig::tiny_faulted(7, 400));
        assert!(faulted.len() >= plain.len());
        assert!(
            faulted.iter().any(|op| matches!(
                op,
                FuzzOp::Correctable { .. }
                    | FuzzOp::Uncorrectable { .. }
                    | FuzzOp::Interrupt { .. }
            )),
            "quiet plan should still inject something over {} ops",
            faulted.len()
        );
    }

    #[test]
    fn mutate_inserts_the_wrench() {
        let ops = generate(&OpStreamConfig { mutate: true, ..OpStreamConfig::tiny(1, 90) });
        assert_eq!(ops.iter().filter(|op| matches!(op, FuzzOp::CorruptMapping)).count(), 1);
    }
}
