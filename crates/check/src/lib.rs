//! # dtl-check: differential oracle and invariant harness
//!
//! Cross-checks the cycle-level DTL device (`dtl-core`) against a
//! deliberately simple reference model.
//!
//! The device chooses migration destinations internally, so a reference
//! model cannot *predict* DSNs. Instead the [`Oracle`] replays the
//! device's committed-command stream (the tap on
//! `DtlDevice::drain_commands`) into flat `HashMap`s, independently
//! validating the stream's coherence as it goes, and the invariant suite
//! ([`check_device`]) then cross-checks three independent views of the
//! same state: the tap-built oracle, the device's reverse-table dump, and
//! side-effect-free forward probes — plus residency conservation, a power
//! ledger, power safety, and byte-shadowed segment contents.
//!
//! The [`fuzz`] entry point drives device and oracle in lockstep over a
//! seeded random op stream ([`ops::generate`]), and on failure shrinks
//! the stream with delta debugging ([`minimize::minimize`]) into a
//! replayable [`Counterexample`].

#![warn(missing_docs)]

pub mod harness;
pub mod invariants;
pub mod minimize;
pub mod ops;
pub mod oracle;

pub use harness::{replay, CheckFailure, CheckSetup, LockstepHarness, RunStats};
pub use invariants::{check_access_rank, check_device, CheckStats};
pub use minimize::{minimize, Counterexample};
pub use ops::{generate, FuzzOp, OpStreamConfig};
pub use oracle::{Oracle, Violation};

/// Result of one fuzzing run: either clean stats or a shrunk
/// counterexample.
#[derive(Debug)]
pub enum FuzzOutcome {
    /// The stream verified clean.
    Clean(RunStats),
    /// A violation was found and minimized.
    Failed(Box<Counterexample>),
}

impl FuzzOutcome {
    /// `true` when the run verified clean.
    pub fn is_clean(&self) -> bool {
        matches!(self, FuzzOutcome::Clean(_))
    }
}

/// Generates the stream for `setup`, runs it in lockstep, and minimizes
/// any failure into a replayable counterexample.
pub fn fuzz(setup: &CheckSetup) -> FuzzOutcome {
    let ops = generate(&setup.stream);
    match replay(setup, &ops) {
        Ok(stats) => FuzzOutcome::Clean(stats),
        Err(failure) => FuzzOutcome::Failed(Box::new(minimize(setup, &ops, &failure))),
    }
}
