//! Failing-case minimization: delta-debugging over op streams.
//!
//! Because ops reference VMs by modulo index (see [`crate::ops`]), any
//! subsequence of a valid stream is itself a valid stream, so ddmin can
//! delete chunks freely and re-run the harness from scratch on each
//! candidate.

use serde::{Deserialize, Serialize};

use crate::harness::{replay, CheckFailure, CheckSetup};
use crate::ops::FuzzOp;

/// A minimized, replayable counterexample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Counterexample {
    /// Setup (including the generator seed) that produced the original
    /// failure.
    pub setup: CheckSetup,
    /// Index of the failing op within `ops`.
    pub op_index: usize,
    /// Human-readable violation description.
    pub violation: String,
    /// The shrunk op stream. Replaying it against a fresh harness built
    /// from `setup` reproduces the violation.
    pub ops: Vec<FuzzOp>,
    /// Stream length before shrinking.
    pub original_len: usize,
    /// Harness replays spent shrinking.
    pub replays: usize,
}

impl Counterexample {
    /// Serializes the counterexample for storage / replay.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("counterexample serializes")
    }

    /// Parses a stored counterexample.
    ///
    /// # Errors
    ///
    /// Propagates the JSON parse error.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Re-runs the shrunk stream and returns the reproduced failure, if
    /// it still fails (it should).
    pub fn reproduce(&self) -> Option<CheckFailure> {
        replay(&self.setup, &self.ops).err()
    }
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "counterexample: seed {} shrunk {} -> {} ops ({} replays)",
            self.setup.stream.seed,
            self.original_len,
            self.ops.len(),
            self.replays
        )?;
        writeln!(f, "  violation at op {}: {}", self.op_index, self.violation)?;
        write!(f, "  replay: diff_fuzz --replay '{}'", self.to_json())
    }
}

/// Does `ops` still fail (with any violation)?
fn still_fails(setup: &CheckSetup, ops: &[FuzzOp], replays: &mut usize) -> Option<CheckFailure> {
    *replays += 1;
    replay(setup, ops).err()
}

/// Shrinks a failing stream with ddmin-style chunk removal: repeatedly
/// try deleting chunks (halving the chunk size down to 1) and keep any
/// deletion that still fails. Accepts *any* violation in candidates, not
/// just the original one — a shrunk stream exposing a different bug is
/// still a bug.
pub fn minimize(setup: &CheckSetup, ops: &[FuzzOp], failure: &CheckFailure) -> Counterexample {
    let original_len = ops.len();
    let mut current: Vec<FuzzOp> = ops.to_vec();
    let mut best = failure.clone();
    let mut replays = 0usize;

    let mut chunk = (current.len() / 2).max(1);
    while chunk >= 1 {
        let mut shrunk_this_round = false;
        let mut start = 0;
        while start < current.len() {
            if current.len() <= 1 {
                break;
            }
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if candidate.is_empty() {
                start = end;
                continue;
            }
            if let Some(f) = still_fails(setup, &candidate, &mut replays) {
                current = candidate;
                best = f;
                shrunk_this_round = true;
                // Retry the same window: the next chunk slid into place.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !shrunk_this_round {
            break;
        }
        chunk = if chunk > 1 { chunk / 2 } else { 1 };
    }

    Counterexample {
        setup: *setup,
        op_index: best.op_index,
        violation: best.violation.to_string(),
        ops: current,
        original_len,
        replays,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{generate, OpStreamConfig};

    #[test]
    fn counterexample_json_roundtrip() {
        let setup = CheckSetup::tiny(5, 10);
        let ce = Counterexample {
            setup,
            op_index: 3,
            violation: "boom".into(),
            ops: generate(&OpStreamConfig::tiny(5, 10)),
            original_len: 10,
            replays: 7,
        };
        let back = Counterexample::from_json(&ce.to_json()).expect("parses");
        assert_eq!(back.ops, ce.ops);
        assert_eq!(back.op_index, 3);
        assert_eq!(back.setup, setup);
    }
}
