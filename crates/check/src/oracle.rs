//! The flat reference model: a `HashMap`-based HPA→DPA mirror with
//! version-shadowed segment contents and a trivial power-state ledger.
//!
//! The oracle consumes the device's committed command stream
//! ([`DeviceCommand`]) plus the harness-level access outcomes, and keeps a
//! model simple enough to be obviously correct: two hash maps for the
//! mapping, one shadow word per segment for contents, one enum per rank
//! for power. Every structural assumption is re-checked as the stream is
//! applied, so an incoherent stream (the signature of a device bug) is
//! caught at the first bad command, not at the next full check.

use std::collections::{HashMap, HashSet};
use std::fmt;

use dtl_core::{DeviceCommand, Dsn, Hsn, SegmentGeometry};
use dtl_dram::{Picos, PowerState};

/// A cross-check failure: the device and the reference model disagree, or
/// the device's own command stream is incoherent.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// The committed command stream contradicts the model (e.g. a remap
    /// whose source the model believes is unmapped).
    StreamIncoherent {
        /// What was wrong.
        detail: String,
    },
    /// Device and oracle disagree on the number of mapped segments.
    CountMismatch {
        /// Device's mapped-segment count.
        device: u64,
        /// Oracle's mapped-segment count.
        oracle: u64,
    },
    /// A device reverse-table entry disagrees with the oracle's flat map
    /// (or maps an HSN the oracle believes dead — a bijectivity break).
    ForwardMismatch {
        /// The host segment.
        hsn: Hsn,
        /// What the device maps it to (None: unmapped).
        device: Option<Dsn>,
        /// What the oracle maps it to (None: unmapped).
        oracle: Option<Dsn>,
    },
    /// A side-effect-free table walk returned a different DSN than the
    /// oracle (forward table diverged from the reverse table the device
    /// reports).
    ProbeMismatch {
        /// The host segment probed.
        hsn: Hsn,
        /// The device's forward-walk answer.
        probe: Option<Dsn>,
        /// The oracle's answer.
        oracle: Dsn,
    },
    /// Per-rank residency accounting broke: fewer allocated slots than
    /// live (mapped) segments, or allocated + free ≠ rank capacity.
    ResidencyMismatch {
        /// Channel index.
        channel: u32,
        /// Rank index.
        rank: u32,
        /// What was inconsistent.
        detail: String,
    },
    /// Device-wide `allocated != mapped + pending copy reservations`.
    ReservationImbalance {
        /// Allocated segments (all ranks).
        allocated: u64,
        /// Oracle-live (mapped) segments.
        mapped: u64,
        /// Copy migrations holding a destination reservation.
        reserved: u64,
    },
    /// The power ledger replayed from the event stream disagrees with the
    /// rank state the device reports.
    PowerLedgerMismatch {
        /// Channel index.
        channel: u32,
        /// Rank index.
        rank: u32,
        /// Ledger state.
        ledger: PowerState,
        /// Device state.
        device: PowerState,
    },
    /// The command stream carries a power transition the legal-transition
    /// graph forbids (e.g. a rung skip straight from active power-down to
    /// self-refresh, or any hop into/out of MPSM that bypasses standby).
    IllegalTransition {
        /// Channel index.
        channel: u32,
        /// Rank index.
        rank: u32,
        /// State before.
        from: PowerState,
        /// Forbidden target state.
        to: PowerState,
    },
    /// A live (mapped) segment sits in a rank the ledger has in MPSM —
    /// its data is gone.
    MappedInMpsm {
        /// The segment.
        dsn: Dsn,
        /// Its owner.
        hsn: Hsn,
        /// Channel index.
        channel: u32,
        /// Rank index.
        rank: u32,
    },
    /// An access was served by a rank that never woke from
    /// MPSM/self-refresh (no wake transition appeared in the stream).
    AccessToSleepingRank {
        /// The segment accessed.
        dsn: Dsn,
        /// Channel index.
        channel: u32,
        /// Rank index.
        rank: u32,
        /// The ledger state that should have been exited.
        state: PowerState,
    },
    /// A read was served from a segment whose shadowed content does not
    /// match the last value the host wrote (data moved without the
    /// mapping, or vice versa).
    ContentMismatch {
        /// The host segment read.
        hsn: Hsn,
        /// The device segment that served it.
        dsn: Dsn,
        /// Shadow word the host last wrote.
        expected: u64,
        /// Shadow word the model holds at `dsn`.
        found: u64,
    },
    /// After quiescing, the model holds content for a segment no HSN maps
    /// — a torn migration leaked data (or a mapping vanished without its
    /// removal command).
    ContentLeak {
        /// The orphaned segment.
        dsn: Dsn,
    },
    /// The per-rank residency clock does not sum to elapsed time.
    ResidencyClock {
        /// Channel index.
        channel: u32,
        /// Rank index.
        rank: u32,
        /// Sum over the five power states.
        sum: Picos,
        /// Backend now.
        now: Picos,
    },
    /// The device's own internal invariant check failed.
    DeviceInternal {
        /// The device error text.
        detail: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::StreamIncoherent { detail } => {
                write!(f, "incoherent command stream: {detail}")
            }
            Violation::CountMismatch { device, oracle } => {
                write!(f, "mapped-count mismatch: device {device}, oracle {oracle}")
            }
            Violation::ForwardMismatch { hsn, device, oracle } => {
                write!(f, "mapping mismatch at {hsn}: device {device:?}, oracle {oracle:?}")
            }
            Violation::ProbeMismatch { hsn, probe, oracle } => {
                write!(f, "probe mismatch at {hsn}: forward walk {probe:?}, oracle {oracle}")
            }
            Violation::ResidencyMismatch { channel, rank, detail } => {
                write!(f, "residency broken on ch{channel}/rk{rank}: {detail}")
            }
            Violation::ReservationImbalance { allocated, mapped, reserved } => {
                write!(f, "allocated {allocated} != mapped {mapped} + copy reservations {reserved}")
            }
            Violation::PowerLedgerMismatch { channel, rank, ledger, device } => {
                write!(f, "power ledger ch{channel}/rk{rank}: ledger {ledger:?}, device {device:?}")
            }
            Violation::IllegalTransition { channel, rank, from, to } => {
                write!(f, "illegal power transition ch{channel}/rk{rank}: {from:?} -> {to:?}")
            }
            Violation::MappedInMpsm { dsn, hsn, channel, rank } => {
                write!(f, "live segment {dsn} ({hsn}) in MPSM rank ch{channel}/rk{rank}")
            }
            Violation::AccessToSleepingRank { dsn, channel, rank, state } => {
                write!(f, "access to {dsn} served by ch{channel}/rk{rank} still in {state:?}")
            }
            Violation::ContentMismatch { hsn, dsn, expected, found } => {
                write!(
                    f,
                    "content mismatch reading {hsn} from {dsn}: expected {expected:#x}, \
                     found {found:#x}"
                )
            }
            Violation::ContentLeak { dsn } => {
                write!(f, "content leaked at unmapped segment {dsn}")
            }
            Violation::ResidencyClock { channel, rank, sum, now } => {
                write!(f, "residency clock ch{channel}/rk{rank}: states sum {sum}, now {now}")
            }
            Violation::DeviceInternal { detail } => {
                write!(f, "device internal invariant: {detail}")
            }
        }
    }
}

/// One shadowed segment word: the value and a global write version, so
/// movement events can never resurrect stale data unnoticed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Shadow {
    value: u64,
    version: u64,
}

/// The reference model. See the module docs.
#[derive(Debug)]
pub struct Oracle {
    geo: SegmentGeometry,
    /// Flat HPA→DPA map (HSN granularity).
    forward: HashMap<Hsn, Dsn>,
    /// DPA→HPA, kept in lockstep with `forward`.
    reverse: HashMap<Dsn, Hsn>,
    /// Shadowed segment contents, keyed by device segment.
    content: HashMap<Dsn, Shadow>,
    /// The content each host segment should read back.
    expected: HashMap<Hsn, Shadow>,
    /// Host segments with a write that raced a migration (routed away
    /// from the mapped segment): content checks pause until the migration
    /// resolves or the device quiesces.
    dirty: HashSet<Hsn>,
    /// Per-rank power ledger, `channel * ranks_per_channel + rank`.
    power: Vec<PowerState>,
    /// Commands applied so far.
    applied: u64,
}

impl Oracle {
    /// An empty model for `geo`; every rank starts in standby, matching
    /// the backends.
    pub fn new(geo: SegmentGeometry) -> Self {
        Oracle {
            geo,
            forward: HashMap::new(),
            reverse: HashMap::new(),
            content: HashMap::new(),
            expected: HashMap::new(),
            dirty: HashSet::new(),
            power: vec![PowerState::Standby; (geo.channels * geo.ranks_per_channel) as usize],
            applied: 0,
        }
    }

    /// Commands applied so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Mapped (live) segments.
    pub fn mapped_segments(&self) -> u64 {
        self.forward.len() as u64
    }

    /// The oracle's translation of `hsn`.
    pub fn translate(&self, hsn: Hsn) -> Option<Dsn> {
        self.forward.get(&hsn).copied()
    }

    /// Iterates the flat map.
    pub fn iter_forward(&self) -> impl Iterator<Item = (Hsn, Dsn)> + '_ {
        self.forward.iter().map(|(h, d)| (*h, *d))
    }

    /// The ledger's power state for a rank.
    pub fn power_state(&self, channel: u32, rank: u32) -> PowerState {
        self.power[(channel * self.geo.ranks_per_channel + rank) as usize]
    }

    /// Live segments per rank, `(channel, rank)`-indexed.
    pub fn mapped_per_rank(&self) -> Vec<u64> {
        let mut counts = vec![0u64; (self.geo.channels * self.geo.ranks_per_channel) as usize];
        for dsn in self.reverse.keys() {
            let loc = self.geo.location(*dsn);
            counts[(loc.channel * self.geo.ranks_per_channel + loc.rank) as usize] += 1;
        }
        counts
    }

    /// Applies one committed device command, validating it against the
    /// model.
    ///
    /// # Errors
    ///
    /// [`Violation::StreamIncoherent`] when the command contradicts the
    /// model's current state.
    pub fn apply(&mut self, cmd: &DeviceCommand) -> Result<(), Violation> {
        self.applied += 1;
        match cmd {
            DeviceCommand::AuCreated { host, au, dsns, .. } => {
                for (off, dsn) in dsns.iter().enumerate() {
                    let hsn = Hsn { host: *host, au: *au, au_offset: off as u32 };
                    if let Some(owner) = self.reverse.get(dsn) {
                        return Err(Violation::StreamIncoherent {
                            detail: format!("AU create reuses {dsn}, still owned by {owner}"),
                        });
                    }
                    if self.forward.contains_key(&hsn) {
                        return Err(Violation::StreamIncoherent {
                            detail: format!("AU create reuses live {hsn}"),
                        });
                    }
                    self.forward.insert(hsn, *dsn);
                    self.reverse.insert(*dsn, hsn);
                    // Freshly allocated segments read back an hsn-derived
                    // tag until the host writes them.
                    let tag = Shadow { value: initial_tag(hsn), version: 0 };
                    self.expected.insert(hsn, tag);
                    self.content.insert(*dsn, tag);
                }
                Ok(())
            }
            DeviceCommand::AuRemoved { host, au, dsns, .. } => {
                for (off, dsn) in dsns.iter().enumerate() {
                    let hsn = Hsn { host: *host, au: *au, au_offset: off as u32 };
                    match self.forward.get(&hsn) {
                        Some(d) if d == dsn => {}
                        other => {
                            return Err(Violation::StreamIncoherent {
                                detail: format!(
                                    "AU remove of {hsn} claims {dsn}, model says {other:?}"
                                ),
                            });
                        }
                    }
                    self.forward.remove(&hsn);
                    self.reverse.remove(dsn);
                    self.content.remove(dsn);
                    self.expected.remove(&hsn);
                    self.dirty.remove(&hsn);
                }
                Ok(())
            }
            DeviceCommand::Remap { hsn, from, to, .. } => {
                match self.forward.get(hsn) {
                    Some(d) if d == from => {}
                    other => {
                        return Err(Violation::StreamIncoherent {
                            detail: format!("remap of {hsn} claims {from}, model says {other:?}"),
                        });
                    }
                }
                if let Some(owner) = self.reverse.get(to) {
                    return Err(Violation::StreamIncoherent {
                        detail: format!("remap target {to} still owned by {owner}"),
                    });
                }
                self.forward.insert(*hsn, *to);
                self.reverse.remove(from);
                self.reverse.insert(*to, *hsn);
                self.move_content(*from, *to, Some(*hsn));
                Ok(())
            }
            DeviceCommand::MappingSwap { a, b, .. } => {
                if a == b {
                    return Ok(());
                }
                let ha = self.reverse.get(a).copied();
                let hb = self.reverse.get(b).copied();
                if ha.is_none() && hb.is_none() {
                    return Err(Violation::StreamIncoherent {
                        detail: format!("swap of {a} and {b}, both unmapped"),
                    });
                }
                self.reverse.remove(a);
                self.reverse.remove(b);
                if let Some(h) = ha {
                    self.forward.insert(h, *b);
                    self.reverse.insert(*b, h);
                }
                if let Some(h) = hb {
                    self.forward.insert(h, *a);
                    self.reverse.insert(*a, h);
                }
                // Contents exchange with the mapping; resolve racy writes
                // from the host-side authoritative copy.
                let ca = self.content.remove(a);
                let cb = self.content.remove(b);
                self.place_content(*b, ca, ha);
                self.place_content(*a, cb, hb);
                Ok(())
            }
            DeviceCommand::PowerTransition { channel, rank, from, to, .. } => {
                let idx = (channel * self.geo.ranks_per_channel + rank) as usize;
                if self.power[idx] != *from {
                    return Err(Violation::StreamIncoherent {
                        detail: format!(
                            "power transition ch{channel}/rk{rank} from {from:?}, \
                             ledger says {:?}",
                            self.power[idx]
                        ),
                    });
                }
                if !dtl_dram::transition_is_legal(*from, *to) {
                    return Err(Violation::IllegalTransition {
                        channel: *channel,
                        rank: *rank,
                        from: *from,
                        to: *to,
                    });
                }
                self.power[idx] = *to;
                Ok(())
            }
        }
    }

    /// Moves shadowed content `from` → `to` (drain completion). A racy
    /// routed write makes the host-side `expected` word authoritative.
    fn move_content(&mut self, from: Dsn, to: Dsn, owner: Option<Hsn>) {
        let moved = self.content.remove(&from);
        self.place_content(to, moved, owner);
    }

    fn place_content(&mut self, at: Dsn, moved: Option<Shadow>, owner: Option<Hsn>) {
        match owner {
            Some(h) if self.dirty.remove(&h) => {
                if let Some(sh) = self.expected.get(&h).copied() {
                    self.content.insert(at, sh);
                }
            }
            Some(_) => {
                if let Some(sh) = moved {
                    self.content.insert(at, sh);
                }
            }
            None => {
                // No owner: the slot is free after the event; drop any
                // stale word.
            }
        }
    }

    /// Records a host write of `value` that the device routed to
    /// `routed`. When routing diverges from the mapping (the §4.2
    /// migration window), the host segment is marked racy and its content
    /// checks pause until the migration resolves.
    pub fn note_write(&mut self, hsn: Hsn, routed: Dsn, value: u64, version: u64) {
        let sh = Shadow { value, version };
        self.expected.insert(hsn, sh);
        if self.forward.get(&hsn) == Some(&routed) {
            self.content.insert(routed, sh);
        } else {
            self.dirty.insert(hsn);
        }
    }

    /// Cross-checks a read outcome: the serving segment must be the
    /// mapped one, and its shadowed content must match what the host last
    /// wrote (unless a racy write is pending).
    ///
    /// # Errors
    ///
    /// [`Violation::ForwardMismatch`] / [`Violation::ContentMismatch`].
    pub fn note_read(&self, hsn: Hsn, served: Dsn) -> Result<(), Violation> {
        match self.forward.get(&hsn) {
            Some(d) if *d == served => {}
            other => {
                return Err(Violation::ForwardMismatch {
                    hsn,
                    device: Some(served),
                    oracle: other.copied(),
                });
            }
        }
        if self.dirty.contains(&hsn) {
            return Ok(());
        }
        let want = self.expected.get(&hsn);
        let have = self.content.get(&served);
        match (want, have) {
            (Some(w), Some(h)) if w.value == h.value => Ok(()),
            (Some(w), h) => Err(Violation::ContentMismatch {
                hsn,
                dsn: served,
                expected: w.value,
                found: h.map_or(0, |s| s.value),
            }),
            (None, _) => Err(Violation::StreamIncoherent {
                detail: format!("read of {hsn} which the model never saw allocated"),
            }),
        }
    }

    /// Re-synchronizes racy segments once the device has quiesced (no
    /// migrations pending): the host-side word becomes authoritative at
    /// the currently mapped segment.
    pub fn resync_dirty(&mut self) {
        let dirty: Vec<Hsn> = self.dirty.drain().collect();
        for hsn in dirty {
            if let (Some(dsn), Some(sh)) =
                (self.forward.get(&hsn).copied(), self.expected.get(&hsn).copied())
            {
                self.content.insert(dsn, sh);
            }
        }
    }

    /// Quiesced-only conservation check: shadowed content exists exactly
    /// for mapped segments.
    ///
    /// # Errors
    ///
    /// [`Violation::ContentLeak`] / [`Violation::StreamIncoherent`].
    pub fn check_content_conservation(&self) -> Result<(), Violation> {
        for dsn in self.content.keys() {
            if !self.reverse.contains_key(dsn) {
                return Err(Violation::ContentLeak { dsn: *dsn });
            }
        }
        for (dsn, hsn) in &self.reverse {
            if !self.content.contains_key(dsn) {
                return Err(Violation::StreamIncoherent {
                    detail: format!("mapped {dsn} ({hsn}) lost its shadowed content"),
                });
            }
        }
        Ok(())
    }
}

/// The tag a freshly allocated host segment reads back before any write:
/// derived from the HSN so distinct segments never alias.
fn initial_tag(hsn: Hsn) -> u64 {
    (u64::from(hsn.host.0) << 48) | (u64::from(hsn.au.0) << 20) | u64::from(hsn.au_offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtl_core::{AuId, HostId};

    fn geo() -> SegmentGeometry {
        SegmentGeometry { channels: 2, ranks_per_channel: 2, segs_per_rank: 8 }
    }

    fn hsn(au: u32, off: u32) -> Hsn {
        Hsn { host: HostId(0), au: AuId(au), au_offset: off }
    }

    fn created(au: u32, dsns: Vec<Dsn>) -> DeviceCommand {
        DeviceCommand::AuCreated { host: HostId(0), au: AuId(au), dsns, at: Picos::ZERO }
    }

    #[test]
    fn create_remap_remove_roundtrip() {
        let mut o = Oracle::new(geo());
        o.apply(&created(0, vec![Dsn(0), Dsn(1)])).unwrap();
        assert_eq!(o.translate(hsn(0, 1)), Some(Dsn(1)));
        o.apply(&DeviceCommand::Remap {
            hsn: hsn(0, 1),
            from: Dsn(1),
            to: Dsn(9),
            at: Picos::ZERO,
        })
        .unwrap();
        assert_eq!(o.translate(hsn(0, 1)), Some(Dsn(9)));
        o.note_read(hsn(0, 1), Dsn(9)).unwrap();
        o.apply(&DeviceCommand::AuRemoved {
            host: HostId(0),
            au: AuId(0),
            dsns: vec![Dsn(0), Dsn(9)],
            at: Picos::ZERO,
        })
        .unwrap();
        assert_eq!(o.mapped_segments(), 0);
        o.check_content_conservation().unwrap();
    }

    #[test]
    fn incoherent_remap_is_rejected() {
        let mut o = Oracle::new(geo());
        o.apply(&created(0, vec![Dsn(0), Dsn(1)])).unwrap();
        let bad =
            DeviceCommand::Remap { hsn: hsn(0, 0), from: Dsn(5), to: Dsn(9), at: Picos::ZERO };
        assert!(matches!(o.apply(&bad), Err(Violation::StreamIncoherent { .. })));
    }

    #[test]
    fn swap_carries_content() {
        let mut o = Oracle::new(geo());
        o.apply(&created(0, vec![Dsn(0), Dsn(1)])).unwrap();
        o.note_write(hsn(0, 0), Dsn(0), 0xabcd, 1);
        o.apply(&DeviceCommand::MappingSwap { a: Dsn(0), b: Dsn(7), at: Picos::ZERO }).unwrap();
        assert_eq!(o.translate(hsn(0, 0)), Some(Dsn(7)));
        o.note_read(hsn(0, 0), Dsn(7)).unwrap();
        o.check_content_conservation().unwrap();
    }

    #[test]
    fn racy_write_resolves_at_migration_commit() {
        let mut o = Oracle::new(geo());
        o.apply(&created(0, vec![Dsn(0), Dsn(1)])).unwrap();
        // Routed to Dsn(7) while still mapped at Dsn(0): racy.
        o.note_write(hsn(0, 0), Dsn(7), 0x1111, 1);
        o.note_read(hsn(0, 0), Dsn(0)).unwrap(); // reads pause content check
        o.apply(&DeviceCommand::MappingSwap { a: Dsn(0), b: Dsn(7), at: Picos::ZERO }).unwrap();
        // Now mapped at Dsn(7) with the written word authoritative.
        o.note_read(hsn(0, 0), Dsn(7)).unwrap();
    }

    #[test]
    fn power_ledger_replays_transitions() {
        let mut o = Oracle::new(geo());
        let t = |from, to| DeviceCommand::PowerTransition {
            channel: 0,
            rank: 1,
            from,
            to,
            cause: dtl_dram::PowerEventCause::Explicit,
            at: Picos::ZERO,
        };
        o.apply(&t(PowerState::Standby, PowerState::SelfRefresh)).unwrap();
        assert_eq!(o.power_state(0, 1), PowerState::SelfRefresh);
        // Skipping the standby hop is incoherent.
        assert!(o.apply(&t(PowerState::Standby, PowerState::Mpsm)).is_err());
    }

    #[test]
    fn rung_skipping_transition_is_illegal() {
        let mut o = Oracle::new(geo());
        let t = |from, to| DeviceCommand::PowerTransition {
            channel: 1,
            rank: 0,
            from,
            to,
            cause: dtl_dram::PowerEventCause::Explicit,
            at: Picos::ZERO,
        };
        o.apply(&t(PowerState::Standby, PowerState::ActivePowerDown)).unwrap();
        // Skipping precharge power-down on the way to self-refresh is
        // forbidden even though the ledger's `from` matches.
        assert!(matches!(
            o.apply(&t(PowerState::ActivePowerDown, PowerState::SelfRefresh)),
            Err(Violation::IllegalTransition { .. })
        ));
        // The single-rung hops are fine.
        o.apply(&t(PowerState::ActivePowerDown, PowerState::PrechargePowerDown)).unwrap();
        o.apply(&t(PowerState::PrechargePowerDown, PowerState::SelfRefresh)).unwrap();
        assert_eq!(o.power_state(1, 0), PowerState::SelfRefresh);
    }

    #[test]
    fn content_mismatch_detected() {
        let mut o = Oracle::new(geo());
        o.apply(&created(0, vec![Dsn(0), Dsn(1)])).unwrap();
        o.note_write(hsn(0, 0), Dsn(0), 7, 1);
        o.note_write(hsn(0, 1), Dsn(1), 8, 2);
        // Model a device that swapped data without the mapping: read hsn 0
        // from segment 1.
        assert!(matches!(o.note_read(hsn(0, 0), Dsn(1)), Err(Violation::ForwardMismatch { .. })));
    }
}
