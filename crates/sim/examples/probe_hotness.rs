use dtl_sim::{run_hotness, HotnessRunConfig};

fn main() {
    let base = HotnessRunConfig {
        accesses: 800_000,
        n_apps: 3,
        channels: 2,
        ..HotnessRunConfig::tiny(5, true)
    };
    for (label, ranks, frac) in [("6rk", 3u32, 0.6), ("8rk", 4u32, 0.8), ("loose", 4u32, 0.55)] {
        let cfg = HotnessRunConfig { active_ranks: ranks, allocated_fraction: frac, ..base };
        let off = run_hotness(&HotnessRunConfig { hotness: false, ..cfg }).unwrap();
        let on = run_hotness(&HotnessRunConfig { hotness: true, ..cfg }).unwrap();
        println!("{label}: off stable {:.1}mW on stable {:.1}mW | on: entries {} exits {} swaps {} residency {:.3} total {:.1}/{:.1}mJ",
            off.stable_power_mw, on.stable_power_mw, on.sr_entries, on.sr_exits, on.swaps_executed, on.sr_residency,
            on.total_energy_mj, off.total_energy_mj);
    }
}
