//! The rank-level power-down experiment harness (paper §5.1, Figures 12,
//! 13, 15): replay a synthesized 6-hour VM schedule against a DTL device
//! and integrate DRAM power per 5-minute interval.
//!
//! Foreground traffic is accounted in bulk per epoch (the paper likewise
//! measures wall power, not per-access timing, for this experiment);
//! migration traffic and its energy go through the real migration engine.

use dtl_core::{
    AnalyticBackend, DtlConfig, DtlDevice, DtlError, HostId, MemoryBackend, SegmentGeometry,
    VmHandle,
};
use dtl_dram::{Picos, PowerParams};
use dtl_event::Simulation;
use dtl_telemetry::Telemetry;
use dtl_trace::{NodeConfig, VmEventKind, VmId, VmSchedule};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::assert_residency_consistency;
use crate::event_drive::{self, GridDriven};

/// Configuration of one schedule replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerDownRunConfig {
    /// Schedule seed.
    pub seed: u64,
    /// Schedule length in minutes (paper: 360).
    pub duration_min: u32,
    /// Hosting node (paper: 48 vCPU / 384 GB).
    pub node: NodeConfig,
    /// DRAM channels of the device (paper: 4).
    pub channels: u32,
    /// Ranks per channel (paper: 8 → 384 GB at 12 GiB/rank).
    pub ranks_per_channel: u32,
    /// Whether rank-level power-down is enabled (off = baseline).
    pub powerdown: bool,
    /// Compute hosts sharing the pool (VMs are assigned round-robin).
    pub hosts: u16,
    /// Foreground bandwidth per vCPU, bytes/s (drives active power).
    pub per_vcpu_bw: f64,
    /// Fraction of foreground traffic that is reads.
    pub read_fraction: f64,
}

impl PowerDownRunConfig {
    /// The paper's setup.
    pub fn paper(seed: u64, powerdown: bool) -> Self {
        PowerDownRunConfig {
            seed,
            duration_min: 360,
            node: NodeConfig::paper(),
            channels: 4,
            ranks_per_channel: 8,
            powerdown,
            hosts: 4,
            per_vcpu_bw: 650.0e6,
            read_fraction: 0.67,
        }
    }

    /// A fast, scaled-down variant for tests (160 GB node with 16 vCPUs —
    /// headroom comparable to the paper's ~42 % average usage).
    pub fn tiny(seed: u64, powerdown: bool) -> Self {
        PowerDownRunConfig {
            seed,
            duration_min: 60,
            node: NodeConfig { vcpus: 16, mem_bytes: 160 << 30 },
            channels: 2,
            ranks_per_channel: 4,
            powerdown,
            hosts: 2,
            per_vcpu_bw: 250.0e6,
            read_fraction: 0.67,
        }
    }

    /// Segments per rank implied by node capacity.
    pub fn segs_per_rank(&self, segment_bytes: u64) -> u64 {
        self.node.mem_bytes
            / (u64::from(self.channels) * u64::from(self.ranks_per_channel))
            / segment_bytes
    }
}

/// One 5-minute interval sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalSample {
    /// Interval start, minutes.
    pub t_min: u32,
    /// Active ranks over the whole device.
    pub active_ranks: u32,
    /// Mean DRAM power over the interval, milliwatts.
    pub power_mw: f64,
    /// Committed VM memory at interval start, bytes.
    pub committed_bytes: u64,
    /// Migration traffic in flight during the interval.
    pub migrating: bool,
    /// Segment bytes moved by migrations during the interval (the paper's
    /// Figure 12(a) red-line spikes).
    pub migration_bytes: u64,
}

/// Result of one schedule replay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerDownRunResult {
    /// Per-interval samples.
    pub intervals: Vec<IntervalSample>,
    /// Total DRAM energy, millijoules.
    pub total_energy_mj: f64,
    /// Background share of the total.
    pub background_mj: f64,
    /// Active (event) share.
    pub active_mj: f64,
    /// Segments drained by power-down migrations.
    pub segments_drained: u64,
    /// Rank groups powered down over the run.
    pub groups_powered_down: u64,
    /// Rank groups woken for capacity.
    pub groups_woken: u64,
    /// VMs placed.
    pub vms_allocated: u64,
}

impl PowerDownRunResult {
    /// Mean power over the run in milliwatts.
    pub fn mean_power_mw(&self) -> f64 {
        if self.intervals.is_empty() {
            return 0.0;
        }
        self.intervals.iter().map(|i| i.power_mw).sum::<f64>() / self.intervals.len() as f64
    }
}

/// Replays a VM schedule against a DTL device.
///
/// # Errors
///
/// Propagates device errors (these indicate bugs — the harness never
/// over-commits the device).
pub fn run_schedule(cfg: &PowerDownRunConfig) -> Result<PowerDownRunResult, DtlError> {
    run_schedule_traced(cfg, &Telemetry::disabled())
}

/// Like [`run_schedule`], but with a live telemetry handle: the replay
/// streams `VmAlloc` / `VmDealloc` / `SegmentMigrated` /
/// `RankPowerTransition` events into its sink and, if a metrics registry
/// is attached, exports every engine's statistics there at the end.
///
/// # Errors
///
/// Propagates device errors (these indicate bugs — the harness never
/// over-commits the device).
pub fn run_schedule_traced(
    cfg: &PowerDownRunConfig,
    telemetry: &Telemetry,
) -> Result<PowerDownRunResult, DtlError> {
    let dtl_cfg = DtlConfig::paper();
    let geo = SegmentGeometry {
        channels: cfg.channels,
        ranks_per_channel: cfg.ranks_per_channel,
        segs_per_rank: cfg.segs_per_rank(dtl_cfg.segment_bytes),
    };
    let backend = AnalyticBackend::new(geo, dtl_cfg.segment_bytes, PowerParams::ddr4_128gb_dimm());
    let mut dev = DtlDevice::new(dtl_cfg, backend);
    dev.set_telemetry(telemetry.clone());
    dev.set_hotness_enabled(false);
    dev.set_powerdown_enabled(cfg.powerdown);
    for h in 0..cfg.hosts.max(1) {
        dev.register_host(HostId(h))?;
    }

    let schedule = VmSchedule::synthesize(cfg.seed, cfg.node, cfg.duration_min);
    let mut handles: HashMap<VmId, (VmHandle, u32, u64)> = HashMap::new();
    let mut committed: u64 = 0;
    let mut vcpus_active: u32 = 0;
    let mut intervals = Vec::new();
    let mut events = schedule.events().iter().peekable();
    let mut prev_energy = 0.0f64;
    let epoch = Picos::from_secs(300);
    let tick_step = Picos::from_secs(10);
    // One event-spine clock for the whole replay; each epoch drains its
    // posted tick cascade on the legacy grid (see `event_drive`).
    let mut sim = Simulation::new(Picos::ZERO);

    let mut t_min = 0u32;
    while t_min < cfg.duration_min {
        let t_start = Picos::from_secs(u64::from(t_min) * 60);
        // Apply the schedule events of this instant.
        while let Some(ev) = events.peek() {
            if ev.at_min > t_min {
                break;
            }
            let ev = events.next().expect("peeked");
            match ev.kind {
                VmEventKind::Alloc(vm) => {
                    // VMs land round-robin on the pool's compute hosts. AU
                    // rounding can overshoot a schedule that sits at the
                    // node's capacity edge; such VMs are skipped (the real
                    // cluster scheduler would place them elsewhere).
                    let host = HostId((vm.id.0 % u32::from(cfg.hosts.max(1))) as u16);
                    match dev.alloc_vm(host, vm.mem_bytes, t_start) {
                        Ok(alloc) => {
                            committed += vm.mem_bytes;
                            vcpus_active += vm.vcpus;
                            handles.insert(vm.id, (alloc.handle, vm.vcpus, vm.mem_bytes));
                        }
                        Err(DtlError::OutOfCapacity { .. }) => {}
                        Err(e) => return Err(e),
                    }
                }
                VmEventKind::Dealloc(id) => {
                    if let Some((h, vcpus, bytes)) = handles.remove(&id) {
                        dev.dealloc_vm(h, t_start)?;
                        committed -= bytes;
                        vcpus_active -= vcpus;
                    }
                }
            }
        }
        // Bulk foreground energy for this epoch, spread over active ranks.
        record_epoch_traffic(&mut dev, cfg, vcpus_active, epoch);
        // Let migrations progress through the epoch.
        let mut migrating = false;
        let moved_before = dev.migration_stats().bytes_moved;
        let t_end = t_start + epoch;
        let mut client = DeviceEpoch { dev: &mut dev, migrating: &mut migrating };
        event_drive::drive_epoch(&mut sim, &mut client, t_start, t_end, tick_step)?;
        let migration_bytes = dev.migration_stats().bytes_moved - moved_before;
        // Power over the epoch: energy delta [mJ] / time [s] = mW.
        let report = dev.power_report(t_end);
        let energy = report.total.total_mj();
        let power_mw = (energy - prev_energy) / epoch.as_secs_f64();
        prev_energy = energy;
        let active_ranks: u32 = (0..cfg.channels).map(|c| dev.active_ranks(c)).sum();
        intervals.push(IntervalSample {
            t_min,
            active_ranks,
            power_mw,
            committed_bytes: committed,
            migrating: migrating || migration_bytes > 0,
            migration_bytes,
        });
        t_min += 5;
    }
    let final_t = Picos::from_secs(u64::from(cfg.duration_min) * 60);
    let report = dev.power_report(final_t);
    dev.check_invariants()?;
    assert_residency_consistency(&dev, &report);
    if let Some(m) = telemetry.metrics() {
        dev.export_metrics(m);
    }
    Ok(PowerDownRunResult {
        intervals,
        total_energy_mj: report.total.total_mj(),
        background_mj: report.total.background_mj,
        active_mj: report.total.active_mj(),
        segments_drained: dev.powerdown_stats().segments_drained,
        groups_powered_down: dev.powerdown_stats().groups_powered_down,
        groups_woken: dev.powerdown_stats().groups_woken,
        vms_allocated: dev.stats().vms_allocated,
    })
}

/// One epoch of the schedule replay as the event spine's grid client.
struct DeviceEpoch<'x> {
    dev: &'x mut DtlDevice<AnalyticBackend>,
    migrating: &'x mut bool,
}

impl GridDriven for DeviceEpoch<'_> {
    type Error = DtlError;

    fn tick(&mut self, now: Picos) -> Result<(), DtlError> {
        self.dev.tick(now)?;
        *self.migrating |= self.dev.migrations_pending() > 0;
        Ok(())
    }
}

fn record_epoch_traffic(
    dev: &mut DtlDevice<AnalyticBackend>,
    cfg: &PowerDownRunConfig,
    vcpus: u32,
    epoch: Picos,
) {
    let bytes = f64::from(vcpus) * cfg.per_vcpu_bw * epoch.as_secs_f64();
    let lines = (bytes / 64.0) as u64;
    let reads = (lines as f64 * cfg.read_fraction) as u64;
    let writes = lines - reads;
    // Spread over active ranks (Figure 13: active power barely varies with
    // the rank count because the same traffic concentrates on fewer ranks).
    let mut active: Vec<(u32, u32)> = Vec::new();
    for c in 0..cfg.channels {
        for r in 0..cfg.ranks_per_channel {
            if dev.backend().rank_state(c, r) == dtl_dram::PowerState::Standby {
                active.push((c, r));
            }
        }
    }
    if active.is_empty() {
        return;
    }
    let per = active.len() as u64;
    for (c, r) in active {
        dev.backend_mut().record_foreground_bulk(c, r, reads / per, writes / per);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_vs_powerdown_energy() {
        let base = run_schedule(&PowerDownRunConfig::tiny(7, false)).unwrap();
        let dtl = run_schedule(&PowerDownRunConfig::tiny(7, true)).unwrap();
        assert_eq!(base.vms_allocated, dtl.vms_allocated, "same schedule");
        assert!(dtl.groups_powered_down > 0, "power-down must trigger");
        let saving = 1.0 - dtl.total_energy_mj / base.total_energy_mj;
        assert!(
            saving > 0.10 && saving < 0.75,
            "expected substantial energy savings, got {saving}"
        );
        // Background is where the savings come from.
        assert!(dtl.background_mj < base.background_mj);
    }

    #[test]
    fn intervals_cover_schedule() {
        let cfg = PowerDownRunConfig::tiny(3, true);
        let r = run_schedule(&cfg).unwrap();
        assert_eq!(r.intervals.len(), (cfg.duration_min / 5) as usize);
        assert!(r.intervals.iter().all(|i| i.power_mw > 0.0));
        // Active ranks never exceed the device size.
        let max = cfg.channels * cfg.ranks_per_channel;
        assert!(r.intervals.iter().all(|i| i.active_ranks <= max));
    }

    #[test]
    fn baseline_keeps_all_ranks_active() {
        let cfg = PowerDownRunConfig::tiny(3, false);
        let r = run_schedule(&cfg).unwrap();
        let max = cfg.channels * cfg.ranks_per_channel;
        assert!(r.intervals.iter().all(|i| i.active_ranks == max));
        assert_eq!(r.groups_powered_down, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_schedule(&PowerDownRunConfig::tiny(11, true)).unwrap();
        let b = run_schedule(&PowerDownRunConfig::tiny(11, true)).unwrap();
        assert_eq!(a.total_energy_mj, b.total_energy_mj);
        assert_eq!(a.groups_powered_down, b.groups_powered_down);
    }
}
