//! The fleet-scale VM campaign harness: a thousand independent hosts,
//! each a DTL device with coarse (AU-sized) segments, replaying a
//! multi-week synthesized VM schedule — driven purely by posted events.
//!
//! This is the first harness with **no tick grid at all**: each host owns
//! a [`Simulation`] whose queue holds exactly two kinds of deadline — the
//! next VM schedule instant and the device's own
//! [`next_activity_at`](DtlDevice::next_activity_at) (migration
//! completions and queued-drain starts). Between events the analytic
//! backend integrates rank power-state residency in closed form, so a
//! two-week horizon costs only as many steps as things actually happen:
//! idle weekends are one subtraction, not two million ticks.
//!
//! Hosts are independent work units sharded over the [`crate::exec`]
//! engine; host *i* synthesizes its own schedule from
//! `derive_seed(seed, i)` inside its worker, so the result is
//! bit-identical for any `--jobs` value.

use dtl_core::{
    AnalyticBackend, DtlConfig, DtlDevice, DtlError, HostId, SegmentGeometry, VmHandle,
};
use dtl_dram::{Picos, PowerParams};
use dtl_event::{EventHandler, EventId, Sched, Simulation};
use dtl_trace::{NodeConfig, VmEventKind, VmId, VmSchedule};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

use crate::assert_residency_consistency;
use crate::exec::derive_seed;

/// Configuration of one fleet campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmCampaignConfig {
    /// Base seed; host `i` uses `derive_seed(seed, i)`.
    pub seed: u64,
    /// Independent hosts in the fleet.
    pub hosts: u32,
    /// Schedule length in minutes per host (paper-fleet: two weeks).
    pub duration_min: u32,
    /// The node each host's schedule is synthesized for.
    pub node: NodeConfig,
    /// DRAM channels per host device.
    pub channels: u32,
    /// Ranks per channel per host device.
    pub ranks_per_channel: u32,
}

impl VmCampaignConfig {
    /// The fleet the issue tracks: 1000 paper nodes (48 vCPU / 384 GB,
    /// 4x8 ranks) over a two-week schedule.
    pub fn paper(seed: u64) -> Self {
        VmCampaignConfig {
            seed,
            hosts: 1000,
            duration_min: 14 * 24 * 60,
            node: NodeConfig::paper(),
            channels: 4,
            ranks_per_channel: 8,
        }
    }

    /// A fast variant for tests and CI smoke: 8 hosts over one day.
    pub fn tiny(seed: u64) -> Self {
        VmCampaignConfig { hosts: 8, duration_min: 24 * 60, ..Self::paper(seed) }
    }

    /// The per-host DTL configuration: paper parameters with the segment
    /// coarsened to one AU channel-stripe (2 GiB / channels — the
    /// allocator spreads every AU equally over the channels). Fleet scale
    /// does not model per-line traffic, so finer translation granularity
    /// would only multiply table walks without changing any observable.
    pub fn dtl_config(&self) -> DtlConfig {
        let mut dtl = DtlConfig::paper();
        dtl.segment_bytes = dtl.au_bytes / u64::from(self.channels);
        dtl
    }

    /// Per-host device geometry implied by node capacity.
    pub fn geometry(&self) -> SegmentGeometry {
        let dtl = self.dtl_config();
        SegmentGeometry {
            channels: self.channels,
            ranks_per_channel: self.ranks_per_channel,
            segs_per_rank: self.node.mem_bytes
                / (u64::from(self.channels) * u64::from(self.ranks_per_channel))
                / dtl.segment_bytes,
        }
    }

    /// The campaign horizon.
    pub fn horizon(&self) -> Picos {
        Picos::from_secs(u64::from(self.duration_min) * 60)
    }
}

/// One host's replay outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostOutcome {
    /// Derived host seed.
    pub seed: u64,
    /// VMs placed on this host.
    pub vms_placed: u64,
    /// VM admissions rejected for capacity (AU-rounding overshoot).
    pub vms_rejected: u64,
    /// Rank groups powered down over the run.
    pub groups_powered_down: u64,
    /// Rank groups woken for capacity.
    pub groups_woken: u64,
    /// Segments drained by power-down migrations.
    pub segments_drained: u64,
    /// Events the host's simulation processed.
    pub events_processed: u64,
    /// Total DRAM energy, millijoules.
    pub energy_mj: f64,
    /// Background share of the total.
    pub background_mj: f64,
}

/// Result of one fleet campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmCampaignResult {
    /// Hosts replayed.
    pub hosts: u32,
    /// Schedule length per host, minutes.
    pub duration_min: u32,
    /// VMs placed fleet-wide.
    pub vms_placed: u64,
    /// VM admissions rejected fleet-wide.
    pub vms_rejected: u64,
    /// Rank groups powered down fleet-wide.
    pub groups_powered_down: u64,
    /// Rank groups woken fleet-wide.
    pub groups_woken: u64,
    /// Segments drained fleet-wide.
    pub segments_drained: u64,
    /// Events processed across every host simulation — the denominator of
    /// the events/sec throughput figure (wall clock is measured outside
    /// the result so the JSON stays deterministic).
    pub events_processed: u64,
    /// Total fleet DRAM energy, millijoules.
    pub total_energy_mj: f64,
    /// Energy of the same fleet with every rank held in standby.
    pub baseline_energy_mj: f64,
    /// `1 - total / baseline` — the fleet-wide background savings.
    pub savings_fraction: f64,
    /// The first few hosts, for rendering and regression eyeballs.
    pub sample: Vec<HostOutcome>,
}

/// The two deadline kinds a host queue holds.
enum HostEv {
    /// The next VM schedule instant has arrived.
    Schedule,
    /// The device's next internal deadline (migration completion or
    /// queued-drain start) has arrived.
    Device,
}

/// Event handler replaying one host's schedule against its device.
struct HostRunner<'a> {
    dev: &'a mut DtlDevice<AnalyticBackend>,
    events: &'a [dtl_trace::VmEvent],
    cursor: usize,
    handles: HashMap<VmId, VmHandle>,
    rejected: HashSet<VmId>,
    vms_placed: u64,
    vms_rejected: u64,
    /// The in-queue device deadline, so a changed `next_activity_at`
    /// cancels and re-posts instead of accumulating stale events.
    device_ev: Option<(Picos, EventId)>,
}

impl HostRunner<'_> {
    fn apply_due_schedule(&mut self, now: Picos) -> Result<(), DtlError> {
        while let Some(ev) = self.events.get(self.cursor) {
            if Picos::from_secs(u64::from(ev.at_min) * 60) > now {
                break;
            }
            self.cursor += 1;
            match ev.kind {
                VmEventKind::Alloc(vm) => match self.dev.alloc_vm(HostId(0), vm.mem_bytes, now) {
                    Ok(alloc) => {
                        self.vms_placed += 1;
                        self.handles.insert(vm.id, alloc.handle);
                    }
                    // AU rounding can overshoot a schedule synthesized at
                    // the node's capacity edge; such VMs go elsewhere in
                    // the cluster.
                    Err(DtlError::OutOfCapacity { .. }) => {
                        self.vms_rejected += 1;
                        self.rejected.insert(vm.id);
                    }
                    Err(e) => return Err(e),
                },
                VmEventKind::Dealloc(id) => {
                    if let Some(h) = self.handles.remove(&id) {
                        self.dev.dealloc_vm(h, now)?;
                    } else {
                        debug_assert!(self.rejected.remove(&id), "dealloc of unknown VM");
                    }
                }
            }
        }
        Ok(())
    }

    /// Re-arms the queue after any work: the next schedule instant (posted
    /// by the schedule arm only) and the device's current deadline.
    fn rearm_device(&mut self, now: Picos, sched: &mut Sched<'_, HostEv>) {
        let want = self.dev.next_activity_at().map(|t| t.max(now));
        if want == self.device_ev.map(|(t, _)| t) {
            return;
        }
        if let Some((_, id)) = self.device_ev.take() {
            sched.cancel(id);
        }
        if let Some(t) = want {
            let id = sched.post(t, HostEv::Device);
            self.device_ev = Some((t, id));
        }
    }
}

impl EventHandler<HostEv> for HostRunner<'_> {
    type Error = DtlError;

    fn on_event(
        &mut self,
        now: Picos,
        event: HostEv,
        sched: &mut Sched<'_, HostEv>,
    ) -> Result<(), DtlError> {
        match event {
            HostEv::Schedule => {
                self.apply_due_schedule(now)?;
                if let Some(ev) = self.events.get(self.cursor) {
                    sched.post(Picos::from_secs(u64::from(ev.at_min) * 60), HostEv::Schedule);
                }
            }
            HostEv::Device => {
                self.device_ev = None;
                self.dev.tick(now)?;
            }
        }
        self.rearm_device(now, sched);
        Ok(())
    }
}

/// Replays one host of the fleet.
fn run_host(cfg: &VmCampaignConfig, index: u64) -> Result<HostOutcome, DtlError> {
    let seed = derive_seed(cfg.seed, index);
    let schedule = VmSchedule::synthesize(seed, cfg.node, cfg.duration_min);
    let backend =
        AnalyticBackend::new(cfg.geometry(), cfg.dtl_config().segment_bytes, host_power_params());
    let mut dev = DtlDevice::new(cfg.dtl_config(), backend);
    dev.set_hotness_enabled(false);
    dev.register_host(HostId(0))?;

    let mut sim = Simulation::new(Picos::ZERO);
    let horizon = cfg.horizon();
    let (vms_placed, vms_rejected) = {
        let mut runner = HostRunner {
            dev: &mut dev,
            events: schedule.events(),
            cursor: 0,
            handles: HashMap::new(),
            rejected: HashSet::new(),
            vms_placed: 0,
            vms_rejected: 0,
            device_ev: None,
        };
        if let Some(ev) = runner.events.first() {
            sim.post(Picos::from_secs(u64::from(ev.at_min) * 60), HostEv::Schedule);
        }
        // Drains posted by the final deallocation complete microseconds
        // past the horizon; cut the books at the horizon like every other
        // harness.
        sim.step_until(horizon, &mut runner)?;
        (runner.vms_placed, runner.vms_rejected)
    };

    let report = dev.power_report(horizon);
    dev.check_invariants()?;
    assert_residency_consistency(&dev, &report);
    Ok(HostOutcome {
        seed,
        vms_placed,
        vms_rejected,
        groups_powered_down: dev.powerdown_stats().groups_powered_down,
        groups_woken: dev.powerdown_stats().groups_woken,
        segments_drained: dev.powerdown_stats().segments_drained,
        events_processed: sim.events_processed(),
        energy_mj: report.total.total_mj(),
        background_mj: report.total.background_mj,
    })
}

fn host_power_params() -> PowerParams {
    PowerParams::ddr4_128gb_dimm()
}

/// The energy of one host whose ranks never leave standby — the no-DTL
/// fleet baseline, identical for every host and computed once.
fn baseline_host_energy_mj(cfg: &VmCampaignConfig) -> f64 {
    let mut dev: DtlDevice<AnalyticBackend> = DtlDevice::new(
        cfg.dtl_config(),
        AnalyticBackend::new(cfg.geometry(), cfg.dtl_config().segment_bytes, host_power_params()),
    );
    dev.power_report(cfg.horizon()).total.total_mj()
}

/// Runs the fleet campaign sequentially.
///
/// # Errors
///
/// Propagates device errors (these indicate bugs — the harness never
/// over-commits a host).
pub fn run_campaign(cfg: &VmCampaignConfig) -> Result<VmCampaignResult, DtlError> {
    run_campaign_jobs(cfg, 1)
}

/// Like [`run_campaign`], with hosts as parallel work units sharded
/// across `jobs` workers. Hosts are independent replays; results assemble
/// in host order, so the output is bit-identical for any `jobs`.
///
/// # Errors
///
/// Propagates device errors (these indicate bugs — the harness never
/// over-commits a host).
pub fn run_campaign_jobs(
    cfg: &VmCampaignConfig,
    jobs: usize,
) -> Result<VmCampaignResult, DtlError> {
    const SAMPLE_HOSTS: usize = 8;
    let units: Vec<u32> = (0..cfg.hosts).collect();
    let outcomes = crate::exec::run_units(jobs, units, |i, _| run_host(cfg, i as u64));
    let baseline_host = baseline_host_energy_mj(cfg);
    let mut out = VmCampaignResult {
        hosts: cfg.hosts,
        duration_min: cfg.duration_min,
        vms_placed: 0,
        vms_rejected: 0,
        groups_powered_down: 0,
        groups_woken: 0,
        segments_drained: 0,
        events_processed: 0,
        total_energy_mj: 0.0,
        baseline_energy_mj: baseline_host * f64::from(cfg.hosts),
        savings_fraction: 0.0,
        sample: Vec::new(),
    };
    for outcome in outcomes {
        let h = outcome?;
        out.vms_placed += h.vms_placed;
        out.vms_rejected += h.vms_rejected;
        out.groups_powered_down += h.groups_powered_down;
        out.groups_woken += h.groups_woken;
        out.segments_drained += h.segments_drained;
        out.events_processed += h.events_processed;
        out.total_energy_mj += h.energy_mj;
        if out.sample.len() < SAMPLE_HOSTS {
            out.sample.push(h);
        }
    }
    if out.baseline_energy_mj > 0.0 {
        out.savings_fraction = 1.0 - out.total_energy_mj / out.baseline_energy_mj;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_campaign_places_and_saves() {
        let r = run_campaign(&VmCampaignConfig::tiny(7)).unwrap();
        assert_eq!(r.hosts, 8);
        assert!(r.vms_placed > 100, "a day of schedule places many VMs: {}", r.vms_placed);
        assert!(r.groups_powered_down > 0, "consolidation must park rank groups");
        assert!(
            r.savings_fraction > 0.05 && r.savings_fraction < 0.90,
            "fleet savings out of range: {}",
            r.savings_fraction
        );
        assert!(r.events_processed > 0);
    }

    #[test]
    fn jobs_do_not_change_the_fleet() {
        let cfg = VmCampaignConfig::tiny(11);
        let a = run_campaign_jobs(&cfg, 1).unwrap();
        let b = run_campaign_jobs(&cfg, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn event_count_scales_with_activity_not_horizon() {
        // Doubling the horizon of an otherwise-identical host roughly
        // doubles schedule activity, but the event count stays far below
        // what any 10 s tick grid would burn.
        let cfg = VmCampaignConfig { hosts: 1, ..VmCampaignConfig::tiny(3) };
        let r = run_campaign(&cfg).unwrap();
        let grid_ticks = u64::from(cfg.duration_min) * 6;
        assert!(
            r.events_processed < grid_ticks / 4,
            "event-driven host must beat the tick grid: {} events vs {} ticks",
            r.events_processed,
            grid_ticks
        );
    }
}
