//! The fleet-scale VM campaign harness: a thousand independent hosts,
//! each a DTL device with coarse (AU-sized) segments, replaying a
//! multi-week synthesized VM schedule — driven purely by posted events.
//!
//! This is the first harness with **no tick grid at all**: each host owns
//! a [`Simulation`] whose queue holds exactly two kinds of deadline — the
//! next VM schedule instant and the device's own
//! [`next_activity_at`](DtlDevice::next_activity_at) (migration
//! completions and queued-drain starts). Between events the analytic
//! backend integrates rank power-state residency in closed form, so a
//! two-week horizon costs only as many steps as things actually happen:
//! idle weekends are one subtraction, not two million ticks.
//!
//! Hosts are independent work units sharded over the [`crate::exec`]
//! engine; host *i* synthesizes its own schedule from
//! `derive_seed(seed, i)` inside its worker, so the result is
//! bit-identical for any `--jobs` value.

use dtl_core::{
    AnalyticBackend, DtlConfig, DtlDevice, DtlError, HostId, SegmentGeometry, VmHandle,
};
use dtl_dram::{Picos, PowerParams};
use dtl_event::{EventHandler, EventId, QueueStats, Sched, Simulation};
use dtl_telemetry::{
    BacklogSummary, Histogram, LatencySummary, SloReport, Telemetry, TimeSeries, TimeSeriesSink,
};
use dtl_trace::{NodeConfig, VmEventKind, VmId, VmSchedule};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::assert_residency_consistency;
use crate::exec::derive_seed;
use crate::Heartbeat;

/// Configuration of one fleet campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmCampaignConfig {
    /// Base seed; host `i` uses `derive_seed(seed, i)`.
    pub seed: u64,
    /// Independent hosts in the fleet.
    pub hosts: u32,
    /// Schedule length in minutes per host (paper-fleet: two weeks).
    pub duration_min: u32,
    /// The node each host's schedule is synthesized for.
    pub node: NodeConfig,
    /// DRAM channels per host device.
    pub channels: u32,
    /// Ranks per channel per host device.
    pub ranks_per_channel: u32,
}

impl VmCampaignConfig {
    /// The fleet the issue tracks: 1000 paper nodes (48 vCPU / 384 GB,
    /// 4x8 ranks) over a two-week schedule.
    pub fn paper(seed: u64) -> Self {
        VmCampaignConfig {
            seed,
            hosts: 1000,
            duration_min: 14 * 24 * 60,
            node: NodeConfig::paper(),
            channels: 4,
            ranks_per_channel: 8,
        }
    }

    /// A fast variant for tests and CI smoke: 8 hosts over one day.
    pub fn tiny(seed: u64) -> Self {
        VmCampaignConfig { hosts: 8, duration_min: 24 * 60, ..Self::paper(seed) }
    }

    /// The per-host DTL configuration: paper parameters with the segment
    /// coarsened to one AU channel-stripe (2 GiB / channels — the
    /// allocator spreads every AU equally over the channels). Fleet scale
    /// does not model per-line traffic, so finer translation granularity
    /// would only multiply table walks without changing any observable.
    pub fn dtl_config(&self) -> DtlConfig {
        let mut dtl = DtlConfig::paper();
        dtl.segment_bytes = dtl.au_bytes / u64::from(self.channels);
        dtl
    }

    /// Per-host device geometry implied by node capacity.
    pub fn geometry(&self) -> SegmentGeometry {
        let dtl = self.dtl_config();
        SegmentGeometry {
            channels: self.channels,
            ranks_per_channel: self.ranks_per_channel,
            segs_per_rank: self.node.mem_bytes
                / (u64::from(self.channels) * u64::from(self.ranks_per_channel))
                / dtl.segment_bytes,
        }
    }

    /// The campaign horizon.
    pub fn horizon(&self) -> Picos {
        Picos::from_secs(u64::from(self.duration_min) * 60)
    }
}

/// One host's replay outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostOutcome {
    /// Derived host seed.
    pub seed: u64,
    /// VMs placed on this host.
    pub vms_placed: u64,
    /// VM admissions rejected for capacity (AU-rounding overshoot).
    pub vms_rejected: u64,
    /// Rank groups powered down over the run.
    pub groups_powered_down: u64,
    /// Rank groups woken for capacity.
    pub groups_woken: u64,
    /// Segments drained by power-down migrations.
    pub segments_drained: u64,
    /// Events the host's simulation processed.
    pub events_processed: u64,
    /// Total DRAM energy, millijoules.
    pub energy_mj: f64,
    /// Background share of the total.
    pub background_mj: f64,
}

/// Result of one fleet campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmCampaignResult {
    /// Hosts replayed.
    pub hosts: u32,
    /// Schedule length per host, minutes.
    pub duration_min: u32,
    /// VMs placed fleet-wide.
    pub vms_placed: u64,
    /// VM admissions rejected fleet-wide.
    pub vms_rejected: u64,
    /// Rank groups powered down fleet-wide.
    pub groups_powered_down: u64,
    /// Rank groups woken fleet-wide.
    pub groups_woken: u64,
    /// Segments drained fleet-wide.
    pub segments_drained: u64,
    /// Events processed across every host simulation — the denominator of
    /// the events/sec throughput figure (wall clock is measured outside
    /// the result so the JSON stays deterministic).
    pub events_processed: u64,
    /// Total fleet DRAM energy, millijoules.
    pub total_energy_mj: f64,
    /// Energy of the same fleet with every rank held in standby.
    pub baseline_energy_mj: f64,
    /// `1 - total / baseline` — the fleet-wide background savings.
    pub savings_fraction: f64,
    /// The first few hosts, for rendering and regression eyeballs.
    pub sample: Vec<HostOutcome>,
}

/// Fleet-wide out-of-band observability, folded from per-host replays in
/// host-index order. Not serialized — the pinned [`VmCampaignResult`]
/// stays byte-stable.
#[derive(Debug, Default)]
pub struct CampaignObservations {
    /// SLO report from merged per-host histograms: admission latency and
    /// migration-drain backlog (no per-access traffic is modeled at fleet
    /// scale, so the access section is absent).
    pub slo: SloReport,
    /// Event-spine queue counters summed over every host simulation
    /// (counts sum, high-water marks take the per-host max).
    pub queue: QueueStats,
    /// Merged windowed time series when a window width was requested.
    pub series: Option<TimeSeries>,
    /// Fleet-wide per-state rank residency from the end-of-run power
    /// reports, picoseconds — the reconciliation anchor for the series.
    pub residency_ps: [u64; 5],
}

/// What one host replay observed about itself, beside its [`HostOutcome`].
struct HostObservations {
    series: Option<TimeSeries>,
    admission: Histogram,
    drain_age: Histogram,
    backlog_high_water: u64,
    queue: QueueStats,
    residency_ps: [u64; 5],
}

/// The two deadline kinds a host queue holds.
enum HostEv {
    /// The next VM schedule instant has arrived.
    Schedule,
    /// The device's next internal deadline (migration completion or
    /// queued-drain start) has arrived.
    Device,
}

/// Event handler replaying one host's schedule against its device.
struct HostRunner<'a> {
    dev: &'a mut DtlDevice<AnalyticBackend>,
    events: &'a [dtl_trace::VmEvent],
    cursor: usize,
    handles: HashMap<VmId, VmHandle>,
    rejected: HashSet<VmId>,
    vms_placed: u64,
    vms_rejected: u64,
    /// The in-queue device deadline, so a changed `next_activity_at`
    /// cancels and re-posts instead of accumulating stale events.
    device_ev: Option<(Picos, EventId)>,
}

impl HostRunner<'_> {
    fn apply_due_schedule(&mut self, now: Picos) -> Result<(), DtlError> {
        while let Some(ev) = self.events.get(self.cursor) {
            if Picos::from_secs(u64::from(ev.at_min) * 60) > now {
                break;
            }
            self.cursor += 1;
            match ev.kind {
                VmEventKind::Alloc(vm) => match self.dev.alloc_vm(HostId(0), vm.mem_bytes, now) {
                    Ok(alloc) => {
                        self.vms_placed += 1;
                        self.handles.insert(vm.id, alloc.handle);
                    }
                    // AU rounding can overshoot a schedule synthesized at
                    // the node's capacity edge; such VMs go elsewhere in
                    // the cluster.
                    Err(DtlError::OutOfCapacity { .. }) => {
                        self.vms_rejected += 1;
                        self.rejected.insert(vm.id);
                    }
                    Err(e) => return Err(e),
                },
                VmEventKind::Dealloc(id) => {
                    if let Some(h) = self.handles.remove(&id) {
                        self.dev.dealloc_vm(h, now)?;
                    } else {
                        debug_assert!(self.rejected.remove(&id), "dealloc of unknown VM");
                    }
                }
            }
        }
        Ok(())
    }

    /// Re-arms the queue after any work: the next schedule instant (posted
    /// by the schedule arm only) and the device's current deadline.
    fn rearm_device(&mut self, now: Picos, sched: &mut Sched<'_, HostEv>) {
        let want = self.dev.next_activity_at().map(|t| t.max(now));
        if want == self.device_ev.map(|(t, _)| t) {
            return;
        }
        if let Some((_, id)) = self.device_ev.take() {
            sched.cancel(id);
        }
        if let Some(t) = want {
            let id = sched.post(t, HostEv::Device);
            self.device_ev = Some((t, id));
        }
    }
}

impl EventHandler<HostEv> for HostRunner<'_> {
    type Error = DtlError;

    fn on_event(
        &mut self,
        now: Picos,
        event: HostEv,
        sched: &mut Sched<'_, HostEv>,
    ) -> Result<(), DtlError> {
        match event {
            HostEv::Schedule => {
                self.apply_due_schedule(now)?;
                if let Some(ev) = self.events.get(self.cursor) {
                    sched.post(Picos::from_secs(u64::from(ev.at_min) * 60), HostEv::Schedule);
                }
            }
            HostEv::Device => {
                self.device_ev = None;
                self.dev.tick(now)?;
            }
        }
        self.rearm_device(now, sched);
        Ok(())
    }
}

/// Replays one host of the fleet, returning its outcome plus the
/// out-of-band observations. When `series_width` is set the host's device
/// streams events into its **own** [`TimeSeriesSink`] (bounded memory —
/// one aggregate per window, never a buffered event trace); per-host
/// series merge in host order afterwards.
fn run_host(
    cfg: &VmCampaignConfig,
    index: u64,
    series_width: Option<u64>,
) -> Result<(HostOutcome, HostObservations), DtlError> {
    let seed = derive_seed(cfg.seed, index);
    let schedule = VmSchedule::synthesize(seed, cfg.node, cfg.duration_min);
    let backend =
        AnalyticBackend::new(cfg.geometry(), cfg.dtl_config().segment_bytes, host_power_params());
    let mut dev = DtlDevice::new(cfg.dtl_config(), backend);
    dev.set_hotness_enabled(false);
    dev.register_host(HostId(0))?;
    let series_sink = series_width.map(|w| Arc::new(TimeSeriesSink::new(w)));
    if let Some(sink) = &series_sink {
        let geo = cfg.geometry();
        for c in 0..geo.channels {
            for r in 0..geo.ranks_per_channel {
                sink.ensure_rank(c, r);
            }
        }
        dev.set_telemetry(Telemetry::new(sink.clone() as Arc<dyn dtl_telemetry::TelemetrySink>));
    }

    let mut sim = Simulation::new(Picos::ZERO);
    let horizon = cfg.horizon();
    let (vms_placed, vms_rejected) = {
        let mut runner = HostRunner {
            dev: &mut dev,
            events: schedule.events(),
            cursor: 0,
            handles: HashMap::new(),
            rejected: HashSet::new(),
            vms_placed: 0,
            vms_rejected: 0,
            device_ev: None,
        };
        if let Some(ev) = runner.events.first() {
            sim.post(Picos::from_secs(u64::from(ev.at_min) * 60), HostEv::Schedule);
        }
        // Drains posted by the final deallocation complete microseconds
        // past the horizon; cut the books at the horizon like every other
        // harness.
        sim.step_until(horizon, &mut runner)?;
        (runner.vms_placed, runner.vms_rejected)
    };
    // Power transitions performed during the final tick sit in the backend
    // until the next drain; flush them so the telemetry stream (and the
    // windowed series folded from it) covers the whole run.
    let _ = dev.drain_commands();

    let report = dev.power_report(horizon);
    dev.check_invariants()?;
    assert_residency_consistency(&dev, &report);
    let outcome = HostOutcome {
        seed,
        vms_placed,
        vms_rejected,
        groups_powered_down: dev.powerdown_stats().groups_powered_down,
        groups_woken: dev.powerdown_stats().groups_woken,
        segments_drained: dev.powerdown_stats().segments_drained,
        events_processed: sim.events_processed(),
        energy_mj: report.total.total_mj(),
        background_mj: report.total.background_mj,
    };
    let mut residency_ps = [0u64; 5];
    for ch in &report.residency {
        for rank in ch {
            for (total, p) in residency_ps.iter_mut().zip(rank.iter()) {
                *total += p.as_ps();
            }
        }
    }
    let admission = Histogram::default();
    admission.merge_from(dev.admission_histogram());
    let drain_age = Histogram::default();
    drain_age.merge_from(dev.drain_age_histogram());
    let obs = HostObservations {
        series: series_sink.map(|s| s.finish(horizon.as_ps())),
        admission,
        drain_age,
        backlog_high_water: dev.migration_backlog_high_water(),
        queue: sim.queue_stats(),
        residency_ps,
    };
    Ok((outcome, obs))
}

fn host_power_params() -> PowerParams {
    PowerParams::ddr4_128gb_dimm()
}

/// The energy of one host whose ranks never leave standby — the no-DTL
/// fleet baseline, identical for every host and computed once.
fn baseline_host_energy_mj(cfg: &VmCampaignConfig) -> f64 {
    let mut dev: DtlDevice<AnalyticBackend> = DtlDevice::new(
        cfg.dtl_config(),
        AnalyticBackend::new(cfg.geometry(), cfg.dtl_config().segment_bytes, host_power_params()),
    );
    dev.power_report(cfg.horizon()).total.total_mj()
}

/// Runs the fleet campaign sequentially.
///
/// # Errors
///
/// Propagates device errors (these indicate bugs — the harness never
/// over-commits a host).
pub fn run_campaign(cfg: &VmCampaignConfig) -> Result<VmCampaignResult, DtlError> {
    run_campaign_jobs(cfg, 1)
}

/// Like [`run_campaign`], with hosts as parallel work units sharded
/// across `jobs` workers. Hosts are independent replays; results assemble
/// in host order, so the output is bit-identical for any `jobs`.
///
/// # Errors
///
/// Propagates device errors (these indicate bugs — the harness never
/// over-commits a host).
pub fn run_campaign_jobs(
    cfg: &VmCampaignConfig,
    jobs: usize,
) -> Result<VmCampaignResult, DtlError> {
    run_campaign_observed(cfg, jobs, None, &Heartbeat::disabled()).map(|(result, _)| result)
}

/// Like [`run_campaign_jobs`], additionally returning the fleet's
/// out-of-band [`CampaignObservations`]: merged SLO histograms, summed
/// event-spine queue counters, and (when `series_width` is set) the merged
/// windowed time series. Per-host observations fold in host-index order,
/// so every byte — including the series CSV — is identical for any `jobs`.
/// The heartbeat ticks once per completed host; it is wall-clock-only
/// stderr output and cannot perturb the result.
///
/// # Errors
///
/// Propagates device errors (these indicate bugs — the harness never
/// over-commits a host).
pub fn run_campaign_observed(
    cfg: &VmCampaignConfig,
    jobs: usize,
    series_width: Option<u64>,
    heartbeat: &Heartbeat,
) -> Result<(VmCampaignResult, CampaignObservations), DtlError> {
    const SAMPLE_HOSTS: usize = 8;
    let units: Vec<u32> = (0..cfg.hosts).collect();
    let total_units = u64::from(cfg.hosts);
    let outcomes = crate::exec::run_units(jobs, units, |i, _| {
        let host = run_host(cfg, i as u64, series_width);
        heartbeat.tick(total_units);
        host
    });
    let baseline_host = baseline_host_energy_mj(cfg);
    let mut out = VmCampaignResult {
        hosts: cfg.hosts,
        duration_min: cfg.duration_min,
        vms_placed: 0,
        vms_rejected: 0,
        groups_powered_down: 0,
        groups_woken: 0,
        segments_drained: 0,
        events_processed: 0,
        total_energy_mj: 0.0,
        baseline_energy_mj: baseline_host * f64::from(cfg.hosts),
        savings_fraction: 0.0,
        sample: Vec::new(),
    };
    let admission = Histogram::default();
    let drain_age = Histogram::default();
    let mut backlog_high_water = 0u64;
    let mut queue = QueueStats::default();
    let mut series = series_width.map(TimeSeries::new);
    let mut residency_ps = [0u64; 5];
    for outcome in outcomes {
        let (h, host_obs) = outcome?;
        out.vms_placed += h.vms_placed;
        out.vms_rejected += h.vms_rejected;
        out.groups_powered_down += h.groups_powered_down;
        out.groups_woken += h.groups_woken;
        out.segments_drained += h.segments_drained;
        out.events_processed += h.events_processed;
        out.total_energy_mj += h.energy_mj;
        if out.sample.len() < SAMPLE_HOSTS {
            out.sample.push(h);
        }
        admission.merge_from(&host_obs.admission);
        drain_age.merge_from(&host_obs.drain_age);
        backlog_high_water = backlog_high_water.max(host_obs.backlog_high_water);
        queue.merge_from(&host_obs.queue);
        if let (Some(fleet), Some(host_series)) = (&mut series, &host_obs.series) {
            fleet.merge_from(host_series);
        }
        for (total, r) in residency_ps.iter_mut().zip(host_obs.residency_ps) {
            *total += r;
        }
    }
    if out.baseline_energy_mj > 0.0 {
        out.savings_fraction = 1.0 - out.total_energy_mj / out.baseline_energy_mj;
    }
    let obs = CampaignObservations {
        slo: SloReport {
            access: None,
            admission: LatencySummary::from_histogram(&admission),
            evac_backlog: BacklogSummary::from_parts(&drain_age, backlog_high_water),
            fabric_queue: None,
        },
        queue,
        series,
        residency_ps,
    };
    Ok((out, obs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_campaign_places_and_saves() {
        let r = run_campaign(&VmCampaignConfig::tiny(7)).unwrap();
        assert_eq!(r.hosts, 8);
        assert!(r.vms_placed > 100, "a day of schedule places many VMs: {}", r.vms_placed);
        assert!(r.groups_powered_down > 0, "consolidation must park rank groups");
        assert!(
            r.savings_fraction > 0.05 && r.savings_fraction < 0.90,
            "fleet savings out of range: {}",
            r.savings_fraction
        );
        assert!(r.events_processed > 0);
    }

    #[test]
    fn jobs_do_not_change_the_fleet() {
        let cfg = VmCampaignConfig::tiny(11);
        let a = run_campaign_jobs(&cfg, 1).unwrap();
        let b = run_campaign_jobs(&cfg, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn series_residency_reconciles_with_power_reports_bit_for_bit() {
        // The windowed series is folded from events; the power reports
        // integrate residency inside the backends. Summing the series'
        // per-state columns must reproduce the reports' totals exactly.
        let mut cfg = VmCampaignConfig::tiny(7);
        cfg.hosts = 2;
        let width = Picos::from_secs(3600).as_ps();
        let (r, obs) = run_campaign_observed(&cfg, 1, Some(width), &Heartbeat::disabled()).unwrap();
        let series = obs.series.expect("a width was requested");
        assert_eq!(series.residency_totals_ps(), obs.residency_ps);
        let geo = cfg.geometry();
        let ranks = u64::from(geo.channels) * u64::from(geo.ranks_per_channel) * 2;
        // The residency clock may run ahead of the horizon by at most one
        // in-flight exit latency per rank (`residency_slack`).
        let total = series.residency_totals_ps().iter().sum::<u64>();
        let floor = cfg.horizon().as_ps() * ranks;
        assert!(
            total >= floor && total - floor <= ranks * Picos::from_ns(200).as_ps(),
            "every rank accounts the full horizon: {total} vs {floor}"
        );
        assert!(r.vms_placed > 0);
    }

    #[test]
    fn series_and_slo_are_identical_for_any_job_count() {
        let cfg = VmCampaignConfig::tiny(11);
        let width = Picos::from_secs(3600).as_ps();
        let (a, obs_a) =
            run_campaign_observed(&cfg, 1, Some(width), &Heartbeat::disabled()).unwrap();
        let (b, obs_b) =
            run_campaign_observed(&cfg, 3, Some(width), &Heartbeat::disabled()).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            obs_a.series.as_ref().unwrap().to_csv(),
            obs_b.series.as_ref().unwrap().to_csv(),
            "series CSV must be byte-identical across job counts"
        );
        assert_eq!(obs_a.slo, obs_b.slo);
        assert_eq!(obs_a.queue, obs_b.queue);
    }

    #[test]
    fn heartbeat_and_series_do_not_perturb_the_result() {
        let mut cfg = VmCampaignConfig::tiny(5);
        cfg.hosts = 2;
        let plain = run_campaign_jobs(&cfg, 1).unwrap();
        let width = Picos::from_secs(3600).as_ps();
        let (observed, obs) =
            run_campaign_observed(&cfg, 1, Some(width), &Heartbeat::new(true, "test")).unwrap();
        assert_eq!(plain, observed, "observability must never change a result byte");
        assert!(obs.slo.admission.is_some(), "fleet admissions populate the SLO");
        assert!(obs.queue.posted > 0);
    }

    #[test]
    fn event_count_scales_with_activity_not_horizon() {
        // Doubling the horizon of an otherwise-identical host roughly
        // doubles schedule activity, but the event count stays far below
        // what any 10 s tick grid would burn.
        let cfg = VmCampaignConfig { hosts: 1, ..VmCampaignConfig::tiny(3) };
        let r = run_campaign(&cfg).unwrap();
        let grid_ticks = u64::from(cfg.duration_min) * 6;
        assert!(
            r.events_processed < grid_ticks / 4,
            "event-driven host must beat the tick grid: {} events vs {} ticks",
            r.events_processed,
            grid_ticks
        );
    }
}
