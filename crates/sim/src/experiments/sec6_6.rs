//! **§6.6** — scaling the CXL memory device: "Since a higher-capacity DRAM
//! device often has more DRAM channels and ranks, the performance loss
//! would become smaller." Measured by running the Figure 5 comparison
//! (rank-interleaved vs rank-MSB mapping) on the 384 GB-class 4-channel
//! geometry and the 4 TB-class 8-channel geometry, under two load models:
//!
//! * **fixed demand** — the same workload moves to the bigger device (the
//!   paper's implicit reading): per-channel pressure halves and the loss
//!   stays flat-to-smaller;
//! * **scaled demand** — a bigger pool serves proportionally more hosts:
//!   per-channel pressure is constant, the richer rank-interleaved
//!   baseline gains more, and the loss grows modestly (2 % → ~4 %).
//!
//! The paper's sentence holds under the first reading; the second is the
//! honest caveat a deployment should know.

use dtl_dram::AddressMapping;
use dtl_trace::WorkloadKind;
use serde::{Deserialize, Serialize};

use super::latency_sweep::{measure, SweepConfig};
use crate::PerfModel;

/// One device geometry's interleaving sensitivity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sec66Row {
    /// Label, e.g. "4ch x 8rk (1TB-class)".
    pub label: String,
    /// Channels.
    pub channels: u32,
    /// Ranks per channel.
    pub ranks_per_channel: u32,
    /// Geometric-mean slowdown of the DTL mapping vs rank interleaving.
    pub mean_slowdown: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sec66Result {
    /// Small and large device rows.
    pub rows: Vec<Sec66Row>,
}

/// The three device/load geometries the comparison sweeps.
const GEOMETRIES: [(&str, u32, u32, u32); 3] = [
    ("4ch x 8rk (1TB-class)", 4u32, 8u32, 28u32),
    ("8ch x 16rk, fixed demand", 8, 16, 28),
    ("8ch x 16rk, scaled demand", 8, 16, 56),
];

/// Runs the scaling comparison under both load models. Equivalent to
/// [`run_jobs`] at `jobs = 1`.
pub fn run(requests: u64, workloads: &[WorkloadKind]) -> Sec66Result {
    run_jobs(requests, workloads, 1)
}

/// Runs the comparison with one worker unit per (geometry, workload) cell;
/// the per-geometry geometric-mean fold happens after the join, in
/// workload order, so the result is bit-identical for any `jobs`.
pub fn run_jobs(requests: u64, workloads: &[WorkloadKind], jobs: usize) -> Sec66Result {
    let perf = PerfModel::cloudsuite();
    let mut cells = Vec::new();
    for (g, (_, channels, ranks, cores)) in GEOMETRIES.iter().enumerate() {
        for kind in workloads {
            cells.push((g, *channels, *ranks, *cores, *kind));
        }
    }
    let slowdowns = crate::exec::run_units(jobs, cells, |_, (_, channels, ranks, cores, kind)| {
        let spec = kind.spec();
        let mut cfg_i = SweepConfig::paper(ranks, AddressMapping::RankInterleaved, 89);
        cfg_i.channels = channels;
        cfg_i.cores = cores;
        cfg_i.requests = requests;
        let inter = measure(&cfg_i, &spec);
        let mut cfg_d = SweepConfig::paper(ranks, AddressMapping::dtl_default(), 89);
        cfg_d.channels = channels;
        cfg_d.cores = cores;
        cfg_d.requests = requests;
        let dtl = measure(&cfg_d, &spec);
        perf.slowdown(spec.mapki, dtl.amat, inter.amat)
    });
    let mut rows = Vec::new();
    for (g, (label, channels, ranks, _)) in GEOMETRIES.iter().enumerate() {
        let mut product = 1.0f64;
        for s in &slowdowns[g * workloads.len()..(g + 1) * workloads.len()] {
            product *= s;
        }
        rows.push(Sec66Row {
            label: (*label).to_string(),
            channels: *channels,
            ranks_per_channel: *ranks,
            mean_slowdown: product.powf(1.0 / workloads.len() as f64),
        });
    }
    Sec66Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_behaviour_matches_both_readings() {
        let r = run(6_000, &[WorkloadKind::DataServing, WorkloadKind::GraphAnalytics]);
        assert_eq!(r.rows.len(), 3);
        let small = &r.rows[0];
        let fixed = &r.rows[1];
        let scaled = &r.rows[2];
        assert!(small.mean_slowdown >= 0.999);
        // Paper's reading: the same demand on a bigger device — the loss
        // stays flat-to-smaller (within noise).
        assert!(
            fixed.mean_slowdown <= small.mean_slowdown + 0.005,
            "fixed-demand {} vs small {}",
            fixed.mean_slowdown,
            small.mean_slowdown
        );
        // The caveat: proportionally scaled demand costs at least as much.
        assert!(
            scaled.mean_slowdown >= fixed.mean_slowdown - 0.005,
            "scaled-demand {} vs fixed {}",
            scaled.mean_slowdown,
            fixed.mean_slowdown
        );
    }
}
