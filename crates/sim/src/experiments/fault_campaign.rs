//! **Fault campaign** (reliability extension, paper §7 outlook) — replay
//! the Figure 12 VM schedule twice, fault-free and under a deterministic
//! fault load (background ECC noise, an error storm on one victim rank,
//! CXL link CRC corruption, migration interruptions), and report what the
//! faults cost: capacity lost to automatic rank retirement, the DRAM
//! energy delta, and the foreground latency penalty of link retries.

use serde::{Deserialize, Serialize};

use crate::{
    run_faulted, FaultRunConfig, FaultRunResult, Heartbeat, PowerDownRunConfig, RunObservations,
};
use dtl_core::DtlError;

/// Combined result of the fault-free and faulted replays.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultCampaignResult {
    /// The fault-free replay of the same schedule.
    pub baseline: FaultRunResult,
    /// The replay under fault load.
    pub faulted: FaultRunResult,
    /// Capacity permanently lost to rank retirement, bytes.
    pub capacity_lost_bytes: u64,
    /// That loss as a fraction of device capacity.
    pub capacity_lost_fraction: f64,
    /// DRAM energy delta of the faulted run vs baseline, mJ. Usually
    /// negative at partial load: a retired rank stops burning background
    /// power, though the pool also lost its capacity.
    pub energy_delta_mj: f64,
    /// Energy delta as a fraction of baseline energy.
    pub energy_delta_fraction: f64,
    /// Foreground latency penalty of link CRC retries, ns per cache line
    /// (the baseline's penalty is zero by construction).
    pub latency_penalty_ns: f64,
}

/// Runs the campaign: a quiet baseline and the faulted replay of the same
/// schedule seed.
///
/// # Errors
///
/// Propagates device errors from either replay; an invariant violation
/// after any injected fault fails the faulted run.
pub fn run(cfg: &FaultRunConfig) -> Result<FaultCampaignResult, DtlError> {
    run_traced(cfg, &dtl_telemetry::Telemetry::disabled())
}

/// Like [`run`], but streams telemetry from the **faulted replay** (the
/// quiet baseline stays untraced so its events do not interleave into the
/// same timeline).
///
/// # Errors
///
/// Propagates device errors from either replay; an invariant violation
/// after any injected fault fails the faulted run.
pub fn run_traced(
    cfg: &FaultRunConfig,
    telemetry: &dtl_telemetry::Telemetry,
) -> Result<FaultCampaignResult, DtlError> {
    run_jobs_traced(cfg, telemetry, 1)
}

/// Like [`run_traced`], with the quiet baseline and the faulted replay as
/// two parallel work units. The baseline unit keeps its telemetry disabled
/// (as in the sequential path) and the faulted unit records into a
/// per-unit buffer merged back in unit order, so the emitted trace is
/// bit-identical for any `jobs`.
///
/// # Errors
///
/// Propagates device errors from either replay; an invariant violation
/// after any injected fault fails the faulted run.
pub fn run_jobs_traced(
    cfg: &FaultRunConfig,
    telemetry: &dtl_telemetry::Telemetry,
    jobs: usize,
) -> Result<FaultCampaignResult, DtlError> {
    run_jobs_observed(cfg, telemetry, jobs, &Heartbeat::disabled()).map(|(result, _)| result)
}

/// Like [`run_jobs_traced`], additionally returning the **faulted**
/// replay's out-of-band [`RunObservations`] — its SLO report is the one
/// that matters (the quiet baseline's latency carries no retry penalty by
/// construction). The heartbeat ticks once per completed replay.
///
/// # Errors
///
/// Propagates device errors from either replay; an invariant violation
/// after any injected fault fails the faulted run.
pub fn run_jobs_observed(
    cfg: &FaultRunConfig,
    telemetry: &dtl_telemetry::Telemetry,
    jobs: usize,
    heartbeat: &Heartbeat,
) -> Result<(FaultCampaignResult, RunObservations), DtlError> {
    let mut outcomes =
        crate::exec::run_units_traced(jobs, telemetry, vec![false, true], |_, inject, t| {
            let out = if inject {
                crate::run_faulted_observed(cfg, t).map(|(r, o)| (r, Some(o)))
            } else {
                run_faulted(&FaultRunConfig::fault_free(cfg.faults.seed, cfg.run))
                    .map(|r| (r, None))
            };
            heartbeat.tick(2);
            out
        });
    let (faulted, obs) = outcomes.pop().expect("two units")?;
    let (baseline, _) = outcomes.pop().expect("two units")?;
    let device_bytes = cfg.run.node.mem_bytes;
    let result = FaultCampaignResult {
        baseline,
        faulted,
        capacity_lost_bytes: faulted.capacity_lost_bytes,
        capacity_lost_fraction: faulted.capacity_lost_bytes as f64 / device_bytes as f64,
        energy_delta_mj: faulted.total_energy_mj - baseline.total_energy_mj,
        energy_delta_fraction: faulted.total_energy_mj / baseline.total_energy_mj - 1.0,
        latency_penalty_ns: faulted.latency_penalty_ns,
    };
    Ok((result, obs.unwrap_or_default()))
}

/// The paper-scale campaign: the Figure 12 schedule (6 h, 4×8 ranks) under
/// the storm fault load.
pub fn paper(seed: u64) -> FaultRunConfig {
    let run = PowerDownRunConfig::paper(seed, true);
    let mut cfg = FaultRunConfig::fault_free(seed, run);
    cfg.faults.correctable_per_rank_per_sec = 0.001;
    cfg.faults.link_crc_per_sec = 0.02;
    cfg.faults.link_crc_max_burst = 6;
    cfg.faults.migration_interrupts = 24;
    cfg.faults.storm = Some(dtl_fault::StormConfig {
        channel: 0,
        rank: 1,
        start: dtl_dram::Picos::from_secs(3600),
        events: 40,
        spacing: dtl_dram::Picos::from_ms(250),
        correctable_ratio: 0.8,
    });
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_quantifies_fault_cost() {
        let r = run(&FaultRunConfig::tiny_storm(7)).unwrap();
        assert_eq!(r.baseline.faults_injected, 0);
        assert!(r.faulted.faults_injected > 0);
        assert_eq!(r.faulted.ranks_retired, 1, "the storm retires its victim");
        assert!(r.capacity_lost_fraction > 0.0 && r.capacity_lost_fraction < 0.5);
        assert_eq!(r.capacity_lost_bytes, r.faulted.capacity_lost_bytes);
        assert!(r.latency_penalty_ns >= 0.0);
        // Both runs place the same schedule (capacity loss may shed a
        // late-arriving VM, but never gains one).
        assert!(r.faulted.vms_allocated <= r.baseline.vms_allocated);
    }
}
