//! Shared cycle-level latency measurement for the rank-count (Figure 2)
//! and rank-interleaving (Figure 5) studies.
//!
//! A post-cache trace is replayed against the cycle-level DRAM simulator
//! as an open-loop arrival process whose rate models `cores` cores retiring
//! instructions at a fixed IPC; the measured mean device latency plus the
//! link latency gives the AMAT that the [`crate::PerfModel`] converts into
//! an execution-time ratio.

use dtl_dram::{
    AccessKind, AddressMapping, DramConfig, DramSystem, Geometry, PagePolicy, PhysAddr, Picos,
    Priority,
};
use dtl_trace::{TraceGen, WorkloadSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of one latency measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Channels (paper: 4).
    pub channels: u32,
    /// Ranks per channel (power of two; the mapper requires it).
    pub ranks_per_channel: u32,
    /// Bit-mapping policy.
    pub mapping: AddressMapping,
    /// One-way+return link latency added to every access.
    pub link_round_trip: Picos,
    /// Cores generating traffic.
    pub cores: u32,
    /// Per-core IPC for the arrival-rate model.
    pub ipc: f64,
    /// Core frequency, GHz.
    pub core_ghz: f64,
    /// Requests to replay.
    pub requests: u64,
    /// Footprint the trace addresses are folded into (bytes). Keeping it
    /// constant across rank counts makes configurations comparable.
    pub footprint_bytes: u64,
    /// RNG seed.
    pub seed: u64,
    /// Row-buffer policy of the controller.
    pub page_policy: PagePolicy,
}

impl SweepConfig {
    /// A paper-like configuration at the given rank count and mapping.
    pub fn paper(ranks_per_channel: u32, mapping: AddressMapping, link_ns: u64) -> Self {
        SweepConfig {
            channels: 4,
            ranks_per_channel,
            mapping,
            link_round_trip: Picos::from_ns(link_ns),
            cores: 28,
            // CloudSuite cores average well under one instruction per
            // cycle; 0.5 keeps the arrival process at realistic bandwidth.
            ipc: 0.5,
            core_ghz: 2.7,
            requests: 60_000,
            // 2 ranks x 4 channels x 32 GiB = 256 GiB minimum capacity;
            // use a quarter of it so every config sees identical addresses.
            footprint_bytes: 64 << 30,
            seed: 1,
            page_policy: PagePolicy::OpenPage,
        }
    }
}

/// Outcome of one measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepOutcome {
    /// Mean host-observed AMAT (device latency + link).
    pub amat: Picos,
    /// Maximum observed latency.
    pub max_latency: Picos,
    /// Achieved bandwidth, bytes/s.
    pub bandwidth: f64,
    /// Row-buffer hit fraction.
    pub row_hit_fraction: f64,
}

/// Replays `spec`'s post-cache stream against the configured device.
///
/// # Panics
///
/// Panics on invalid geometry (callers use validated presets).
pub fn measure(cfg: &SweepConfig, spec: &WorkloadSpec) -> SweepOutcome {
    let geometry = Geometry {
        channels: cfg.channels,
        ranks_per_channel: cfg.ranks_per_channel,
        ..Geometry::cxl_1tb()
    };
    let dram_cfg =
        DramConfig { geometry, page_policy: cfg.page_policy, ..DramConfig::cxl_1tb_ddr4_2933() };
    let mut dram = DramSystem::new(dram_cfg, cfg.mapping).expect("valid preset geometry");
    let mut gen = TraceGen::new(*spec, cfg.seed);
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5eed);
    // Arrival rate: cores * IPC * f GHz instructions/ns, MAPKI accesses
    // per kilo-instruction.
    let instr_per_ns = f64::from(cfg.cores) * cfg.ipc * cfg.core_ghz;
    let accesses_per_ns = instr_per_ns * spec.mapki / 1000.0;
    let mean_gap_ps = 1000.0 / accesses_per_ns;
    let mut t = Picos::ZERO;
    let footprint = cfg.footprint_bytes.min(geometry.capacity_bytes());
    for _ in 0..cfg.requests {
        let r = gen.next_record();
        // Fold into the footprint but keep the stream's spatial locality —
        // row-buffer behaviour is what differentiates the configurations.
        let addr = PhysAddr::new(r.addr % footprint).align_down_to_line();
        let kind = if r.is_write { AccessKind::Write } else { AccessKind::Read };
        let u: f64 = rng.gen_range(1e-9..1.0f64);
        t += Picos::from_ps(((-u.ln()) * mean_gap_ps).max(1.0) as u64);
        dram.submit(addr, kind, Priority::Foreground, t).expect("footprint within capacity");
        // Keep queues bounded: drain periodically.
        if dram.pending() > 512 {
            dram.advance_to(t);
        }
    }
    let end = dram.run_until_idle(Picos::from_us(10));
    let stats = dram.foreground_stats();
    let mut hits = 0u64;
    let mut total = 0u64;
    for id in dram.rank_ids() {
        let c = dram.rank_counters(id);
        hits += c.row_hits;
        total += c.reads + c.writes;
    }
    SweepOutcome {
        amat: stats.mean() + cfg.link_round_trip,
        max_latency: stats.max + cfg.link_round_trip,
        bandwidth: dram.bytes_transferred() as f64 / end.as_secs_f64(),
        row_hit_fraction: if total == 0 { 0.0 } else { hits as f64 / total as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtl_trace::WorkloadKind;

    fn quick(ranks: u32, mapping: AddressMapping) -> SweepOutcome {
        let mut cfg = SweepConfig::paper(ranks, mapping, 0);
        cfg.requests = 5_000;
        cfg.footprint_bytes = 1 << 30;
        measure(&cfg, &WorkloadKind::DataServing.spec())
    }

    #[test]
    fn fewer_ranks_never_speed_things_up() {
        let r8 = quick(8, AddressMapping::RankInterleaved);
        let r2 = quick(2, AddressMapping::RankInterleaved);
        assert!(r2.amat >= r8.amat, "2 ranks {} must not beat 8 ranks {}", r2.amat, r8.amat);
        // But the gap stays small (the paper's point).
        let ratio = r2.amat.as_ns_f64() / r8.amat.as_ns_f64();
        assert!(ratio < 1.6, "ratio {ratio}");
    }

    #[test]
    fn link_latency_is_additive() {
        let near = quick(4, AddressMapping::RankInterleaved);
        let mut cfg = SweepConfig::paper(4, AddressMapping::RankInterleaved, 89);
        cfg.requests = 5_000;
        cfg.footprint_bytes = 1 << 30;
        let far = measure(&cfg, &WorkloadKind::DataServing.spec());
        let delta = far.amat.as_ns_f64() - near.amat.as_ns_f64();
        assert!((delta - 89.0).abs() < 1.0, "delta {delta}");
    }

    #[test]
    fn outcome_fields_are_sane() {
        let o = quick(4, AddressMapping::dtl_default());
        assert!(o.amat > Picos::from_ns(10));
        assert!(o.max_latency >= o.amat);
        assert!(o.bandwidth > 0.0);
        assert!(o.row_hit_fraction >= 0.0 && o.row_hit_fraction <= 1.0);
    }
}
