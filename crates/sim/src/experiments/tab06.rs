//! **Table 6** — power and area of the DTL-augmented CXL controller at
//! 7 nm: 25.7 mW / 0.165 mm² for the 384 GB device, 36.2 mW / 1.1 mm² for
//! 4 TB.

use dtl_core::{ControllerCost, OverheadConfig, StructureSizes};
use serde::{Deserialize, Serialize};

/// One device column of Table 6.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tab06Column {
    /// Capacity label.
    pub label: String,
    /// Component breakdown.
    pub cost: ControllerCost,
    /// Total power, mW.
    pub total_mw: f64,
    /// Total area, mm².
    pub total_mm2: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tab06Result {
    /// 384 GB and 4 TB columns.
    pub columns: Vec<Tab06Column>,
}

/// Computes the table.
pub fn run() -> Tab06Result {
    let columns = [("384GB", OverheadConfig::paper_384gb()), ("4TB", OverheadConfig::paper_4tb())]
        .into_iter()
        .map(|(label, cfg)| {
            let sizes = StructureSizes::compute(&cfg);
            let cost = ControllerCost::estimate_7nm(&sizes);
            Tab06Column {
                label: label.to_string(),
                total_mw: cost.total_mw(),
                total_mm2: cost.total_mm2(),
                cost,
            }
        })
        .collect();
    Tab06Result { columns }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_totals() {
        let r = run();
        assert!((r.columns[0].total_mw - 25.7).abs() < 4.0, "{}", r.columns[0].total_mw);
        assert!((r.columns[1].total_mw - 36.2).abs() < 6.0, "{}", r.columns[1].total_mw);
        assert!(r.columns[1].total_mm2 > r.columns[0].total_mm2);
    }
}
