//! **VM campaign** (fleet scale, paper §7 outlook) — a thousand
//! independent paper nodes replaying a multi-week VM schedule, driven
//! purely by posted events on the `dtl-event` spine (no tick grid; see
//! `vm_campaign_run`). The headline is the fleet-wide background energy
//! saved by rank consolidation against an always-standby baseline, and
//! the run itself doubles as the event-spine throughput benchmark: the
//! result carries the fleet's processed-event count so BENCH.md can quote
//! events/sec against an externally measured wall clock.

pub use crate::vm_campaign_run::{
    run_campaign as run, run_campaign_jobs as run_jobs, run_campaign_observed as run_jobs_observed,
    CampaignObservations, HostOutcome, VmCampaignConfig, VmCampaignResult,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_alias_reaches_the_harness() {
        let mut cfg = VmCampaignConfig::tiny(5);
        cfg.hosts = 2;
        let r = run(&cfg).unwrap();
        assert_eq!(r.hosts, 2);
        assert_eq!(r.sample.len(), 2);
    }
}
