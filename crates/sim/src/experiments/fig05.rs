//! **Figure 5** — the cost of disabling rank interleaving (keeping channel
//! interleaving) under local-DRAM and CXL access latencies: the paper
//! measures −1.7 % locally and −1.4 % over CXL — the fixed link latency
//! dilutes the queueing difference.

use dtl_dram::{AddressMapping, Picos};
use dtl_trace::WorkloadKind;
use serde::{Deserialize, Serialize};

use super::latency_sweep::{measure, SweepConfig};
use crate::PerfModel;

/// One workload's interleaving sensitivity at one link latency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig05Row {
    /// Workload name.
    pub workload: String,
    /// AMAT with rank interleaving, ns.
    pub interleaved_amat_ns: f64,
    /// AMAT with the DTL (rank-MSB) mapping, ns.
    pub dtl_amat_ns: f64,
    /// Execution-time ratio of DTL mapping vs interleaved (>1 = slower).
    pub slowdown: f64,
}

/// Result for one link latency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig05Series {
    /// "local" or "cxl".
    pub label: String,
    /// Link round-trip added, ns.
    pub link_ns: u64,
    /// Per-workload rows.
    pub rows: Vec<Fig05Row>,
    /// Geometric-mean slowdown.
    pub mean_slowdown: f64,
}

/// Full result: both link latencies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig05Result {
    /// Local and CXL series.
    pub series: Vec<Fig05Series>,
}

/// Runs the experiment. Equivalent to [`run_jobs`] at `jobs = 1`.
pub fn run(requests: u64, workloads: &[WorkloadKind]) -> Fig05Result {
    run_jobs(requests, workloads, 1)
}

/// Runs the experiment with one worker unit per (link latency, workload)
/// cell — each cell replays its own pair of simulators. The per-series
/// geometric-mean fold happens after the join, in workload order, so the
/// result is bit-identical for any `jobs`.
pub fn run_jobs(requests: u64, workloads: &[WorkloadKind], jobs: usize) -> Fig05Result {
    let perf = PerfModel::cloudsuite();
    let links = [("local", 0u64), ("cxl", 89)];
    let mut cells = Vec::new();
    for (_, link_ns) in links {
        for kind in workloads {
            cells.push((link_ns, *kind));
        }
    }
    let flat = crate::exec::run_units(jobs, cells, |_, (link_ns, kind)| {
        let spec = kind.spec();
        let mut cfg_i = SweepConfig::paper(8, AddressMapping::RankInterleaved, link_ns);
        cfg_i.requests = requests;
        let inter = measure(&cfg_i, &spec);
        let mut cfg_d = SweepConfig::paper(8, AddressMapping::dtl_default(), link_ns);
        cfg_d.requests = requests;
        let dtl = measure(&cfg_d, &spec);
        Fig05Row {
            workload: kind.name().to_string(),
            interleaved_amat_ns: inter.amat.as_ns_f64(),
            dtl_amat_ns: dtl.amat.as_ns_f64(),
            slowdown: perf.slowdown(spec.mapki, dtl.amat, inter.amat),
        }
    });
    let mut series = Vec::new();
    for (s, (label, link_ns)) in links.iter().enumerate() {
        let rows: Vec<Fig05Row> = flat[s * workloads.len()..(s + 1) * workloads.len()].to_vec();
        let mut product = 1.0f64;
        for row in &rows {
            product *= row.slowdown;
        }
        let mean_slowdown = product.powf(1.0 / rows.len() as f64);
        series.push(Fig05Series {
            label: (*label).to_string(),
            link_ns: *link_ns,
            rows,
            mean_slowdown,
        });
    }
    Fig05Result { series }
}

impl Fig05Result {
    /// The local-memory mean slowdown.
    pub fn local_mean(&self) -> f64 {
        self.series[0].mean_slowdown
    }

    /// The CXL mean slowdown.
    pub fn cxl_mean(&self) -> f64 {
        self.series[1].mean_slowdown
    }

    /// A convenience AMAT check: CXL adds the link to every row.
    pub fn amat_gap_ns(&self) -> f64 {
        let l = &self.series[0].rows[0];
        let c = &self.series[1].rows[0];
        c.interleaved_amat_ns - l.interleaved_amat_ns
    }
}

/// The paper's local latency for reference assertions.
pub const LOCAL_DRAM_NS: Picos = Picos::from_ns(121);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaving_cost_small_and_smaller_over_cxl() {
        let r = run(6_000, &[WorkloadKind::DataServing, WorkloadKind::GraphAnalytics]);
        let local = r.local_mean();
        let cxl = r.cxl_mean();
        assert!(local >= 0.999, "local {local}");
        assert!(local < 1.08, "local cost too large: {local}");
        // The paper's shape: the relative cost shrinks with CXL latency.
        assert!(cxl <= local + 1e-9, "cxl {cxl} must not exceed local {local}");
        assert!((r.amat_gap_ns() - 89.0).abs() < 1.0);
    }
}
