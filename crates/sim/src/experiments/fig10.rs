//! **Figure 10** — segment size versus segment access distance: at 2 MiB
//! granularity 61.5 % of segments are cold (reuse distance over 10 M
//! memory instructions); at 4 MiB only 33.2 % are. Finer granularity
//! separates hot from cold better, which is why the paper picks 2 MiB.

use dtl_trace::{Mixer, ReuseAnalyzer, WorkloadKind, COLD_THRESHOLD_INSTRUCTIONS};
use serde::{Deserialize, Serialize};

/// Cold fraction at one granularity.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig10Row {
    /// Fold granularity, bytes.
    pub granularity_bytes: u64,
    /// Segments touched.
    pub touched: u64,
    /// Fraction classified cold.
    pub cold_fraction: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Result {
    /// Rows at 1 / 2 / 4 MiB.
    pub rows: Vec<Fig10Row>,
    /// The instruction threshold used (scaled with the working sets).
    pub threshold_instructions: u64,
}

/// Runs the experiment over an 8-application mix. `scale` shrinks working
/// sets; the coldness threshold shrinks by `scale / 4`: a 1/64-size
/// working set is swept 64× sooner, but the hot-burst structure (mean ~8
/// accesses per segment visit) stretches per-segment revisit distances by
/// roughly 4×, which the paper's full-size traces amortize.
pub fn run(seed: u64, records: usize, scale: u64) -> Fig10Result {
    let specs: Vec<_> = WorkloadKind::TRACED.iter().map(|k| k.spec().scaled(scale)).collect();
    let mut mix = Mixer::new(&specs, seed);
    let mut analyzers: Vec<ReuseAnalyzer> =
        [1u64 << 20, 2 << 20, 4 << 20].iter().map(|g| ReuseAnalyzer::new(*g)).collect();
    for _ in 0..records {
        let r = mix.next_record();
        for a in &mut analyzers {
            a.observe(r.icount, r.addr);
        }
    }
    let threshold = COLD_THRESHOLD_INSTRUCTIONS / (scale / 4).max(1);
    let rows = analyzers
        .iter()
        .map(|a| {
            let cf = a.cold_fraction(threshold);
            Fig10Row {
                granularity_bytes: cf.granularity_bytes,
                touched: cf.touched_segments,
                cold_fraction: cf.fraction(),
            }
        })
        .collect();
    Fig10Result { rows, threshold_instructions: threshold }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finer_granularity_finds_more_cold_segments() {
        let r = run(11, 400_000, 64);
        assert_eq!(r.rows.len(), 3);
        let f1m = r.rows[0].cold_fraction;
        let f2m = r.rows[1].cold_fraction;
        let f4m = r.rows[2].cold_fraction;
        assert!(
            f1m >= f2m && f2m > f4m,
            "cold fractions must fall with granularity: {f1m} {f2m} {f4m}"
        );
        // The paper's band: 2 MiB around 61.5%, 4 MiB around 33.2%. Allow
        // a generous band — the traces are synthetic twins.
        assert!(f2m > 0.5 && f2m < 0.9, "2MiB cold {f2m}");
        assert!(f4m < f2m - 0.1, "4MiB ({f4m}) must sit well below 2 MiB ({f2m})");
    }
}
