//! **Ablation** — why not just use CKE power-down? The conventional
//! alternative to the DTL is the memory controller's own idle power-down
//! (CKE low, precharge power-down at ~35 % of standby power) — no
//! consolidation, no indirection.
//!
//! This study measures per-rank idle-gap distributions under the paper's
//! interleaved traffic with the cycle-accurate simulator, then computes
//! how much background power CKE power-down could reclaim at different
//! entry timeouts. Because fine-grained interleaving keeps *every* rank
//! lukewarm, the gaps are far shorter than any safe timeout — the
//! consolidation that the DTL's indirection enables is what unlocks the
//! savings.

use serde::{Deserialize, Serialize};

use dtl_dram::{
    AccessKind, AddressMapping, CommandSink, DramConfig, DramSystem, Geometry, IssuedCommand,
    PhysAddr, Picos, PowerParams, PowerState, Priority,
};
use dtl_trace::{Mixer, WorkloadKind};

/// One (traffic level, timeout) cell of the study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CkeRow {
    /// Traffic label, e.g. "30 GB/s".
    pub utilization_label: String,
    /// CKE entry timeout, ns.
    pub timeout_ns: u64,
    /// Fraction of rank-time reclaimable at that timeout.
    pub pd_residency: f64,
    /// Background saving CKE power-down achieves.
    pub cke_background_saving: f64,
    /// The DTL's Figure 12 background saving for reference.
    pub dtl_background_saving: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CkeResult {
    /// One row per (traffic, timeout) pair.
    pub rows: Vec<CkeRow>,
}

/// Records the issue time of every command, per rank.
#[derive(Debug, Default)]
struct GapSink {
    per_rank: std::collections::HashMap<(u32, u32), Vec<Picos>>,
}

impl CommandSink for GapSink {
    fn on_command(&mut self, cmd: IssuedCommand) {
        self.per_rank.entry((cmd.channel, cmd.rank)).or_default().push(cmd.at);
    }
}

fn measure(gbps: f64, requests: u64, timeouts_ns: &[u64]) -> Vec<(u64, f64)> {
    let geometry = Geometry::cxl_1tb();
    let cfg = DramConfig { geometry, ..DramConfig::cxl_1tb_ddr4_2933() };
    let mut sys = DramSystem::new(cfg, AddressMapping::RankInterleaved).unwrap();
    let specs: Vec<_> = WorkloadKind::TRACED.iter().map(|k| k.spec().scaled(64)).collect();
    let mut mix = Mixer::new(&specs, 1);
    let gap_ps = (64.0 / gbps / 1e9 * 1e12) as u64;
    let mut t = Picos::ZERO;
    let mut sink = GapSink::default();
    let space = mix.address_space_bytes().min(geometry.capacity_bytes());
    for _ in 0..requests {
        let r = mix.next_record();
        t += Picos::from_ps(gap_ps);
        sys.submit(
            PhysAddr::new(r.addr % space),
            if r.is_write { AccessKind::Write } else { AccessKind::Read },
            Priority::Foreground,
            t,
        )
        .unwrap();
        if sys.pending() > 512 {
            sys.advance_to_with_sink(t, &mut sink);
        }
    }
    let mut horizon = t + Picos::from_us(10);
    while sys.pending() > 0 {
        sys.advance_to_with_sink(horizon, &mut sink);
        horizon += Picos::from_us(10);
    }
    // For each timeout: fraction of rank-time spent in gaps longer than the
    // timeout (minus the timeout itself, which is spent waiting to enter).
    let total = t;
    let ranks = geometry.total_ranks() as u128;
    timeouts_ns
        .iter()
        .map(|&to| {
            let timeout = Picos::from_ns(to);
            let mut pd_ps: u128 = 0;
            for times in sink.per_rank.values() {
                let mut prev = Picos::ZERO;
                for &at in times {
                    let gap = at.saturating_sub(prev);
                    if gap > timeout {
                        pd_ps += u128::from((gap - timeout).as_ps());
                    }
                    prev = prev.max(at);
                }
                let tail = total.saturating_sub(prev);
                if tail > timeout {
                    pd_ps += u128::from((tail - timeout).as_ps());
                }
            }
            (to, pd_ps as f64 / (u128::from(total.as_ps()) * ranks) as f64)
        })
        .collect()
}

/// Runs the study sequentially. Equivalent to [`run_jobs`] at `jobs = 1`.
pub fn run(requests: u64) -> CkeResult {
    run_jobs(requests, 1)
}

/// Runs the study with the three traffic levels sharded across `jobs`
/// workers (each level replays an independent mixer and simulator, so the
/// decomposition is exact).
pub fn run_jobs(requests: u64, jobs: usize) -> CkeResult {
    let p = PowerParams::ddr4_128gb_dimm();
    // 0.65 of background power is reclaimable in precharge power-down; the
    // DTL reference is Figure 12's background saving at the same occupancy.
    let pd_factor = 1.0 - p.factor(PowerState::PrechargePowerDown);
    let dtl_saving = 0.457;
    let timeouts = [100u64, 1_000, 10_000];
    let levels = [("30 GB/s", 30.0f64), ("10 GB/s", 10.0), ("3 GB/s", 3.0)];
    let per_level = crate::exec::run_units(jobs, levels.to_vec(), |_, (label, gbps)| {
        (label, measure(gbps, requests, &timeouts))
    });
    let mut rows = Vec::new();
    for (label, measured) in per_level {
        for (to, residency) in measured {
            rows.push(CkeRow {
                utilization_label: label.to_string(),
                timeout_ns: to,
                pd_residency: residency,
                cke_background_saving: residency * pd_factor,
                dtl_background_saving: dtl_saving,
            });
        }
    }
    CkeResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaving_starves_cke_powerdown() {
        let r = run_jobs(4_000, 2);
        assert_eq!(r.rows.len(), 9);
        for row in &r.rows {
            assert!(row.pd_residency >= 0.0 && row.pd_residency <= 1.0);
            // CKE only competes when traffic nearly stops; under busy
            // interleaved traffic it must trail DTL consolidation.
            if row.utilization_label == "30 GB/s" {
                assert!(
                    row.cke_background_saving < row.dtl_background_saving,
                    "CKE must trail DTL consolidation under load: {row:?}"
                );
            }
        }
        // Longer entry timeouts can only shrink the reclaimable residency.
        for level in r.rows.chunks(3) {
            assert!(level[0].pd_residency >= level[1].pd_residency);
            assert!(level[1].pd_residency >= level[2].pd_residency);
        }
    }
}
