//! **Figure 15** — putting it all together: total DRAM energy savings from
//! rank-level power-down plus hotness-aware self-refresh, versus the
//! all-8-ranks baseline.
//!
//! The paper: one rank group powered down saves 20.2 %; stacking
//! self-refresh on the surviving ranks reaches 25.6–32.3 % where capacity
//! allows; the full 8-rank configuration gets self-refresh only (14.9 %).

use serde::{Deserialize, Serialize};

use crate::{hotness_savings, HotnessRunConfig};
use dtl_core::DtlError;
use dtl_dram::{PowerParams, PowerState};

/// One configuration's stacked savings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig15Row {
    /// Label, e.g. "208GB/6rk".
    pub label: String,
    /// Active ranks per channel.
    pub active_ranks: u32,
    /// Background saving from MPSM on the powered-down ranks alone.
    pub powerdown_saving: f64,
    /// Additional saving from self-refresh, measured on the active ranks.
    pub hotness_additional: f64,
    /// Combined total versus the 8-rank baseline.
    pub total_saving: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig15Result {
    /// One row per configuration.
    pub rows: Vec<Fig15Row>,
}

/// Stacks the two mechanisms for each Figure 14 point.
///
/// The power-down component is the deterministic background arithmetic
/// (MPSM on `8 - active` ranks); the hotness component is measured by the
/// trace-driven replay on the remaining active ranks and applies to the
/// active-rank share of the energy.
///
/// # Errors
///
/// Propagates device errors from the hotness replays.
pub fn run(
    base: &HotnessRunConfig,
    physical_ranks: u32,
    points: &[(&str, u32, f64)],
) -> Result<Fig15Result, DtlError> {
    run_jobs(base, physical_ranks, points, 1)
}

/// Like [`run`], with one worker unit per configuration point.
///
/// # Errors
///
/// Propagates device errors from the hotness replays (first failing point
/// wins).
pub fn run_jobs(
    base: &HotnessRunConfig,
    physical_ranks: u32,
    points: &[(&str, u32, f64)],
    jobs: usize,
) -> Result<Fig15Result, DtlError> {
    let p = PowerParams::ddr4_128gb_dimm();
    let mpsm = p.factor(PowerState::Mpsm);
    let outcomes = crate::exec::run_units(jobs, points.to_vec(), |_, (label, active, frac)| {
        let cfg = HotnessRunConfig { active_ranks: active, allocated_fraction: frac, ..*base };
        let (_, _, hotness_additional) = hotness_savings(&cfg)?;
        Ok::<_, DtlError>((label, active, hotness_additional))
    });
    let mut rows = Vec::new();
    for outcome in outcomes {
        let (label, active, hotness_additional) = outcome?;
        let total_ranks = f64::from(physical_ranks);
        let act = f64::from(active);
        // Baseline energy ∝ 8 ranks standby; with power-down the idle
        // ranks cost only the MPSM factor.
        let powerdown_energy = (act + (total_ranks - act) * mpsm) / total_ranks;
        let powerdown_saving = 1.0 - powerdown_energy;
        // Hotness reduces the active-rank share further.
        let active_share = act / total_ranks;
        let total_energy = powerdown_energy - active_share * hotness_additional;
        rows.push(Fig15Row {
            label: label.to_string(),
            active_ranks: active,
            powerdown_saving,
            hotness_additional,
            total_saving: 1.0 - total_energy,
        });
    }
    Ok(Fig15Result { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stacking_beats_either_mechanism_alone() {
        let base = HotnessRunConfig {
            accesses: 800_000,
            n_apps: 3,
            channels: 2,
            ..HotnessRunConfig::tiny(5, true)
        };
        let r = run(&base, 4, &[("6rk", 3, 0.6), ("8rk", 4, 0.8)]).unwrap();
        assert_eq!(r.rows.len(), 2);
        let six = &r.rows[0];
        // 1 of 4 ranks in MPSM: saving = (1 - 0.068)/4 = 23.3%.
        assert!((six.powerdown_saving - 0.233).abs() < 0.01, "{}", six.powerdown_saving);
        assert!(
            six.total_saving >= six.powerdown_saving,
            "stacked {} must not fall below power-down alone {}",
            six.total_saving,
            six.powerdown_saving
        );
        let eight = &r.rows[1];
        assert_eq!(eight.powerdown_saving, 0.0, "all ranks active: no MPSM saving");
        assert!(eight.total_saving >= 0.0);
    }
}
