//! The experiment registry: one [`Experiment`] impl per paper artifact,
//! each a thin adapter from the uniform [`RunContext`] onto its module's
//! typed `run`/`run_jobs` functions. The registry is the single source of
//! truth the `dtl-bench` driver, the `all` binary, and CI's drift check
//! consume — adding an experiment here is what makes it runnable.
//!
//! Scale defaults (paper vs `--tiny`) and the historical per-experiment
//! seeds are pinned here, so a bare `dtl-bench <name>` reproduces exactly
//! what the pre-registry binaries produced.

use super::{
    ablate_cke_powerdown, ablate_hotness_params, ablate_migration_priority, ablate_page_policy,
    ablate_segment_size, ablate_smc, cache_pipeline, diff_fuzz, fabric_load, fault_campaign, fig01,
    fig02, fig05, fig09, fig10, fig11, fig12, fig14, fig15, loaded_latency, policy_ablation,
    pool_failover, pool_scale, sec3_4_reentry, sec6_1, sec6_6, tab04, tab05, tab06, vm_campaign,
    Experiment, RunContext, RunOutput,
};
use crate::render;
use crate::{
    to_json, CheckRunConfig, FabricRunConfig, FaultRunConfig, HotnessRunConfig, PoolRunConfig,
    PowerDownRunConfig,
};
use dtl_core::DtlError;
use dtl_dram::Picos;
use dtl_trace::WorkloadKind;

/// Defines a unit struct implementing [`Experiment`] with a closure-style
/// body.
macro_rules! experiment {
    ($ty:ident, $name:literal, $summary:literal, |$ctx:ident| $body:block) => {
        struct $ty;
        impl Experiment for $ty {
            fn name(&self) -> &'static str {
                $name
            }
            fn summary(&self) -> &'static str {
                $summary
            }
            fn run(&self, $ctx: &RunContext) -> Result<RunOutput, DtlError> {
                $body
            }
        }
    };
}

experiment!(Fig01, "fig01", "Figure 1: VM memory usage profiling", |ctx| {
    let r = fig01::run(ctx.seed_or(1));
    Ok(RunOutput::new(render::fig01(&r).render(), to_json(&r)))
});

experiment!(Fig02, "fig02", "Figure 2: performance vs active ranks per channel", |ctx| {
    let requests = if ctx.tiny { 10_000 } else { 60_000 };
    let r = fig02::run_jobs(requests, &WorkloadKind::ALL, ctx.jobs);
    Ok(RunOutput::new(render::fig02(&r).render(), to_json(&r)))
});

experiment!(Fig05, "fig05", "Figure 5: rank-interleaving cost, local vs CXL", |ctx| {
    let requests = if ctx.tiny { 10_000 } else { 60_000 };
    let r = fig05::run_jobs(requests, &WorkloadKind::TRACED, ctx.jobs);
    Ok(RunOutput::new(render::fig05(&r).render(), to_json(&r)))
});

experiment!(Fig09, "fig09", "Figure 9: post-cache stride distributions", |ctx| {
    let records = if ctx.tiny { 50_000 } else { 400_000 };
    let r = fig09::run_jobs(ctx.seed_or(1), records, 16, ctx.jobs);
    Ok(RunOutput::new(render::fig09(&r).render(), to_json(&r)))
});

experiment!(Fig10, "fig10", "Figure 10: cold segments vs granularity", |ctx| {
    let records = if ctx.tiny { 200_000 } else { 2_000_000 };
    let r = fig10::run(ctx.seed_or(11), records, 64);
    Ok(RunOutput::new(render::fig10(&r).render(), to_json(&r)))
});

experiment!(Fig11, "fig11", "Figure 11: the DRAM power model", |ctx| {
    let _ = ctx;
    let r = fig11::run();
    let (a, b) = render::fig11(&r);
    Ok(RunOutput::new(format!("{}\n{}", a.render(), b.render()), to_json(&r)))
});

experiment!(Fig12, "fig12", "Figures 12-13: rank-level power-down over the VM schedule", |ctx| {
    let seed = ctx.seed_or(1);
    let cfg = if ctx.tiny {
        PowerDownRunConfig::tiny(seed, true)
    } else {
        PowerDownRunConfig::paper(seed, true)
    };
    // Execution-overhead inputs: Figure 5's CXL interleaving cost plus the
    // Section 6.1 translation inflation.
    let r = fig12::run_jobs_traced(&cfg, (0.014, 0.0018), &ctx.telemetry, ctx.jobs)?;
    let mut out = RunOutput::new(
        format!("{}\n{}", render::fig12(&r).render(), render::fig13(&r).render()),
        to_json(&r),
    );
    out.horizon_ps = Some(Picos::from_secs(u64::from(cfg.duration_min) * 60).as_ps());
    Ok(out)
});

experiment!(Fig14, "fig14", "Figure 14: hotness-aware self-refresh savings", |ctx| {
    let mut base = HotnessRunConfig::paper_scaled(ctx.seed_or(1), 6, 208.0 / 288.0);
    if ctx.tiny {
        base.accesses = 1_000_000;
        base.scale = 256;
    }
    let r = fig14::run_jobs(&base, &fig14::PAPER_POINTS, ctx.jobs)?;
    let mut out = RunOutput::new(render::fig14(&r).render(), to_json(&r));
    if ctx.telemetry.enabled() {
        // One additional traced treatment replay at the first allocation
        // point: the sweep replays several independent devices whose
        // timelines would not compose into one trace.
        let (_, ranks, frac) = fig14::PAPER_POINTS[0];
        let cfg = HotnessRunConfig { active_ranks: ranks, allocated_fraction: frac, ..base };
        let traced = crate::run_hotness_traced(&cfg, &ctx.telemetry)?;
        out.horizon_ps = Some(traced.duration.as_ps());
    }
    Ok(out)
});

experiment!(Fig15, "fig15", "Figure 15: stacked savings from both mechanisms", |ctx| {
    let mut base = HotnessRunConfig::paper_scaled(ctx.seed_or(1), 6, 208.0 / 288.0);
    if ctx.tiny {
        base.accesses = 1_000_000;
        base.scale = 256;
    }
    let r = fig15::run_jobs(&base, 8, &fig14::PAPER_POINTS, ctx.jobs)?;
    Ok(RunOutput::new(render::fig15(&r).render(), to_json(&r)))
});

experiment!(Tab04, "tab04", "Table 4: per-workload MAPKI calibration", |ctx| {
    let r = tab04::run_jobs(ctx.seed_or(1), 100_000, ctx.jobs);
    Ok(RunOutput::new(render::tab04(&r).render(), to_json(&r)))
});

experiment!(Tab05, "tab05", "Table 5: DTL structure sizes", |ctx| {
    let _ = ctx;
    let r = tab05::run();
    Ok(RunOutput::new(render::tab05(&r).render(), to_json(&r)))
});

experiment!(Tab06, "tab06", "Table 6: controller power and area at 7nm", |ctx| {
    let _ = ctx;
    let r = tab06::run();
    Ok(RunOutput::new(render::tab06(&r).render(), to_json(&r)))
});

experiment!(Sec61, "sec6_1", "Section 6.1: AMAT under DTL translation", |ctx| {
    let accesses = if ctx.tiny { 200_000 } else { 2_000_000 };
    let r = sec6_1::run(ctx.seed_or(3), accesses, 16)?;
    Ok(RunOutput::new(render::sec6_1(&r).render(), to_json(&r)))
});

experiment!(Sec66, "sec6_6", "Section 6.6: device scaling and the mapping cost", |ctx| {
    let requests = if ctx.tiny { 8_000 } else { 40_000 };
    let r = sec6_6::run_jobs(requests, &WorkloadKind::TRACED, ctx.jobs);
    Ok(RunOutput::new(render::sec6_6(&r).render(), to_json(&r)))
});

experiment!(Sec34Reentry, "sec3_4_reentry", "Section 3.4: self-refresh exit and re-entry", |ctx| {
    let cfg = if ctx.tiny {
        sec3_4_reentry::tiny(ctx.seed_or(5))
    } else {
        sec3_4_reentry::paper(ctx.seed_or(1))
    };
    let r = sec3_4_reentry::run(&cfg)?;
    let text = format!(
        "{}\nre-entry needed {} migrations vs {} during warmup — most victim \
         segments stayed cold, as the paper claims",
        render::sec3_4_reentry(&r).render(),
        r.reentry_migrations,
        r.initial_migrations
    );
    Ok(RunOutput::new(text, to_json(&r)))
});

experiment!(
    CachePipeline,
    "cache_pipeline",
    "Section 5.2 methodology: the trace cache pipeline",
    |ctx| {
        let records = if ctx.tiny { 200_000 } else { 1_500_000 };
        let r = cache_pipeline::run_jobs(ctx.seed_or(7), records, &WorkloadKind::TRACED, ctx.jobs);
        Ok(RunOutput::new(render::cache_pipeline(&r).render(), to_json(&r)))
    }
);

experiment!(
    LoadedLatency,
    "loaded_latency",
    "Model validation: loaded latency vs cycle simulator",
    |ctx| {
        let requests = if ctx.tiny { 4_000 } else { 20_000 };
        let r = loaded_latency::run_jobs(ctx.seed_or(3), requests, ctx.jobs);
        Ok(RunOutput::new(render::loaded_latency(&r).render(), to_json(&r)))
    }
);

experiment!(
    AblateSegmentSize,
    "ablate_segment_size",
    "Ablation: translation segment size",
    |ctx| {
        let records = if ctx.tiny { 200_000 } else { 1_000_000 };
        let r = ablate_segment_size::run(ctx.seed_or(11), records);
        Ok(RunOutput::new(render::ablate_segment_size(&r).render(), to_json(&r)))
    }
);

experiment!(AblateSmc, "ablate_smc", "Ablation: segment mapping cache sizing", |ctx| {
    let accesses = if ctx.tiny { 100_000 } else { 600_000 };
    let r = ablate_smc::run_jobs(ctx.seed_or(3), accesses, ctx.jobs);
    Ok(RunOutput::new(render::ablate_smc(&r).render(), to_json(&r)))
});

experiment!(
    AblateHotnessParams,
    "ablate_hotness_params",
    "Ablation: profiling-threshold sensitivity",
    |ctx| {
        let mut base = HotnessRunConfig::paper_scaled(ctx.seed_or(1), 6, 224.0 / 288.0);
        if ctx.tiny {
            base.accesses = 1_500_000;
            base.scale = 256;
        }
        let r = ablate_hotness_params::run_jobs(&base, ctx.jobs)?;
        Ok(RunOutput::new(render::ablate_hotness_params(&r).render(), to_json(&r)))
    }
);

experiment!(
    AblateMigrationPriority,
    "ablate_migration_priority",
    "Ablation: migration scheduling priority",
    |ctx| {
        let requests = if ctx.tiny { 5_000 } else { 30_000 };
        let r = ablate_migration_priority::run_jobs(requests, ctx.jobs);
        let text = format!(
            "{}\nstrict-background migration keeps foreground latency {:.1} ns lower on average",
            render::ablate_migration_priority(&r).render(),
            r.delta_ns()
        );
        Ok(RunOutput::new(text, to_json(&r)))
    }
);

experiment!(
    AblateCkePowerdown,
    "ablate_cke_powerdown",
    "Ablation: CKE power-down vs DTL consolidation",
    |ctx| {
        let requests = if ctx.tiny { 20_000 } else { 120_000 };
        let r = ablate_cke_powerdown::run_jobs(requests, ctx.jobs);
        let text = format!(
            "{}\ninterleaving keeps every rank lukewarm: CKE power-down cannot touch\n\
         what DTL consolidation reclaims unless traffic nearly stops",
            render::ablate_cke_powerdown(&r).render()
        );
        Ok(RunOutput::new(text, to_json(&r)))
    }
);

experiment!(
    AblatePagePolicy,
    "ablate_page_policy",
    "Ablation: page policy under the DTL mapping",
    |ctx| {
        let requests = if ctx.tiny { 8_000 } else { 40_000 };
        let r = ablate_page_policy::run_jobs(requests, ctx.jobs);
        Ok(RunOutput::new(render::ablate_page_policy(&r).render(), to_json(&r)))
    }
);

experiment!(
    FaultCampaign,
    "fault_campaign",
    "Fault campaign: the schedule under a deterministic fault load",
    |ctx| {
        let seed = ctx.seed_or(1);
        let cfg =
            if ctx.tiny { FaultRunConfig::tiny_storm(seed) } else { fault_campaign::paper(seed) };
        let horizon = Picos::from_secs(u64::from(cfg.run.duration_min) * 60).as_ps();
        let (telemetry, series) = ctx.series_telemetry();
        if let Some(series) = &series {
            // Quiet ranks still accrue residency in the windowed series.
            for c in 0..cfg.run.channels {
                for rank in 0..cfg.run.ranks_per_channel {
                    series.ensure_rank(c, rank);
                }
            }
        }
        let heartbeat = crate::Heartbeat::new(ctx.flag("--heartbeat"), "fault_campaign");
        let (r, obs) = fault_campaign::run_jobs_observed(&cfg, &telemetry, ctx.jobs, &heartbeat)?;
        let text = format!("{}\n{}", render::fault_campaign(&r).render(), render::slo(&obs.slo));
        let mut out = RunOutput::new(text, to_json(&r));
        out.horizon_ps = Some(horizon);
        out.slo = Some(obs.slo);
        out.timeseries = series.map(|s| s.finish(horizon));
        Ok(out)
    }
);

experiment!(
    FabricLoad,
    "fabric_load",
    "Fabric load: tail latency vs offered load on a switched CXL fabric",
    |ctx| {
        // Default seed matches the pinned tiny golden (fabric_load_tiny.json).
        let seed = ctx.seed_or(7);
        let cfg = if ctx.tiny { FabricRunConfig::tiny(seed) } else { FabricRunConfig::paper(seed) };
        let pool_cfg = cfg.pool_config();
        let horizon = cfg.horizon().as_ps();
        let (telemetry, series) = ctx.series_telemetry();
        if let Some(series) = &series {
            // As in pool_scale: member device d streams through the
            // channel-offset shim; pre-register every rank so quiet ones
            // still accrue residency.
            for d in 0..u32::from(cfg.devices) {
                for c in 0..pool_cfg.channels {
                    for rank in 0..pool_cfg.ranks_per_channel {
                        series.ensure_rank(d * pool_cfg.channels + c, rank);
                    }
                }
            }
        }
        let heartbeat = crate::Heartbeat::new(ctx.flag("--heartbeat"), "fabric_load");
        let (r, obs) = fabric_load::run_jobs_observed(&cfg, &telemetry, ctx.jobs, &heartbeat)?;
        let text = format!(
            "{}\npacking under one switch saves {:.3} mJ of switch-port energy at the \
             lightest load\n{}",
            render::fabric_load(&r).render(),
            r.pack_energy_edge_mj(),
            render::slo(&obs.slo)
        );
        let mut out = RunOutput::new(text, to_json(&r));
        out.horizon_ps = Some(horizon);
        out.slo = Some(obs.slo);
        out.timeseries = series.map(|s| s.finish(horizon));
        if !r.p99_monotone() {
            out.failure =
                Some("access p99 must rise monotonically with offered fabric load".into());
        } else if r.pack_energy_edge_mj() <= 0.0 {
            out.failure =
                Some("packing under one switch must save switch-port energy at low load".into());
        }
        Ok(out)
    }
);

experiment!(
    PoolScale,
    "pool_scale",
    "Pool scale: placement policy x power coordination across a device pool",
    |ctx| {
        // Default seed matches the pinned tiny golden (pool_scale_tiny.json).
        let seed = ctx.seed_or(7);
        let cfg = if ctx.tiny { PoolRunConfig::tiny(seed) } else { PoolRunConfig::paper(seed) };
        let horizon = Picos::from_secs(u64::from(cfg.duration_min) * 60).as_ps();
        let (telemetry, series) = ctx.series_telemetry();
        if let Some(series) = &series {
            // Member device d streams through the channel-offset shim at
            // channels `d * channels ..`; pre-register every rank so quiet
            // ones still accrue residency.
            for d in 0..u32::from(cfg.devices) {
                for c in 0..cfg.channels {
                    for rank in 0..cfg.ranks_per_channel {
                        series.ensure_rank(d * cfg.channels + c, rank);
                    }
                }
            }
        }
        let heartbeat = crate::Heartbeat::new(ctx.flag("--heartbeat"), "pool_scale");
        let (r, obs) = pool_scale::run_jobs_observed(&cfg, &telemetry, ctx.jobs, &heartbeat)?;
        let text = format!(
            "{}\npack+coordination saves {} pool energy over spread/no-coordination\n{}",
            render::pool_scale(&r).render(),
            crate::pct(r.savings_fraction),
            render::slo(&obs.slo)
        );
        let mut out = RunOutput::new(text, to_json(&r));
        out.horizon_ps = Some(horizon);
        out.slo = Some(obs.slo);
        out.timeseries = series.map(|s| s.finish(horizon));
        Ok(out)
    }
);

experiment!(
    PolicyAblation,
    "policy_ablation",
    "Policy ablation: power policy x workload mix x pool coordination",
    |ctx| {
        // Default seed matches the pinned tiny golden (policy_ablation_tiny.json).
        let seed = ctx.seed_or(7);
        let cfg = if ctx.tiny { PoolRunConfig::tiny(seed) } else { PoolRunConfig::paper(seed) };
        let horizon = Picos::from_secs(u64::from(cfg.duration_min) * 60).as_ps();
        let (telemetry, series) = ctx.series_telemetry();
        if let Some(series) = &series {
            // As in pool_scale: member device d streams through the
            // channel-offset shim; pre-register every rank so quiet ones
            // still accrue residency.
            for d in 0..u32::from(cfg.devices) {
                for c in 0..cfg.channels {
                    for rank in 0..cfg.ranks_per_channel {
                        series.ensure_rank(d * cfg.channels + c, rank);
                    }
                }
            }
        }
        let heartbeat = crate::Heartbeat::new(ctx.flag("--heartbeat"), "policy_ablation");
        let (r, obs) = policy_ablation::run_jobs_observed(&cfg, &telemetry, ctx.jobs, &heartbeat)?;
        let text = format!("{}\n{}", render::policy_ablation(&r).render(), render::slo(&obs.slo));
        let mut out = RunOutput::new(text, to_json(&r));
        out.horizon_ps = Some(horizon);
        out.slo = Some(obs.slo);
        out.timeseries = series.map(|s| s.finish(horizon));
        if r.headline().is_none() {
            out.failure = Some(
                "no ladder policy beat FixedThreshold on energy at equal-or-better p99".into(),
            );
        }
        Ok(out)
    }
);

experiment!(
    PoolFailover,
    "pool_failover",
    "Pool failover: seeded device-retirement campaigns, zero-loss criterion",
    |ctx| {
        let seed = ctx.seed_or(1);
        let cfg = if ctx.tiny { PoolRunConfig::tiny(seed) } else { PoolRunConfig::paper(seed) };
        let campaigns = ctx
            .value("--campaigns")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(if ctx.tiny { 6 } else { 24 });
        let r = pool_failover::run_jobs(&cfg, campaigns, ctx.jobs)?;
        let mut out = RunOutput::new(render::pool_failover(&r).render(), to_json(&r));
        if r.total_lost_aus > 0 {
            out.failure = Some(format!(
                "{} allocation units lost across {} campaigns — failover must be lossless",
                r.total_lost_aus, campaigns
            ));
        }
        Ok(out)
    }
);

experiment!(
    VmCampaign,
    "vm_campaign",
    "VM campaign: event-driven fleet replay over a multi-week horizon",
    |ctx| {
        let seed = ctx.seed_or(1);
        let mut cfg = if ctx.tiny {
            vm_campaign::VmCampaignConfig::tiny(seed)
        } else {
            vm_campaign::VmCampaignConfig::paper(seed)
        };
        if let Some(n) = ctx.value("--hosts").and_then(|v| v.parse::<u32>().ok()) {
            cfg.hosts = n;
        }
        if let Some(n) = ctx.value("--minutes").and_then(|v| v.parse::<u32>().ok()) {
            cfg.duration_min = n;
        }
        let heartbeat = crate::Heartbeat::new(ctx.flag("--heartbeat"), "vm_campaign");
        let (r, obs) =
            vm_campaign::run_jobs_observed(&cfg, ctx.jobs, ctx.series_width, &heartbeat)?;
        if let Some(m) = ctx.telemetry.metrics() {
            // Hosts run their own event spines; export the fleet-merged
            // queue counters here (the per-host runs carry no registry).
            crate::export_queue_metrics(m, &obs.queue);
        }
        let text = format!(
            "{}\n{} events across {} hosts; fleet background savings {} vs always-standby\n{}",
            render::vm_campaign(&r).render(),
            r.events_processed,
            r.hosts,
            crate::pct(r.savings_fraction),
            render::slo(&obs.slo)
        );
        let mut out = RunOutput::new(text, to_json(&r));
        out.horizon_ps = Some(cfg.horizon().as_ps());
        out.slo = Some(obs.slo);
        out.timeseries = obs.series;
        Ok(out)
    }
);

experiment!(
    DiffFuzz,
    "diff_fuzz",
    "Differential fuzz: device vs reference model in lockstep",
    |ctx| {
        if let Some(json) = ctx.value("--replay") {
            return Ok(replay_counterexample(json));
        }
        let mut cfg = if ctx.tiny || ctx.flag("--smoke") {
            CheckRunConfig::smoke()
        } else {
            CheckRunConfig::acceptance()
        };
        if let Some(n) = ctx.value("--seeds").and_then(|v| v.parse::<u64>().ok()) {
            cfg.clean_seeds = (0..n).collect();
        }
        if let Some(n) = ctx.value("--ops").and_then(|v| v.parse::<usize>().ok()) {
            cfg.ops_per_seed = n;
        }
        let r = diff_fuzz::run_jobs(&cfg, ctx.jobs);
        let mut out = RunOutput::new(render::diff_fuzz(&r).render(), to_json(&r));
        if let Some(ce) = &r.first_counterexample {
            out.failure =
                Some(format!("first counterexample (replay with --replay '<json>'):\n{ce}"));
        }
        Ok(out)
    }
);

/// Re-runs a shrunk counterexample printed by a failing `diff_fuzz` run;
/// fails the driver if it still reproduces.
fn replay_counterexample(json: &str) -> RunOutput {
    let mut out = RunOutput {
        text: String::new(),
        json: None,
        horizon_ps: None,
        failure: None,
        slo: None,
        timeseries: None,
    };
    match dtl_check::Counterexample::from_json(json) {
        Err(e) => out.failure = Some(format!("parse counterexample JSON: {e}")),
        Ok(ce) => match ce.reproduce() {
            Some(failure) => out.failure = Some(format!("reproduced: {failure}")),
            None => out.text = format!("counterexample no longer fails ({} ops)", ce.ops.len()),
        },
    }
    out
}

/// Every registered experiment, in the order `all` runs them.
pub fn registry() -> &'static [&'static dyn Experiment] {
    static REGISTRY: [&dyn Experiment; 30] = [
        &Fig01,
        &Fig02,
        &Fig05,
        &Fig09,
        &Fig10,
        &Fig11,
        &Fig12,
        &Fig14,
        &Fig15,
        &Tab04,
        &Tab05,
        &Tab06,
        &Sec61,
        &Sec66,
        &Sec34Reentry,
        &CachePipeline,
        &AblateSegmentSize,
        &AblateSmc,
        &AblateHotnessParams,
        &AblateMigrationPriority,
        &AblateCkePowerdown,
        &AblatePagePolicy,
        &LoadedLatency,
        &FaultCampaign,
        &FabricLoad,
        &PoolScale,
        &PolicyAblation,
        &PoolFailover,
        &VmCampaign,
        &DiffFuzz,
    ];
    &REGISTRY
}

/// Resolves an experiment by its stable name.
pub fn find(name: &str) -> Option<&'static dyn Experiment> {
    registry().iter().copied().find(|e| e.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_resolvable() {
        let mut names: Vec<&str> = registry().iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), 30);
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate experiment name");
        assert!(find("fig12").is_some());
        assert!(find("no_such_experiment").is_none());
    }

    #[test]
    fn tiny_tab05_runs_through_the_trait() {
        let out = find("tab05").unwrap().run(&RunContext::plain(true)).unwrap();
        assert!(out.text.contains("Table 5"));
        assert!(out.json.is_some());
        assert!(out.failure.is_none());
    }

    #[test]
    fn diff_fuzz_replay_flag_short_circuits() {
        let mut ctx = RunContext::plain(true);
        ctx.args = vec!["--replay".into(), "{not json".into()];
        let out = find("diff_fuzz").unwrap().run(&ctx).unwrap();
        assert!(out.failure.is_some(), "bad JSON must fail the driver");
        assert!(out.json.is_none());
    }
}
