//! **Ablation** — the hotness engine's central tunable: the profiling idle
//! threshold (paper default 50 ms). A short threshold enters self-refresh
//! eagerly but risks ping-pong; a long one leaves savings on the table.

use serde::{Deserialize, Serialize};

use crate::{HotnessRunConfig, HotnessRunResult};
use dtl_core::DtlError;

/// One threshold point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThresholdRow {
    /// Threshold at paper scale, ms (default 50).
    pub threshold_ms_unscaled: f64,
    /// Self-refresh entries over the replay.
    pub sr_entries: u64,
    /// Self-refresh exits (ping-pong indicator).
    pub sr_exits: u64,
    /// Self-refresh residency fraction.
    pub sr_residency: f64,
    /// Consolidation swaps executed.
    pub swaps: u64,
    /// Stable-phase power, mW.
    pub stable_power_mw: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThresholdResult {
    /// One row per threshold factor, in increasing threshold order.
    pub rows: Vec<ThresholdRow>,
}

/// The sweep's threshold factors relative to the paper's 50 ms default.
pub const FACTORS: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

/// Runs the hotness replay with the profiling threshold scaled by `factor`
/// relative to the paper's 50 ms default, extending the replay so longer
/// thresholds still see several threshold windows.
fn run_one(base: &HotnessRunConfig, factor: f64) -> Result<HotnessRunResult, DtlError> {
    let cfg =
        HotnessRunConfig { accesses: (base.accesses as f64 * factor.max(1.0)) as u64, ..*base };
    crate::run_hotness_with_threshold_factor(&cfg, factor)
}

/// Runs the sweep sequentially. Equivalent to [`run_jobs`] at `jobs = 1`.
///
/// # Errors
///
/// Propagates device errors from any replay.
pub fn run(base: &HotnessRunConfig) -> Result<ThresholdResult, DtlError> {
    run_jobs(base, 1)
}

/// Runs the sweep with one worker unit per threshold factor (each factor
/// replays its own device, so the decomposition is exact).
///
/// # Errors
///
/// Propagates device errors from any replay (first failing factor wins).
pub fn run_jobs(base: &HotnessRunConfig, jobs: usize) -> Result<ThresholdResult, DtlError> {
    let outcomes =
        crate::exec::run_units(jobs, FACTORS.to_vec(), |_, factor| run_one(base, factor));
    let mut rows = Vec::new();
    for (factor, outcome) in FACTORS.iter().zip(outcomes) {
        let r = outcome?;
        rows.push(ThresholdRow {
            threshold_ms_unscaled: 50.0 * factor,
            sr_entries: r.sr_entries,
            sr_exits: r.sr_exits,
            sr_residency: r.sr_residency,
            swaps: r.swaps_executed,
            stable_power_mw: r.stable_power_mw,
        });
    }
    Ok(ThresholdResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_every_factor() {
        let base = HotnessRunConfig {
            accesses: 400_000,
            n_apps: 3,
            channels: 2,
            ..HotnessRunConfig::tiny(1, true)
        };
        let r = run_jobs(&base, 2).unwrap();
        assert_eq!(r.rows.len(), FACTORS.len());
        assert_eq!(r.rows[2].threshold_ms_unscaled, 50.0, "paper default in the middle");
        for row in &r.rows {
            assert!(row.sr_residency >= 0.0 && row.sr_residency <= 1.0);
        }
    }
}
