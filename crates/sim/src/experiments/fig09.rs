//! **Figure 9** — post-cache memory access stride distribution for the
//! eight traced workloads, standalone and mixed: strides of 4 MiB or more
//! dominate, especially in multi-application mixes (89.3 % for the
//! 8-application mix in the paper).

use dtl_trace::{Mixer, StrideBucket, StrideHistogram, TraceGen, WorkloadKind};
use serde::{Deserialize, Serialize};

/// Stride bucket fractions for one trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig09Row {
    /// Trace label (workload name or "mix-N").
    pub label: String,
    /// Fraction per bucket in [`StrideBucket::ALL`] order.
    pub fractions: Vec<f64>,
    /// The headline: fraction of strides >= 4 MiB.
    pub at_least_4m: f64,
}

/// Full result: standalone rows plus mixes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig09Result {
    /// Per-trace rows.
    pub rows: Vec<Fig09Row>,
    /// Bucket labels matching each row's `fractions`.
    pub bucket_labels: Vec<String>,
}

fn histogram_row(label: String, h: &StrideHistogram) -> Fig09Row {
    let fractions: Vec<f64> = StrideBucket::ALL.iter().map(|b| h.fraction(*b)).collect();
    Fig09Row { label, fractions, at_least_4m: h.fraction_at_least_4m() }
}

/// The traces the experiment observes: each workload solo, then mixes.
#[derive(Debug, Clone, Copy)]
enum TraceUnit {
    Solo(WorkloadKind),
    Mix(usize),
}

/// Runs the experiment: each workload solo, then 4- and 8-app mixes.
/// Equivalent to [`run_jobs`] at `jobs = 1`.
pub fn run(seed: u64, records_per_trace: usize, scale: u64) -> Fig09Result {
    run_jobs(seed, records_per_trace, scale, 1)
}

/// Runs the experiment with one worker unit per trace (solo workloads and
/// mixes alike own their own generator and histogram).
pub fn run_jobs(seed: u64, records_per_trace: usize, scale: u64, jobs: usize) -> Fig09Result {
    let mut units: Vec<TraceUnit> =
        WorkloadKind::TRACED.iter().map(|k| TraceUnit::Solo(*k)).collect();
    units.push(TraceUnit::Mix(4));
    units.push(TraceUnit::Mix(8));
    let rows = crate::exec::run_units(jobs, units, |_, unit| {
        let mut h = StrideHistogram::new();
        match unit {
            TraceUnit::Solo(kind) => {
                let mut gen = TraceGen::new(kind.spec().scaled(scale), seed);
                for _ in 0..records_per_trace {
                    h.observe(gen.next_record().addr);
                }
                histogram_row(kind.name().to_string(), &h)
            }
            TraceUnit::Mix(n) => {
                let specs: Vec<_> =
                    WorkloadKind::TRACED.iter().take(n).map(|k| k.spec().scaled(scale)).collect();
                let mut mix = Mixer::new(&specs, seed);
                for _ in 0..records_per_trace {
                    h.observe(mix.next_record().addr);
                }
                histogram_row(format!("mix-{n}"), &h)
            }
        }
    });
    Fig09Result {
        rows,
        bucket_labels: StrideBucket::ALL.iter().map(|b| b.label().to_string()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_are_dominated_by_large_strides() {
        let r = run(3, 30_000, 64);
        assert_eq!(r.rows.len(), 10);
        let mix8 = r.rows.last().unwrap();
        assert_eq!(mix8.label, "mix-8");
        // Paper: 89.3% of mixed strides are >= 4 MiB.
        assert!(mix8.at_least_4m > 0.80, "mix-8 large strides {}", mix8.at_least_4m);
        // Fractions are a distribution.
        for row in &r.rows {
            let sum: f64 = row.fractions.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: sum {sum}", row.label);
        }
        // Standalone media-streaming has more small strides than the mix.
        let media = r.rows.iter().find(|r| r.label == "media-streaming").unwrap();
        assert!(media.at_least_4m < mix8.at_least_4m);
    }
}
