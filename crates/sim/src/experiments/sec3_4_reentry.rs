//! **§3.4** — self-refresh exit and re-entry: after a self-refreshing
//! victim rank is woken by an access, most of its segments are still cold,
//! so re-entering self-refresh needs only a little migration.

use crate::{run_reentry, HotnessRunConfig, ReentryResult};
use dtl_core::DtlError;

/// The paper-scale configuration (224 GB on 6 ranks).
pub fn paper(seed: u64) -> HotnessRunConfig {
    HotnessRunConfig::paper_scaled(seed, 6, 224.0 / 288.0)
}

/// The reduced-scale configuration used by `--tiny` runs.
pub fn tiny(seed: u64) -> HotnessRunConfig {
    HotnessRunConfig {
        allocated_fraction: 0.8,
        accesses: 2_000_000,
        ..HotnessRunConfig::tiny(seed, true)
    }
}

/// Runs the re-entry study — a single sequential replay (the probe, wake,
/// and re-entry phases observe one device's evolving state, so there is no
/// independent unit decomposition).
///
/// # Errors
///
/// Propagates device errors.
pub fn run(cfg: &HotnessRunConfig) -> Result<ReentryResult, DtlError> {
    run_reentry(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reentry_needs_less_migration_than_warmup() {
        let r = run(&tiny(5)).unwrap();
        assert!(r.sr_entries > 0, "the study needs at least one SR entry");
        assert!(
            r.reentry_migrations <= r.initial_migrations,
            "re-entry {} vs warmup {}",
            r.reentry_migrations,
            r.initial_migrations
        );
    }
}
