//! **Figure 2** — performance with a varying number of active ranks per
//! channel: reducing 8 → 2 ranks (channels and banks constant) costs only
//! ~0.7 % on average for CloudSuite because bank- and channel-level
//! parallelism already cover the access stream.
//!
//! The mapper requires power-of-two rank counts, so the sweep runs
//! 8 / 4 / 2 (the paper's 6-rank point is interpolated by its own
//! methodology as well, §5.1).

use dtl_dram::AddressMapping;
use dtl_trace::WorkloadKind;
use serde::{Deserialize, Serialize};

use super::latency_sweep::{measure, SweepConfig};
use crate::PerfModel;

/// One workload's slowdown at each rank count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig02Row {
    /// Workload name.
    pub workload: String,
    /// Rank counts measured.
    pub ranks: Vec<u32>,
    /// AMAT per rank count, nanoseconds.
    pub amat_ns: Vec<f64>,
    /// Execution-time ratio vs the 8-rank baseline (1.0 = equal).
    pub slowdown: Vec<f64>,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig02Result {
    /// Per-workload rows.
    pub rows: Vec<Fig02Row>,
    /// Geometric-mean slowdown at the smallest rank count.
    pub mean_slowdown_at_min_ranks: f64,
}

/// Runs the experiment. `requests` bounds per-configuration replay length.
/// Equivalent to [`run_jobs`] at `jobs = 1`.
pub fn run(requests: u64, workloads: &[WorkloadKind]) -> Fig02Result {
    run_jobs(requests, workloads, 1)
}

/// Runs the experiment with one worker unit per workload (each unit owns
/// its three rank-count replays). The geometric-mean fold happens after the
/// join, in workload order, so the result is bit-identical for any `jobs`.
pub fn run_jobs(requests: u64, workloads: &[WorkloadKind], jobs: usize) -> Fig02Result {
    let rank_counts = [8u32, 4, 2];
    let perf = PerfModel::cloudsuite();
    let rows = crate::exec::run_units(jobs, workloads.to_vec(), |_, kind| {
        let spec = kind.spec();
        let mut amat_ns = Vec::new();
        for ranks in rank_counts {
            let mut cfg = SweepConfig::paper(ranks, AddressMapping::RankInterleaved, 0);
            cfg.requests = requests;
            let out = measure(&cfg, &spec);
            amat_ns.push(out.amat.as_ns_f64());
        }
        let base = dtl_dram::Picos::from_ns_f64(amat_ns[0]);
        let slowdown: Vec<f64> = amat_ns
            .iter()
            .map(|a| perf.slowdown(spec.mapki, dtl_dram::Picos::from_ns_f64(*a), base))
            .collect();
        Fig02Row {
            workload: kind.name().to_string(),
            ranks: rank_counts.to_vec(),
            amat_ns,
            slowdown,
        }
    });
    let mut product = 1.0f64;
    for row in &rows {
        product *= row.slowdown[row.slowdown.len() - 1];
    }
    let mean = product.powf(1.0 / rows.len() as f64);
    Fig02Result { rows, mean_slowdown_at_min_ranks: mean }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_ranks_cost_little() {
        let r = run(6_000, &[WorkloadKind::DataServing, WorkloadKind::WebSearch]);
        assert_eq!(r.rows.len(), 2);
        for row in &r.rows {
            assert!((row.slowdown[0] - 1.0).abs() < 1e-9, "baseline is 1.0");
            for s in &row.slowdown {
                assert!(*s >= 0.999, "slowdown {s} below baseline");
                assert!(*s < 1.10, "slowdown {s} implausibly large");
            }
        }
        // The paper's shape: average cost of 2 ranks is small (<5 %).
        assert!(r.mean_slowdown_at_min_ranks < 1.05, "{}", r.mean_slowdown_at_min_ranks);
    }
}
