//! **Policy ablation** — the power-policy zoo: replay the same pool
//! schedule under every built-in [`PowerPolicyKind`] × workload mix ×
//! pool-coordinator combination and report what each rank-state machine
//! buys. The fixed 50 ms threshold cell of each (mix, coordinator) pair is
//! the baseline; a ladder policy *wins* a cell when it spends less energy
//! at equal-or-better access p99.
//!
//! The two workload mixes differ only in the access trickle's burst
//! length: `cold-touch` (burst 1) makes every trickle access a cold touch
//! — the worst case for low-power exit latency — while `burst-256`
//! streams 256 lines per VM per epoch, amortizing any wake over the
//! burst, as real cache-line streams through one AU would.

use serde::{Deserialize, Serialize};

use crate::{run_pool_observed, Heartbeat, PoolRunConfig, PoolRunResult, RunObservations};
use dtl_core::DtlError;
use dtl_dram::PowerPolicyKind;

/// The workload mixes swept, as (name, trickle burst length).
pub const MIXES: [(&str, u64); 2] = [("cold-touch", 1), ("burst-256", 256)];

/// The full (policy, mix, coordinator) matrix, in replay order: policy
/// varies fastest so each (mix, coordinator) block lists its baseline
/// first, then the ladder policies it is compared against.
pub fn variants() -> Vec<(PowerPolicyKind, usize, bool)> {
    let mut v = Vec::new();
    for coordinator in [true, false] {
        for mix in 0..MIXES.len() {
            for policy in PowerPolicyKind::ALL {
                v.push((policy, mix, coordinator));
            }
        }
    }
    v
}

/// One replayed cell of the matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyCell {
    /// The rank power-management policy of this cell.
    pub policy: PowerPolicyKind,
    /// Workload-mix name (see [`MIXES`]).
    pub mix: String,
    /// Trickle burst length of the mix.
    pub trickle_burst: u64,
    /// Whether the pool-wide power coordinator ran.
    pub coordinator: bool,
    /// End-to-end access p99 over the run, picoseconds.
    pub access_p99_ps: u64,
    /// Mean access latency, picoseconds.
    pub access_mean_ps: f64,
    /// The replay outcome.
    pub result: PoolRunResult,
}

/// A ladder policy beating its fixed-threshold baseline on one
/// (mix, coordinator) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyWin {
    /// The winning policy.
    pub policy: PowerPolicyKind,
    /// Workload-mix name.
    pub mix: String,
    /// Whether the coordinator ran in the pair.
    pub coordinator: bool,
    /// Energy saved relative to the fixed-threshold cell of the pair.
    pub savings_fraction: f64,
    /// `p99(policy) - p99(fixed)`, picoseconds; never positive in a win.
    pub p99_delta_ps: i64,
}

/// Combined result of the matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyAblationResult {
    /// One entry per [`variants`] element, in that order.
    pub cells: Vec<PolicyCell>,
    /// Every cell where a ladder policy beats fixed-threshold on energy at
    /// equal-or-better p99, best savings first.
    pub wins: Vec<PolicyWin>,
}

impl PolicyAblationResult {
    /// The fixed-threshold baseline cell of a (mix, coordinator) pair.
    pub fn baseline(&self, mix: &str, coordinator: bool) -> Option<&PolicyCell> {
        self.cells.iter().find(|c| {
            c.policy == PowerPolicyKind::FixedThreshold
                && c.mix == mix
                && c.coordinator == coordinator
        })
    }

    /// The best win, if any ladder policy beat its baseline.
    pub fn headline(&self) -> Option<&PolicyWin> {
        self.wins.first()
    }
}

/// Runs the whole matrix sequentially.
///
/// # Errors
///
/// Propagates pool/device errors from any replay.
pub fn run(cfg: &PoolRunConfig) -> Result<PolicyAblationResult, DtlError> {
    run_jobs_traced(cfg, &dtl_telemetry::Telemetry::disabled(), 1)
}

/// Like [`run`], with the matrix cells as parallel work units. Only the
/// first cell records telemetry (the cells are independent pools whose
/// timelines would not compose into one trace); per-unit buffers merge
/// back in unit order, so the emitted trace and the result are
/// bit-identical for any `jobs`.
///
/// # Errors
///
/// Propagates pool/device errors from any replay.
pub fn run_jobs_traced(
    cfg: &PoolRunConfig,
    telemetry: &dtl_telemetry::Telemetry,
    jobs: usize,
) -> Result<PolicyAblationResult, DtlError> {
    run_jobs_observed(cfg, telemetry, jobs, &Heartbeat::disabled()).map(|(result, _)| result)
}

/// Like [`run_jobs_traced`], additionally returning the **first** cell's
/// out-of-band [`RunObservations`] (SLO report and event-spine queue
/// counters). The heartbeat ticks once per completed cell — wall-clock
/// stderr only, provably outside the result path.
///
/// # Errors
///
/// Propagates pool/device errors from any replay.
pub fn run_jobs_observed(
    cfg: &PoolRunConfig,
    telemetry: &dtl_telemetry::Telemetry,
    jobs: usize,
    heartbeat: &Heartbeat,
) -> Result<(PolicyAblationResult, RunObservations), DtlError> {
    let units = variants();
    let total_units = units.len() as u64;
    let outcomes =
        crate::exec::run_units_traced(jobs, telemetry, units, |i, (policy, mix, coord), t| {
            let (mix_name, burst) = MIXES[mix];
            let mut variant = *cfg;
            variant.power_policy = policy;
            variant.trickle_burst = burst;
            variant.coordinator = coord;
            let disabled = dtl_telemetry::Telemetry::disabled();
            let telemetry = if i == 0 { t } else { &disabled };
            let (result, obs) = run_pool_observed(&variant, telemetry)?;
            heartbeat.tick(total_units);
            let (access_p99_ps, access_mean_ps) = match obs.slo.access {
                Some(a) => (a.p99_ps, a.mean_ps),
                None => (0, 0.0),
            };
            let cell = PolicyCell {
                policy,
                mix: mix_name.to_string(),
                trickle_burst: burst,
                coordinator: coord,
                access_p99_ps,
                access_mean_ps,
                result,
            };
            Ok::<_, DtlError>((cell, if i == 0 { Some(obs) } else { None }))
        });
    let mut cells = Vec::with_capacity(total_units as usize);
    let mut headline_obs = RunObservations::default();
    for outcome in outcomes {
        let (cell, obs) = outcome?;
        if let Some(obs) = obs {
            headline_obs = obs;
        }
        cells.push(cell);
    }
    let wins = score(&cells);
    Ok((PolicyAblationResult { cells, wins }, headline_obs))
}

/// Compares every ladder-policy cell against the fixed-threshold cell of
/// its (mix, coordinator) pair and collects the wins, best savings first.
fn score(cells: &[PolicyCell]) -> Vec<PolicyWin> {
    let mut wins = Vec::new();
    for cell in cells {
        if cell.policy == PowerPolicyKind::FixedThreshold {
            continue;
        }
        let Some(base) = cells.iter().find(|c| {
            c.policy == PowerPolicyKind::FixedThreshold
                && c.mix == cell.mix
                && c.coordinator == cell.coordinator
        }) else {
            continue;
        };
        if base.result.total_energy_mj <= 0.0 {
            continue;
        }
        let savings_fraction = 1.0 - cell.result.total_energy_mj / base.result.total_energy_mj;
        let p99_delta_ps = cell.access_p99_ps as i64 - base.access_p99_ps as i64;
        if savings_fraction > 0.0 && p99_delta_ps <= 0 {
            wins.push(PolicyWin {
                policy: cell.policy,
                mix: cell.mix.clone(),
                coordinator: cell.coordinator,
                savings_fraction,
                p99_delta_ps,
            });
        }
    }
    wins.sort_by(|a, b| b.savings_fraction.total_cmp(&a.savings_fraction));
    wins
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_every_policy_and_finds_a_win() {
        let r = run(&PoolRunConfig::tiny(7)).unwrap();
        assert_eq!(r.cells.len(), PowerPolicyKind::ALL.len() * MIXES.len() * 2);
        for kind in PowerPolicyKind::ALL {
            assert!(r.cells.iter().any(|c| c.policy == kind), "missing {}", kind.name());
        }
        // Every cell of a (mix, coordinator) pair places the same schedule.
        for cell in &r.cells {
            let base = r.baseline(&cell.mix, cell.coordinator).unwrap();
            assert_eq!(cell.result.vms_allocated, base.result.vms_allocated);
        }
        // The acceptance headline: at least one ladder policy beats the
        // fixed 50 ms scheme on energy at equal-or-better p99.
        let win = r.headline().expect("a ladder policy must win at least one cell");
        assert!(win.savings_fraction > 0.0);
        assert!(win.p99_delta_ps <= 0);
        // The adaptive ladder saves energy on every cell (the p99 side of
        // the trade is what the win criterion gates).
        for cell in r.cells.iter().filter(|c| c.policy == PowerPolicyKind::AdaptiveDemotion) {
            let base = r.baseline(&cell.mix, cell.coordinator).unwrap();
            assert!(
                cell.result.total_energy_mj < base.result.total_energy_mj,
                "adaptive must undercut fixed on {} (coord {}): {} vs {}",
                cell.mix,
                cell.coordinator,
                cell.result.total_energy_mj,
                base.result.total_energy_mj
            );
        }
    }

    #[test]
    fn jobs_do_not_change_the_result() {
        let cfg = PoolRunConfig::tiny(11);
        let a = run_jobs_traced(&cfg, &dtl_telemetry::Telemetry::disabled(), 1).unwrap();
        let b = run_jobs_traced(&cfg, &dtl_telemetry::Telemetry::disabled(), 4).unwrap();
        assert_eq!(a, b);
    }
}
