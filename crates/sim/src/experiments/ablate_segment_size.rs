//! **Ablation** — translation segment size (the paper's §4.1 design
//! decision).
//!
//! Sweeps 1 / 2 / 4 MiB and reports the three quantities the paper weighs:
//! the cold-segment fraction (finer = more cold capacity to harvest), the
//! mapping-metadata footprint (finer = bigger tables), and the migration
//! cost per consolidated segment (finer = cheaper individual moves).

use serde::{Deserialize, Serialize};

use super::fig10;

/// One segment-size point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegmentSizeRow {
    /// Segment size, bytes.
    pub segment_bytes: u64,
    /// Cold-capacity fraction at this granularity (Figure 10 machinery).
    pub cold_fraction: f64,
    /// On-controller SRAM footprint, KiB.
    pub sram_kb: f64,
    /// In-DRAM table footprint, KiB.
    pub dram_kb: f64,
    /// Migration time per consolidated segment, ms.
    pub migration_ms_per_segment: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegmentSizeResult {
    /// One row per granularity, finest first.
    pub rows: Vec<SegmentSizeRow>,
}

/// Runs the study. A single Figure 10 replay feeds every granularity (the
/// cold fractions come from one shared trace walk), so the experiment is a
/// single work unit; the downstream table arithmetic is deterministic.
pub fn run(seed: u64, records: usize) -> SegmentSizeResult {
    let fig = fig10::run(seed, records, 64);
    let mut rows = Vec::new();
    for fr in &fig.rows {
        let seg = fr.granularity_bytes;
        // Structure sizes: entry counts scale inversely with segment size.
        let cfg = dtl_core::OverheadConfig {
            segment_bytes: seg,
            ..dtl_core::OverheadConfig::paper_384gb()
        };
        let sizes = dtl_core::StructureSizes::compute(&cfg);
        // Migration time of one segment at the paper's opportunistic
        // bandwidth (4.6 GB/s, halved for same-channel swap traffic).
        let migration_ms = seg as f64 / (4.6e9 / 2.0) * 1e3;
        rows.push(SegmentSizeRow {
            segment_bytes: seg,
            cold_fraction: fr.cold_fraction,
            sram_kb: sizes.sram_total() as f64 / 1024.0,
            dram_kb: sizes.dram_total() as f64 / 1024.0,
            migration_ms_per_segment: migration_ms,
        });
    }
    SegmentSizeResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finer_segments_trade_tables_for_cold_capacity() {
        let r = run(11, 120_000);
        assert_eq!(r.rows.len(), 3);
        for w in r.rows.windows(2) {
            assert!(w[0].segment_bytes < w[1].segment_bytes, "finest first");
            assert!(w[0].sram_kb >= w[1].sram_kb, "finer granularity needs bigger tables: {w:?}");
            assert!(w[0].migration_ms_per_segment < w[1].migration_ms_per_segment);
        }
    }
}
