//! **Figures 12 & 13** — rank-level power-down over a 6-hour VM schedule:
//! runtime DRAM power (12a), normalized DRAM energy (12b, paper: −31.6 %
//! at a 1.6 % performance cost), and the background/active power breakdown
//! (Figure 13: background −35.3 %, total power −32.7 %).

use serde::{Deserialize, Serialize};

use crate::{run_schedule, IntervalSample, PowerDownRunConfig, PowerDownRunResult};
use dtl_core::DtlError;

/// Combined result of the baseline and DTL runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig12Result {
    /// Baseline (all ranks active) per-interval samples.
    pub baseline: Vec<IntervalSample>,
    /// DTL per-interval samples.
    pub dtl: Vec<IntervalSample>,
    /// Baseline totals.
    pub baseline_totals: Totals,
    /// DTL totals.
    pub dtl_totals: Totals,
    /// Fractional energy saving (paper: 0.316).
    pub energy_saving: f64,
    /// Fractional background-power saving (paper: 0.353).
    pub background_saving: f64,
    /// Fractional mean-power saving (paper: 0.327).
    pub power_saving: f64,
    /// Modeled execution-time overhead (paper: 0.016): rank-interleaving
    /// disabled + DTL translation.
    pub exec_overhead: f64,
    /// Segments migrated by drains.
    pub segments_drained: u64,
    /// Rank groups powered down over the run.
    pub groups_powered_down: u64,
}

/// Energy totals of one run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Totals {
    /// Total DRAM energy, mJ.
    pub total_mj: f64,
    /// Background component.
    pub background_mj: f64,
    /// Active component.
    pub active_mj: f64,
    /// Mean power, mW.
    pub mean_power_mw: f64,
}

impl Totals {
    fn of(r: &PowerDownRunResult) -> Totals {
        Totals {
            total_mj: r.total_energy_mj,
            background_mj: r.background_mj,
            active_mj: r.active_mj,
            mean_power_mw: r.mean_power_mw(),
        }
    }
}

/// Runs baseline and DTL replays of the same schedule.
///
/// `exec_overhead_inputs` is `(interleaving_cost, translation_cost)` —
/// typically the Figure 5 CXL mean slowdown minus one and the §6.1
/// execution inflation.
///
/// # Errors
///
/// Propagates device errors from either replay.
pub fn run(
    cfg_base: &PowerDownRunConfig,
    exec_overhead_inputs: (f64, f64),
) -> Result<Fig12Result, DtlError> {
    run_traced(cfg_base, exec_overhead_inputs, &dtl_telemetry::Telemetry::disabled())
}

/// Like [`run`], but streams telemetry from the **DTL replay** (the
/// baseline stays untraced so its events do not interleave into the same
/// timeline).
///
/// # Errors
///
/// Propagates device errors from either replay.
pub fn run_traced(
    cfg_base: &PowerDownRunConfig,
    exec_overhead_inputs: (f64, f64),
    telemetry: &dtl_telemetry::Telemetry,
) -> Result<Fig12Result, DtlError> {
    run_jobs_traced(cfg_base, exec_overhead_inputs, telemetry, 1)
}

/// Like [`run_traced`], with the baseline and DTL replays as two parallel
/// work units. The baseline unit keeps its telemetry disabled (as in the
/// sequential path) and the DTL unit records into a per-unit buffer that
/// merges back in unit order, so the emitted trace is bit-identical for
/// any `jobs`.
///
/// # Errors
///
/// Propagates device errors from either replay.
pub fn run_jobs_traced(
    cfg_base: &PowerDownRunConfig,
    exec_overhead_inputs: (f64, f64),
    telemetry: &dtl_telemetry::Telemetry,
    jobs: usize,
) -> Result<Fig12Result, DtlError> {
    let mut outcomes =
        crate::exec::run_units_traced(jobs, telemetry, vec![false, true], |_, powerdown, t| {
            if powerdown {
                crate::run_schedule_traced(&PowerDownRunConfig { powerdown: true, ..*cfg_base }, t)
            } else {
                run_schedule(&PowerDownRunConfig { powerdown: false, ..*cfg_base })
            }
        });
    let dtl = outcomes.pop().expect("two units")?;
    let baseline = outcomes.pop().expect("two units")?;
    let energy_saving = 1.0 - dtl.total_energy_mj / baseline.total_energy_mj;
    let background_saving = 1.0 - dtl.background_mj / baseline.background_mj;
    let power_saving = 1.0 - dtl.mean_power_mw() / baseline.mean_power_mw();
    let (interleave, translate) = exec_overhead_inputs;
    Ok(Fig12Result {
        baseline_totals: Totals::of(&baseline),
        dtl_totals: Totals::of(&dtl),
        baseline: baseline.intervals,
        dtl: dtl.intervals,
        energy_saving,
        background_saving,
        power_saving,
        exec_overhead: interleave + translate,
        segments_drained: dtl.segments_drained,
        groups_powered_down: dtl.groups_powered_down,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtl_saves_substantial_energy_at_tiny_scale() {
        let r = run(&PowerDownRunConfig::tiny(7, true), (0.014, 0.0018)).unwrap();
        assert!(r.energy_saving > 0.10, "energy saving {}", r.energy_saving);
        assert!(r.background_saving > r.energy_saving * 0.8, "background drives the saving");
        assert!(r.groups_powered_down > 0);
        assert!((r.exec_overhead - 0.0158).abs() < 1e-9);
        // DTL never uses more power than baseline in any interval... power
        // can transiently exceed during migration; check the mean instead.
        assert!(r.dtl_totals.mean_power_mw < r.baseline_totals.mean_power_mw);
    }
}
