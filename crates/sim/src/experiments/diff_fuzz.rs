//! **Differential fuzz** — not a paper figure but the evaluation's
//! soundness argument: the cycle-level device and a flat reference model
//! replay identical op streams in lockstep while an external invariant
//! suite cross-checks translation bijectivity, residency conservation,
//! power safety, migration atomicity, and shadowed segment contents
//! (see `dtl-check`).
//!
//! The acceptance batch drives ≥ 10 000 lockstep ops over ≥ 20 seeds,
//! including deterministic `dtl-fault` plans, and must report **zero**
//! invariant violations. Any failure is shrunk to a replayable
//! counterexample carrying its generator seed.

use serde::{Deserialize, Serialize};

use crate::check_run::{run_checks_jobs, CheckRunConfig, CheckRunResult};

/// Summary row of one differential-fuzz batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffFuzzResult {
    /// Seeds run.
    pub seeds: u64,
    /// Seeds with a fault plan composed in.
    pub faulted_seeds: u64,
    /// Lockstep ops executed.
    pub total_ops: u64,
    /// Accesses cross-checked against the oracle.
    pub total_accesses: u64,
    /// Invariant-suite runs.
    pub total_checks: u64,
    /// Invariant violations (must be zero).
    pub violations: u64,
    /// Shrunk, replayable counterexample JSON for the first failure.
    pub first_counterexample: Option<String>,
    /// The raw per-seed batch result.
    pub batch: CheckRunResult,
}

/// Runs one differential-fuzz batch and summarizes it. Equivalent to
/// [`run_jobs`] at `jobs = 1`.
pub fn run(cfg: &CheckRunConfig) -> DiffFuzzResult {
    run_jobs(cfg, 1)
}

/// Like [`run`], with the batch's seeds sharded across up to `jobs`
/// workers (each seed is an independent lockstep replay).
pub fn run_jobs(cfg: &CheckRunConfig, jobs: usize) -> DiffFuzzResult {
    let batch = run_checks_jobs(cfg, jobs);
    DiffFuzzResult {
        seeds: batch.seeds.len() as u64,
        faulted_seeds: batch.seeds.iter().filter(|s| s.faulted).count() as u64,
        total_ops: batch.total_ops,
        total_accesses: batch.total_accesses,
        total_checks: batch.total_checks,
        violations: batch.violations,
        first_counterexample: batch.first_counterexample().map(|ce| ce.to_json()),
        batch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The acceptance batch itself (≥ 20 seeds, ≥ 10k ops, ≥ 1 fault plan,
    // zero violations) runs in the diff_fuzz binary and CI smoke; here a
    // smaller batch keeps unit-test time in budget while still covering a
    // faulted seed.
    #[test]
    fn smoke_batch_reports_zero_violations() {
        let r = run(&CheckRunConfig::smoke());
        assert_eq!(r.violations, 0, "counterexample: {:?}", r.first_counterexample);
        // 4 seeds × 3 power policies.
        assert_eq!(r.seeds, 12);
        assert_eq!(r.faulted_seeds, 3);
        assert!(r.total_ops >= 3600);
        assert!(r.total_accesses > 0);
        assert!(r.total_checks > 0);
    }

    #[test]
    fn acceptance_config_meets_the_floor() {
        let cfg = CheckRunConfig::acceptance();
        assert!(cfg.clean_seeds.len() + cfg.faulted_seeds.len() >= 20);
        assert!(!cfg.faulted_seeds.is_empty());
        assert!(cfg.total_ops() >= 10_000);
        // 24 seeds × 3 policies = the 72-run acceptance campaign.
        assert_eq!((cfg.clean_seeds.len() + cfg.faulted_seeds.len()) * cfg.policies.len(), 72);
        assert_eq!(cfg.policies, dtl_dram::PowerPolicyKind::ALL.to_vec());
    }
}
