//! **Pool scale** (rack-scale extension, paper §7 outlook) — replay the
//! same synthesized VM schedule against a four-device memory pool under
//! every combination of placement policy (pack-for-power vs
//! spread-for-bandwidth) and pool-wide power coordination (on/off), and
//! report what cross-device consolidation buys: the headline is
//! pack+coordinator against the spread/no-coordinator baseline, the pool
//! analogue of DTL-vs-interleaved at device scale.

use serde::{Deserialize, Serialize};

use crate::{
    run_pool, run_pool_observed, Heartbeat, PoolRunConfig, PoolRunResult, RunObservations,
};
use dtl_core::DtlError;
use dtl_pool::PlacementPolicy;

/// The four (policy, coordinator) variants, replayed in this order. The
/// first is the headline configuration and the only one traced.
pub const VARIANTS: [(PlacementPolicy, bool); 4] = [
    (PlacementPolicy::PackForPower, true),
    (PlacementPolicy::PackForPower, false),
    (PlacementPolicy::SpreadForBandwidth, true),
    (PlacementPolicy::SpreadForBandwidth, false),
];

/// One replayed variant of the pool schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolScaleVariant {
    /// Placement policy of this variant.
    pub policy: PlacementPolicy,
    /// Whether the pool-wide power coordinator ran.
    pub coordinator: bool,
    /// The replay outcome.
    pub result: PoolRunResult,
}

/// Combined result of the four variants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolScaleResult {
    /// One entry per [`VARIANTS`] element, in that order.
    pub variants: Vec<PoolScaleVariant>,
    /// Energy saving of pack+coordinator over spread/no-coordinator.
    pub savings_fraction: f64,
}

impl PoolScaleResult {
    /// The headline pack+coordinator replay.
    pub fn headline(&self) -> &PoolRunResult {
        &self.variants[0].result
    }

    /// The spread/no-coordinator baseline replay.
    pub fn baseline(&self) -> &PoolRunResult {
        &self.variants[3].result
    }
}

/// Runs all four variants sequentially.
///
/// # Errors
///
/// Propagates pool/device errors from any replay.
pub fn run(cfg: &PoolRunConfig) -> Result<PoolScaleResult, DtlError> {
    run_jobs_traced(cfg, &dtl_telemetry::Telemetry::disabled(), 1)
}

/// Like [`run`], with the four variants as parallel work units. Only the
/// headline pack+coordinator unit records telemetry (the variants are
/// independent pools whose timelines would not compose into one trace);
/// per-unit buffers merge back in unit order, so the emitted trace and the
/// result are bit-identical for any `jobs`.
///
/// # Errors
///
/// Propagates pool/device errors from any replay.
pub fn run_jobs_traced(
    cfg: &PoolRunConfig,
    telemetry: &dtl_telemetry::Telemetry,
    jobs: usize,
) -> Result<PoolScaleResult, DtlError> {
    run_jobs_observed(cfg, telemetry, jobs, &Heartbeat::disabled()).map(|(result, _)| result)
}

/// Like [`run_jobs_traced`], additionally returning the **headline**
/// variant's out-of-band [`RunObservations`] (SLO report and event-spine
/// queue counters). The heartbeat ticks once per completed variant —
/// wall-clock stderr only, provably outside the result path.
///
/// # Errors
///
/// Propagates pool/device errors from any replay.
pub fn run_jobs_observed(
    cfg: &PoolRunConfig,
    telemetry: &dtl_telemetry::Telemetry,
    jobs: usize,
    heartbeat: &Heartbeat,
) -> Result<(PoolScaleResult, RunObservations), DtlError> {
    let total_units = VARIANTS.len() as u64;
    let outcomes = crate::exec::run_units_traced(
        jobs,
        telemetry,
        VARIANTS.to_vec(),
        |i, (policy, coord), t| {
            let mut variant = *cfg;
            variant.policy = policy;
            variant.coordinator = coord;
            let (result, obs) = if i == 0 {
                run_pool_observed(&variant, t).map(|(r, o)| (r, Some(o)))
            } else {
                run_pool(&variant).map(|r| (r, None))
            }?;
            heartbeat.tick(total_units);
            Ok::<_, DtlError>((PoolScaleVariant { policy, coordinator: coord, result }, obs))
        },
    );
    let mut variants = Vec::with_capacity(VARIANTS.len());
    let mut headline_obs = RunObservations::default();
    for outcome in outcomes {
        let (variant, obs) = outcome?;
        if let Some(obs) = obs {
            headline_obs = obs;
        }
        variants.push(variant);
    }
    let headline = variants[0].result.total_energy_mj;
    let baseline = variants[3].result.total_energy_mj;
    let savings_fraction = if baseline > 0.0 { 1.0 - headline / baseline } else { 0.0 };
    Ok((PoolScaleResult { variants, savings_fraction }, headline_obs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_with_coordinator_beats_spread_without() {
        let r = run(&PoolRunConfig::tiny(7)).unwrap();
        assert_eq!(r.variants.len(), 4);
        assert!(
            r.savings_fraction > 0.0,
            "pool coordination must save energy: {}",
            r.savings_fraction
        );
        // Every variant places the same schedule.
        let placed = r.variants[0].result.vms_allocated;
        assert!(r.variants.iter().all(|v| v.result.vms_allocated == placed));
        // Only coordinator variants park devices.
        assert!(r.variants[0].result.stats.devices_parked > 0);
        assert_eq!(r.variants[1].result.stats.devices_parked, 0);
    }

    #[test]
    fn jobs_do_not_change_the_result() {
        let cfg = PoolRunConfig::tiny(11);
        let a = run_jobs_traced(&cfg, &dtl_telemetry::Telemetry::disabled(), 1).unwrap();
        let b = run_jobs_traced(&cfg, &dtl_telemetry::Telemetry::disabled(), 4).unwrap();
        assert_eq!(a, b);
    }
}
