//! **Figure 14** — additional DRAM energy savings from hotness-aware
//! self-refresh *after* rank-level power-down: ~20 % in the stable phase
//! for allocations leaving at least half a rank-pair of unallocated
//! capacity per channel; little or nothing when capacity is tight
//! (240 GB); 14.9 % for the 8-rank / 304 GB configuration.

use serde::{Deserialize, Serialize};

use crate::{hotness_savings, HotnessRunConfig, HotnessRunResult};
use dtl_core::DtlError;

/// One allocation point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig14Row {
    /// Label, e.g. "208GB/6rk".
    pub label: String,
    /// Active ranks per channel.
    pub active_ranks: u32,
    /// Allocated fraction of the active-rank capacity.
    pub allocated_fraction: f64,
    /// Additional energy saving over the power-down-only baseline.
    pub additional_saving: f64,
    /// Self-refresh residency fraction in the treatment run.
    pub sr_residency: f64,
    /// Warmup: time of first self-refresh entry, seconds (scaled time).
    pub warmup_s: Option<f64>,
    /// SR exits (ping-pong indicator; the paper's 208gb-mix5/6 cases).
    pub sr_exits: u64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig14Result {
    /// One row per allocation point.
    pub rows: Vec<Fig14Row>,
    /// Scale factor used.
    pub scale: u64,
}

/// The paper's allocation points: (label, active ranks, allocated GB,
/// capacity GB of the active ranks).
pub const PAPER_POINTS: [(&str, u32, f64); 4] = [
    ("208GB/6rk", 6, 208.0 / 288.0),
    ("224GB/6rk", 6, 224.0 / 288.0),
    ("240GB/6rk", 6, 240.0 / 288.0),
    ("304GB/8rk", 8, 304.0 / 384.0),
];

/// Runs the sweep. `base` carries scale/bandwidth/accesses; rank count and
/// allocation are overridden per point.
///
/// # Errors
///
/// Propagates device errors.
pub fn run(base: &HotnessRunConfig, points: &[(&str, u32, f64)]) -> Result<Fig14Result, DtlError> {
    run_jobs(base, points, 1)
}

/// Like [`run`], with one worker unit per allocation point — each point
/// replays an independent pair of devices.
///
/// # Errors
///
/// Propagates device errors (first failing point wins).
pub fn run_jobs(
    base: &HotnessRunConfig,
    points: &[(&str, u32, f64)],
    jobs: usize,
) -> Result<Fig14Result, DtlError> {
    let outcomes = crate::exec::run_units(jobs, points.to_vec(), |_, (label, ranks, frac)| {
        let cfg = HotnessRunConfig { active_ranks: ranks, allocated_fraction: frac, ..*base };
        let (_, on, saving) = hotness_savings(&cfg)?;
        Ok::<_, DtlError>(row(label, &cfg, &on, saving))
    });
    let mut rows = Vec::new();
    for outcome in outcomes {
        rows.push(outcome?);
    }
    Ok(Fig14Result { rows, scale: base.scale })
}

fn row(label: &str, cfg: &HotnessRunConfig, on: &HotnessRunResult, saving: f64) -> Fig14Row {
    Fig14Row {
        label: label.to_string(),
        active_ranks: cfg.active_ranks,
        allocated_fraction: cfg.allocated_fraction,
        additional_saving: saving,
        sr_residency: on.sr_residency,
        warmup_s: on.first_sr_entry.map(|t| t.as_secs_f64()),
        sr_exits: on.sr_exits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loose_allocation_saves_more_than_tight() {
        let base = HotnessRunConfig {
            accesses: 1_000_000,
            n_apps: 3,
            channels: 2,
            ..HotnessRunConfig::tiny(1, true)
        };
        let r = run(&base, &[("loose", 4, 0.55), ("tight", 4, 0.95)]).unwrap();
        assert_eq!(r.rows.len(), 2);
        let loose = &r.rows[0];
        let tight = &r.rows[1];
        assert!(
            loose.additional_saving >= tight.additional_saving - 1e-9,
            "loose {} vs tight {}",
            loose.additional_saving,
            tight.additional_saving
        );
        assert!(loose.additional_saving > 0.0, "loose must save: {loose:?}");
    }
}
