//! **Ablation** — segment mapping cache sizing (the paper picks a 64-entry
//! L1 and a 1024-entry 4-way L2; Table 3/5). Sweeps both levels and
//! reports measured miss ratios on the mixed trace plus the resulting AMAT
//! adder.

use serde::{Deserialize, Serialize};

use dtl_core::{AuId, Dsn, HostId, Hsn, SegmentMappingCache};
use dtl_cxl::AmatModel;
use dtl_dram::Picos;
use dtl_trace::{Mixer, WorkloadKind};

/// One (L1, L2) sizing cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmcRow {
    /// L1 entries.
    pub l1_entries: usize,
    /// L2 entries (4-way).
    pub l2_entries: usize,
    /// Measured L1 miss ratio.
    pub l1_miss: f64,
    /// Measured L2 miss ratio.
    pub l2_miss: f64,
    /// Resulting translation overhead, ns.
    pub translation_ns: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmcResult {
    /// Rows in (L1, L2) sweep order.
    pub rows: Vec<SmcRow>,
}

/// The swept L1 sizes.
pub const L1_SIZES: [usize; 4] = [16, 32, 64, 128];
/// The swept L2 sizes.
pub const L2_SIZES: [usize; 3] = [256, 1024, 4096];

/// Runs the sweep sequentially. Equivalent to [`run_jobs`] at `jobs = 1`.
pub fn run(seed: u64, accesses: usize) -> SmcResult {
    run_jobs(seed, accesses, 1)
}

/// Runs the sweep with one worker unit per (L1, L2) sizing. The mixed
/// post-cache trace is generated **once** and shared read-only by every
/// unit, so all sizings replay the identical access stream regardless of
/// worker count.
pub fn run_jobs(seed: u64, accesses: usize, jobs: usize) -> SmcResult {
    // One mixed post-cache trace reused across all SMC sizings.
    let specs: Vec<_> = WorkloadKind::TRACED.iter().map(|k| k.spec().scaled(16)).collect();
    let mut mix = Mixer::new(&specs, seed);
    let seg = dtl_trace::SEGMENT_BYTES;
    let trace: Vec<u32> = (0..accesses).map(|_| (mix.next_record().addr / seg) as u32).collect();
    let mut cells = Vec::new();
    for l1 in L1_SIZES {
        for l2 in L2_SIZES {
            cells.push((l1, l2));
        }
    }
    let trace_ref = &trace;
    let rows = crate::exec::run_units(jobs, cells, |_, (l1, l2)| {
        let mut smc = SegmentMappingCache::new(l1, l2, 4);
        for s in trace_ref {
            let hsn = Hsn { host: HostId(0), au: AuId(s / 1024), au_offset: s % 1024 };
            let (_, hit) = smc.lookup(hsn);
            if hit.is_none() {
                smc.fill(hsn, Dsn(u64::from(*s)));
            }
        }
        let st = smc.stats();
        let mut amat = AmatModel::paper(Picos::from_ns(121));
        amat.l1_miss_ratio = st.l1_miss_ratio();
        amat.l2_miss_ratio = st.l2_miss_ratio();
        SmcRow {
            l1_entries: l1,
            l2_entries: l2,
            l1_miss: st.l1_miss_ratio(),
            l2_miss: st.l2_miss_ratio(),
            translation_ns: amat.translation_overhead().as_ns_f64(),
        }
    });
    SmcResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_caches_translate_faster() {
        let r = run_jobs(3, 40_000, 2);
        assert_eq!(r.rows.len(), L1_SIZES.len() * L2_SIZES.len());
        let smallest = &r.rows[0];
        let biggest = r.rows.last().unwrap();
        assert!(
            biggest.translation_ns <= smallest.translation_ns,
            "largest sizing must not translate slower: {biggest:?} vs {smallest:?}"
        );
        for row in &r.rows {
            assert!(row.l1_miss > 0.0 && row.l1_miss <= 1.0);
        }
    }
}
