//! **Table 4** — memory accesses per kilo-instruction (MAPKI) of the ten
//! CloudSuite workloads. The synthetic generators are calibrated to the
//! paper's values; this experiment measures what they actually produce.

use dtl_trace::{TraceGen, WorkloadKind};
use serde::{Deserialize, Serialize};

/// One workload's calibration check.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tab04Row {
    /// Workload name.
    pub workload: String,
    /// Table 4 value.
    pub paper_mapki: f64,
    /// MAPKI measured from the generator.
    pub measured_mapki: f64,
    /// Relative error.
    pub relative_error: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tab04Result {
    /// One row per workload.
    pub rows: Vec<Tab04Row>,
    /// Worst relative error across the table.
    pub max_relative_error: f64,
}

/// Runs the calibration measurement. Equivalent to [`run_jobs`] at
/// `jobs = 1`.
pub fn run(seed: u64, records: usize) -> Tab04Result {
    run_jobs(seed, records, 1)
}

/// Runs the calibration with one worker unit per workload (each generator
/// is independent); the worst-error fold happens after the join.
pub fn run_jobs(seed: u64, records: usize, jobs: usize) -> Tab04Result {
    let rows = crate::exec::run_units(jobs, WorkloadKind::ALL.to_vec(), |_, kind| {
        let spec = kind.spec().scaled(64);
        let mut gen = TraceGen::new(spec, seed);
        let recs = gen.take_records(records);
        let instr = recs.last().expect("records requested").icount;
        let measured = records as f64 * 1000.0 / instr as f64;
        Tab04Row {
            workload: kind.name().to_string(),
            paper_mapki: spec.mapki,
            measured_mapki: measured,
            relative_error: (measured - spec.mapki).abs() / spec.mapki,
        }
    });
    let mut worst = 0.0f64;
    for row in &rows {
        worst = worst.max(row.relative_error);
    }
    Tab04Result { rows, max_relative_error: worst }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_generators_hit_their_mapki() {
        let r = run(1, 40_000);
        assert_eq!(r.rows.len(), 10);
        assert!(r.max_relative_error < 0.08, "worst error {}", r.max_relative_error);
        // Spot-check the extremes of Table 4.
        let graph = r.rows.iter().find(|x| x.workload == "graph-analytics").unwrap();
        assert_eq!(graph.paper_mapki, 6.5);
        let web = r.rows.iter().find(|x| x.workload == "web-search").unwrap();
        assert_eq!(web.paper_mapki, 0.7);
    }
}
