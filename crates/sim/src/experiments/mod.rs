//! One module per paper table/figure. Every `run` function is
//! deterministic given its parameters and returns plain-data rows that the
//! `dtl-bench` binaries render as text and JSON.
//!
//! | Module | Paper artifact | Headline |
//! |---|---|---|
//! | [`fig01`] | Figure 1 | Azure-like committed memory averages < 50 % |
//! | [`fig02`] | Figure 2 | 8→2 ranks/channel costs ~0.7 % |
//! | [`fig05`] | Figure 5 | no rank-interleave: −1.7 % local, −1.4 % CXL |
//! | [`fig09`] | Figure 9 | ≥4 MiB strides dominate (89.3 % mixed) |
//! | [`fig10`] | Figure 10 | 61.5 % cold @2 MiB vs 33.2 % @4 MiB |
//! | [`fig11`] | Figure 11 | background ∝ ranks; active ∝ bandwidth |
//! | [`fig12`] | Figures 12–13 | −31.6 % energy at 1.6 % slowdown |
//! | [`fig14`] | Figure 14 | self-refresh adds up to ~20 % (14.9 % @8rk) |
//! | [`fig15`] | Figure 15 | stacked savings 25.6–32.3 % |
//! | [`tab04`] | Table 4 | per-workload MAPKI calibration |
//! | [`tab05`] | Table 5 | metadata sizes 384 GB vs 4 TB |
//! | [`tab06`] | Table 6 | controller 25.7→36.2 mW, 0.165→1.1 mm² |
//! | [`sec6_1`] | §6.1 | AMAT 214.2 ns (+4.2 ns), +0.18 % runtime |
//! | [`cache_pipeline`] | §5.2 methodology | Table 3 hierarchy compresses intensity, widens strides |
//! | [`sec6_6`] | §6.6 | bigger devices lose less from the DTL mapping |
//! | [`fault_campaign`] | §7 outlook | fault load → capacity / energy / latency cost |
//! | [`diff_fuzz`] | soundness | device vs reference model: zero invariant violations |

pub mod cache_pipeline;
pub mod diff_fuzz;
pub mod fault_campaign;
pub mod fig01;
pub mod fig02;
pub mod fig05;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig14;
pub mod fig15;
pub mod latency_sweep;
pub mod loaded_latency;
pub mod sec6_1;
pub mod sec6_6;
pub mod tab04;
pub mod tab05;
pub mod tab06;
